"""Legacy setup shim.

The sandboxed environment has no ``wheel`` package, so PEP 660 editable
installs fail; ``python setup.py develop`` (or ``pip install -e .`` with
old-style metadata) works against this file.  Canonical metadata lives
in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
