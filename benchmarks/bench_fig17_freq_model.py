"""Bench E17 — Fig. 17: analytic ACK-frequency dynamics."""

from conftest import record_table
from repro.experiments import fig17_freq_model


def test_fig17a_vs_bandwidth(benchmark):
    table = benchmark.pedantic(
        fig17_freq_model.run_vs_bandwidth, rounds=1, iterations=1
    )
    record_table(table, "fig17a_vs_bandwidth")
    # Paper shape: TACK plateaus at beta/RTT_min past the pivot.
    col = table.column("tack@80ms")
    assert col[-1] == col[-2] == 50.0
    # Before the pivot TACK scales with bandwidth like byte counting.
    assert col[0] < col[1] < 50.0 or col[1] == 50.0


def test_fig17b_vs_rtt(benchmark):
    table = benchmark.pedantic(
        fig17_freq_model.run_vs_rtt, rounds=1, iterations=1
    )
    record_table(table, "fig17b_vs_rtt")
    # TCP's frequency is RTT-independent; TACK's falls as 1/RTT after
    # the pivot.
    tcp = table.column("tcp@100M")
    assert len(set(tcp)) == 1
    tack = table.column("tack@100M")
    assert tack[-1] < tack[0]
