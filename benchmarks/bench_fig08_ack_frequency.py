"""Bench E8 — Fig. 8: ACK frequency reduction (analytic + measured)."""

import pytest

from conftest import record_table
from repro.experiments import fig08_ack_frequency


def test_fig08a_analytic(benchmark):
    table = benchmark.pedantic(
        fig08_ack_frequency.run_analytic, rounds=1, iterations=1
    )
    record_table(table, "fig08a_ack_reduction")
    # Paper shape: faster PHY -> larger reduction; larger RTT -> larger
    # reduction.
    for col in ("delta_f@10ms", "delta_f@80ms", "delta_f@200ms"):
        vals = table.column(col)
        assert vals == sorted(vals)
    for row in table.rows:
        assert row["delta_f@10ms"] <= row["delta_f@80ms"] <= row["delta_f@200ms"]


def test_fig08b_measured(benchmark):
    table = benchmark.pedantic(
        fig08_ack_frequency.run_measured, rounds=1, iterations=1,
        kwargs={"duration_s": 4.0},
    )
    record_table(table, "fig08b_measured_frequency")
    for row in table.rows:
        # Measured TACK frequency within 40% of Eq. (3) (startup and
        # IACK noise included).
        assert row["measured_hz"] == pytest.approx(row["analytic_hz"], rel=0.4)
