"""Bench E11 — Fig. 10(b): thinning disturbs legacy TCP, not TACK."""

from conftest import record_table
from repro.experiments import fig10b_actual_goodput


def test_fig10b_actual_goodput(benchmark):
    table = benchmark.pedantic(
        fig10b_actual_goodput.run, rounds=1, iterations=1,
        kwargs={"duration_s": 5.0, "warmup_s": 2.0},
    )
    record_table(table, "fig10b_actual_goodput")
    rows = {row["policy"]: row["goodput_mbps"] for row in table.rows}
    # Paper shape: TACK beats every legacy variant, including the
    # aggressively thinned ones (whose control loops are disturbed).
    legacy_best = max(v for k, v in rows.items() if k.startswith("TCP"))
    assert rows["TACK (L=2)"] > legacy_best
    # Thinning to L=16 must NOT give legacy TCP the ideal-trend boost
    # over L=2 (Fig. 9(b) would predict ~+25 Mbps; the actual gain is
    # small or negative).
    assert rows["TCP (L=16)"] < rows["TCP (L=2)"] + 20.0
