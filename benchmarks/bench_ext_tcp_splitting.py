"""Bench (extension) — paper S7: TCP splitting at the access point."""

from conftest import record_table
from repro.experiments import ext_tcp_splitting


def test_ext_tcp_splitting(benchmark):
    table = benchmark.pedantic(
        ext_tcp_splitting.run, rounds=1, iterations=1,
        kwargs={"duration_s": 8.0, "warmup_s": 2.0},
    )
    record_table(table, "ext_tcp_splitting")
    rows = {row["deployment"]: row for row in table.rows}
    e2e_tack = rows["end-to-end TCP-TACK"]
    split = rows["split: BBR (WAN) + TACK (WLAN)"]
    # On a lossy WAN, splitting inherits the legacy segment's weakness:
    # end-to-end TACK keeps its advantage...
    assert e2e_tack["goodput_mbps"] > split["goodput_mbps"]
    # ...and splitting gives up end-to-end reliability: the proxy holds
    # bytes the server already believes delivered.
    assert split["proxy_held_kb"] > 0
    assert e2e_tack["proxy_held_kb"] == 0
