"""Bench E5 — Fig. 5(b): rich TACKs survive ACK-path loss."""

from conftest import record_table
from repro.experiments import fig05b_rich_info


def test_fig05b_rich_info(benchmark):
    table = benchmark.pedantic(
        fig05b_rich_info.run, rounds=1, iterations=1,
        kwargs={"duration_s": 15.0, "warmup_s": 5.0},
    )
    record_table(table, "fig05b_rich_info")
    rich = table.column("tack_rich")
    poor = table.column("tack_poor")
    # Paper shape: TACK-rich stays within a few points of its
    # low-ack-loss utilization even at 10% ...
    assert rich[-1] > rich[0] - 10
    assert all(r > 85 for r in rich)
    # ... while TACK-poor collapses at heavy ACK loss (paper: 60.6%).
    assert poor[-1] < rich[-1] - 15
    # At low ACK loss poor and rich are equivalent (Q=1 suffices).
    assert poor[0] > rich[0] - 10
