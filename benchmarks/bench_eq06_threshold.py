"""Bench E18 — Eq. (6) / Appendix A: rich-information threshold."""

from conftest import record_table
from repro.experiments import eq06_threshold


def test_eq06_analytic(benchmark):
    table = benchmark.pedantic(
        eq06_threshold.run_analytic, rounds=1, iterations=1
    )
    record_table(table, "eq06_analytic")
    # Higher data loss or larger bdp -> lower ACK-loss threshold.
    thresholds = table.column("threshold_%")
    assert thresholds[1] > thresholds[3]


def test_eq06_simulated(benchmark):
    table = benchmark.pedantic(
        eq06_threshold.run_simulated, rounds=1, iterations=1,
        kwargs={"duration_s": 12.0, "warmup_s": 4.0},
    )
    record_table(table, "eq06_simulated")
    rows = {row["relation"]: row for row in table.rows}
    below = rows["below threshold"]
    above = rows["above threshold"]
    # Below the threshold Q=1 suffices (poor ~= rich); above it the
    # rich blocks earn their keep.
    assert below["poor_util_%"] > below["rich_util_%"] - 10
    assert above["rich_util_%"] > above["poor_util_%"]
