"""Bench E13 — Fig. 13: combined WLAN + WAN performance."""

from conftest import record_table
from repro.experiments import fig13_hybrid


def test_fig13_hybrid(benchmark):
    table = benchmark.pedantic(
        fig13_hybrid.run, rounds=1, iterations=1,
        kwargs={"duration_s": 8.0, "warmup_s": 2.0},
    )
    record_table(table, "fig13_hybrid")
    by_case: dict = {}
    for row in table.rows:
        by_case.setdefault(row["case"], {})[row["scheme"]] = row
    for case, entry in by_case.items():
        tack, bbr = entry["tcp-tack"], entry["tcp-bbr"]
        # Paper shape: TACK wins every case and sends far fewer ACKs.
        assert tack["goodput_mbps"] > bbr["goodput_mbps"], f"case {case}"
        assert tack["acks"] < 0.35 * bbr["acks"], f"case {case}"
    # The long-RTT cases shrink TACK's ACK count dramatically
    # (Eq. (3): higher RTT -> lower frequency).
    assert by_case[3]["tcp-tack"]["acks"] < by_case[1]["tcp-tack"]["acks"]
    # Loss adds IACKs on the return path (paper: case 4 >> case 3).
    assert by_case[4]["tcp-tack"]["acks"] > by_case[3]["tcp-tack"]["acks"]
