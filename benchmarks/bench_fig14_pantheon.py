"""Bench E14 — Fig. 14: WAN ranking by Kleinrock power."""

from conftest import record_table
from repro.experiments import fig14_pantheon


def test_fig14_pantheon(benchmark):
    table = benchmark.pedantic(
        fig14_pantheon.run, rounds=1, iterations=1,
        kwargs={"trials": 8, "duration_s": 10.0, "warmup_s": 3.0},
    )
    record_table(table, "fig14_pantheon")
    ranks = {row["scheme"]: row["mean_rank"] for row in table.rows}
    # Paper claim (S6.6): TACK "achieves acceptable performance in the
    # WAN scenarios" — it ranks near the top of the field on the power
    # metric, ahead of the loss-based schemes.
    assert ranks["tcp-tack"] < ranks["tcp-cubic"]
    assert ranks["tcp-tack"] < ranks["tcp-reno"]
    ordered = sorted(ranks.values())
    assert ranks["tcp-tack"] <= ordered[2]  # top-3 mean rank
    # And reducing ACK frequency did not cost WAN performance: TACK is
    # within one rank of the best scheme on average.
    assert ranks["tcp-tack"] - ordered[0] <= 1.0
