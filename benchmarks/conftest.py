"""Benchmark harness support.

Each bench wraps one experiment from :mod:`repro.experiments`.  The
resulting tables are printed and written to ``benchmarks/results/`` so
the regenerated figures survive pytest's output capture.

Setting ``REPRO_BENCH_CACHE=1`` lets benches reuse the campaign
runner's on-disk result cache (``benchmarks/.cache``) via
:func:`cached_experiment`: an experiment whose code and parameters are
unchanged is replayed from disk instead of re-simulated.  Timing
assertions should not run against cached replays — the cache is for
iterating on table *shape* checks, not for measuring.
"""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
CACHE_DIR = os.path.join(os.path.dirname(__file__), ".cache")
CACHE_ENV = "REPRO_BENCH_CACHE"


def record_table(table, name: str) -> None:
    """Print and persist an experiment table."""
    table.show()
    table.save(os.path.join(RESULTS_DIR, f"{name}.txt"))


def cached_experiment(name: str, fn, **kwargs):
    """Run *fn(**kwargs)*, optionally through the runner's result cache.

    With ``REPRO_BENCH_CACHE`` unset this is a plain call.  With it
    set, the result is served from ``benchmarks/.cache`` when the
    experiment's parameters and the ``repro`` source tree are
    unchanged (same content-hash key the campaign runner uses), and
    stored there after a miss.
    """
    if not os.environ.get(CACHE_ENV):
        return fn(**kwargs)
    from repro.runner import ResultCache, Task, code_fingerprint
    cache = ResultCache(CACHE_DIR, code_fingerprint())
    key = cache.key_for(Task(name, fn, kwargs=kwargs))
    hit, value = cache.load(key)
    if hit:
        return value
    value = fn(**kwargs)
    cache.store(key, value)
    return value
