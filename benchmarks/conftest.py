"""Benchmark harness support.

Each bench wraps one experiment from :mod:`repro.experiments`.  The
resulting tables are printed and written to ``benchmarks/results/`` so
the regenerated figures survive pytest's output capture.

Setting ``REPRO_BENCH_CACHE=1`` lets benches reuse the campaign
runner's on-disk result cache (``benchmarks/.cache``) via
:func:`cached_experiment`: an experiment whose code and parameters are
unchanged is replayed from disk instead of re-simulated.  Timing
assertions should not run against cached replays — the cache is for
iterating on table *shape* checks, not for measuring.
"""

from __future__ import annotations

import os

from repro.runner.cache import BENCH_CACHE_ENV, cached_call

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
CACHE_DIR = os.path.join(os.path.dirname(__file__), ".cache")
HISTORY_DIR = os.path.join(RESULTS_DIR, "history")
CACHE_ENV = BENCH_CACHE_ENV  # single source of truth: repro.runner.cache


def record_table(table, name: str) -> None:
    """Print and persist an experiment table."""
    table.show()
    table.save(os.path.join(RESULTS_DIR, f"{name}.txt"))


def cached_experiment(name: str, fn, **kwargs):
    """Run *fn(**kwargs)*, optionally through the runner's result cache.

    Thin wrapper over :func:`repro.runner.cache.cached_call` bound to
    ``benchmarks/.cache``: with ``REPRO_BENCH_CACHE`` unset this is a
    plain call; with it set, the result is replayed from disk when the
    experiment's parameters and the ``repro`` source tree are
    unchanged, and stored there after a miss.
    """
    return cached_call(CACHE_DIR, name, fn, **kwargs)


def record_bench_history(bench: str, metrics: dict, config=None,
                         ungated=()) -> None:
    """Append every numeric metric of a bench run as a BenchRecord.

    Wall-clock metrics land in ``benchmarks/results/history/`` where
    ``python -m repro.profile gate`` compares them against the trailing
    window (see :mod:`repro.bench`).  Metrics named in *ungated* are
    recorded with no improvement direction — kept as context, exempt
    from the regression gate (e.g. raw per-mode wall times whose
    paired-ratio counterparts are the real signal).
    """
    from repro.bench import BenchRecord, append_records
    from repro.profile.cli import infer_better

    meta = {"config": config} if config else {}
    records = [
        BenchRecord.make(bench, metric, float(value),
                         "1/s" if metric.endswith("_per_s") else
                         ("s" if metric.endswith("_s") else
                          ("pct" if metric.endswith("_pct") else "")),
                         better=(None if metric in ungated
                                 else infer_better(metric)),
                         meta=meta)
        for metric, value in sorted(metrics.items())
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    ]
    append_records(HISTORY_DIR, records)
