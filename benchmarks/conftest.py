"""Benchmark harness support.

Each bench wraps one experiment from :mod:`repro.experiments`.  The
resulting tables are printed and written to ``benchmarks/results/`` so
the regenerated figures survive pytest's output capture.
"""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def record_table(table, name: str) -> None:
    """Print and persist an experiment table."""
    table.show()
    table.save(os.path.join(RESULTS_DIR, f"{name}.txt"))
