"""Bench (extension) — crowded AP: N clients, one collision domain."""

from conftest import record_table
from repro.experiments import ext_multiflow


def test_ext_multiflow(benchmark):
    table = benchmark.pedantic(
        ext_multiflow.run, rounds=1, iterations=1,
        kwargs={"client_counts": (1, 3, 6), "duration_s": 5.0,
                "warmup_s": 1.5},
    )
    record_table(table, "ext_multiflow")
    for row in table.rows:
        # TACK wins at every client count...
        assert row["tack_mbps"] > row["bbr_mbps"]
        # ...and both schemes share the AP fairly (per-RA queues).
        assert row["tack_fairness"] > 0.9
        assert row["bbr_fairness"] > 0.9
    # Aggregate capacity holds up as clients multiply (no collapse).
    tack = table.column("tack_mbps")
    assert tack[-1] > 0.75 * tack[0]
