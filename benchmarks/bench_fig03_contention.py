"""Bench E3 — Fig. 3: UDP data-vs-ACK contention over 802.11n."""

from conftest import record_table
from repro.experiments import fig03_contention


def test_fig03_contention(benchmark):
    table = benchmark.pedantic(fig03_contention.run, rounds=1, iterations=1)
    record_table(table, "fig03_contention")
    data = table.column("data_mbps")
    acks = table.column("ack_mbps")
    coll = table.column("collision_rate_%")
    # Paper shape: data throughput declines as ACK frequency rises ...
    assert data[0] > data[-1]
    # ... the ACK path saturates below 1.5 Mbps and fails to double
    # between 4:1 and 2:1 ...
    assert all(a < 1.5 for a in acks)
    assert acks[-1] < 1.8 * acks[-3]
    # ... and collisions grow severalfold from 16:1 to 1:1.
    assert coll[-1] > 2 * coll[0]


def test_fig03_contention_with_rate_adaptation(benchmark):
    """Extension: Minstrel-lite rate adaptation amplifies the decline
    to the paper's magnitude (~100 -> ~75 Mbps at 1:1)."""
    table = benchmark.pedantic(
        fig03_contention.run, rounds=1, iterations=1,
        kwargs={"rate_adaptation": True, "per_mpdu_error_rate": 0.01},
    )
    record_table(table, "fig03_contention_rate_adaptation")
    data = table.column("data_mbps")
    assert data[0] > 95.0
    assert data[-1] < 82.0  # paper: ~75 at 1:1
