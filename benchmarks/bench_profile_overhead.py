"""Profiler overhead benchmark.

Mirrors ``bench_telemetry_overhead.py`` for the second observability
plane: the same bulk TCP-TACK connection-second is simulated with the
profiler absent and attached.  The disabled run is the acceptance
number — with no profiler the engine pays one ``is not None`` test per
event and the endpoints bind their original methods, so the overhead
must sit within measurement noise of the seed path.

Results land in ``benchmarks/results/BENCH_profile.json`` (repo bench
schema ``{bench, config, metrics, timestamp}``) and the wall metrics
are appended to the bench history for the CI gate.  Timing assertions
are deliberately absent (CI machines are noisy); the assertions here
check the runs did real work, the profiler captured the workload, and
profiling did not perturb the simulation.
"""

from __future__ import annotations

import json
import os
import time

from conftest import RESULTS_DIR, record_bench_history

from repro.core.flavors import make_connection
from repro.netsim.engine import Simulator
from repro.netsim.paths import wired_path
from repro.profile import Profiler

_RATE_BPS = 50e6
_RTT_S = 0.04
_DURATION_S = 1.0
_ROUNDS = 3


def _connection_second(profiler=None) -> int:
    sim = Simulator(seed=2, profiler=profiler)
    path = wired_path(sim, _RATE_BPS, _RTT_S)
    conn = make_connection(sim, "tcp-tack", initial_rtt_s=_RTT_S)
    conn.wire(path.forward, path.reverse)
    conn.start_bulk()
    sim.run(until=_DURATION_S)
    return conn.receiver.stats.bytes_delivered


def _timed(make_profiler) -> tuple[float, int, object]:
    """(best wall seconds, bytes delivered, last profiler)."""
    best = float("inf")
    delivered = 0
    prof = None
    for _ in range(_ROUNDS):
        prof = make_profiler()
        started = time.perf_counter()  # reprolint: disable=REP001
        delivered = _connection_second(prof)
        elapsed = time.perf_counter() - started  # reprolint: disable=REP001
        best = min(best, elapsed)
    return best, delivered, prof


def test_profiler_overhead():
    off_s, off_bytes, _ = _timed(lambda: None)
    on_s, on_bytes, prof = _timed(lambda: Profiler(label="bench"))
    lean_s, lean_bytes, _ = _timed(lambda: Profiler(histogram=False))

    # Same simulation either way: profiling must not perturb results.
    assert off_bytes == on_bytes == lean_bytes
    assert off_bytes > 2e6
    assert prof.events_fired > 1000
    assert prof._spans  # subsystem spans were bound

    doc = {
        "bench": "profile_overhead",
        "config": {
            "scheme": "tcp-tack",
            "rate_bps": _RATE_BPS,
            "rtt_s": _RTT_S,
            "duration_s": _DURATION_S,
            "rounds": _ROUNDS,
        },
        "metrics": {
            "off_s": off_s,
            "profiled_s": on_s,
            "profiled_lean_s": lean_s,
            "profiled_overhead_pct": 100.0 * (on_s - off_s) / off_s,
            "lean_overhead_pct": 100.0 * (lean_s - off_s) / off_s,
            "events_per_connection_second": prof.events_fired,
            "bytes_delivered": off_bytes,
        },
        "timestamp": time.time(),  # reprolint: disable=REP001
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    out = os.path.join(RESULTS_DIR, "BENCH_profile.json")
    with open(out, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    record_bench_history("profile_overhead", doc["metrics"],
                         config=doc["config"])
    print(f"\nprofiler overhead: off={off_s:.3f}s "
          f"on={on_s:.3f}s (+{doc['metrics']['profiled_overhead_pct']:.1f}%) "
          f"lean={lean_s:.3f}s (+{doc['metrics']['lean_overhead_pct']:.1f}%)")


def test_disabled_profiler_registers_nowhere():
    """With no profiler the simulator exposes profiler=None and the
    endpoints keep their original bound methods (re-binding only
    happens when a profiler is attached at construction time)."""
    sim = Simulator(seed=2)
    assert sim.profiler is None
    conn = make_connection(sim, "tcp-tack", initial_rtt_s=_RTT_S)
    assert "profiled" not in repr(conn.receiver.on_packet)
    assert conn.receiver.on_packet.__func__ is type(
        conn.receiver).on_packet
