"""Bench E9/E10 — Fig. 9: improvement per RTT and the ideal trend."""

from conftest import record_table
from repro.experiments import fig09_goodput_trend


def test_fig09a_improvement(benchmark):
    table = benchmark.pedantic(
        fig09_goodput_trend.run_improvement, rounds=1, iterations=1,
        kwargs={"duration_s": 4.0, "warmup_s": 1.5, "rtts": (0.08, 0.2)},
    )
    record_table(table, "fig09a_improvement")
    # Paper shape: the improvement grows with the PHY rate.
    for col in ("improve@80ms", "improve@200ms"):
        vals = table.column(col)
        assert vals[-1] > vals[0]
        assert all(v > -0.5 for v in vals)


def test_fig09b_ideal_goodput(benchmark):
    table = benchmark.pedantic(
        fig09_goodput_trend.run_ideal, rounds=1, iterations=1
    )
    record_table(table, "fig09b_ideal_goodput")
    rows = {row["policy"]: row["ideal_goodput_mbps"] for row in table.rows}
    tack = next(v for k, v in rows.items() if k.startswith("TACK"))
    # Paper shape: ideal goodput rises monotonically with L, and TACK
    # approaches the UDP upper bound.
    l_series = [rows[f"TCP (L={L})"] for L in (1, 2, 4, 8, 16)]
    assert all(b >= a - 0.5 for a, b in zip(l_series, l_series[1:]))
    assert tack >= l_series[-1] - 0.5
    assert tack > 0.97 * rows["UDP baseline"]
