"""Microbenchmarks of the simulation substrate itself.

These give the harness real wall-clock numbers (events/second, cost of
one simulated connection-second per scheme) so performance regressions
in the simulator are visible alongside the paper experiments.

Each test also appends its best wall time to
``benchmarks/results/history/`` as BenchRecords (see
:mod:`repro.bench`), which is what ``python -m repro.profile gate``
compares against the trailing window in CI.
"""

from repro.netsim.engine import Simulator
from repro.netsim.paths import wired_path
from repro.core.flavors import make_connection

from conftest import record_bench_history

_EVENT_COUNT = 200_000
_RATE_BPS = 50e6
_RTT_S = 0.04


def _spin_events(n: int) -> int:
    sim = Simulator(seed=1)
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < n:
            sim.call_in(1e-6, tick)

    tick()
    sim.run()
    return count[0]


def _one_connection_second(scheme: str) -> float:
    sim = Simulator(seed=2)
    path = wired_path(sim, _RATE_BPS, _RTT_S)
    conn = make_connection(sim, scheme, initial_rtt_s=_RTT_S)
    conn.wire(path.forward, path.reverse)
    conn.start_bulk()
    sim.run(until=1.0)
    return conn.receiver.stats.bytes_delivered


def _record_wall(benchmark, bench: str, config: dict,
                 extra: dict | None = None) -> None:
    """Append this test's best wall time as a BenchRecord series."""
    metrics = {"wall_s": benchmark.stats.stats.min}
    if extra:
        metrics.update(extra)
    record_bench_history(bench, metrics, config=config)


def test_engine_event_throughput(benchmark):
    result = benchmark.pedantic(_spin_events, args=(_EVENT_COUNT,), rounds=1,
                                iterations=1)
    assert result == _EVENT_COUNT
    wall_s = benchmark.stats.stats.min
    _record_wall(benchmark, "engine_micro.event_spin",
                 {"events": _EVENT_COUNT},
                 extra={"events_per_s": _EVENT_COUNT / wall_s})


def test_tack_connection_second(benchmark):
    delivered = benchmark.pedantic(
        _one_connection_second, args=("tcp-tack",), rounds=1, iterations=1
    )
    assert delivered > 2e6  # the flow actually ran
    _record_wall(benchmark, "engine_micro.connection_second_tack",
                 {"scheme": "tcp-tack", "rate_bps": _RATE_BPS,
                  "rtt_s": _RTT_S})


def test_bbr_connection_second(benchmark):
    delivered = benchmark.pedantic(
        _one_connection_second, args=("tcp-bbr",), rounds=1, iterations=1
    )
    assert delivered > 2e6
    _record_wall(benchmark, "engine_micro.connection_second_bbr",
                 {"scheme": "tcp-bbr", "rate_bps": _RATE_BPS,
                  "rtt_s": _RTT_S})
