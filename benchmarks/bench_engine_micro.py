"""Microbenchmarks of the simulation substrate itself.

These give the harness real wall-clock numbers (events/second, cost of
one simulated connection-second per scheme) so performance regressions
in the simulator are visible alongside the paper experiments.
"""

from repro.netsim.engine import Simulator
from repro.netsim.paths import wired_path
from repro.core.flavors import make_connection


def _spin_events(n: int) -> int:
    sim = Simulator(seed=1)
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < n:
            sim.call_in(1e-6, tick)

    tick()
    sim.run()
    return count[0]


def test_engine_event_throughput(benchmark):
    result = benchmark.pedantic(_spin_events, args=(200_000,), rounds=1,
                                iterations=1)
    assert result == 200_000


def _one_connection_second(scheme: str) -> float:
    sim = Simulator(seed=2)
    path = wired_path(sim, 50e6, 0.04)
    conn = make_connection(sim, scheme, initial_rtt_s=0.04)
    conn.wire(path.forward, path.reverse)
    conn.start_bulk()
    sim.run(until=1.0)
    return conn.receiver.stats.bytes_delivered


def test_tack_connection_second(benchmark):
    delivered = benchmark.pedantic(
        _one_connection_second, args=("tcp-tack",), rounds=1, iterations=1
    )
    assert delivered > 2e6  # the flow actually ran


def test_bbr_connection_second(benchmark):
    delivered = benchmark.pedantic(
        _one_connection_second, args=("tcp-bbr",), rounds=1, iterations=1
    )
    assert delivered > 2e6
