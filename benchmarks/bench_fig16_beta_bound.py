"""Bench E16 — Appendix B.1: beta bound and buffer requirement."""

import pytest

from conftest import record_table
from repro.experiments import fig16_beta_bound


def test_fig16_analytic(benchmark):
    table = benchmark.pedantic(
        fig16_beta_bound.run_analytic, rounds=1, iterations=1
    )
    record_table(table, "fig16_beta_analytic")
    rows = {row["beta"]: row for row in table.rows}
    # Paper S7: beta=2 needs one bdp of buffer; beta=4 needs 0.33 bdp.
    assert rows[2]["buffer_bdp"] == pytest.approx(1.0)
    assert rows[4]["buffer_bdp"] == pytest.approx(1 / 3, abs=0.01)


def test_fig16_simulated(benchmark):
    table = benchmark.pedantic(
        fig16_beta_bound.run_simulated, rounds=1, iterations=1,
        kwargs={"duration_s": 12.0, "warmup_s": 4.0},
    )
    record_table(table, "fig16_beta_simulated")
    rows = {row["beta"]: row for row in table.rows}
    # beta=1 degenerates toward stop-and-wait; beta>=2 utilizes well,
    # and the ACK rate grows with beta.
    assert rows[1]["utilization_%"] < rows[4]["utilization_%"]
    assert rows[4]["utilization_%"] > 85.0
    assert rows[8]["acks_per_s"] > rows[2]["acks_per_s"]
