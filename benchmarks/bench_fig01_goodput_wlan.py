"""Bench E1 — Fig. 1 / Fig. 10(a): WLAN goodput, TACK vs BBR."""

from conftest import record_table
from repro.experiments import fig01_goodput_wlan


def test_fig01_goodput_wlan(benchmark):
    table = benchmark.pedantic(
        fig01_goodput_wlan.run, rounds=1, iterations=1,
        kwargs={"duration_s": 5.0, "warmup_s": 1.5},
    )
    record_table(table, "fig01_goodput_wlan")
    tack = table.column("tack_mbps")
    bbr = table.column("bbr_mbps")
    improv = table.column("improve_%")
    reduction = table.column("ack_reduction_%")
    # Paper shape: TACK wins on every standard ...
    assert all(t > b for t, b in zip(tack, bbr))
    # ... the absolute gain grows with PHY rate ...
    gains = [t - b for t, b in zip(tack, bbr)]
    assert gains == sorted(gains)
    # ... and the n/ac standards shed >90% of ACKs.
    assert all(r > 90.0 for r in reduction[2:])
    assert all(i > 5.0 for i in improv)
