"""Wall-clock microbenchmark of the reprolint engine itself.

The unit checker runs in CI on every push, so its cost is part of the
development loop: this bench times a full ``--units`` pass over
``src/repro`` (summaries, the cross-module inference round, and the
emitting round) and appends the wall time to
``benchmarks/results/history/`` so ``python -m repro.profile gate``
catches the analyzer getting slow the same way it catches the
simulator getting slow.
"""

from pathlib import Path

from repro.lint import LintConfig, lint_paths, load_config

from conftest import record_bench_history

_ROOT = Path(__file__).resolve().parents[1]
_SRC = _ROOT / "src" / "repro"


def _units_pass(config: LintConfig) -> int:
    result = lint_paths([_SRC], config, units=True)
    return result.files_checked


def test_reprolint_units_pass(benchmark):
    config = load_config(_ROOT / "pyproject.toml")
    files_checked = benchmark.pedantic(_units_pass, args=(config,),
                                       rounds=1, iterations=1)
    assert files_checked > 100  # the walk really covered the tree
    wall_s = benchmark.stats.stats.min
    record_bench_history(
        "reprolint.units_pass",
        {"wall_s": wall_s, "files_per_s": files_checked / wall_s},
        config={"paths": "src/repro", "units": True, "jobs": 1},
    )
