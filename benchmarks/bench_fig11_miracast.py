"""Bench E12 — Fig. 11: Miracast projection quality."""

from conftest import record_table
from repro.experiments import fig11_miracast


def test_fig11_miracast(benchmark):
    table = benchmark.pedantic(
        fig11_miracast.run, rounds=1, iterations=1,
        kwargs={"duration_s": 15.0},
    )
    record_table(table, "fig11_miracast")
    rows = {row["transport"]: row for row in table.rows}
    # Paper shape: RTP never rebuffers but macroblocks; reliable TCP
    # never macroblocks; TACK's rebuffering is the lowest among the
    # reliable transports.
    assert rows["RTP+UDP"]["rebuffering_%"] == 0.0
    assert rows["RTP+UDP"]["macroblock_per_30min"] > 0
    for transport in ("TCP CUBIC", "TCP BBR", "TCP-TACK"):
        assert rows[transport]["macroblock_per_30min"] == 0.0
    assert (
        rows["TCP-TACK"]["rebuffering_%"]
        <= min(rows["TCP CUBIC"]["rebuffering_%"], rows["TCP BBR"]["rebuffering_%"])
    )
    assert rows["TCP CUBIC"]["rebuffering_%"] > rows["TCP-TACK"]["rebuffering_%"]
