"""Bench E4 — Fig. 5(a): IACK cuts HoLB blockage at the receiver."""

from conftest import record_table
from repro.experiments import fig05a_holb


def test_fig05a_holb(benchmark):
    table = benchmark.pedantic(
        fig05a_holb.run, rounds=1, iterations=1,
        kwargs={"trials": 6, "duration_s": 6.0},
    )
    record_table(table, "fig05a_holb")
    # Paper shape: the with-IACK CDF sits far left of the without-IACK
    # CDF at the tail percentiles.
    by_pct = {row["percentile"]: row for row in table.rows}
    assert by_pct["p90"]["without_iack"] > 2 * max(by_pct["p90"]["with_iack"], 1)
    assert by_pct["p99"]["without_iack"] > 2 * max(by_pct["p99"]["with_iack"], 1)
