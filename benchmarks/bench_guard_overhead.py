"""Feedback-guard overhead benchmark.

Mirrors ``bench_profile_overhead.py`` for the peer-trust plane: the
same bulk TCP-TACK connection-second is simulated with the feedback
guard disabled and enabled (the default).  The guard validates every
feedback frame against sender ground truth, so its cost scales with
the feedback rate — TACK's taming of acknowledgments is exactly what
keeps that rate (and therefore this overhead) low.  The acceptance
bar from the issue: the validator costs < 2% on the enabled path.

Results land in ``benchmarks/results/BENCH_guard.json`` (repo bench
schema) and the wall metrics are appended to the bench history, where
the CI perf gate enforces the series against its committed baseline.
The paired runs are interleaved (off/on per round) so the best-of-N
comparison sees the same machine state.
"""

from __future__ import annotations

import json
import os
import time

from conftest import RESULTS_DIR, record_bench_history

from repro.core.flavors import make_connection
from repro.netsim.engine import Simulator
from repro.netsim.paths import wired_path
from repro.transport.guard import GuardConfig

_RATE_BPS = 50e6
_RTT_S = 0.04
_DURATION_S = 1.0
_ROUNDS = 5

_GUARD_OFF = GuardConfig(enabled=False)


def _connection_second(guard) -> tuple[int, object]:
    sim = Simulator(seed=2)
    path = wired_path(sim, _RATE_BPS, _RTT_S)
    conn = make_connection(sim, "tcp-tack", initial_rtt_s=_RTT_S,
                           guard=guard)
    conn.wire(path.forward, path.reverse)
    conn.start_bulk()
    sim.run(until=_DURATION_S)
    return conn.receiver.stats.bytes_delivered, conn.sender


def test_guard_overhead():
    best_off = best_on = float("inf")
    off_bytes = on_bytes = 0
    sender = None
    for _ in range(_ROUNDS):
        started = time.perf_counter()  # reprolint: disable=REP001
        off_bytes, _ = _connection_second(_GUARD_OFF)
        best_off = min(best_off, time.perf_counter() - started)  # reprolint: disable=REP001
        started = time.perf_counter()  # reprolint: disable=REP001
        on_bytes, sender = _connection_second(None)
        best_on = min(best_on, time.perf_counter() - started)  # reprolint: disable=REP001

    # Same simulation either way: on legitimate feedback the guard is
    # observe-only, so enabling it must not perturb the transfer.
    assert off_bytes == on_bytes
    assert off_bytes > 2e6
    # The guard really ran: every frame admitted, zero violations.
    assert sender.guard is not None
    assert sender.guard.frames > 50
    assert sender.guard.total == 0

    overhead_pct = 100.0 * (best_on - best_off) / best_off
    # The issue's acceptance bar, with headroom for timer jitter on a
    # loaded runner: best-of-N paired interleaved runs keep the noise
    # floor well under the bar on an idle machine.
    assert overhead_pct < 2.0, (
        f"guard overhead {overhead_pct:.2f}% exceeds the 2% budget "
        f"(off={best_off:.3f}s on={best_on:.3f}s)")

    doc = {
        "bench": "guard_overhead",
        "config": {
            "scheme": "tcp-tack",
            "rate_bps": _RATE_BPS,
            "rtt_s": _RTT_S,
            "duration_s": _DURATION_S,
            "rounds": _ROUNDS,
        },
        "metrics": {
            "off_s": best_off,
            "guarded_s": best_on,
            "guard_overhead_pct": overhead_pct,
            "frames_validated": sender.guard.frames,
            "bytes_delivered": off_bytes,
        },
        "timestamp": time.time(),  # reprolint: disable=REP001
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    out = os.path.join(RESULTS_DIR, "BENCH_guard.json")
    with open(out, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    # Raw per-mode walls are context; the paired overhead percentage is
    # the gated signal (same convention as telemetry_overhead).
    record_bench_history("guard_overhead", doc["metrics"],
                         config=doc["config"],
                         ungated=("off_s", "guarded_s"))
    print(f"\nguard overhead: off={best_off:.3f}s "
          f"on={best_on:.3f}s (+{overhead_pct:.2f}%), "
          f"{sender.guard.frames} frames validated")


def test_disabled_guard_costs_one_none_check():
    """GuardConfig(enabled=False) leaves sender.guard as None — the
    feedback hot path pays a single ``is not None`` test per frame and
    the watchdog timer is never armed."""
    sim = Simulator(seed=2)
    conn = make_connection(sim, "tcp-tack", initial_rtt_s=_RTT_S,
                           guard=_GUARD_OFF)
    assert conn.sender.guard is None
    assert conn.sender._wd_timer is None
