"""Bench E2 — Fig. 2: application bit-rate table."""

from conftest import record_table
from repro.experiments import fig02_bitrates


def test_fig02_bitrates(benchmark):
    table = benchmark.pedantic(fig02_bitrates.run, rounds=1, iterations=1)
    record_table(table, "fig02_bitrates")
    for row in table.rows:
        assert abs(row["source_model_mbps"] - row["paper_mbps"]) / row["paper_mbps"] < 0.02
