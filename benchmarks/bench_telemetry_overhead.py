"""Telemetry overhead benchmark.

Measures the cost of the null-guard hook pattern: the same bulk
TCP-TACK connection-second is simulated with telemetry disabled,
enabled into a memory sink, enabled into a JSONL file, and enabled
into the binary sinks (ring, file, and the always-on sampled ring).
The disabled run is the number that matters — ISSUE acceptance
requires the hooks to cost <= ~3% when no collector is attached,
which is why every hook site is a single ``if self._tel is not None``
test.  The always-on binary ring is the mode meant to stay enabled in
every run, so it carries the one hard gate: < 10% memory-path
overhead versus disabled.

Results land in ``benchmarks/results/BENCH_telemetry.json`` with the
repo's bench schema ``{bench, config, metrics, timestamp}``.  Timing
is a *paired* design: one round runs every mode back-to-back (in
rotating order, so no mode owns the cold-start slot) and each mode's
overhead is computed against the ``off`` run of the *same* round —
CPU-frequency drift between rounds then cancels out of the ratio.
The reported overhead is the second-smallest per-round ratio, robust
to rounds where the frequency swung mid-round.  The only timing
assertion is the always-on gate;
everything else only checks the runs did real work and the traced
runs captured events.
"""

from __future__ import annotations

import json
import os
import statistics
import time

from conftest import RESULTS_DIR, record_bench_history

from repro.core.flavors import make_connection
from repro.netsim.engine import Simulator
from repro.netsim.paths import wired_path
from repro.telemetry import (
    BinaryFileSink,
    BinaryRingSink,
    JsonlSink,
    MemorySink,
    TraceCollector,
    always_on_collector,
)

_RATE_BPS = 50e6
_RTT_S = 0.04
_DURATION_S = 1.0
_ROUNDS = 7


def _connection_second(telemetry=None) -> int:
    sim = Simulator(seed=2, telemetry=telemetry)
    path = wired_path(sim, _RATE_BPS, _RTT_S)
    conn = make_connection(sim, "tcp-tack", initial_rtt_s=_RTT_S)
    conn.wire(path.forward, path.reverse)
    conn.start_bulk()
    sim.run(until=_DURATION_S)
    return conn.receiver.stats.bytes_delivered


def _run_modes(modes: dict) -> dict:
    """``{mode: (per-round wall seconds, bytes delivered, events)}``.

    One round runs every mode once; the order rotates each round so
    no mode always occupies the cold-start slot.  Per-round times are
    returned (not reduced) so overheads can be computed *paired*
    against the same round's ``off`` run.
    """
    results = {k: [[], 0, 0] for k in modes}
    keys = list(modes)
    for rnd in range(_ROUNDS):
        shift = rnd % len(keys)
        for key in keys[shift:] + keys[:shift]:
            collector = modes[key]()
            started = time.perf_counter()  # reprolint: disable=REP001
            delivered = _connection_second(collector)
            elapsed = time.perf_counter() - started  # reprolint: disable=REP001
            entry = results[key]
            entry[0].append(elapsed)
            entry[1] = delivered
            if collector is not None:
                entry[2] = collector.events_emitted
                collector.close()
    return {k: tuple(v) for k, v in results.items()}


def _paired_overhead_pct(off_times: list, mode_times: list) -> float:
    """Low-quantile paired overhead of *mode* vs the same round's off
    run: the second-smallest per-round ratio.

    Pairing within a round cancels the between-round CPU-frequency
    drift that makes independent best-of-N comparisons lie at the
    ~10% granularity this bench gates on.  Per-round ratios are still
    one-sided-noisy — a frequency swing *mid*-round inflates whichever
    mode drew the slow slot (observed spreads on busy hosts exceed the
    whole overhead budget) — so take the second-smallest ratio: on a
    quiet host it reads the true cost like best-of-N does, and it
    survives all but one polluted round.

    Clamped at zero: telemetry can only add work, so a negative
    reading is the noise floor, not a speedup.
    """
    ratios = sorted(m / o for o, m in zip(off_times, mode_times))
    return max(0.0, 100.0 * ratios[1] - 100.0)


def test_telemetry_overhead(tmp_path):
    timings = _run_modes({
        "off": lambda: None,
        "memory": lambda: TraceCollector(MemorySink()),
        "jsonl": lambda: TraceCollector(
            JsonlSink(str(tmp_path / "bench.jsonl"))),
        "binary_ring": lambda: TraceCollector(BinaryRingSink()),
        "binary_file": lambda: TraceCollector(
            BinaryFileSink(str(tmp_path / "bench.rtb"))),
        "always_on": always_on_collector,
    })
    off_times, off_bytes, _ = timings["off"]
    mem_times, mem_bytes, mem_events = timings["memory"]
    jsonl_times, jsonl_bytes, jsonl_events = timings["jsonl"]
    ring_times, ring_bytes, ring_events = timings["binary_ring"]
    binfile_times, binfile_bytes, binfile_events = timings["binary_file"]
    always_times, always_bytes, always_events = timings["always_on"]
    off_s = min(off_times)

    # Same simulation either way: telemetry must not perturb results.
    assert off_bytes == mem_bytes == jsonl_bytes
    assert off_bytes == ring_bytes == binfile_bytes == always_bytes
    assert off_bytes > 2e6
    assert mem_events == jsonl_events > 1000
    assert ring_events == binfile_events == mem_events
    assert 0 < always_events < mem_events  # sampled, not silent

    always_on_overhead_pct = _paired_overhead_pct(off_times, always_times)
    # The always-on ring is meant to ship enabled: hard gate on its
    # memory-path overhead (paired rounds tame CI noise).
    assert always_on_overhead_pct < 10.0, (
        f"always-on binary ring costs {always_on_overhead_pct:.1f}% "
        ">= 10% over disabled telemetry")

    doc = {
        "bench": "telemetry_overhead",
        "config": {
            "scheme": "tcp-tack",
            "rate_bps": _RATE_BPS,
            "rtt_s": _RTT_S,
            "duration_s": _DURATION_S,
            "rounds": _ROUNDS,
        },
        "metrics": {
            "off_s": off_s,
            "memory_s": min(mem_times),
            "jsonl_s": min(jsonl_times),
            "binary_ring_s": min(ring_times),
            "binary_file_s": min(binfile_times),
            "always_on_s": min(always_times),
            "memory_overhead_pct": _paired_overhead_pct(off_times, mem_times),
            "jsonl_overhead_pct": _paired_overhead_pct(off_times, jsonl_times),
            "binary_ring_overhead_pct": _paired_overhead_pct(
                off_times, ring_times),
            "binary_file_overhead_pct": _paired_overhead_pct(
                off_times, binfile_times),
            "always_on_overhead_pct": always_on_overhead_pct,
            "events_per_connection_second": mem_events,
            "always_on_events": always_events,
            "bytes_delivered": off_bytes,
        },
        "timestamp": time.time(),  # reprolint: disable=REP001
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    out = os.path.join(RESULTS_DIR, "BENCH_telemetry.json")
    with open(out, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    # Only the always-on overhead carries a budget; everything else
    # (raw per-mode wall times, the heavyweight modes' overheads)
    # swings with host load and rides along ungated as context.
    record_bench_history("telemetry_overhead", doc["metrics"],
                         config=doc["config"],
                         ungated=("off_s", "memory_s", "jsonl_s",
                                  "binary_ring_s", "binary_file_s",
                                  "always_on_s",
                                  "memory_overhead_pct",
                                  "jsonl_overhead_pct",
                                  "binary_ring_overhead_pct",
                                  "binary_file_overhead_pct",
                                  "events_per_connection_second"))
    m = doc["metrics"]
    print(f"\ntelemetry overhead: off={off_s:.3f}s "
          f"mem=+{m['memory_overhead_pct']:.1f}% "
          f"jsonl=+{m['jsonl_overhead_pct']:.1f}% "
          f"ring=+{m['binary_ring_overhead_pct']:.1f}% "
          f"file=+{m['binary_file_overhead_pct']:.1f}% "
          f"always_on=+{always_on_overhead_pct:.1f}%")


def test_disabled_hooks_do_not_register_anywhere():
    """With no collector the simulator exposes telemetry=None and the
    run produces the exact same delivered-byte count as the seed path
    (guards against a hook accidentally constructing a collector)."""
    sim = Simulator(seed=2)
    assert sim.telemetry is None
    deliveries = [_connection_second(None) for _ in range(2)]
    assert statistics.pstdev(deliveries) == 0  # deterministic
