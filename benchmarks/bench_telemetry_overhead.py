"""Telemetry overhead benchmark.

Measures the cost of the null-guard hook pattern: the same bulk
TCP-TACK connection-second is simulated with telemetry disabled,
enabled into a memory sink, and enabled into a JSONL file.  The
disabled run is the number that matters — ISSUE acceptance requires
the hooks to cost <= ~3% when no collector is attached, which is why
every hook site is a single ``if self._tel is not None`` test.

Results land in ``benchmarks/results/BENCH_telemetry.json`` with the
repo's bench schema ``{bench, config, metrics, timestamp}``.  Timing
assertions are deliberately absent (CI machines are noisy); the JSON
is for trend tracking, the assertions here only check the runs did
real work and the traced runs captured events.
"""

from __future__ import annotations

import json
import os
import statistics
import time

from conftest import RESULTS_DIR, record_bench_history

from repro.core.flavors import make_connection
from repro.netsim.engine import Simulator
from repro.netsim.paths import wired_path
from repro.telemetry import JsonlSink, MemorySink, TraceCollector

_RATE_BPS = 50e6
_RTT_S = 0.04
_DURATION_S = 1.0
_ROUNDS = 3


def _connection_second(telemetry=None) -> int:
    sim = Simulator(seed=2, telemetry=telemetry)
    path = wired_path(sim, _RATE_BPS, _RTT_S)
    conn = make_connection(sim, "tcp-tack", initial_rtt_s=_RTT_S)
    conn.wire(path.forward, path.reverse)
    conn.start_bulk()
    sim.run(until=_DURATION_S)
    return conn.receiver.stats.bytes_delivered


def _timed(make_collector) -> tuple[float, int, int]:
    """(best wall seconds, bytes delivered, events captured)."""
    best = float("inf")
    delivered = 0
    events = 0
    for _ in range(_ROUNDS):
        collector = make_collector()
        started = time.perf_counter()  # reprolint: disable=REP001
        delivered = _connection_second(collector)
        elapsed = time.perf_counter() - started  # reprolint: disable=REP001
        best = min(best, elapsed)
        if collector is not None:
            events = collector.events_emitted
            collector.close()
    return best, delivered, events


def test_telemetry_overhead(tmp_path):
    off_s, off_bytes, _ = _timed(lambda: None)
    mem_s, mem_bytes, mem_events = _timed(lambda: TraceCollector(MemorySink()))
    jsonl_s, jsonl_bytes, jsonl_events = _timed(
        lambda: TraceCollector(JsonlSink(str(tmp_path / "bench.jsonl"))))

    # Same simulation either way: telemetry must not perturb results.
    assert off_bytes == mem_bytes == jsonl_bytes
    assert off_bytes > 2e6
    assert mem_events == jsonl_events > 1000

    doc = {
        "bench": "telemetry_overhead",
        "config": {
            "scheme": "tcp-tack",
            "rate_bps": _RATE_BPS,
            "rtt_s": _RTT_S,
            "duration_s": _DURATION_S,
            "rounds": _ROUNDS,
        },
        "metrics": {
            "off_s": off_s,
            "memory_s": mem_s,
            "jsonl_s": jsonl_s,
            "memory_overhead_pct": 100.0 * (mem_s - off_s) / off_s,
            "jsonl_overhead_pct": 100.0 * (jsonl_s - off_s) / off_s,
            "events_per_connection_second": mem_events,
            "bytes_delivered": off_bytes,
        },
        "timestamp": time.time(),  # reprolint: disable=REP001
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    out = os.path.join(RESULTS_DIR, "BENCH_telemetry.json")
    with open(out, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    record_bench_history("telemetry_overhead", doc["metrics"],
                         config=doc["config"])
    print(f"\ntelemetry overhead: off={off_s:.3f}s "
          f"mem={mem_s:.3f}s (+{doc['metrics']['memory_overhead_pct']:.1f}%) "
          f"jsonl={jsonl_s:.3f}s (+{doc['metrics']['jsonl_overhead_pct']:.1f}%)")


def test_disabled_hooks_do_not_register_anywhere():
    """With no collector the simulator exposes telemetry=None and the
    run produces the exact same delivered-byte count as the seed path
    (guards against a hook accidentally constructing a collector)."""
    sim = Simulator(seed=2)
    assert sim.telemetry is None
    deliveries = [_connection_second(None) for _ in range(2)]
    assert statistics.pstdev(deliveries) == 0  # deterministic
