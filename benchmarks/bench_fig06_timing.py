"""Bench E6/E7 — Fig. 6: advanced round-trip timing."""

from conftest import record_table
from repro.experiments import fig06a_rttmin, fig06b_owd_loss


def test_fig06a_rttmin(benchmark):
    table = benchmark.pedantic(
        fig06a_rttmin.run, rounds=1, iterations=1,
        kwargs={"duration_s": 25.0},
    )
    record_table(table, "fig06a_rttmin")
    by_method = {row["method"]: row for row in table.rows}
    advanced = by_method["advanced (TACK)"]["bias_%"]
    naive = by_method["naive sampling"]["bias_%"]
    # Paper shape: naive sampling overestimates RTT_min by 8-18%; the
    # advanced timing lands within a couple of percent.
    assert naive > advanced
    assert naive > 4.0
    assert -1.0 < advanced < 6.0


def test_fig06b_owd_loss(benchmark):
    table = benchmark.pedantic(
        fig06b_owd_loss.run, rounds=1, iterations=1,
        kwargs={"duration_s": 15.0},
    )
    record_table(table, "fig06b_owd_loss")
    by_timing = {row["timing"]: row for row in table.rows}
    adv, naive = by_timing["advanced"], by_timing["naive"]
    # The correction is free: goodput parity and no tail-delay cost
    # beyond noise (the paper's deployment saw gains; see the
    # documented deviation in EXPERIMENTS.md).
    assert adv["goodput_mbps"] > 0.95 * naive["goodput_mbps"]
    assert adv["owd95_ms"] < 1.1 * naive["owd95_ms"]
    # The reproducible mechanism: the advanced estimate sits clearly
    # below the naive one and nearer the true 100 ms minimum (exact
    # tracking is verified on the WLAN microbenchmark in fig06a; a
    # wired BBR standing queue keeps both above the floor here).
    assert adv["rtt_min_ms"] < naive["rtt_min_ms"] - 10.0
    assert adv["rtt_min_ms"] >= 100.0
