"""Bench E15 — Fig. 15: TCP friendliness of TACK."""

from conftest import record_table
from repro.experiments import fig15_friendliness


def test_fig15_friendliness(benchmark):
    table = benchmark.pedantic(
        fig15_friendliness.run, rounds=1, iterations=1,
        kwargs={"trials": 4, "duration_s": 40.0},
    )
    record_table(table, "fig15_friendliness")
    rows = {row["pairing"]: row for row in table.rows}
    # Paper shape: TACK-BBR shares with CUBIC about as (un)fairly as
    # standard BBR does — TACK is an ACK mechanism, not a new
    # controller; and both flows always get a usable share.
    bbr_cubic = rows["BBR vs CUBIC"]
    tack_cubic = rows["TACK vs CUBIC"]
    assert abs(tack_cubic["ratio_a"] - bbr_cubic["ratio_a"]) < 0.8
    for row in table.rows:
        assert row["ratio_a"] > 0.2
        assert row["ratio_b"] > 0.2
        assert row["ratio_a"] + row["ratio_b"] < 2.3
