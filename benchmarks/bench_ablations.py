"""Ablation benches for the design choices DESIGN.md section 6 calls
out: beta/L robustness, pacing, the retransmission governor, and the
RPC latency cost of large L."""

from conftest import record_table
from repro.experiments import ablations


def test_ablation_beta_l(benchmark):
    table = benchmark.pedantic(
        ablations.run_beta_l_sweep, rounds=1, iterations=1,
        kwargs={"duration_s": 4.0, "warmup_s": 1.5},
    )
    record_table(table, "ablation_beta_l")
    rows = {(r["beta"], r["L"]): r for r in table.rows}
    # The default (4, 2) stays near the best goodput.  beta=2 can edge
    # it out on a clean WLAN (even fewer contentions) — the paper picks
    # beta=4 for robustness, not peak goodput (Appendix B.3).
    best = max(r["goodput_mbps"] for r in table.rows)
    assert rows[(4.0, 2)]["goodput_mbps"] > 0.85 * best
    # ACK rate scales with beta in the periodic regime.
    assert rows[(8.0, 2)]["acks_per_s"] > rows[(2.0, 2)]["acks_per_s"]


def test_ablation_pacing(benchmark):
    table = benchmark.pedantic(
        ablations.run_pacing_ablation, rounds=1, iterations=1,
        kwargs={"duration_s": 12.0, "warmup_s": 4.0},
    )
    record_table(table, "ablation_pacing")
    rows = {r["mode"]: r for r in table.rows}
    # Bursts overflow the shallow buffer: more retransmissions and no
    # goodput benefit versus pacing (paper S5.3).
    assert rows["burst"]["retx"] > rows["paced"]["retx"]
    assert rows["paced"]["goodput_mbps"] >= 0.95 * rows["burst"]["goodput_mbps"]


def test_ablation_governor(benchmark):
    table = benchmark.pedantic(
        ablations.run_governor_ablation, rounds=1, iterations=1,
        kwargs={"duration_s": 12.0},
    )
    record_table(table, "ablation_governor")
    rows = {r["governor"]: r for r in table.rows}
    # Without the once-per-RTT rule the same holes are retransmitted
    # repeatedly: duplicates blow up at no goodput gain.
    assert rows["off"]["duplicates"] > 2 * max(rows["on"]["duplicates"], 1)
    assert rows["on"]["goodput_mbps"] >= 0.9 * rows["off"]["goodput_mbps"]


def test_ablation_rpc_latency(benchmark):
    table = benchmark.pedantic(
        ablations.run_rpc_latency_ablation, rounds=1, iterations=1,
        kwargs={"duration_s": 8.0},
    )
    record_table(table, "ablation_rpc_latency")
    lat = {r["L"]: r["p95_ack_latency_ms"] for r in table.rows}
    # Large L delays the tail ACK of each thin response (paper B.3's
    # reason to keep L = 2 and offer an L = 1 option).
    assert lat[8] > lat[2]
