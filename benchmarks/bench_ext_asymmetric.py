"""Bench (extension) — asymmetric paths with a congested ACK channel."""

from conftest import record_table
from repro.experiments import ext_asymmetric


def test_ext_asymmetric(benchmark):
    table = benchmark.pedantic(
        ext_asymmetric.run, rounds=1, iterations=1,
        kwargs={"duration_s": 8.0, "warmup_s": 2.0},
    )
    record_table(table, "ext_asymmetric")
    bbr = table.column("bbr_mbps")
    tack = table.column("tack_mbps")
    # Legacy TCP degrades monotonically as the uplink thins...
    assert bbr == sorted(bbr, reverse=True)
    assert bbr[-1] < 0.25 * bbr[0]
    # ...while TACK barely notices down to a 250 kbps uplink and still
    # keeps most of its goodput at 100 kbps (a 1000:1 asymmetry).
    assert tack[-2] > 0.9 * tack[0]
    assert tack[-1] > 0.6 * tack[0]
    # And TACK's ACK load fits even the thinnest uplink.
    assert all(k < 100 for k in table.column("tack_ack_kbps"))