#!/usr/bin/env python3
"""Wireless projection (Miracast) demo — the paper's S6.4 deployment.

A smartphone streams UHD video to a TV over Wi-Fi Direct.  Compares
four transports the way Huawei's A/B test did (Fig. 11):

* RTP over UDP (the Android 8 predecessor) — never rebuffers but
  macroblocks when frames lose packets;
* TCP CUBIC and TCP BBR — never macroblock but rebuffer when the
  ACK-laden channel cannot sustain the bitrate;
* TCP-TACK — reliable, and the freed airtime keeps rebuffering low.

Run:  python examples/wireless_projection.py
"""

from repro.app.video import RtpUdpVideoSession, VideoSession
from repro.netsim.engine import Simulator
from repro.netsim.paths import wlan_path

BITRATE_BPS = 120e6   # high-bitrate UHD projection over 802.11n
DURATION_S = 20.0
MPDU_ERROR = 0.005    # residual channel noise after MAC retries


def run(scheme: str) -> dict:
    sim = Simulator(seed=3)
    path = wlan_path(
        sim, "802.11n", extra_rtt_s=0.004, per_mpdu_error_rate=MPDU_ERROR
    )
    if scheme == "rtp+udp":
        session = RtpUdpVideoSession(sim, path, bitrate_bps=BITRATE_BPS)
    else:
        session = VideoSession(sim, path, scheme, bitrate_bps=BITRATE_BPS,
                               initial_rtt_s=0.004)
    session.start()
    sim.run(until=DURATION_S)
    stats = session.finish()
    return {
        "rebuffering": stats.rebuffering_ratio(),
        "macroblocking": stats.macroblocking_per_30min(),
        "frames": stats.frames_played,
    }


def main() -> None:
    print(f"Miracast projection at {BITRATE_BPS / 1e6:.0f} Mbps over 802.11n\n")
    print(f"{'transport':<12} {'rebuffering':>12} {'macroblock/30min':>18} {'frames':>8}")
    for scheme in ("rtp+udp", "tcp-cubic", "tcp-bbr", "tcp-tack"):
        r = run(scheme)
        print(f"{scheme:<12} {r['rebuffering']:>11.1%} "
              f"{r['macroblocking']:>18.1f} {r['frames']:>8d}")
    print("\nPaper Fig. 11: RTP+UDP rebuffers 0% but macroblocks 5-6x/30min;"
          "\nlegacy TCP rebuffers 30-90%; TCP-TACK rebuffers 3-10% with zero"
          "\nmacroblocking.")


if __name__ == "__main__":
    main()
