#!/usr/bin/env python3
"""Quickstart: TCP-TACK vs TCP-BBR over one 802.11n WLAN hop.

Builds the paper's basic experiment in ~20 lines: a bulk flow from a
wired sender through an access point to a Wi-Fi client, once with
legacy delayed ACKs + BBR and once with TACK.  Prints goodput and the
number of acknowledgments each scheme needed.

Run:  python examples/quickstart.py
"""

from repro.app.bulk import BulkFlow
from repro.netsim.engine import Simulator
from repro.netsim.paths import wlan_path

DURATION_S = 6.0
WARMUP_S = 2.0
RTT_S = 0.08  # end-to-end latency between the endpoints


def run_scheme(scheme: str) -> dict:
    sim = Simulator(seed=1)
    path = wlan_path(sim, "802.11n", extra_rtt_s=RTT_S)
    flow = BulkFlow(sim, path, scheme, initial_rtt_s=RTT_S)
    flow.start()
    sim.run(until=DURATION_S)
    return {
        "goodput_mbps": flow.goodput_bps(start=WARMUP_S) / 1e6,
        "acks": flow.ack_count(),
        "data_packets": flow.data_packet_count(),
        "collision_rate": path.medium.collision_rate(),
    }


def main() -> None:
    print(f"Bulk flow over 802.11n, RTT {RTT_S * 1e3:.0f} ms, "
          f"{DURATION_S - WARMUP_S:.0f} s steady state\n")
    results = {scheme: run_scheme(scheme) for scheme in ("tcp-bbr", "tcp-tack")}
    print(f"{'scheme':<10} {'goodput':>12} {'ACKs':>8} {'ACKs/data':>10} {'collisions':>11}")
    for scheme, r in results.items():
        print(
            f"{scheme:<10} {r['goodput_mbps']:>9.1f} Mbps {r['acks']:>8d} "
            f"{r['acks'] / r['data_packets']:>9.1%} {r['collision_rate']:>10.1%}"
        )
    bbr, tack = results["tcp-bbr"], results["tcp-tack"]
    print(
        f"\nTACK reduced ACKs by "
        f"{1 - tack['acks'] / bbr['acks']:.1%} and improved goodput by "
        f"{tack['goodput_mbps'] / bbr['goodput_mbps'] - 1:.1%} "
        f"(paper: >90% fewer ACKs, ~28% more goodput)."
    )


if __name__ == "__main__":
    main()
