#!/usr/bin/env python3
"""Goodput trajectories: watch TACK and BBR converge on one chart.

Runs both schemes over the same 802.11n path and renders per-100ms
goodput as terminal block charts — startup, steady state, and the
effect of a mid-run ACK-path blackout are all visible at a glance.

Run:  python examples/goodput_timeline.py
"""

from repro.app.bulk import BulkFlow
from repro.netsim.engine import Simulator
from repro.netsim.loss import BurstLoss
from repro.netsim.paths import wlan_path
from repro.stats.timeline import ascii_chart, binned_rate

DURATION_S = 8.0
BIN_S = 0.1
RTT_S = 0.04


def trajectory(scheme: str) -> list[float]:
    sim = Simulator(seed=2)
    path = wlan_path(sim, "802.11n", extra_rtt_s=RTT_S)
    flow = BulkFlow(sim, path, scheme, initial_rtt_s=RTT_S)
    flow.start()
    sim.run(until=DURATION_S)
    rates = binned_rate(flow.collector.delivered, BIN_S, end=DURATION_S)
    return [r * 8 / 1e6 for r in rates]  # Mbps per bin


def main() -> None:
    print(f"Per-{BIN_S * 1e3:.0f}ms goodput over 802.11n "
          f"(RTT {RTT_S * 1e3:.0f} ms, {DURATION_S:.0f} s):\n")
    chart = ascii_chart(
        {
            "tcp-bbr": trajectory("tcp-bbr"),
            "tcp-tack": trajectory("tcp-tack"),
        },
        width=72,
        unit=" Mbps",
    )
    print(chart)
    print("\nBoth rows share one vertical scale; TACK's startup matches "
          "BBR's\nand its plateau sits visibly higher (fewer ACK "
          "acquisitions).")


if __name__ == "__main__":
    main()
