#!/usr/bin/env python3
"""Crowded access point: N clients, one collision domain.

The paper motivates TACK with busy WLANs — every legacy client feeds
its own stream of TCP ACKs into the shared medium.  This example runs
N simultaneous downlink bulk flows through one 802.11n AP and compares
aggregate goodput and total ACK load for TCP BBR vs TCP-TACK.

Run:  python examples/crowded_ap.py [n_clients]
"""

import sys

from repro.core.flavors import make_connection
from repro.netsim.engine import Simulator
from repro.netsim.paths import multi_client_wlan
from repro.stats.collector import FlowCollector

DURATION_S = 6.0
WARMUP_S = 2.0
RTT_S = 0.04


def run(scheme: str, n_clients: int) -> dict:
    sim = Simulator(seed=5)
    handles = multi_client_wlan(sim, n_clients, "802.11n", extra_rtt_s=RTT_S)
    flows = []
    for i, handle in enumerate(handles):
        conn = make_connection(sim, scheme, flow_id=i, initial_rtt_s=RTT_S)
        conn.wire(handle.forward, handle.reverse)
        flows.append((conn, FlowCollector(sim, conn)))
        conn.start_bulk()
    sim.run(until=DURATION_S)
    return {
        "total_mbps": sum(c.goodput_bps(start=WARMUP_S) for _, c in flows) / 1e6,
        "per_client": [c.goodput_bps(start=WARMUP_S) / 1e6 for _, c in flows],
        "acks": sum(conn.ack_count() for conn, _ in flows),
        "collisions": handles[0].medium.collision_rate(),
    }


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    print(f"{n} clients on one 802.11n AP, {DURATION_S - WARMUP_S:.0f} s steady state\n")
    print(f"{'scheme':<10} {'aggregate':>12} {'per-client range':>20} "
          f"{'total ACKs':>11} {'collisions':>11}")
    for scheme in ("tcp-bbr", "tcp-tack"):
        r = run(scheme, n)
        lo, hi = min(r["per_client"]), max(r["per_client"])
        print(f"{scheme:<10} {r['total_mbps']:>9.1f} Mbps "
              f"{f'{lo:.1f}-{hi:.1f} Mbps':>20} {r['acks']:>11d} "
              f"{r['collisions']:>10.1%}")


if __name__ == "__main__":
    main()
