#!/usr/bin/env python3
"""Hybrid WLAN + WAN path (paper S6.5, Fig. 12/13).

A wireless client talks to a remote server: WLAN last hop behind an
access point, then a wired WAN with configurable rate, RTT, and
bidirectional loss.  Reproduces one row of Fig. 13 interactively.

Run:  python examples/hybrid_wlan_wan.py
"""

from repro.app.bulk import BulkFlow
from repro.netsim.engine import Simulator
from repro.netsim.paths import hybrid_path

CASES = [
    # (phy, wan_rate, wan_rtt, data_loss, ack_loss)   -- paper Fig. 13
    ("802.11g", 100e6, 0.02, 0.0, 0.0),
    ("802.11g", 100e6, 0.02, 0.01, 0.01),
    ("802.11n", 500e6, 0.20, 0.0, 0.0),
    ("802.11n", 500e6, 0.20, 0.01, 0.01),
]
DURATION_S = 10.0
WARMUP_S = 3.0


def run(scheme: str, case) -> dict:
    phy, rate, rtt, dl, al = case
    sim = Simulator(seed=11)
    path = hybrid_path(sim, phy, wan_rate_bps=rate, wan_rtt_s=rtt,
                       data_loss=dl, ack_loss=al)
    flow = BulkFlow(sim, path, scheme, initial_rtt_s=rtt + 0.005)
    flow.start()
    sim.run(until=DURATION_S)
    return {
        "goodput_mbps": flow.goodput_bps(start=WARMUP_S) / 1e6,
        "data_pkts": flow.data_packet_count(),
        "acks": flow.ack_count(),
    }


def main() -> None:
    print("Hybrid WLAN+WAN bulk transfer (paper Fig. 13 topology)\n")
    print(f"{'case':<40} {'scheme':<10} {'goodput':>10} {'data pkts':>10} {'ACKs':>8}")
    for i, case in enumerate(CASES, start=1):
        phy, rate, rtt, dl, al = case
        label = (f"{i}: {phy}, WAN {rate/1e6:.0f}Mbps/{rtt*1e3:.0f}ms, "
                 f"loss ({dl:.0%},{al:.0%})")
        for scheme in ("tcp-bbr", "tcp-tack"):
            r = run(scheme, case)
            print(f"{label:<40} {scheme:<10} {r['goodput_mbps']:>7.1f} Mbps "
                  f"{r['data_pkts']:>10d} {r['acks']:>8d}")
            label = ""
    print("\nPaper Fig. 13: TCP-TACK beats TCP BBR in all four cases while"
          "\nsending 1-2 orders of magnitude fewer ACKs.")


if __name__ == "__main__":
    main()
