#!/usr/bin/env python3
"""WAN bulk transfer with bidirectional loss (paper S6.6 / Fig. 5(b)).

Runs a long flow across an emulated 200 ms WAN path with loss on both
the data and ACK directions, and shows why TACK's rich block lists
matter: TACK-poor (Q=1) and legacy SACK-limited TCP degrade as the ACK
path loses feedback, while TACK-rich barely notices.

Run:  python examples/wan_bulk_transfer.py
"""

from repro.app.bulk import BulkFlow
from repro.netsim.engine import Simulator
from repro.netsim.paths import wired_path

RATE_BPS = 20e6
RTT_S = 0.2
DATA_LOSS = 0.01
DURATION_S = 20.0
WARMUP_S = 5.0


def run(scheme: str, ack_loss: float) -> float:
    sim = Simulator(seed=7)
    path = wired_path(
        sim, RATE_BPS, RTT_S,
        queue_bytes=int(RATE_BPS * RTT_S / 8),
        data_loss=DATA_LOSS, ack_loss=ack_loss,
    )
    flow = BulkFlow(sim, path, scheme, initial_rtt_s=RTT_S)
    flow.start()
    sim.run(until=DURATION_S)
    return flow.goodput_bps(start=WARMUP_S) / RATE_BPS


def main() -> None:
    print(f"Bulk flow, {RATE_BPS/1e6:.0f} Mbps / {RTT_S*1e3:.0f} ms WAN, "
          f"{DATA_LOSS:.0%} data loss, varying ACK loss\n")
    ack_losses = (0.002, 0.01, 0.05, 0.10)
    schemes = ("tcp-tack", "tcp-tack-poor", "tcp-bbr")
    header = "".join(f"{f'{al:.1%} ackloss':>14}" for al in ack_losses)
    print(f"{'scheme':<14}{header}")
    for scheme in schemes:
        cells = "".join(f"{run(scheme, al):>13.1%} " for al in ack_losses)
        print(f"{scheme:<14}{cells}")
    print("\nPaper Fig. 5(b): TACK-rich holds ~91-93% utilization even at"
          "\n10% ACK loss; TACK-poor falls to ~61%; TCP BBR to ~65%.")


if __name__ == "__main__":
    main()
