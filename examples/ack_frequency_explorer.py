#!/usr/bin/env python3
"""ACK-frequency explorer: the closed-form models of paper S4 / App. B.

Prints the ACK frequency of every acknowledgment flavor across
bandwidth and RTT sweeps — a textual rendering of Figures 8 and 17 —
and the pivot points where TACK switches between its byte-counting and
periodic regimes.

Run:  python examples/ack_frequency_explorer.py
"""

from repro.analysis.ack_frequency import (
    byte_counting_frequency,
    delayed_ack_frequency,
    per_packet_frequency,
    pivot_bandwidth_bps,
    pivot_rtt_s,
    tack_frequency,
)

PHY_BASELINES = {
    "802.11b": 7e6,
    "802.11g": 26e6,
    "802.11n": 210e6,
    "802.11ac": 590e6,
}


def fig8_table() -> None:
    print("Fig. 8(b): ACK frequency (Hz) by standard and RTT_min")
    print(f"{'link':<10} {'TCP(L=2)':>10}" +
          "".join(f"{f'TACK@{int(r*1e3)}ms':>12}" for r in (0.01, 0.08, 0.2)))
    for name, bw in PHY_BASELINES.items():
        tcp = byte_counting_frequency(bw, 2)
        cells = "".join(
            f"{tack_frequency(bw, rtt):>12.0f}" for rtt in (0.01, 0.08, 0.2)
        )
        print(f"{name:<10} {tcp:>10.0f}{cells}")


def fig17_sweep() -> None:
    print("\nFig. 17(a): frequency vs bandwidth (RTT_min = 80 ms)")
    print(f"{'bw (Mbps)':>10} {'per-pkt':>10} {'delayed':>10} {'TACK':>10}")
    for bw_mbps in (1, 5, 10, 50, 100, 500, 1000):
        bw = bw_mbps * 1e6
        print(f"{bw_mbps:>10} {per_packet_frequency(bw):>10.0f} "
              f"{delayed_ack_frequency(bw):>10.0f} "
              f"{tack_frequency(bw, 0.08):>10.1f}")
    pivot = pivot_bandwidth_bps(0.08) / 1e6
    print(f"pivot point: TACK turns periodic above {pivot:.1f} Mbps")

    print("\nFig. 17(b): frequency vs RTT_min (bw = 100 Mbps)")
    print(f"{'RTT (ms)':>10} {'per-pkt':>10} {'delayed':>10} {'TACK':>10}")
    for rtt_ms in (0.1, 1, 5, 10, 20, 50, 100):
        rtt = rtt_ms / 1e3
        bw = 100e6
        print(f"{rtt_ms:>10} {per_packet_frequency(bw):>10.0f} "
              f"{delayed_ack_frequency(bw):>10.0f} "
              f"{tack_frequency(bw, rtt):>10.0f}")
    print(f"pivot point: TACK turns periodic above "
          f"{pivot_rtt_s(100e6) * 1e3:.2f} ms RTT")


if __name__ == "__main__":
    fig8_table()
    fig17_sweep()
