"""repro.telemetry.binlog: preallocated binary trace sinks.

The binary plane exists so tracing can stay *on* in fleet-scale runs:
struct-packed fixed-width records with string interning instead of
per-event JSON.  Convert to ordinary schema-v1 JSONL offline::

    python -m repro.telemetry convert run.rtb run.jsonl

The conversion is byte-for-byte faithful (digest-equal to what a live
``JsonlSink`` would have written for the same event stream), so every
existing JSONL consumer works unchanged on converted traces.

``ALWAYS_ON_SAMPLING`` is the deterministic per-category sampling
profile that defines "always-on mode": a flight recorder, not an
analysis trace.  The per-packet firehose categories keep sparse
counter-based 1-in-N spans, the per-feedback categories (ack / cc)
denser ones, and the rare categories (chaos) everything — chosen so
the whole mode stays under the enforced <10% overhead budget of
``bench_telemetry_overhead``.  Because sampling lives in the
collector (not the sink), a JSONL and a binary trace of the same
seeded run keep the *same* events.
"""

from repro.telemetry.binlog.convert import (
    convert_binary_trace,
    iter_binary_trace,
    read_binary_trace,
)
from repro.telemetry.binlog.format import (
    BIN_VERSION,
    DEFAULT_MAX_INTERNED,
    MAGIC,
    BinaryFormatError,
    StringTable,
    is_binary_preamble,
)
from repro.telemetry.binlog.sinks import BinaryFileSink, BinaryRingSink
from repro.telemetry.collector import TraceCollector

#: Deterministic sampled-span profile for always-on binary tracing:
#: keep 1 in N per category, counter-based (no RNG), so the kept-event
#: set is a pure function of the run.  Strides are budgeted from the
#: measured per-event cost (~4-5us kwargs+event+encode) against the
#: <10% overhead gate; unlisted categories (e.g. ``chaos``) keep
#: everything.
ALWAYS_ON_SAMPLING = {
    "netsim": 64,
    "transport": 32,
    "ack": 4,
    "cc": 4,
    "timing": 2,
}


def always_on_collector(sink=None, capacity_bytes: int = 1 << 18,
                        **kwargs) -> TraceCollector:
    """A :class:`TraceCollector` configured for always-on tracing:
    a :class:`BinaryRingSink` (unless *sink* is given) plus the
    :data:`ALWAYS_ON_SAMPLING` spans.  The default ring is 256 KiB —
    a deliberately small cache footprint, sized to hold the last few
    simulated seconds of sampled spans."""
    if sink is None:
        sink = BinaryRingSink(capacity_bytes=capacity_bytes)
    return TraceCollector(sink=sink, sampling=ALWAYS_ON_SAMPLING, **kwargs)


__all__ = [
    "ALWAYS_ON_SAMPLING",
    "BIN_VERSION",
    "BinaryFileSink",
    "BinaryFormatError",
    "BinaryRingSink",
    "DEFAULT_MAX_INTERNED",
    "MAGIC",
    "StringTable",
    "always_on_collector",
    "convert_binary_trace",
    "is_binary_preamble",
    "iter_binary_trace",
    "read_binary_trace",
]
