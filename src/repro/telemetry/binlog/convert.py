"""Offline binary → schema-v1 JSONL trace conversion.

``convert_binary_trace`` replays a binary trace through the ordinary
:class:`~repro.telemetry.sinks.JsonlSink` — literally the same digest
machinery the live writer uses — so the output file is byte-for-byte
identical (digest-equal) to what a ``JsonlSink`` would have written
for the same event stream.  That invariant is what lets the existing
``summarize``/``filter``/``diff`` CLI, ``MetricsRegistry``, and the
fig08 acceptance test run unchanged on converted traces.

Host-side module: it owns file I/O for the CLI ``convert`` subcommand
(registered in ``telemetry-host-files`` for reprolint).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.telemetry.binlog.format import (
    BinaryFormatError,
    StringTable,
    _Cursor,
    decode_header_line,
    decode_preamble,
    decode_record,
    format_header_line,
)
from repro.telemetry.events import SCHEMA_NAME, SCHEMA_VERSION, TraceEvent
from repro.telemetry.sinks import JsonlSink

#: Decoder-side interning bound: must only exceed the largest id the
#: writer assigned, and writer tables are bounded, so "very large".
_DECODE_MAX_INTERNED = 1 << 31


def _parse_binary_header(raw: bytes) -> Tuple[Optional[Dict[str, Any]], bytes]:
    """Validate the embedded schema-v1 header line; return (meta, line)."""
    try:
        obj = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise BinaryFormatError(f"embedded header is not JSON: {exc}") from exc
    if not isinstance(obj, dict) or obj.get("schema") != SCHEMA_NAME:
        raise BinaryFormatError("embedded header missing schema marker")
    if obj.get("version") != SCHEMA_VERSION:
        raise BinaryFormatError(
            f"embedded header has schema version {obj.get('version')!r}, "
            f"expected {SCHEMA_VERSION}")
    meta = obj.get("meta")
    reencoded = format_header_line(meta).encode("utf-8")
    if reencoded != raw:
        raise BinaryFormatError(
            "embedded header does not re-serialize canonically; "
            "cannot guarantee byte-identical conversion")
    return meta, raw


def iter_binary_trace(
    path: str, require_trailer: bool = True,
) -> Iterator[Tuple[str, Any]]:
    """Yield ``("meta", meta_or_None)`` then ``("event", TraceEvent)``
    per event, decoding and verifying *path* as it goes.

    Raises :class:`BinaryFormatError` on malformed input — including a
    missing or wrong digest trailer (truncated / corrupted file),
    unless ``require_trailer`` is False (best-effort salvage of a
    crashed writer's output: yields the events that survived).
    """
    with open(path, "rb") as fh:
        data = fh.read()
    cur = _Cursor(data)
    decode_preamble(cur)
    meta, _header = _parse_binary_header(decode_header_line(cur))
    yield ("meta", meta)
    table = StringTable(max_interned=_DECODE_MAX_INTERNED)
    saw_end = False
    while not cur.done():
        record_start = cur.pos
        try:
            decoded = decode_record(cur, table)
        except BinaryFormatError:
            if require_trailer:
                raise
            break  # salvage: partial trailing record (writer crashed mid-write)
        if decoded is None:
            continue
        kind, payload = decoded
        if kind == "event":
            yield ("event", payload)
        elif kind == "json":
            try:
                obj = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as exc:
                raise BinaryFormatError(
                    f"bad JSON fallback record at byte {record_start}: {exc}"
                ) from exc
            yield ("event", TraceEvent.from_dict(obj))
        elif kind == "end":
            expect = hashlib.sha256(data[:record_start]).digest()
            if payload != expect:
                raise BinaryFormatError(
                    "digest trailer mismatch: file bytes were altered "
                    "after writing")
            if not cur.done():
                raise BinaryFormatError(
                    f"{len(data) - cur.pos} trailing bytes after the "
                    "digest trailer")
            saw_end = True
    if require_trailer and not saw_end:
        raise BinaryFormatError(
            "missing digest trailer: the file is truncated "
            "(writer crashed before close?)")


def read_binary_trace(
    path: str, require_trailer: bool = True,
) -> Tuple[Optional[Dict[str, Any]], List[TraceEvent]]:
    """Decode a whole binary trace into ``(meta, events)``."""
    meta: Optional[Dict[str, Any]] = None
    events: List[TraceEvent] = []
    for kind, payload in iter_binary_trace(path, require_trailer):
        if kind == "meta":
            meta = payload
        else:
            events.append(payload)
    return meta, events


def convert_binary_trace(
    in_path: str, out_path: str, require_trailer: bool = True,
) -> Dict[str, Any]:
    """Convert a binary trace at *in_path* to schema-v1 JSONL.

    Returns ``{"events": n, "digest": sha256hex, "out": out_path}``
    where ``digest`` is the JSONL file's digest — equal to what a live
    :class:`JsonlSink` would have reported for the same run.
    """
    sink: Optional[JsonlSink] = None
    try:
        for kind, payload in iter_binary_trace(in_path, require_trailer):
            if kind == "meta":
                sink = JsonlSink(out_path, meta=payload)
            else:
                assert sink is not None
                sink.append(payload)
        assert sink is not None  # iter always yields meta first
        return {"events": sink.events_written, "digest": sink.digest(),
                "out": out_path}
    finally:
        if sink is not None:
            sink.close()
