"""Binary event sinks: the always-on hot-path counterparts of
:class:`~repro.telemetry.sinks.MemorySink` / ``JsonlSink``.

* :class:`BinaryRingSink` — a **preallocated** circular byte buffer of
  struct-packed records.  Bounded by ``capacity_bytes`` (and
  optionally ``max_events``): when space runs out the *oldest whole
  records* are evicted first, mirroring ``MemorySink``'s ring-bound
  semantics — ``appended`` counts every event ever offered,
  ``evicted == appended - len(sink)``, and ``events()`` returns the
  retained tail in order.  Manifest/runner code written against the
  ``appended``/``evicted``/``events()`` surface is therefore
  sink-agnostic.
* :class:`BinaryFileSink` — streaming binary writer with the schema
  header embedded verbatim, a running SHA-256 digest, a digest
  trailer record, and fsync-on-close.  Convert the file to schema-v1
  JSONL with ``python -m repro.telemetry convert``.

Both sinks degrade gracefully: an event whose fields are not JSON
scalars (or that arrives after the interning table filled up) is
stored as a compact-JSON fallback record, never dropped.

No wall clock and no RNG anywhere here: timestamps arrive stamped on
the events, and record layout is a pure function of the event stream.
"""

from __future__ import annotations

import collections
import hashlib
import os
from typing import Any, Dict, List, Optional

from repro.telemetry.binlog.format import (
    DEFAULT_MAX_INTERNED,
    StringTable,
    _Cursor,
    decode_record,
    encode_end,
    encode_event,
    encode_event_into,
    encode_event_json,
    encode_header,
    encoded_size,
)
from repro.telemetry.events import TraceEvent
from repro.telemetry.sinks import TraceSink


class BinaryRingSink(TraceSink):
    """Bounded in-memory ring of struct-packed event records.

    The buffer is allocated once up front (``capacity_bytes``); the
    steady-state append path packs into it without growing any
    container, which is what makes always-on tracing affordable at
    fleet scale.  The interning table lives outside the ring and is
    never evicted — it is bounded by ``max_interned`` distinct
    strings, after which events fall back to JSON records.
    """

    def __init__(self, capacity_bytes: int = 1 << 20,
                 max_events: Optional[int] = None,
                 max_interned: int = DEFAULT_MAX_INTERNED):
        if capacity_bytes < 64:
            raise ValueError(
                f"capacity_bytes must be >= 64, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.max_events = max_events
        self._buf = bytearray(capacity_bytes)
        self._head = 0            # offset of the oldest retained byte
        self._used = 0            # bytes currently retained
        self._lens: collections.deque[int] = collections.deque()
        self._table = StringTable(max_interned=max_interned)
        self._scratch = bytearray(4096)
        self.appended = 0
        self.fallback_events = 0

    # ------------------------------------------------------------------
    def append(self, event: TraceEvent) -> None:
        table = self._table
        record = self._scratch
        need = encoded_size(event)
        if need > len(record):
            record = self._scratch = bytearray(need)
        n = encode_event_into(event, table, record, 0)
        if n is None:
            record = encode_event_json(event)
            self.fallback_events += 1
            n = len(record)
        if table._pending:            # table is in-process; no defs stored
            table._pending.clear()
        cap = self.capacity_bytes
        if n > cap:
            raise ValueError(
                f"record of {n} bytes exceeds ring capacity {cap}")
        used = self._used
        lens = self._lens
        max_events = self.max_events
        if (cap - used < n
                or (max_events is not None and len(lens) >= max_events)):
            while (cap - used < n
                   or (max_events is not None and len(lens) >= max_events)):
                dropped = lens.popleft()
                self._head = (self._head + dropped) % cap
                used -= dropped
        tail = self._head + used
        if tail >= cap:
            tail -= cap
        if tail + n <= cap:
            self._buf[tail:tail + n] = record[:n]
        else:
            first = cap - tail
            self._buf[tail:] = record[:first]
            self._buf[:n - first] = record[first:n]
        self._used = used + n
        lens.append(n)
        self.appended += 1

    # ------------------------------------------------------------------
    @property
    def evicted(self) -> int:
        """Events pushed out of the ring by the capacity bound (same
        contract as :attr:`MemorySink.evicted`)."""
        return self.appended - len(self._lens)

    @property
    def used_bytes(self) -> int:
        """Record bytes currently retained in the ring."""
        return self._used

    def __len__(self) -> int:
        return len(self._lens)

    def clear(self) -> None:
        """Drop retained records (counters and interning table keep
        their history, as ``MemorySink.clear`` keeps ``appended``)."""
        self._head = (self._head + self._used) % self.capacity_bytes
        self._used = 0
        self._lens.clear()

    # ------------------------------------------------------------------
    def events(self) -> List[TraceEvent]:
        """Decode the retained tail of the event stream, oldest first."""
        if self._used == 0:
            return []
        head, cap = self._head, self.capacity_bytes
        if head + self._used <= cap:
            raw = bytes(self._buf[head:head + self._used])
        else:
            raw = bytes(self._buf[head:]) + bytes(
                self._buf[:(head + self._used) - cap])
        cur = _Cursor(raw)
        out: List[TraceEvent] = []
        while not cur.done():
            decoded = decode_record(cur, self._table)
            if decoded is None:
                continue
            kind, payload = decoded
            if kind == "event":
                out.append(payload)
            elif kind == "json":
                import json
                out.append(TraceEvent.from_dict(
                    json.loads(payload.decode("utf-8"))))
        return out

    def __repr__(self) -> str:
        return (f"BinaryRingSink(events={len(self)}, "
                f"bytes={self._used}/{self.capacity_bytes}, "
                f"appended={self.appended}, evicted={self.evicted})")


class BinaryFileSink(TraceSink):
    """Streaming binary trace writer.

    The file begins with the magic preamble and the *verbatim*
    schema-v1 JSONL header line, so the offline converter reproduces
    a live ``JsonlSink`` file byte-for-byte.  ``digest()`` is the
    SHA-256 of every byte written so far (equal to the digest of the
    file once closed, same contract as ``JsonlSink``); closing also
    writes an ``RT_END`` trailer carrying the digest of the preceding
    bytes — a reader that does not find the trailer knows the file
    was truncated — and fsyncs before closing the descriptor.
    """

    def __init__(self, path: str, meta: Optional[Dict[str, Any]] = None,
                 max_interned: int = DEFAULT_MAX_INTERNED):
        self.path = path
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._fh = open(path, "wb")
        self._hash = hashlib.sha256()
        self._table = StringTable(max_interned=max_interned)
        self.events_written = 0
        self.fallback_events = 0
        prefix, self.header_line = encode_header(meta)
        self._write(prefix)

    def _write(self, raw: bytes) -> None:
        self._fh.write(raw)
        self._hash.update(raw)

    def append(self, event: TraceEvent) -> None:
        if self._fh is None:
            raise ValueError(f"BinaryFileSink({self.path!r}) is closed")
        record = encode_event(event, self._table)
        if record is None:
            record = encode_event_json(event)
            self.fallback_events += 1
        pending = self._table.take_pending()
        if pending:
            self._write(pending)
        self._write(record)
        self.events_written += 1

    def digest(self) -> str:
        """SHA-256 hex digest of the bytes written so far."""
        return self._hash.hexdigest()

    def close(self) -> None:
        if self._fh is None:
            return
        self._write(encode_end(self._hash.digest()))
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        self._fh = None

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
