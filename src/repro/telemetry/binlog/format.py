"""Binary trace wire format (struct-packed schema-v1 carrier).

A binary trace carries exactly the information of a schema-v1 JSONL
trace (:mod:`repro.telemetry.events`) in a form that is cheap to
append on the simulation hot path: fixed-width little-endian records,
with every repeated string (category, name, field key, string field
value) *interned* once into a string table.  The offline converter
(:mod:`repro.telemetry.binlog.convert`) replays a binary trace
through the ordinary :class:`~repro.telemetry.sinks.JsonlSink`, so
the JSONL it produces — and therefore its SHA-256 digest — is
byte-for-byte identical to what a live ``JsonlSink`` would have
written for the same event stream.

File layout::

    MAGIC (8 bytes)  BIN_VERSION (u16)
    u32 len, <len> bytes     # the schema-v1 JSONL header line, verbatim
    record*                  # see below
    RT_END sha256            # digest trailer written on close

Record types (first byte):

``RT_STRING``
    ``u32 id, u32 len, <len> utf-8 bytes`` — interning-table entry.
    Ids are assigned densely from 0 in first-seen order; a definition
    always precedes the first record that references it.
``RT_EVENT``
    ``f64 t, i32 flow, u32 cat_id, u32 name_id, u16 nfields`` then
    ``nfields`` fixed 13-byte entries ``u32 key_id, u8 tag, 8 value
    bytes``.  Value encoding by tag: none/false/true carry zero
    bytes, ``TAG_INT`` an i64, ``TAG_FLOAT`` an f64 (bit-exact, so
    ``repr`` round-trips), ``TAG_STR`` a u64 string-table id.
``RT_EVENT_JSON``
    ``u32 len, <len> bytes`` — one event as its compact JSON line
    (without newline).  Fallback used when a field value is not a
    JSON scalar (list, dict, out-of-i64-range int) or when the
    interning table hit its ``max_interned`` bound; the converter
    passes the stored line through unchanged.
``RT_END``
    32-byte SHA-256 of every file byte before this record.  Its
    absence means the file was truncated (e.g. a crashed writer).

Everything here is simulation-side code: no wall clock, no RNG.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.events import TraceEvent, format_header_line

__all__ = [
    "MAGIC", "BIN_VERSION", "DEFAULT_MAX_INTERNED", "BinaryFormatError",
    "StringTable", "format_header_line", "event_json_line",
    "encoded_size", "encode_event", "encode_event_into",
    "encode_event_json", "encode_preamble",
    "encode_header", "encode_end", "is_binary_preamble",
    "decode_preamble", "decode_header_line", "decode_record",
]

#: File magic: binary-sniffable (high bit set) with CR/LF/EOF canaries
#: so text-mode mangling is detected immediately, PNG-style.
MAGIC = b"\x93RTB\r\n\x1a\n"

#: Version of the binary container (independent of the JSONL schema
#: version it carries, which is stamped in the embedded header line).
BIN_VERSION = 1

#: Interning-table bound: one definition per *distinct* string, so
#: real traces use a few dozen entries; the bound only exists so a
#: pathological high-cardinality field degrades to JSON-fallback
#: records instead of growing the table without limit.
DEFAULT_MAX_INTERNED = 1 << 16

RT_STRING = 0x01
RT_EVENT = 0x02
RT_EVENT_JSON = 0x03
RT_END = 0x7F

TAG_NONE = 0
TAG_FALSE = 1
TAG_TRUE = 2
TAG_INT = 3
TAG_FLOAT = 4
TAG_STR = 5

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1

_PREAMBLE = struct.Struct("<8sH")
_U32 = struct.Struct("<I")
_STRING_HEAD = struct.Struct("<BII")
_EVENT_HEAD = struct.Struct("<BdiIIH")
_FIELD_PAD = struct.Struct("<IBQ")    # none/false/true (value ignored)
_FIELD_INT = struct.Struct("<IBq")
_FIELD_FLOAT = struct.Struct("<IBd")
_FIELD_STR = struct.Struct("<IBQ")
_END = struct.Struct("<B32s")


class BinaryFormatError(ValueError):
    """The bytes are not a valid repro-telemetry binary trace."""


def event_json_line(event: TraceEvent) -> str:
    """One event's compact JSON line (no newline) — the exact bytes
    :class:`JsonlSink` would write for it, minus the terminator."""
    return json.dumps(event.to_dict(), separators=(",", ":"))


class StringTable:
    """First-seen-order string interning with a hard entry bound.

    :meth:`intern` returns the string's dense id, recording a pending
    ``RT_STRING`` definition on first sight; ``None`` means the table
    is full and the caller must fall back to a JSON record.  File
    sinks drain definitions with :meth:`take_pending` before writing
    the record that references them; ring sinks decode in-process via
    :meth:`lookup` and never serialize the table.
    """

    __slots__ = ("max_interned", "_ids", "_by_id", "_pending")

    def __init__(self, max_interned: int = DEFAULT_MAX_INTERNED):
        if max_interned < 1:
            raise ValueError(f"max_interned must be >= 1, got {max_interned}")
        self.max_interned = max_interned
        self._ids: Dict[str, int] = {}
        self._by_id: List[str] = []
        self._pending: List[bytes] = []

    def intern(self, s: str) -> Optional[int]:
        sid = self._ids.get(s)
        if sid is not None:
            return sid
        if len(self._by_id) >= self.max_interned:
            return None
        sid = len(self._by_id)
        self._ids[s] = sid
        self._by_id.append(s)
        raw = s.encode("utf-8")
        self._pending.append(
            _STRING_HEAD.pack(RT_STRING, sid, len(raw)) + raw)
        return sid

    def take_pending(self) -> bytes:
        """Serialized ``RT_STRING`` records interned since last call."""
        if not self._pending:
            return b""
        out = b"".join(self._pending)
        self._pending.clear()
        return out

    def lookup(self, sid: int) -> str:
        # A corrupt record can carry any u32 here; surface it as a
        # format error so truncation salvage (--allow-truncated) can
        # stop cleanly instead of dying on a bare IndexError.
        try:
            return self._by_id[sid]
        except IndexError:
            raise BinaryFormatError(
                f"unknown string id {sid} (table has {len(self._by_id)})"
            ) from None

    def __len__(self) -> int:
        return len(self._by_id)


def encoded_size(event: TraceEvent) -> int:
    """Upper bound (exact, in fact) on the ``RT_EVENT`` record size."""
    return _EVENT_HEAD.size + _FIELD_PAD.size * len(event.fields)


def encode_event_into(event: TraceEvent, table: StringTable,
                      buf: bytearray, pos: int = 0) -> Optional[int]:
    """Pack one ``RT_EVENT`` record into *buf* at *pos*.

    Returns the end offset, or ``None`` when the event needs the JSON
    fallback (non-scalar field value or interning overflow) — the
    buffer contents past *pos* are then undefined.  The caller must
    reserve :func:`encoded_size` bytes.  This is the hot-path encoder:
    no intermediate ``bytes`` objects, one ``pack_into`` per part.
    """
    # The fixed header packs t as f64 and flow as i32; anything else
    # (an int-typed timestamp would re-serialize as "0.0" not "0")
    # must take the JSON fallback to stay byte-identical on convert.
    if type(event.time) is not float or type(event.flow_id) is not int:
        return None
    if not -(1 << 31) <= event.flow_id <= (1 << 31) - 1:
        return None
    intern = table.intern
    cat_id = intern(event.category)
    name_id = intern(event.name)
    if cat_id is None or name_id is None:
        return None
    fields = event.fields
    _EVENT_HEAD.pack_into(buf, pos, RT_EVENT, event.time, event.flow_id,
                          cat_id, name_id, len(fields))
    pos += _EVENT_HEAD.size
    for key, value in fields.items():
        key_id = intern(key)
        if key_id is None:
            return None
        # bool first: it is an int subclass.
        if value is None:
            _FIELD_PAD.pack_into(buf, pos, key_id, TAG_NONE, 0)
        elif value is True:
            _FIELD_PAD.pack_into(buf, pos, key_id, TAG_TRUE, 0)
        elif value is False:
            _FIELD_PAD.pack_into(buf, pos, key_id, TAG_FALSE, 0)
        elif type(value) is int:
            if not _I64_MIN <= value <= _I64_MAX:
                return None
            _FIELD_INT.pack_into(buf, pos, key_id, TAG_INT, value)
        elif type(value) is float:
            _FIELD_FLOAT.pack_into(buf, pos, key_id, TAG_FLOAT, value)
        elif type(value) is str:
            sid = intern(value)
            if sid is None:
                return None
            _FIELD_STR.pack_into(buf, pos, key_id, TAG_STR, sid)
        else:
            return None
        pos += _FIELD_PAD.size
    return pos


_SCRATCH = bytearray(4096)


def encode_event(event: TraceEvent, table: StringTable) -> Optional[bytes]:
    """One ``RT_EVENT`` record as bytes, or ``None`` when the event
    needs the JSON fallback (see :func:`encode_event_into`)."""
    need = encoded_size(event)
    buf = _SCRATCH if need <= len(_SCRATCH) else bytearray(need)
    end = encode_event_into(event, table, buf, 0)
    if end is None:
        return None
    return bytes(buf[:end])


def encode_event_json(event: TraceEvent) -> bytes:
    """One ``RT_EVENT_JSON`` fallback record."""
    raw = event_json_line(event).encode("utf-8")
    return struct.pack("<BI", RT_EVENT_JSON, len(raw)) + raw


def encode_preamble() -> bytes:
    return _PREAMBLE.pack(MAGIC, BIN_VERSION)


def encode_header(meta: Optional[Dict[str, Any]] = None) -> Tuple[bytes, bytes]:
    """``(preamble + length-prefixed header line, header line bytes)``."""
    line = format_header_line(meta).encode("utf-8")
    return encode_preamble() + _U32.pack(len(line)) + line, line


def encode_end(digest32: bytes) -> bytes:
    return _END.pack(RT_END, digest32)


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------

class _Cursor:
    """Bounds-checked reader over one in-memory buffer."""

    __slots__ = ("buf", "pos")

    def __init__(self, buf: bytes, pos: int = 0):
        self.buf = buf
        self.pos = pos

    def take(self, n: int, what: str) -> bytes:
        end = self.pos + n
        if end > len(self.buf):
            raise BinaryFormatError(
                f"truncated {what} at byte {self.pos} "
                f"(need {n}, have {len(self.buf) - self.pos})")
        out = self.buf[self.pos:end]
        self.pos = end
        return out

    def done(self) -> bool:
        return self.pos >= len(self.buf)


def is_binary_preamble(head: bytes) -> bool:
    """True when *head* starts with the binary-trace magic."""
    return head[:len(MAGIC)] == MAGIC


def decode_preamble(cur: _Cursor) -> int:
    magic, version = _PREAMBLE.unpack(cur.take(_PREAMBLE.size, "preamble"))
    if magic != MAGIC:
        raise BinaryFormatError("missing binary-trace magic")
    if version != BIN_VERSION:
        raise BinaryFormatError(
            f"unsupported binary-trace version {version} "
            f"(this reader handles {BIN_VERSION})")
    return version


def decode_header_line(cur: _Cursor) -> bytes:
    (n,) = _U32.unpack(cur.take(_U32.size, "header length"))
    return cur.take(n, "header line")


def decode_record(cur: _Cursor, table: StringTable):
    """Decode the record at the cursor.

    Returns ``("event", TraceEvent)``, ``("json", line_bytes)``,
    ``("end", digest32)``, or ``None`` for an interning record (the
    table is updated in place).
    """
    (rtype,) = cur.take(1, "record type")
    if rtype == RT_STRING:
        _, sid, n = _STRING_HEAD.unpack(
            bytes([rtype]) + cur.take(_STRING_HEAD.size - 1, "string record"))
        raw = cur.take(n, "string bytes")
        if sid != len(table):
            raise BinaryFormatError(
                f"out-of-order string id {sid} (expected {len(table)})")
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            # Same contract as lookup(): corrupt payload bytes are a
            # format error, not an uncaught codec exception.
            raise BinaryFormatError(f"undecodable string record: {exc}") \
                from None
        got = table.intern(text)
        if got != sid:
            raise BinaryFormatError(
                f"string id {sid} re-interned as {got}")
        table.take_pending()
        return None
    if rtype == RT_EVENT:
        _, t, flow, cat_id, name_id, nfields = _EVENT_HEAD.unpack(
            bytes([rtype]) + cur.take(_EVENT_HEAD.size - 1, "event record"))
        fields: Dict[str, Any] = {}
        for _ in range(nfields):
            entry = cur.take(_FIELD_PAD.size, "field entry")
            key_id, tag, _pad = _FIELD_PAD.unpack(entry)
            key = table.lookup(key_id)
            if tag == TAG_NONE:
                fields[key] = None
            elif tag == TAG_TRUE:
                fields[key] = True
            elif tag == TAG_FALSE:
                fields[key] = False
            elif tag == TAG_INT:
                fields[key] = _FIELD_INT.unpack(entry)[2]
            elif tag == TAG_FLOAT:
                fields[key] = _FIELD_FLOAT.unpack(entry)[2]
            elif tag == TAG_STR:
                fields[key] = table.lookup(_FIELD_STR.unpack(entry)[2])
            else:
                raise BinaryFormatError(f"unknown field tag {tag}")
        return ("event",
                TraceEvent(t, table.lookup(cat_id), table.lookup(name_id),
                           flow, fields))
    if rtype == RT_EVENT_JSON:
        (n,) = _U32.unpack(cur.take(_U32.size, "json record length"))
        return ("json", cur.take(n, "json record"))
    if rtype == RT_END:
        return ("end", cur.take(32, "digest trailer"))
    raise BinaryFormatError(f"unknown record type 0x{rtype:02x}")
