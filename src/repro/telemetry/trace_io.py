"""Reading and writing schema-v1 JSONL trace files."""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.telemetry.events import SCHEMA_NAME, TraceEvent
from repro.telemetry.sinks import JsonlSink


class TraceFormatError(ValueError):
    """The file is not a valid repro-telemetry trace."""


def _parse_header(line: str, path: str) -> Dict[str, Any]:
    try:
        header = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"{path}: header is not JSON: {exc}") from exc
    if not isinstance(header, dict) or header.get("schema") != SCHEMA_NAME:
        raise TraceFormatError(
            f"{path}: missing repro-telemetry header line")
    return header


def read_header(path: str) -> Dict[str, Any]:
    """Parse and validate just the header line of a trace file."""
    with open(path) as fh:
        first = fh.readline()
    if not first:
        raise TraceFormatError(f"{path}: empty file")
    return _parse_header(first, path)


def iter_events(path: str) -> Iterator[TraceEvent]:
    """Stream events from a trace file (header skipped/validated)."""
    with open(path) as fh:
        first = fh.readline()
        if not first:
            raise TraceFormatError(f"{path}: empty file")
        _parse_header(first, path)
        for lineno, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                yield TraceEvent.from_dict(json.loads(line))
            except (json.JSONDecodeError, KeyError) as exc:
                raise TraceFormatError(
                    f"{path}:{lineno}: bad event line: {exc}") from exc


def read_trace(path: str) -> Tuple[Dict[str, Any], List[TraceEvent]]:
    """Load a whole trace: ``(header, events)``."""
    return read_header(path), list(iter_events(path))


def write_trace(path: str, events: Sequence[TraceEvent],
                meta: Optional[Dict[str, Any]] = None) -> str:
    """Write *events* as a schema-v1 trace file; returns its digest."""
    sink = JsonlSink(path, meta=meta)
    try:
        for event in events:
            sink.append(event)
        return sink.digest()
    finally:
        sink.close()


def trace_digest(path: str) -> str:
    """SHA-256 hex digest of the trace file's bytes."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 16), b""):
            h.update(chunk)
    return h.hexdigest()
