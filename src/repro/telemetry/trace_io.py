"""Reading and writing schema-v1 JSONL trace files."""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.telemetry.events import SCHEMA_NAME, TraceEvent
from repro.telemetry.sinks import JsonlSink


class TraceFormatError(ValueError):
    """The file is not a valid repro-telemetry trace."""


def _check_readable_text(path: str) -> None:
    """Reject binary input up front with an actionable message.

    The JSONL readers must never dump a traceback on a binary trace:
    a file starting with the binlog magic gets a "run convert first"
    error, and any other non-UTF-8 junk a clear format error.
    """
    from repro.telemetry.binlog.format import is_binary_preamble

    with open(path, "rb") as fh:
        head = fh.read(64)
    if is_binary_preamble(head):
        raise TraceFormatError(
            f"{path}: this is a binary trace; run "
            f"`python -m repro.telemetry convert {path}` first, then "
            "point this command at the converted .jsonl file")
    try:
        head.decode("utf-8")
    except UnicodeDecodeError as exc:
        # A decode error within 4 bytes of the sample's end may just
        # be a multi-byte character split by the 64-byte sample; real
        # garbage fails earlier (or again in the line reader below).
        if exc.start < len(head) - 4:
            raise TraceFormatError(
                f"{path}: not a text trace (binary garbage at byte "
                f"{exc.start}); if this was meant to be a binary trace "
                "it is corrupt — otherwise run `python -m "
                "repro.telemetry convert` on the original") from exc


def _parse_header(line: str, path: str) -> Dict[str, Any]:
    try:
        header = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"{path}: header is not JSON: {exc}") from exc
    if not isinstance(header, dict) or header.get("schema") != SCHEMA_NAME:
        raise TraceFormatError(
            f"{path}: missing repro-telemetry header line")
    return header


def read_header(path: str) -> Dict[str, Any]:
    """Parse and validate just the header line of a trace file."""
    _check_readable_text(path)
    with open(path) as fh:
        try:
            first = fh.readline()
        except UnicodeDecodeError as exc:
            raise TraceFormatError(
                f"{path}: not a text trace ({exc})") from exc
    if not first:
        raise TraceFormatError(f"{path}: empty file")
    return _parse_header(first, path)


def iter_events(path: str) -> Iterator[TraceEvent]:
    """Stream events from a trace file (header skipped/validated)."""
    _check_readable_text(path)
    with open(path) as fh:
        try:
            first = fh.readline()
            if not first:
                raise TraceFormatError(f"{path}: empty file")
            _parse_header(first, path)
            for lineno, line in enumerate(fh, start=2):
                line = line.strip()
                if not line:
                    continue
                try:
                    yield TraceEvent.from_dict(json.loads(line))
                except (json.JSONDecodeError, KeyError) as exc:
                    raise TraceFormatError(
                        f"{path}:{lineno}: bad event line: {exc}") from exc
        except UnicodeDecodeError as exc:
            raise TraceFormatError(
                f"{path}: not a text trace ({exc})") from exc


def read_trace(path: str) -> Tuple[Dict[str, Any], List[TraceEvent]]:
    """Load a whole trace: ``(header, events)``."""
    return read_header(path), list(iter_events(path))


def write_trace(path: str, events: Sequence[TraceEvent],
                meta: Optional[Dict[str, Any]] = None) -> str:
    """Write *events* as a schema-v1 trace file; returns its digest."""
    sink = JsonlSink(path, meta=meta)
    try:
        for event in events:
            sink.append(event)
        return sink.digest()
    finally:
        sink.close()


def trace_digest(path: str) -> str:
    """SHA-256 hex digest of the trace file's bytes."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 16), b""):
            h.update(chunk)
    return h.hexdigest()
