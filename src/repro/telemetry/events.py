"""Typed trace events and the schema-v1 event taxonomy.

A :class:`TraceEvent` is one structured observation from inside a
running simulation: a category (which subsystem), a name (what
happened), the simulated time it happened at, the flow it belongs to,
and a flat dict of event-specific fields.  The design is qlog-inspired
(categories + named events + data dict) but stays deliberately small:
everything serializes to one compact JSON object per line.

Schema v1 wire format (JSONL)::

    {"schema": "repro-telemetry", "version": 1, "meta": {...}}   # header
    {"t": 0.04012, "cat": "ack", "name": "tack", "flow": 0,
     "data": {"reason": "periodic", "cum_ack": 96000, ...}}      # events

Categories (see DESIGN.md section 10 for the full event taxonomy):

``netsim``
    Link-level packet life cycle: ``enqueue``, ``drop`` (with a
    ``reason`` of ``loss``, ``queue``, ``blackout``, or ``corrupt``),
    ``tx_start``, ``delivered``, ``idle``, plus ``tap`` events
    forwarded by a telemetry-connected tap (see
    :func:`~repro.netsim.trace.make_tap`).
``transport``
    Endpoint events: ``send``/``retx`` (sender emission),
    ``recv``/``gap``/``deliver`` (receiver side), ``feedback``
    (processed acknowledgment), ``rto``.  The connection *lifecycle
    vocabulary* consumed by the flow doctor (:mod:`repro.diagnose`,
    DESIGN.md section 16) is the ten names ``open``, ``established``,
    ``limited`` (send-limit changes: ``limit`` of ``cwnd``/``pacing``/
    ``rwnd``/``app``), ``recovery`` (``mode`` of ``rto``/``pull``/
    ``none``), ``persist``, ``rto`` (carries the armed ``rto_s``),
    ``feedback`` (carries ``fb_seq``, the receiver's feedback sequence
    number, and ``rho_est``, its loss-rate estimate), ``complete``,
    ``abort``, and ``close`` — additions to this set must stay
    backward-decodable because live and offline diagnosis reports are
    required to be byte-identical.
``ack``
    One event per acknowledgment the receiver emits, named by packet
    kind (``tack``/``iack``/``ack``) and carrying the emission
    *reason*: ``periodic``, ``bytecount``, ``flush``, ``close``,
    ``loss``, ``zero_window``, ``window_open``.
``cc``
    Congestion control: ``update`` (cwnd/pacing after each feedback),
    ``state`` (BBR state transitions), ``bw_filter`` (windowed-max
    bandwidth estimate changes).
``timing``
    RTT machinery: ``rtt_sample`` (raw sample + srtt + rtt_min) and
    ``rttmin_sync`` (sender-to-receiver RTT_min resync on data
    packets, paper S5.2).
``chaos``
    Fault-injection plane (:mod:`repro.chaos`): ``fault_on`` /
    ``fault_off`` when a scheduled impairment window opens/closes;
    the ``ack`` category's ``degrade`` event marks TACK's graceful
    densification under heavy ACK-path loss, and ``transport`` gains
    ``abort`` when an endpoint gives up.
``guard``
    The sender's feedback guard (:mod:`repro.transport.guard`,
    DESIGN.md section 17): ``violation`` (first few per rule, with
    ``rule``/``count``/``detail``), ``watchdog_probe`` (ACK-withholding
    last resort), ``escalated`` (tolerate budget spent; the flow aborts
    ``misbehaving_peer``), and one ``summary`` at close carrying the
    final per-rule counters for the violations the rate limit muted.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

#: Version stamped into every trace-file header.
SCHEMA_VERSION = 1

#: Magic string identifying a trace file's header line.
SCHEMA_NAME = "repro-telemetry"


def format_header_line(meta: Optional[Dict[str, Any]] = None) -> str:
    """The schema-v1 JSONL header line (with trailing newline).

    Single source of truth shared by :class:`~repro.telemetry.sinks.
    JsonlSink` and the binary sinks/converter, so a converted binary
    trace reproduces the live JSONL header byte-for-byte.
    """
    header: Dict[str, Any] = {"schema": SCHEMA_NAME,
                              "version": SCHEMA_VERSION}
    if meta is not None:
        header["meta"] = meta
    return json.dumps(header, separators=(",", ":")) + "\n"

CAT_NETSIM = "netsim"
CAT_TRANSPORT = "transport"
CAT_ACK = "ack"
CAT_CC = "cc"
CAT_TIMING = "timing"
CAT_CHAOS = "chaos"
CAT_GUARD = "guard"

#: Every known category, in display order.
CATEGORIES = (CAT_NETSIM, CAT_TRANSPORT, CAT_ACK, CAT_CC, CAT_TIMING,
              CAT_CHAOS, CAT_GUARD)


class TraceEvent:
    """One structured observation at a simulated instant."""

    __slots__ = ("time", "category", "name", "flow_id", "fields")

    def __init__(self, time: float, category: str, name: str,
                 flow_id: int = 0, fields: Optional[Dict[str, Any]] = None):
        self.time = time
        self.category = category
        self.name = name
        self.flow_id = flow_id
        self.fields = fields if fields is not None else {}

    def to_dict(self) -> Dict[str, Any]:
        """Compact wire form (short keys keep JSONL traces small)."""
        return {
            "t": self.time,
            "cat": self.category,
            "name": self.name,
            "flow": self.flow_id,
            "data": self.fields,
        }

    @classmethod
    def from_dict(cls, obj: Dict[str, Any]) -> "TraceEvent":
        return cls(
            time=obj["t"],
            category=obj["cat"],
            name=obj["name"],
            flow_id=obj.get("flow", 0),
            fields=obj.get("data") or {},
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        # Exact float equality is intentional here: equality means
        # "the same serialized record", used by round-trip and
        # determinism tests, not clock arithmetic.
        return (self.time == other.time  # reprolint: disable=REP003
                and self.category == other.category
                and self.name == other.name
                and self.flow_id == other.flow_id
                and self.fields == other.fields)

    def __repr__(self) -> str:
        return (f"TraceEvent(t={self.time:.6f}, {self.category}/{self.name}, "
                f"flow={self.flow_id}, {self.fields})")
