"""The trace collector: opt-in event capture with near-zero off cost.

The collector follows the null-guard hook pattern simsan established:
instrumented components cache ``sim.telemetry`` at construction and
every hook site is guarded by ``if self._tel is not None``, so a
simulation without telemetry pays one attribute test per hook.  With
telemetry on, each hook calls :meth:`TraceCollector.emit`, which

1. drops the event if its category is filtered out,
2. applies deterministic per-category sampling (keep 1 in N, counted
   per category — no RNG involved, so a given run always keeps the
   same events),
3. stamps the current *simulated* time (the collector caches
   ``sim.clock.now`` at attach time; it never reads the wall clock),
4. appends the event to the sink and notifies live listeners (e.g. a
   :class:`~repro.telemetry.metrics.MetricsRegistry`).

Usage::

    collector = TraceCollector(sink=JsonlSink("run.jsonl"))
    sim = Simulator(seed=7, telemetry=collector)
    ... build endpoints, run ...
    collector.close()

Like the sanitizer, the collector must be attached *before* endpoints
and links are constructed — they cache the reference at build time.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.telemetry.events import TraceEvent
from repro.telemetry.sinks import MemorySink, TraceSink


class TraceCollector:
    """Routes instrumentation events to a sink.

    Parameters
    ----------
    sink:
        Where events go; defaults to an unbounded :class:`MemorySink`.
    categories:
        Iterable of category names to keep; ``None`` keeps everything.
    sampling:
        ``{category: N}`` — keep one event in every N for that
        category (N <= 1 keeps all).  Sampling is counter-based and
        therefore deterministic for a fixed simulation seed.
    """

    def __init__(
        self,
        sink: Optional[TraceSink] = None,
        categories: Optional[Iterable[str]] = None,
        sampling: Optional[Dict[str, int]] = None,
    ):
        self.sink = sink if sink is not None else MemorySink()
        self._categories = (frozenset(categories)
                            if categories is not None else None)
        self._sampling = dict(sampling) if sampling else {}
        # per-category [count, step] cells: one dict probe per gate
        # decision on the hot path instead of three.
        self._gate_state: Dict[str, List[int]] = {
            cat: [0, step] for cat, step in self._sampling.items()
            if step is not None and step > 1}
        self._now: Optional[Callable[[], float]] = None
        self._listeners: List[Callable[[TraceEvent], None]] = []
        self.events_emitted = 0
        self.events_dropped = 0

    # ------------------------------------------------------------------
    def attach(self, sim) -> "TraceCollector":
        """Bind to a simulator's virtual clock (timestamp source)."""
        self._now = sim.clock.now
        return self

    def wants(self, category: str) -> bool:
        """True when events of *category* would not be filtered out."""
        return self._categories is None or category in self._categories

    def sampling_stride(self, category: str) -> int:
        """Keep-1-in-N stride a hot site should apply *locally*.

        Returns 0 when the category is filtered out entirely (the
        site must not emit at all), 1 for full fidelity, or the
        configured stride.  Per-packet hook sites cache this at
        construction and run their own counter::

            self._tel_stride = (tel.sampling_stride("netsim")
                                if tel is not None else 0)
            self._tel_n = 0
            ...
            if tel is not None and self._tel_stride:
                n = self._tel_n + 1
                if n >= self._tel_stride:
                    self._tel_n = 0
                    tel.emit_kept("netsim", ...)
                else:
                    self._tel_n = n

        A dropped event then costs integer arithmetic on the
        component, not a collector call — the difference between the
        always-on ring fitting its <10% budget and not.  Site-local
        counters keep the same 1-in-N density as collector-side
        sampling and stay fully deterministic; they just phase the
        kept set per site instead of per category.
        """
        if self._categories is not None and category not in self._categories:
            return 0
        step = self._sampling.get(category)
        return step if step is not None and step > 1 else 1

    def add_listener(self, fn: Callable[[TraceEvent], None]) -> None:
        """Register a live consumer called for every kept event."""
        self._listeners.append(fn)

    # ------------------------------------------------------------------
    def gate(self, category: str) -> bool:
        """Keep/drop decision for the next *category* event.

        Advances the same deterministic sampling counters as
        :meth:`emit`, so ``gate() + emit_kept()`` keeps exactly the
        events a plain ``emit()`` would.  Hot hook sites pair the two
        so *dropped* events never pay for building their field dict::

            if tel is not None and tel.gate("netsim"):
                tel.emit_kept("netsim", "delivered", fid, nbytes=...)

        That kwargs-construction skip is what brings always-on binary
        tracing under its overhead budget (see
        ``bench_telemetry_overhead``).
        """
        if self._categories is not None and category not in self._categories:
            self.events_dropped += 1
            return False
        cell = self._gate_state.get(category)
        if cell is not None:
            n = cell[0]
            cell[0] = n + 1
            if n % cell[1]:
                self.events_dropped += 1
                return False
        return True

    def emit_kept(self, category: str, name: str, flow_id: int = 0,
                  **fields) -> TraceEvent:
        """Record one event that already passed :meth:`gate`."""
        t = self._now() if self._now is not None else 0.0
        event = TraceEvent(t, category, name, flow_id, fields)
        self.events_emitted += 1
        self.sink.append(event)
        if self._listeners:
            for fn in self._listeners:
                fn(event)
        return event

    def emit(self, category: str, name: str, flow_id: int = 0,
             **fields) -> Optional[TraceEvent]:
        """Record one event; returns it, or ``None`` if filtered."""
        if not self.gate(category):
            return None
        return self.emit_kept(category, name, flow_id, **fields)

    # ------------------------------------------------------------------
    def events(self) -> List[TraceEvent]:
        """Events retained by the sink (memory sinks only)."""
        getter = getattr(self.sink, "events", None)
        if getter is None:
            raise TypeError(
                f"{type(self.sink).__name__} does not retain events; "
                "read the trace file back with repro.telemetry.read_trace")
        return getter()

    def close(self) -> None:
        self.sink.close()

    def __repr__(self) -> str:
        return (f"TraceCollector(emitted={self.events_emitted}, "
                f"dropped={self.events_dropped}, "
                f"sink={type(self.sink).__name__})")
