"""Trace CLI: ``python -m repro.telemetry <summarize|filter|diff|convert>``.

This module is *host-side* telemetry code: it runs after (or outside)
a simulation, so wall-clock reads for default output file naming are
allowed here (reprolint REP006 scopes the no-wall-clock rule to the
simulation-side modules of this package).

Exit codes follow the reprolint convention: 0 success (for ``diff``:
traces identical), 1 differences found (``diff`` only), 2 usage or
file errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.telemetry.events import CAT_ACK, CAT_TIMING, CAT_TRANSPORT, TraceEvent
from repro.telemetry.sinks import JsonlSink
from repro.telemetry.trace_io import TraceFormatError, read_trace

#: Version of the ``summarize --json`` / ``diff --json`` documents.
JSON_SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------

def _load(path: str) -> tuple[Dict[str, Any], List[TraceEvent]]:
    try:
        return read_trace(path)
    except FileNotFoundError:
        raise SystemExit2(f"error: no such trace file: {path}")
    except TraceFormatError as exc:
        raise SystemExit2(f"error: {exc}")


class SystemExit2(Exception):
    """Usage/file error: caught in main() and mapped to exit code 2."""


def _window(events: List[TraceEvent], start: Optional[float],
            end: Optional[float]) -> List[TraceEvent]:
    if start is None and end is None:
        return events
    lo = start if start is not None else float("-inf")
    hi = end if end is not None else float("inf")
    return [e for e in events if lo <= e.time <= hi]


def _summarize(path: str, events: List[TraceEvent],
               start: Optional[float],
               end: Optional[float]) -> Dict[str, Any]:
    t0 = start if start is not None else (events[0].time if events else 0.0)
    t1 = end if end is not None else (events[-1].time if events else 0.0)
    duration = max(t1 - t0, 0.0)
    categories: Dict[str, int] = {}
    # Per-category wire cost: bytes each category would occupy as
    # schema-v1 JSONL lines (the JsonlSink encoding, newline included),
    # so the table answers "what is filling this trace?".
    category_bytes: Dict[str, int] = {}
    flows: Dict[int, Dict[str, Any]] = {}
    for e in events:
        categories[e.category] = categories.get(e.category, 0) + 1
        wire = len(json.dumps(e.to_dict(), separators=(",", ":"))) + 1
        category_bytes[e.category] = (
            category_bytes.get(e.category, 0) + wire)
        flow = flows.get(e.flow_id)
        if flow is None:
            flow = flows[e.flow_id] = {
                "events": 0,
                "categories": {},
                "acks": {"total": 0, "hz": 0.0, "by_kind": {}, "reasons": {}},
                "data": {"sent": 0, "retx": 0, "delivered_bytes": 0,
                         "goodput_bps": 0.0},
                "timing": {"rtt_samples": 0, "srtt_s": None,
                           "rtt_min_s": None},
            }
        flow["events"] += 1
        flow["categories"][e.category] = (
            flow["categories"].get(e.category, 0) + 1)
        if e.category == CAT_ACK:
            acks = flow["acks"]
            acks["total"] += 1
            acks["by_kind"][e.name] = acks["by_kind"].get(e.name, 0) + 1
            reason = e.fields.get("reason") or "unspecified"
            acks["reasons"][reason] = acks["reasons"].get(reason, 0) + 1
        elif e.category == CAT_TRANSPORT:
            data = flow["data"]
            if e.name == "send":
                data["sent"] += 1
            elif e.name == "retx":
                data["retx"] += 1
            elif e.name == "deliver":
                data["delivered_bytes"] += e.fields.get("nbytes", 0)
        elif e.category == CAT_TIMING and e.name == "rtt_sample":
            timing = flow["timing"]
            timing["rtt_samples"] += 1
            timing["srtt_s"] = e.fields.get("srtt_s", timing["srtt_s"])
            timing["rtt_min_s"] = e.fields.get("rtt_min_s",
                                               timing["rtt_min_s"])
    for flow in flows.values():
        if duration > 0:
            flow["acks"]["hz"] = flow["acks"]["total"] / duration
            flow["data"]["goodput_bps"] = (
                flow["data"]["delivered_bytes"] * 8.0 / duration)
    return {
        "version": JSON_SCHEMA_VERSION,
        "trace": path,
        "events": len(events),
        "window": {"start": t0, "end": t1, "duration_s": duration},
        "categories": categories,
        "category_bytes": category_bytes,
        "flows": {str(fid): flows[fid] for fid in sorted(flows)},
    }


def _print_summary(s: Dict[str, Any]) -> None:
    w = s["window"]
    print(f"trace: {s['trace']}")
    print(f"events: {s['events']}  window: [{w['start']:.3f}, "
          f"{w['end']:.3f}] s  ({w['duration_s']:.3f} s)")
    if s["categories"]:
        nbytes = s.get("category_bytes", {})
        total = s["events"]
        total_bytes = sum(nbytes.values())
        print("by category:")
        print(f"  {'category':<12} {'events':>9} {'bytes':>11} "
              f"{'ev%':>6} {'byte%':>6}")
        for cat in sorted(s["categories"]):
            count = s["categories"][cat]
            size = nbytes.get(cat, 0)
            print(f"  {cat:<12} {count:>9} {size:>11} "
                  f"{100.0 * count / total:>5.1f} "
                  f"{100.0 * size / total_bytes if total_bytes else 0.0:>5.1f}")
    for fid, flow in s["flows"].items():
        acks, data, timing = flow["acks"], flow["data"], flow["timing"]
        print(f"flow {fid}: {flow['events']} events")
        kinds = "  ".join(f"{k}={v}" for k, v in sorted(acks["by_kind"].items()))
        reasons = "  ".join(f"{k}={v}" for k, v in sorted(acks["reasons"].items()))
        print(f"  acks: {acks['total']} ({acks['hz']:.1f}/s)"
              + (f"  kinds: {kinds}" if kinds else "")
              + (f"  reasons: {reasons}" if reasons else ""))
        print(f"  data: sent={data['sent']} retx={data['retx']} "
              f"delivered={data['delivered_bytes']}B "
              f"goodput={data['goodput_bps'] / 1e6:.3f}Mbps")
        if timing["rtt_samples"]:
            srtt = timing["srtt_s"]
            rtt_min = timing["rtt_min_s"]
            print(f"  timing: {timing['rtt_samples']} samples"
                  + (f"  srtt={srtt * 1e3:.2f}ms" if srtt is not None else "")
                  + (f"  rtt_min={rtt_min * 1e3:.2f}ms"
                     if rtt_min is not None else ""))


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------

def cmd_summarize(args: argparse.Namespace) -> int:
    _, events = _load(args.trace)
    events = _window(events, args.start, args.end)
    summary = _summarize(args.trace, events, args.start, args.end)
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        _print_summary(summary)
    return 0


def cmd_filter(args: argparse.Namespace) -> int:
    header, events = _load(args.trace)
    events = _window(events, args.start, args.end)
    if args.category:
        keep = {c.strip() for c in args.category.split(",") if c.strip()}
        events = [e for e in events if e.category in keep]
    if args.flow is not None:
        events = [e for e in events if e.flow_id == args.flow]
    out = args.out
    if out is None:
        # Host-side file naming may read the wall clock (REP006 carves
        # this file out of the no-wall-clock rule).
        stem = args.trace[:-6] if args.trace.endswith(".jsonl") else args.trace
        out = f"{stem}.filtered-{int(time.time())}.jsonl"
    meta = dict(header.get("meta") or {})
    meta["filtered_from"] = args.trace
    sink = JsonlSink(out, meta=meta)
    try:
        for e in events:
            sink.append(e)
    finally:
        sink.close()
    print(f"{out}: {len(events)} events")
    return 0


def _diff_changes(a: Dict[str, Any],
                  b: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Flatten the comparable parts of two summaries into change rows."""
    changes: List[Dict[str, Any]] = []

    def compare(key: str, va, vb) -> None:
        if va != vb:
            changes.append({"key": key, "a": va, "b": vb})

    compare("events", a["events"], b["events"])
    for cat in sorted(set(a["categories"]) | set(b["categories"])):
        compare(f"category.{cat}",
                a["categories"].get(cat, 0), b["categories"].get(cat, 0))
    for fid in sorted(set(a["flows"]) | set(b["flows"])):
        fa = a["flows"].get(fid)
        fb = b["flows"].get(fid)
        if fa is None or fb is None:
            changes.append({"key": f"flow.{fid}",
                            "a": "present" if fa else "absent",
                            "b": "present" if fb else "absent"})
            continue
        for kind in sorted(set(fa["acks"]["by_kind"]) | set(fb["acks"]["by_kind"])):
            compare(f"flow.{fid}.acks.{kind}",
                    fa["acks"]["by_kind"].get(kind, 0),
                    fb["acks"]["by_kind"].get(kind, 0))
        for reason in sorted(set(fa["acks"]["reasons"]) | set(fb["acks"]["reasons"])):
            compare(f"flow.{fid}.ack_reason.{reason}",
                    fa["acks"]["reasons"].get(reason, 0),
                    fb["acks"]["reasons"].get(reason, 0))
        compare(f"flow.{fid}.sent", fa["data"]["sent"], fb["data"]["sent"])
        compare(f"flow.{fid}.retx", fa["data"]["retx"], fb["data"]["retx"])
        compare(f"flow.{fid}.delivered_bytes",
                fa["data"]["delivered_bytes"], fb["data"]["delivered_bytes"])
    return changes


def _retx_timeline(events: List[TraceEvent]) -> List[Dict[str, Any]]:
    return [{"t": round(e.time, 6), "flow": e.flow_id,
             "seq": e.fields.get("seq"), "pkt_seq": e.fields.get("pkt_seq")}
            for e in events
            if e.category == CAT_TRANSPORT and e.name == "retx"]


def cmd_diff(args: argparse.Namespace) -> int:
    _, events_a = _load(args.trace_a)
    _, events_b = _load(args.trace_b)
    sum_a = _summarize(args.trace_a, events_a, None, None)
    sum_b = _summarize(args.trace_b, events_b, None, None)
    changes = _diff_changes(sum_a, sum_b)
    retx_a = _retx_timeline(events_a)
    retx_b = _retx_timeline(events_b)
    if args.json:
        print(json.dumps({
            "version": JSON_SCHEMA_VERSION,
            "a": args.trace_a,
            "b": args.trace_b,
            "identical": not changes,
            "changes": changes,
            "retx_timelines": {"a": retx_a, "b": retx_b},
        }, indent=2))
    else:
        print(f"a: {args.trace_a} ({sum_a['events']} events)")
        print(f"b: {args.trace_b} ({sum_b['events']} events)")
        if not changes:
            print("traces are identical (by summary)")
        for change in changes:
            print(f"  {change['key']}: {change['a']} -> {change['b']}")
        if len(retx_a) != len(retx_b):
            print(f"  retransmissions: {len(retx_a)} -> {len(retx_b)}")
    return 1 if changes else 0


def cmd_convert(args: argparse.Namespace) -> int:
    from repro.telemetry.binlog import BinaryFormatError, convert_binary_trace

    out = args.out
    if out is None:
        stem = args.trace[:-4] if args.trace.endswith(".rtb") else args.trace
        out = f"{stem}.jsonl"
    if os.path.abspath(out) == os.path.abspath(args.trace):
        raise SystemExit2(
            f"error: refusing to overwrite the input trace; pass an "
            f"explicit output path (got {out!r})")
    try:
        stats = convert_binary_trace(
            args.trace, out, require_trailer=not args.allow_truncated)
    except FileNotFoundError:
        raise SystemExit2(f"error: no such trace file: {args.trace}")
    except BinaryFormatError as exc:
        raise SystemExit2(f"error: {args.trace}: {exc}")
    print(f"{out}: {stats['events']} events  sha256={stats['digest']}")
    return 0


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Inspect repro-telemetry JSONL traces.")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("summarize",
                       help="per-flow / per-category stats for one trace")
    p.add_argument("trace")
    p.add_argument("--json", action="store_true")
    p.add_argument("--start", type=float, default=None,
                   help="window start (sim seconds)")
    p.add_argument("--end", type=float, default=None,
                   help="window end (sim seconds)")
    p.set_defaults(fn=cmd_summarize)

    p = sub.add_parser("filter",
                       help="write a sub-trace by category/flow/time window")
    p.add_argument("trace")
    p.add_argument("-o", "--out", default=None,
                   help="output path (default: <trace>.filtered-<ts>.jsonl)")
    p.add_argument("--category", default=None,
                   help="comma-separated categories to keep")
    p.add_argument("--flow", type=int, default=None)
    p.add_argument("--start", type=float, default=None)
    p.add_argument("--end", type=float, default=None)
    p.set_defaults(fn=cmd_filter)

    p = sub.add_parser("diff",
                       help="compare two traces (counts, ACK reasons, retx)")
    p.add_argument("trace_a")
    p.add_argument("trace_b")
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=cmd_diff)

    p = sub.add_parser(
        "convert",
        help="convert a binary (.rtb) trace to schema-v1 JSONL")
    p.add_argument("trace", help="binary trace written by BinaryFileSink")
    p.add_argument("out", nargs="?", default=None,
                   help="output path (default: <trace stem>.jsonl)")
    p.add_argument("--allow-truncated", action="store_true",
                   help="salvage a trace whose digest trailer is missing "
                        "(writer crashed before close)")
    p.set_defaults(fn=cmd_convert)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors; normalize odd codes.
        return 2 if exc.code not in (0,) else 0
    try:
        return args.fn(args)
    except SystemExit2 as exc:
        print(str(exc), file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
