"""Event sinks: where a :class:`TraceCollector` puts emitted events.

Two sinks cover the two use cases:

* :class:`MemorySink` — an in-process ring buffer for tests and live
  metrics; ``max_events`` bounds memory on long runs (oldest events
  are evicted first).
* :class:`JsonlSink` — streaming JSONL writer for post-run analysis
  with the ``python -m repro.telemetry`` CLI.  The file starts with a
  schema header line and the sink accumulates a SHA-256 digest of the
  bytes written, so the campaign runner can record a trace's identity
  in the run manifest without re-reading the file.

Neither sink reads the wall clock: timestamps come stamped on the
events (from the sim clock) and any run metadata is passed in by the
caller via ``meta``.
"""

from __future__ import annotations

import collections
import hashlib
import json
import os
from typing import Any, Dict, List, Optional

from repro.telemetry.events import TraceEvent, format_header_line


class TraceSink:
    """Interface: receives events, may be closed."""

    def append(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default no-op
        pass


class MemorySink(TraceSink):
    """Bounded (or unbounded) in-memory ring buffer of events.

    Ring-bound contract (shared with
    :class:`~repro.telemetry.binlog.BinaryRingSink`, so manifest /
    runner code is sink-agnostic):

    * ``appended`` counts every event ever offered to the sink, even
      those since pushed out — it never decreases.
    * When the bound is hit, the *oldest* retained event is evicted
      first; ``evicted == appended - len(sink)`` always holds.
    * ``events()`` returns the retained tail, oldest first.
    * ``clear()`` drops the retained events but keeps ``appended``
      (and therefore folds the dropped events into ``evicted``).
    """

    def __init__(self, max_events: Optional[int] = None):
        self.max_events = max_events
        self._events: collections.deque[TraceEvent] = collections.deque(
            maxlen=max_events)
        self.appended = 0

    def append(self, event: TraceEvent) -> None:
        self._events.append(event)
        self.appended += 1

    def events(self) -> List[TraceEvent]:
        return list(self._events)

    @property
    def evicted(self) -> int:
        """Events pushed out of the ring by the ``max_events`` bound."""
        return self.appended - len(self._events)

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)


class JsonlSink(TraceSink):
    """Streaming JSONL trace writer (schema v1).

    The first line is the header ``{"schema": "repro-telemetry",
    "version": 1, "meta": {...}}``; each subsequent line is one
    event's compact-JSON form.  ``digest()`` returns the SHA-256 of
    everything written so far, which equals the digest of the file's
    bytes once the sink is closed.
    """

    def __init__(self, path: str, meta: Optional[Dict[str, Any]] = None):
        self.path = path
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._fh = open(path, "w")
        self._hash = hashlib.sha256()
        self.events_written = 0
        self._write_raw(format_header_line(meta))

    def _write_raw(self, line: str) -> None:
        self._fh.write(line)
        self._hash.update(line.encode("utf-8"))

    def _write_line(self, obj: Dict[str, Any]) -> None:
        self._write_raw(json.dumps(obj, separators=(",", ":")) + "\n")

    def append(self, event: TraceEvent) -> None:
        if self._fh is None:
            raise ValueError(f"JsonlSink({self.path!r}) is closed")
        self._write_line(event.to_dict())
        self.events_written += 1

    def digest(self) -> str:
        """SHA-256 hex digest of the bytes written so far."""
        return self._hash.hexdigest()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
