"""repro.telemetry: opt-in qlog-style event tracing and flow metrics.

Quickstart::

    from repro.telemetry import JsonlSink, TraceCollector

    collector = TraceCollector(sink=JsonlSink("run.jsonl"))
    sim = Simulator(seed=7, telemetry=collector)   # before endpoints!
    ... build connection, run ...
    collector.close()

Then inspect the trace::

    python -m repro.telemetry summarize run.jsonl
    python -m repro.telemetry filter run.jsonl --category ack --flow 0
    python -m repro.telemetry diff tack.jsonl per-packet-ack.jsonl
"""

from repro.telemetry.binlog import (
    ALWAYS_ON_SAMPLING,
    BinaryFileSink,
    BinaryFormatError,
    BinaryRingSink,
    always_on_collector,
    convert_binary_trace,
    read_binary_trace,
)
from repro.telemetry.collector import TraceCollector
from repro.telemetry.events import (
    CAT_ACK,
    CAT_CC,
    CAT_CHAOS,
    CAT_NETSIM,
    CAT_TIMING,
    CAT_TRANSPORT,
    CATEGORIES,
    SCHEMA_VERSION,
    TraceEvent,
)
from repro.telemetry.metrics import METRICS, MetricsRegistry
from repro.telemetry.sinks import JsonlSink, MemorySink, TraceSink
from repro.telemetry.trace_io import (
    TraceFormatError,
    iter_events,
    read_header,
    read_trace,
    trace_digest,
    write_trace,
)

__all__ = [
    "TraceCollector",
    "TraceEvent",
    "TraceSink",
    "MemorySink",
    "JsonlSink",
    "BinaryRingSink",
    "BinaryFileSink",
    "BinaryFormatError",
    "ALWAYS_ON_SAMPLING",
    "always_on_collector",
    "convert_binary_trace",
    "read_binary_trace",
    "MetricsRegistry",
    "METRICS",
    "TraceFormatError",
    "read_trace",
    "read_header",
    "iter_events",
    "write_trace",
    "trace_digest",
    "SCHEMA_VERSION",
    "CATEGORIES",
    "CAT_NETSIM",
    "CAT_TRANSPORT",
    "CAT_ACK",
    "CAT_CC",
    "CAT_TIMING",
    "CAT_CHAOS",
]
