"""Per-flow time-series metrics derived from the event stream.

A :class:`MetricsRegistry` consumes trace events — live (registered as
a collector listener) or offline (:meth:`MetricsRegistry.from_trace`)
— and buckets them into fixed-cadence per-flow series:

``goodput_bps``
    Bits per second of in-order data handed to the application
    (``transport/deliver`` events).
``ack_hz``
    Acknowledgments per second, all flavors (``ack`` category).
``inflight_bytes``
    Last reported sender in-flight bytes (``transport/feedback``).
``srtt_s`` / ``rtt_min_s``
    Last smoothed-RTT / RTT_min values (``timing/rtt_sample``).

Everything derives purely from events: the registry holds no timers
and touches neither the simulator nor the wall clock, which is what
makes the live and offline paths bit-identical.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.events import CAT_ACK, CAT_TIMING, CAT_TRANSPORT, TraceEvent

#: Metric names exposed by :meth:`MetricsRegistry.series`.
METRICS = ("goodput_bps", "ack_hz", "inflight_bytes", "srtt_s", "rtt_min_s")


class _FlowSeries:
    """Bucketed accumulators for one flow."""

    __slots__ = ("delivered", "acks", "inflight", "srtt", "rtt_min",
                 "bytes_delivered", "ack_count", "first_t", "last_t")

    def __init__(self):
        self.delivered: Dict[int, int] = {}
        self.acks: Dict[int, int] = {}
        self.inflight: Dict[int, int] = {}
        self.srtt: Dict[int, float] = {}
        self.rtt_min: Dict[int, float] = {}
        self.bytes_delivered = 0
        self.ack_count = 0
        self.first_t = math.inf
        self.last_t = -math.inf


class MetricsRegistry:
    """Fixed-cadence per-flow metrics derived from trace events."""

    def __init__(self, cadence_s: float = 0.1):
        if cadence_s <= 0:
            raise ValueError(f"cadence must be positive, got {cadence_s}")
        self.cadence_s = cadence_s
        self._flows: Dict[int, _FlowSeries] = {}

    # ------------------------------------------------------------------
    def attach(self, collector) -> "MetricsRegistry":
        """Consume events live from a :class:`TraceCollector`."""
        collector.add_listener(self.feed)
        return self

    @classmethod
    def from_trace(cls, path: str,
                   cadence_s: float = 0.1) -> "MetricsRegistry":
        """Replay a trace file through a fresh registry."""
        from repro.telemetry.trace_io import iter_events
        registry = cls(cadence_s=cadence_s)
        for event in iter_events(path):
            registry.feed(event)
        return registry

    # ------------------------------------------------------------------
    def feed(self, event: TraceEvent) -> None:
        flow = self._flows.get(event.flow_id)
        if flow is None:
            flow = self._flows[event.flow_id] = _FlowSeries()
        if event.time < flow.first_t:
            flow.first_t = event.time
        if event.time > flow.last_t:
            flow.last_t = event.time
        bucket = int(event.time / self.cadence_s)
        cat = event.category
        if cat == CAT_TRANSPORT:
            if event.name == "deliver":
                nbytes = event.fields.get("nbytes", 0)
                flow.delivered[bucket] = flow.delivered.get(bucket, 0) + nbytes
                flow.bytes_delivered += nbytes
            elif event.name == "feedback":
                flow.inflight[bucket] = event.fields.get("in_flight", 0)
        elif cat == CAT_ACK:
            flow.acks[bucket] = flow.acks.get(bucket, 0) + 1
            flow.ack_count += 1
        elif cat == CAT_TIMING and event.name == "rtt_sample":
            if "srtt_s" in event.fields:
                flow.srtt[bucket] = event.fields["srtt_s"]
            if "rtt_min_s" in event.fields:
                flow.rtt_min[bucket] = event.fields["rtt_min_s"]

    # ------------------------------------------------------------------
    def flows(self) -> List[int]:
        return sorted(self._flows)

    def series(self, flow_id: int,
               metric: str) -> List[Tuple[float, float]]:
        """``[(bucket_start_time, value), ...]`` for one metric.

        Rate metrics (goodput, ack frequency) are normalized by the
        cadence; gauge metrics report the last value seen in each
        bucket.  Only buckets with data appear.
        """
        flow = self._flows.get(flow_id)
        if flow is None:
            return []
        if metric == "goodput_bps":
            data = {b: v * 8.0 / self.cadence_s
                    for b, v in flow.delivered.items()}
        elif metric == "ack_hz":
            data = {b: v / self.cadence_s for b, v in flow.acks.items()}
        elif metric == "inflight_bytes":
            data = dict(flow.inflight)
        elif metric == "srtt_s":
            data = dict(flow.srtt)
        elif metric == "rtt_min_s":
            data = dict(flow.rtt_min)
        else:
            raise KeyError(f"unknown metric {metric!r}; one of {METRICS}")
        return [(b * self.cadence_s, data[b]) for b in sorted(data)]

    def summary(self, flow_id: int) -> Dict[str, Any]:
        """Whole-run aggregates for one flow."""
        flow = self._flows.get(flow_id)
        if flow is None:
            raise KeyError(f"no events for flow {flow_id}")
        span = max(flow.last_t - flow.first_t, 0.0)
        last = (lambda d: d[max(d)] if d else None)
        return {
            "flow": flow_id,
            "span_s": span,
            "bytes_delivered": flow.bytes_delivered,
            "acks": flow.ack_count,
            "goodput_bps": (flow.bytes_delivered * 8.0 / span
                            if span > 0 else 0.0),
            "ack_hz": flow.ack_count / span if span > 0 else 0.0,
            "srtt_s": last(flow.srtt),
            "rtt_min_s": last(flow.rtt_min),
        }

    def _last_gauge(self, flow_id: int,
                    metric: str) -> Optional[float]:
        points = self.series(flow_id, metric)
        return points[-1][1] if points else None
