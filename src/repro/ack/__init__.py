"""Acknowledgment policies.

A policy lives inside the transport receiver and decides *when* to
emit feedback and *what* it carries:

* :class:`~repro.ack.perpacket.PerPacketAck` -- legacy L=1
  (``TCP_QUICKACK``), Eq. (4).
* :class:`~repro.ack.delayed.DelayedAck` -- RFC 1122/5681 delayed ACK
  (L=2 plus a timer), Eq. (5).
* :class:`~repro.ack.bytecount.ByteCountingAck` -- ACK every L
  full-sized packets (the paper's Linux thinning patch, L=4/8/16).
* :class:`~repro.ack.periodic.PeriodicAck` -- ACK every alpha seconds,
  Eq. (2).
* :class:`~repro.ack.tack.TackPolicy` -- the paper's contribution:
  balances byte-counting and periodic ACKs per Eq. (3) and adds
  event-driven IACKs.
"""

from repro.ack.base import AckPolicy
from repro.ack.perpacket import PerPacketAck
from repro.ack.delayed import DelayedAck
from repro.ack.bytecount import ByteCountingAck
from repro.ack.periodic import PeriodicAck
from repro.ack.tack import TackPolicy

__all__ = [
    "AckPolicy",
    "ByteCountingAck",
    "DelayedAck",
    "PerPacketAck",
    "PeriodicAck",
    "TackPolicy",
]
