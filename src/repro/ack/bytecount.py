"""Byte-counting acknowledgment with arbitrary L (paper Eq. 1).

This is the paper's Linux thinning patch
(``BPF_SOCK_OPS_ACK_THRESH_INIT``): acknowledge every L full-sized
segments.  Linux's immediate-ACK-on-disorder behavior is preserved, and
the delayed-ACK timer still bounds the worst-case ACK delay.
"""

from __future__ import annotations

from repro.ack.delayed import DelayedAck


class ByteCountingAck(DelayedAck):
    """Delayed ACK generalized to L >= 2 (L = 4, 8, 16 in Fig. 10)."""

    name = "byte-counting"

    def __init__(self, count_l: int = 4, gamma_s: float = 0.2, max_sack_blocks: int = 3):
        super().__init__(count_l=count_l, gamma_s=gamma_s, max_sack_blocks=max_sack_blocks)
        self.name = f"byte-counting-L{count_l}"
