"""Purely periodic acknowledgment (paper Eq. 2).

One ACK every ``alpha_s`` seconds while data is flowing.  Bounded
frequency under high throughput, but unadaptable: the same frequency
is paid at trickle rates (the shortcoming TACK fixes by taking the
minimum of the two clocks).
"""

from __future__ import annotations

from repro.ack.base import AckPolicy
from repro.netsim.packet import Packet, PacketType


class PeriodicAck(AckPolicy):
    """Timer-driven ACKs at fixed interval ``alpha_s``."""

    name = "periodic"

    def __init__(self, alpha_s: float = 0.025, max_sack_blocks: int = 3):
        super().__init__()
        if alpha_s <= 0:
            raise ValueError(f"alpha_s must be positive, got {alpha_s}")
        self.alpha_s = alpha_s
        self.max_sack_blocks = max_sack_blocks
        self._timer = None
        self._pending = False

    def on_data(self, packet: Packet, in_order: bool) -> None:
        self._pending = True
        if self._timer is None:
            self._timer = self.receiver.sim.call_in(self.alpha_s, self._on_timer)

    def _on_timer(self) -> None:
        self._timer = None
        if not self._pending:
            return
        self._pending = False
        fb = self.receiver.build_feedback(max_sack_blocks=self.max_sack_blocks)
        self.receiver.emit_feedback(PacketType.ACK, fb)
        self._timer = self.receiver.sim.call_in(self.alpha_s, self._on_timer)

    def on_close(self) -> None:
        if self.receiver is not None and self._pending:
            self._pending = False
            fb = self.receiver.build_feedback(max_sack_blocks=self.max_sack_blocks)
            self.receiver.emit_feedback(PacketType.ACK, fb)

    def detach(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        super().detach()
