"""The TACK acknowledgment policy (paper S4/S5).

TACK balances byte-counting and periodic acknowledgment by sending at
the *lower* of the two frequencies (Eq. 3)::

    f_tack = min( bw / (L * MSS),  beta / RTT_min )

implemented as an adaptive timer whose interval is
``max(L * MSS * 8 / bw, RTT_min / beta)``; ``bw`` is the receiver's
windowed-max delivery rate (S5.4) and ``RTT_min`` is synced from the
sender on every data packet.

On top of the periodic TACKs the policy emits **IACKs** for instant
events (S4.4):

* a PKT.SEQ gap (loss event) — carries the pull range so the sender
  retransmits immediately;
* receive-buffer exhaustion or abrupt release — timely window update;
* (RTT_min resync is sender->receiver and rides data-packet headers.)

Each TACK carries cumulative + block feedback ("acked list"/"unacked
list"), the TACK delay and the timing reference for advanced
round-trip timing, the receiver-measured delivery rate, and the
data-path loss rate.  ``rich`` mode repeats as many blocks as fit one
MTU, which is what keeps loss recovery robust under ACK-path loss
(Fig. 5(b)); ``poor`` mode reports only Q blocks.
"""

from __future__ import annotations

from typing import Optional

from typing import TYPE_CHECKING

from repro.ack.base import AckPolicy
from repro.core.params import TackParams
from repro.netsim.packet import Packet, PacketType

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a cycle
    # through repro.core.__init__ -> flavors -> repro.ack)
    from repro.core.loss_detect import GapEvent

# Block budget of a rich TACK: one MTU minus the base header,
# eight bytes per block (see repro.transport.feedback).
_RICH_BLOCK_LIMIT = (1500 - 64) // 8


class TackPolicy(AckPolicy):
    """Tame ACK with instant-event IACKs."""

    name = "tack"

    def __init__(self, params: Optional[TackParams] = None):
        super().__init__()
        self.params = params or TackParams()
        self._timer = None
        self._bytes_since_tack = 0
        self._last_arrival = 0.0
        self._fallback_rtt_min = 0.1
        self.tack_intervals_used: list[float] = []
        # Timer ticks since the last emission: 1 means the periodic
        # clock is the binding constraint of Eq. (3) ("periodic"), >1
        # means ticks were skipped waiting for L*MSS ("bytecount").
        self._ticks_since_emit = 0
        # Graceful degradation under heavy ACK-path loss: True while
        # the periodic clock is densified (see periodic_interval).
        self._degraded = False

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def rtt_min(self) -> float:
        peer = self.receiver.peer_rtt_min
        return peer if peer is not None and peer > 0 else self._fallback_rtt_min

    def periodic_interval(self) -> float:
        """The periodic component of Eq. (3): RTT_min / beta.

        Under heavy ACK-path loss (sender-synced rho' above
        ``degrade_ack_loss``) a rich/adaptive receiver *degrades
        gracefully*: the clock densifies by ``1 / (1 - rho')`` (capped
        at ``max_degrade_factor``) so the expected rate of *surviving*
        feedback stays near the Eq. (3) design point instead of
        starving the sender into RTO.  Poor mode never degrades — it
        is the Fig. 5(b) baseline and must keep the literal clock.
        """
        rtt_min = self.rtt_min()
        self.receiver.rate.set_filter_window(
            max(self.params.bw_filter_rtts * rtt_min, 0.05)
        )
        boost = 1.0
        if self.params.rich is not False:
            rho_prime = self.receiver.peer_ack_loss_rate
            if rho_prime > self.params.degrade_ack_loss:
                boost = min(1.0 / (1.0 - min(rho_prime, 0.9)),
                            self.params.max_degrade_factor)
        degraded = boost > 1.0
        if degraded != self._degraded:
            self._degraded = degraded
            boost_r = round(boost, 3)
            ack_loss = self.receiver.peer_ack_loss_rate
            tel = self.receiver.sim.telemetry
            if tel is not None:
                tel.emit("ack", "degrade", self.receiver.flow_id,
                         on=degraded, boost=boost_r, ack_loss=ack_loss)
            # Rare (mode flips only), so the attribute lookup instead
            # of a cached reference costs nothing measurable.
            diag = getattr(self.receiver.sim, "diagnosis", None)
            if diag is not None:
                diag.observe("ack", "degrade", self.receiver.flow_id,
                             on=degraded, boost=boost_r, ack_loss=ack_loss)
        return max(rtt_min / (self.params.beta * boost), 1e-4)

    def _block_budget(self) -> tuple[int, int]:
        """(max acked blocks, max unacked blocks) for the next TACK.

        Adaptive mode implements the paper's "carried on demand": the
        sender syncs its measured ACK-path loss (rho'); while it is
        below the Eq. (6) threshold the TACK carries only the primary
        Q blocks, above it the budget grows by delta-Q (Appendix A).
        """
        if self.params.rich is True:
            per_list = _RICH_BLOCK_LIMIT // 2
            return per_list, per_list
        if self.params.rich == "adaptive":
            from repro.analysis.thresholds import (
                additional_blocks,
                rich_info_threshold,
            )

            q = self.params.primary_blocks_q
            rho = self.receiver.pkt_tracker.loss_rate()
            rho_prime = self.receiver.peer_ack_loss_rate
            bw = self.receiver.rate.bw_bps(self.receiver.sim.now())
            bdp = bw * self.rtt_min() / 8.0
            threshold = rich_info_threshold(
                rho, bdp, q, self.params.beta, self.params.ack_count_l,
                self.params.mss,
            )
            if rho_prime > threshold:
                extra = additional_blocks(
                    rho, rho_prime, bdp, q, self.params.beta,
                    self.params.ack_count_l, self.params.mss,
                )
                budget = min(q + extra, _RICH_BLOCK_LIMIT // 2)
                return max(3, budget), budget
            return 3, q
        return 3, self.params.primary_blocks_q

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def on_data(self, packet: Packet, in_order: bool) -> None:
        self._bytes_since_tack += packet.payload_len
        self._last_arrival = self.receiver.sim.now()
        if self._timer is None:
            self._arm(self.periodic_interval())

    def on_gap(self, event: GapEvent) -> None:
        """Loss event: pull the missing range with an IACK."""
        if not self.params.loss_event_iack:
            return  # ablation: rely on periodic TACK reports alone
        delay = self.params.iack_reorder_delay_factor * self.rtt_min()
        if delay > 0:
            # Settling-time allowance for reordering (paper S7).
            self.receiver.sim.call_in(delay, lambda: self._send_iack_pull(event))
        else:
            self._send_iack_pull(event)

    def _send_iack_pull(self, event: GapEvent) -> None:
        if self.receiver is None:
            return
        lo, hi = event.missing_range()
        if not self.receiver.pkt_tracker.any_missing(lo, hi):
            # The settling delay did its job: reordered arrivals filled
            # the gap, so there is nothing to pull.
            return
        fb = self.receiver.build_feedback(
            max_sack_blocks=1,
            max_unacked_blocks=1,
            pull_pkt_range=(event.second_largest, event.largest),
            reason="loss",
        )
        self.receiver.emit_feedback(PacketType.IACK, fb)

    def on_window_event(self, reason: str) -> None:
        """Abrupt receive-buffer change: immediate window update."""
        fb = self.receiver.build_feedback(max_sack_blocks=1, reason=reason)
        self.receiver.emit_feedback(PacketType.IACK, fb)

    def on_close(self) -> None:
        if self.receiver is not None:
            self._emit_tack(reason="close")

    # ------------------------------------------------------------------
    # the periodic TACK clock
    # ------------------------------------------------------------------
    def _arm(self, interval: float) -> None:
        self.tack_intervals_used.append(interval)
        self._timer = self.receiver.sim.call_in(interval, self._on_timer)

    def _on_timer(self) -> None:
        """Implements Eq. (3) without needing a bandwidth estimate for
        the *trigger*: the timer fires every RTT_min/beta (the periodic
        clock) but only emits once L full-sized packets have been
        counted (the byte-counting clock) — i.e. the TACK rate is the
        *minimum* of the two frequencies.  A straggler flush covers
        tails shorter than L packets once the flow goes quiet.
        """
        self._timer = None
        if self.receiver is None:
            return
        now = self.receiver.sim.now()
        self._ticks_since_emit += 1
        interval = self.periodic_interval()
        threshold = self.params.ack_count_l * self.params.mss
        if self._bytes_since_tack >= threshold:
            # One tick since the last TACK means the periodic clock
            # (beta/RTT_min) binds; skipped ticks mean emission waited
            # on the byte-counting clock (bw/(L*MSS)).
            self._emit_tack(reason="periodic" if self._ticks_since_emit <= 1
                            else "bytecount")
            self._arm(interval)
        elif self._bytes_since_tack > 0:
            if now - self._last_arrival >= 2.0 * interval:
                # Flow went quiet with a sub-L tail: flush it.  Two
                # intervals of silence distinguish "flow ended" from
                # "next packet is merely slower than the periodic
                # clock" (trickle flows stay byte-counting).
                self._emit_tack(reason="flush")
                if (self.params.holb_keepalive
                        and self.receiver.holb_blocked_bytes() > 0):
                    self._arm(interval)
            else:
                self._arm(interval)
        elif self.params.holb_keepalive and self.receiver.holb_blocked_bytes() > 0:
            # No fresh data but holes outstanding: keep pulling.  The
            # paper's TACK "proactively and periodically carries rich
            # information to pull lost packets" — the periodic clock
            # must not go dormant while recovery is incomplete, or a
            # lost pull strands the connection until RTO.  (Disable
            # via TackParams.holb_keepalive to get the literal Eq. (3)
            # clock the paper's TACK-poor baseline exhibits.)
            self._emit_tack(reason="periodic")
            self._arm(interval)
        # else: dormant; the next data arrival re-arms the clock.

    def _emit_tack(self, reason: str = "periodic") -> None:
        self._bytes_since_tack = 0
        self._ticks_since_emit = 0
        max_acked, max_unacked = self._block_budget()
        if not self.params.loss_event_iack:
            # Paper S5.1: "TACK only reports missing packets that have
            # been reported by loss-event-driven IACKs."  With IACKs
            # disabled nothing is eligible, so recovery falls back to
            # the sender's RTO — exactly the Fig. 5(a) baseline.
            max_unacked = 0
        fb = self.receiver.build_feedback(
            max_sack_blocks=max_acked,
            max_unacked_blocks=max_unacked,
            include_timing=True,
            include_rate=True,
            reason=reason,
            min_gap_age_s=self.params.iack_reorder_delay_factor * self.rtt_min(),
        )
        self.receiver.emit_feedback(PacketType.TACK, fb)

    def detach(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        super().detach()
