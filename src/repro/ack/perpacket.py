"""Per-packet acknowledgment (L=1, ``TCP_QUICKACK``; paper Eq. 4)."""

from __future__ import annotations

from repro.ack.base import AckPolicy
from repro.netsim.packet import Packet, PacketType


class PerPacketAck(AckPolicy):
    """Acknowledge every data segment immediately with SACK blocks."""

    name = "per-packet"

    def __init__(self, max_sack_blocks: int = 3):
        super().__init__()
        self.max_sack_blocks = max_sack_blocks

    def on_data(self, packet: Packet, in_order: bool) -> None:
        fb = self.receiver.build_feedback(max_sack_blocks=self.max_sack_blocks)
        self.receiver.emit_feedback(PacketType.ACK, fb)

    def on_close(self) -> None:
        if self.receiver is not None:
            fb = self.receiver.build_feedback(max_sack_blocks=self.max_sack_blocks)
            self.receiver.emit_feedback(PacketType.ACK, fb)
