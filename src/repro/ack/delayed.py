"""RFC 1122/5681 delayed acknowledgment (paper Eq. 5).

An ACK is sent for every second full-sized segment, or when the
delayed-ACK timer (gamma_s) expires, whichever comes first.  Out-of-order
segments and segments that fill a hole are acknowledged immediately, as
the RFCs require — legacy fast retransmit depends on those dupACKs.
"""

from __future__ import annotations

from repro.ack.base import AckPolicy
from repro.netsim.packet import Packet, PacketType


class DelayedAck(AckPolicy):
    """Classic delayed ACK: L=2 plus a timer bound."""

    name = "delayed"

    def __init__(self, count_l: int = 2, gamma_s: float = 0.1, max_sack_blocks: int = 3):
        super().__init__()
        if count_l < 1:
            raise ValueError(f"L must be >= 1, got {count_l}")
        if gamma_s <= 0:
            raise ValueError(f"gamma_s must be positive, got {gamma_s}")
        self.count_l = count_l
        self.gamma_s = gamma_s
        self.max_sack_blocks = max_sack_blocks
        self._unacked_segments = 0
        self._timer = None

    # ------------------------------------------------------------------
    def on_data(self, packet: Packet, in_order: bool) -> None:
        immediate = not in_order or self._fills_hole()
        self._unacked_segments += 1
        if immediate or self._unacked_segments >= self.count_l:
            self._emit()
        elif self._timer is None:
            self._timer = self.receiver.sim.call_in(self.gamma_s, self._on_timer)

    def _fills_hole(self) -> bool:
        # A segment that advanced cum_ack past previously buffered
        # out-of-order data "filled a hole"; approximate by checking
        # whether out-of-order data remains queued.
        return self.receiver.holb_blocked_bytes() > 0

    def _on_timer(self) -> None:
        self._timer = None
        if self._unacked_segments > 0:
            self._emit()

    def _emit(self) -> None:
        self._unacked_segments = 0
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        fb = self.receiver.build_feedback(max_sack_blocks=self.max_sack_blocks)
        self.receiver.emit_feedback(PacketType.ACK, fb)

    def on_close(self) -> None:
        if self.receiver is not None:
            self._emit()

    def detach(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        super().detach()
