"""Acknowledgment policy interface.

The receiver calls the hooks below; the policy responds by asking the
receiver to emit feedback (``receiver.emit_feedback``), which snapshots
reassembly state into an :class:`~repro.transport.feedback.AckFeedback`
and sends it through the reverse path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.netsim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.loss_detect import GapEvent
    from repro.transport.receiver import TransportReceiver


class AckPolicy:
    """Base policy: never acknowledges anything on its own."""

    name = "none"

    def __init__(self):
        self.receiver: Optional["TransportReceiver"] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def attach(self, receiver: "TransportReceiver") -> None:
        """Bind to the owning receiver; timers may be armed here."""
        self.receiver = receiver

    def detach(self) -> None:
        """Cancel timers; called when the connection closes."""
        self.receiver = None

    def attach_profiler(self, profiler) -> None:
        """Bind the data/gap hot paths to ``ack.<name>.*`` spans.

        Called by the receiver at construction time; re-binding keeps
        the paths branch-free when no profiler is attached.
        """
        if profiler is not None:
            self.on_data = profiler.wrap(f"ack.{self.name}.on_data",
                                         self.on_data)
            self.on_gap = profiler.wrap(f"ack.{self.name}.on_gap",
                                        self.on_gap)

    # ------------------------------------------------------------------
    # events from the receiver
    # ------------------------------------------------------------------
    def on_data(self, packet: Packet, in_order: bool) -> None:
        """A data segment arrived (``in_order`` means it advanced the
        cumulative acknowledgment point)."""

    def on_gap(self, event: "GapEvent") -> None:
        """The PKT.SEQ tracker exposed fresh missing packet numbers."""

    def on_window_event(self, reason: str) -> None:
        """Receive-buffer pressure changed abruptly (``"zero_window"``
        or ``"window_open"``)."""

    def on_close(self) -> None:
        """Stream finished; emit any final feedback."""
