"""Per-flow measurement collector.

Attaches to a connection and records delivery and delay time series so
benchmarks can compute windowed goodput, OWD percentiles, and the
power metric without reaching into protocol internals.
"""

from __future__ import annotations

from typing import Optional

from repro.netsim.engine import Simulator
from repro.stats.percentile import percentile
from repro.stats.power import kleinrock_power
from repro.stats.series import TimeSeries
from repro.transport.connection import Connection


class FlowCollector:
    """Records per-flow delivery progress and one-way delays."""

    def __init__(self, sim: Simulator, conn: Connection, name: str = "flow"):
        self.sim = sim
        self.conn = conn
        self.name = name
        self.delivered = TimeSeries(f"{name}.delivered")
        self.owd_samples: list[float] = []
        self._cum_delivered = 0
        conn.receiver.on_deliver(self._on_deliver)
        self._install_owd_probe()

    def _on_deliver(self, nbytes: int, now: float) -> None:
        self._cum_delivered += nbytes
        self.delivered.add(now, self._cum_delivered)

    def _install_owd_probe(self) -> None:
        tracker = self.conn.receiver.owd
        original = tracker.on_packet

        def probe(departure_ts: float, arrival_ts: float) -> float:
            owd = original(departure_ts, arrival_ts)
            self.owd_samples.append(owd)
            return owd

        tracker.on_packet = probe  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    def goodput_bps(self, start: float = 0.0, end: Optional[float] = None) -> float:
        """Delivered-byte rate over [start, end]."""
        if end is None:
            end = self.sim.now()
        if end <= start:
            return 0.0
        window = self.delivered.window(start, end)
        if not window:
            return 0.0
        before = self.delivered.window(float("-inf"), start)
        base = before[-1] if before else 0.0
        return (window[-1] - base) * 8.0 / (end - start)

    def owd_percentile_s(self, p: float = 95.0) -> float:
        return percentile(self.owd_samples, p)

    def power(self, start: float = 0.0, end: Optional[float] = None) -> float:
        """Kleinrock power over the window (paper Fig. 14 utility)."""
        return kleinrock_power(self.goodput_bps(start, end),
                               self.owd_percentile_s(95.0))
