"""Streaming, mergeable statistics for fleet-scale aggregation.

A fleet campaign (:mod:`repro.fleet`) simulates hundreds of thousands
of flows across worker processes; a million per-flow records must never
sit in one process's memory.  Workers therefore fold each finished
flow into three fixed-size *digests* and ship only the digests home:

:class:`LogHistogram`
    Fixed-bin logarithmic histogram for quantiles over positive,
    heavy-tailed metrics (flow completion times, per-flow goodput).
    Bin edges are a pure function of ``(lo_bound, hi_bound,
    bins_per_decade)``, so two digests built from the same config merge
    *exactly* — bin-wise integer addition — and the merged quantiles
    are independent of merge order and of how samples were sharded.

:class:`ExactSum`
    Shewchuk-style exact float accumulator (the algorithm behind
    ``math.fsum``, kept in mergeable "partials" form).  Unlike a naive
    running float sum, the represented value is *exact*, so merging
    shard sums in any order produces bit-identical totals — the
    property the resumable-campaign digest check relies on.

:class:`BottomKReservoir`
    Deterministic fixed-size sample: keeps the ``k`` items whose keys
    hash lowest (a bottom-k sketch).  Equivalent in distribution to
    uniform reservoir sampling over distinct keys, but — because
    membership is a pure function of the key set — the union of two
    reservoirs is exactly the reservoir of the union, with no RNG and
    no order dependence.

All three serialize to plain-JSON dicts (:meth:`to_dict` /
``from_dict``) so shard manifests can persist them and a resumed
campaign reproduces byte-identical aggregates.
"""

from __future__ import annotations

import hashlib
import math
from typing import Any, Dict, Iterable, List, Optional, Tuple


class ExactSum:
    """Exactly-rounded float summation in mergeable form.

    Maintains Shewchuk non-overlapping partials whose mathematical sum
    equals the running total exactly; :meth:`value` rounds once at the
    end (like ``math.fsum``).  Because the partials represent the exact
    sum, :meth:`value` after any sequence of merges equals the exact
    sum of all inputs, independent of sharding and merge order.  The
    partials *layout* (and hence :meth:`to_dict`) does depend on fold
    order, which is why the fleet aggregator folds shards in shard_id
    order before digesting.
    """

    __slots__ = ("_partials",)

    def __init__(self, partials: Iterable[float] = ()):
        self._partials: List[float] = [float(p) for p in partials]

    def add(self, x: float) -> None:
        partials = self._partials
        x = float(x)
        i = 0
        for y in partials:
            if abs(x) < abs(y):
                x, y = y, x
            hi = x + y
            lo = y - (hi - x)
            if lo:
                partials[i] = lo
                i += 1
            x = hi
        partials[i:] = [x]

    def merge(self, other: "ExactSum") -> None:
        for p in other._partials:
            self.add(p)

    def value(self) -> float:
        return math.fsum(self._partials)

    def to_dict(self) -> Dict[str, Any]:
        return {"partials": list(self._partials)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExactSum":
        return cls(data.get("partials", ()))

    def __repr__(self) -> str:
        return f"ExactSum({self.value()!r})"


class LogHistogram:
    """Fixed-bin log-scale histogram with exact merge semantics.

    Bin ``i`` covers ``[lo_bound * r**i, lo_bound * r**(i+1))`` with
    ``r = 10 ** (1 / bins_per_decade)``; values below ``lo_bound``
    (including zero and negatives) land in a dedicated underflow bin,
    values at or above ``hi_bound`` in an overflow bin.  With the
    default 64 bins per decade the relative bin width is ~3.7%, so any
    quantile is reproduced within ~±4% relative error — checked
    against :func:`repro.stats.percentile` in the test suite.

    Memory is O(occupied bins), independent of sample count.  Exact
    minimum, maximum, and an :class:`ExactSum` of the samples ride
    along so means and totals stay exact, not binned.
    """

    __slots__ = ("lo_bound", "hi_bound", "bins_per_decade", "_counts",
                 "count", "_sum", "min", "max", "_log_r")

    def __init__(self, lo_bound: float = 1e-6, hi_bound: float = 1e9,
                 bins_per_decade: int = 64):
        if lo_bound <= 0:
            raise ValueError(f"lo_bound must be positive, got {lo_bound}")
        if hi_bound <= lo_bound:
            raise ValueError("hi_bound must exceed lo_bound")
        if bins_per_decade < 1:
            raise ValueError(f"bins_per_decade must be >= 1, got {bins_per_decade}")
        self.lo_bound = float(lo_bound)
        self.hi_bound = float(hi_bound)
        self.bins_per_decade = int(bins_per_decade)
        self._log_r = math.log10(self.hi_bound / self.lo_bound)
        self._counts: Dict[int, int] = {}
        self.count = 0
        self._sum = ExactSum()
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def n_bins(self) -> int:
        """Regular bins between the under- and overflow bins."""
        return int(math.ceil(self._log_r * self.bins_per_decade))

    def _index(self, value: float) -> int:
        if value < self.lo_bound:
            return -1
        if value >= self.hi_bound:
            return self.n_bins
        idx = int(math.log10(value / self.lo_bound) * self.bins_per_decade)
        # Guard the float boundary: log10 rounding may push an edge
        # value into the neighboring bin's index range.
        return max(0, min(idx, self.n_bins - 1))

    def _edges(self, idx: int) -> Tuple[float, float]:
        lo = self.lo_bound * 10.0 ** (idx / self.bins_per_decade)
        hi = self.lo_bound * 10.0 ** ((idx + 1) / self.bins_per_decade)
        return lo, hi

    # ------------------------------------------------------------------
    def add(self, value: float, count: int = 1) -> None:
        """Fold ``count`` occurrences of ``value`` into the digest."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        value = float(value)
        idx = self._index(value)
        self._counts[idx] = self._counts.get(idx, 0) + count
        self.count += count
        for _ in range(count):
            self._sum.add(value)
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def merge(self, other: "LogHistogram") -> None:
        """Bin-wise exact merge; both digests must share a config."""
        if (self.lo_bound != other.lo_bound
                or self.hi_bound != other.hi_bound
                or self.bins_per_decade != other.bins_per_decade):
            raise ValueError(
                "cannot merge LogHistograms with different bin configs: "
                f"({self.lo_bound}, {self.hi_bound}, {self.bins_per_decade})"
                f" vs ({other.lo_bound}, {other.hi_bound}, "
                f"{other.bins_per_decade})")
        for idx, n in other._counts.items():
            self._counts[idx] = self._counts.get(idx, 0) + n
        self.count += other.count
        self._sum.merge(other._sum)
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    # ------------------------------------------------------------------
    @property
    def sum(self) -> float:
        return self._sum.value()

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("mean of empty histogram")
        return self.sum / self.count

    def quantile(self, pct: float) -> float:
        """The ``pct``-th percentile (0..100), geometric within-bin
        interpolation, clamped to the exact observed min/max."""
        if self.count == 0:
            raise ValueError("quantile of empty histogram")
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"quantile must be in [0, 100], got {pct}")
        assert self.min is not None and self.max is not None
        target = pct / 100.0 * self.count
        seen = 0
        for idx in sorted(self._counts):
            n = self._counts[idx]
            seen += n
            if seen >= target:
                if idx < 0:
                    return self.min
                if idx >= self.n_bins:
                    return self.max
                lo, hi = self._edges(idx)
                # Geometric interpolation inside the log-spaced bin.
                frac = 1.0 - (seen - target) / n
                value = lo * (hi / lo) ** frac
                return min(max(value, self.min), self.max)
        return self.max

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "log_histogram",
            "lo_bound": self.lo_bound,
            "hi_bound": self.hi_bound,
            "bins_per_decade": self.bins_per_decade,
            "counts": {str(idx): n for idx, n in sorted(self._counts.items())},
            "count": self.count,
            "sum_partials": list(self._sum._partials),
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LogHistogram":
        hist = cls(data["lo_bound"], data["hi_bound"], data["bins_per_decade"])
        hist._counts = {int(k): int(v) for k, v in data.get("counts", {}).items()}
        hist.count = int(data.get("count", 0))
        hist._sum = ExactSum(data.get("sum_partials", ()))
        hist.min = data.get("min")
        hist.max = data.get("max")
        return hist

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (f"LogHistogram(count={self.count}, "
                f"bins={len(self._counts)}, min={self.min}, max={self.max})")


class BottomKReservoir:
    """Deterministic mergeable uniform sample of keyed values.

    Keeps the ``k`` entries whose key digests (sha256 of
    ``"salt:key"``) are smallest.  For distinct keys this is a uniform
    sample without replacement, but unlike classic reservoir sampling
    the kept set is a pure function of the key set: merging two
    reservoirs (union, re-truncate to ``k``) equals the reservoir of
    the combined stream, independent of order — no RNG, no resume
    drift.  Keys must be unique per item (fleet uses
    ``"shard<id>/flow<n>"``).
    """

    __slots__ = ("k", "salt", "_items")

    def __init__(self, k: int = 256, salt: str = ""):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = int(k)
        self.salt = salt
        # (hash_int, key, value), kept sorted ascending by hash.
        self._items: List[Tuple[int, str, Any]] = []

    def _hash(self, key: str) -> int:
        digest = hashlib.sha256(f"{self.salt}:{key}".encode()).digest()
        return int.from_bytes(digest[:16], "big")

    def add(self, key: str, value: Any) -> None:
        h = self._hash(key)
        items = self._items
        if len(items) >= self.k and h >= items[-1][0]:
            return
        # Insertion sort step: reservoirs are small and mostly full,
        # so a bisect + insert beats re-sorting.
        lo, hi = 0, len(items)
        while lo < hi:
            mid = (lo + hi) // 2
            if items[mid][0] < h:
                lo = mid + 1
            else:
                hi = mid
        items.insert(lo, (h, key, value))
        if len(items) > self.k:
            items.pop()

    def merge(self, other: "BottomKReservoir") -> None:
        if self.k != other.k or self.salt != other.salt:
            raise ValueError("cannot merge reservoirs with different k/salt")
        for h, key, value in other._items:
            if len(self._items) >= self.k and h >= self._items[-1][0]:
                continue
            self.add(key, value)

    def values(self) -> List[Any]:
        """Sampled values in deterministic (hash) order."""
        return [value for _, _, value in self._items]

    def __len__(self) -> int:
        return len(self._items)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "bottom_k",
            "k": self.k,
            "salt": self.salt,
            "items": [[key, value] for _, key, value in self._items],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BottomKReservoir":
        res = cls(data["k"], data.get("salt", ""))
        for key, value in data.get("items", ()):
            res.add(key, value)
        return res

    def __repr__(self) -> str:
        return f"BottomKReservoir(k={self.k}, n={len(self._items)})"
