"""Append-only time series with windowed reductions."""

from __future__ import annotations

import bisect
from typing import Callable, Optional

from repro.stats.percentile import percentile


class TimeSeries:
    """(time, value) samples, appended in time order."""

    def __init__(self, name: str = ""):
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def add(self, t: float, value: float) -> None:
        if self.times and t < self.times[-1]:
            raise ValueError(f"time went backwards: {t} < {self.times[-1]}")
        self.times.append(t)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def window(self, start: float, end: float) -> list[float]:
        """Values with start <= t <= end."""
        i = bisect.bisect_left(self.times, start)
        j = bisect.bisect_right(self.times, end)
        return self.values[i:j]

    def reduce(self, fn: Callable[[list[float]], float],
               start: Optional[float] = None, end: Optional[float] = None) -> float:
        lo = start if start is not None else (self.times[0] if self.times else 0.0)
        hi = end if end is not None else (self.times[-1] if self.times else 0.0)
        return fn(self.window(lo, hi))

    def mean(self, start: Optional[float] = None, end: Optional[float] = None) -> float:
        vals = self.window(
            start if start is not None else float("-inf"),
            end if end is not None else float("inf"),
        )
        if not vals:
            raise ValueError(f"no samples in window for series {self.name!r}")
        return sum(vals) / len(vals)

    def pct(self, p: float, start: Optional[float] = None,
            end: Optional[float] = None) -> float:
        vals = self.window(
            start if start is not None else float("-inf"),
            end if end is not None else float("inf"),
        )
        return percentile(vals, p)

    def last(self, default: float = 0.0) -> float:
        return self.values[-1] if self.values else default
