"""Time-binned rates and a terminal renderer for them.

Benchmarks print end-of-run aggregates; debugging transport dynamics
needs the *trajectory*.  ``binned_rate`` turns a cumulative delivery
series into per-bin throughput, and ``ascii_chart`` renders one or
more series as rows of block characters for quick terminal inspection.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.stats.series import TimeSeries

_BLOCKS = " ▁▂▃▄▅▆▇█"


def binned_rate(series: TimeSeries, bin_s: float,
                start: float = 0.0, end: float = None) -> list[float]:
    """Per-bin rate (units/second) from a cumulative-value series.

    The series must hold cumulative totals (e.g. delivered bytes); the
    result has one entry per ``bin_s`` over ``[start, end)``.
    """
    if bin_s <= 0:
        raise ValueError(f"bin width must be positive, got {bin_s}")
    if not series.times:
        return []
    if end is None:
        end = series.times[-1]
    rates = []
    t = start
    while t < end:
        window = series.window(float("-inf"), t)
        at_start = window[-1] if window else 0.0
        window_end = series.window(float("-inf"), t + bin_s)
        at_end = window_end[-1] if window_end else 0.0
        rates.append((at_end - at_start) / bin_s)
        t += bin_s
    return rates


def ascii_chart(series_by_name: Mapping[str, Sequence[float]],
                width: int = 60, unit: str = "") -> str:
    """Render one row of block characters per named series.

    All series share one vertical scale (their joint maximum), so rows
    are directly comparable.  Values are resampled to ``width`` columns
    by bucket-averaging.
    """
    if not series_by_name:
        raise ValueError("nothing to chart")
    peak = max((max(vals) for vals in series_by_name.values() if vals),
               default=0.0)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(name) for name in series_by_name)
    lines = []
    for name, vals in series_by_name.items():
        cells = _resample(list(vals), width)
        row = "".join(
            _BLOCKS[min(int(v / peak * (len(_BLOCKS) - 1) + 0.5),
                        len(_BLOCKS) - 1)]
            for v in cells
        )
        suffix = f"  (peak {max(vals):,.1f}{unit})" if vals else ""
        lines.append(f"{name.rjust(label_width)} |{row}|{suffix}")
    return "\n".join(lines)


def _resample(values: list[float], width: int) -> list[float]:
    if not values:
        return [0.0] * width
    if len(values) <= width:
        return values
    out = []
    per = len(values) / width
    for i in range(width):
        lo = int(i * per)
        hi = max(int((i + 1) * per), lo + 1)
        chunk = values[lo:hi]
        out.append(sum(chunk) / len(chunk))
    return out
