"""Measurement utilities: time series, percentiles, power metric,
scheme ranking.

These implement the paper's evaluation metrics: goodput, 95th
percentile one-way delay, Kleinrock's power (Fig. 14 utility), and
rank aggregation across randomized trials.
"""

from repro.stats.series import TimeSeries
from repro.stats.percentile import percentile
from repro.stats.power import kleinrock_power
from repro.stats.collector import FlowCollector
from repro.stats.ranking import rank_schemes, RankSummary
from repro.stats.streaming import BottomKReservoir, ExactSum, LogHistogram

__all__ = [
    "BottomKReservoir",
    "ExactSum",
    "FlowCollector",
    "LogHistogram",
    "RankSummary",
    "TimeSeries",
    "kleinrock_power",
    "percentile",
    "rank_schemes",
]
