"""Rank aggregation across randomized trials (paper Fig. 14).

Each trial scores every scheme (higher is better); schemes are ranked
1..N per trial (1 = best) and the distribution of ranks is summarized
with quartiles — a textual stand-in for the paper's violin plots.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.stats.percentile import percentile


class RankSummary:
    """Distribution of a scheme's per-trial ranks."""

    def __init__(self, scheme: str, ranks: Sequence[int]):
        if not ranks:
            raise ValueError(f"no ranks for scheme {scheme!r}")
        self.scheme = scheme
        self.ranks = list(ranks)

    @property
    def mean(self) -> float:
        return sum(self.ranks) / len(self.ranks)

    @property
    def median(self) -> float:
        return percentile([float(r) for r in self.ranks], 50.0)

    def quartiles(self) -> tuple[float, float, float]:
        vals = [float(r) for r in self.ranks]
        return (
            percentile(vals, 25.0),
            percentile(vals, 50.0),
            percentile(vals, 75.0),
        )

    def __repr__(self) -> str:
        q1, q2, q3 = self.quartiles()
        return f"RankSummary({self.scheme}: median={q2}, IQR=[{q1}, {q3}])"


def rank_schemes(trials: Sequence[Mapping[str, float]]) -> list[RankSummary]:
    """Aggregate per-trial scores into rank summaries.

    ``trials`` is a list of {scheme: score} mappings (higher score is
    better).  Every trial must score the same scheme set.  Returns
    summaries sorted by mean rank (best first).
    """
    if not trials:
        raise ValueError("no trials to rank")
    schemes = sorted(trials[0])
    ranks: dict[str, list[int]] = {s: [] for s in schemes}
    for trial in trials:
        if sorted(trial) != schemes:
            raise ValueError("trials scored different scheme sets")
        ordered = sorted(schemes, key=lambda s: trial[s], reverse=True)
        for position, scheme in enumerate(ordered, start=1):
            ranks[scheme].append(position)
    summaries = [RankSummary(s, ranks[s]) for s in schemes]
    summaries.sort(key=lambda r: r.mean)
    return summaries
