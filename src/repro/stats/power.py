"""Kleinrock power metric (paper S6.6, Fig. 14).

The paper summarizes each scheme with ``log(throughput_avg /
OWD_95th)`` — higher is better.  We expose the ratio and its log, and
guard the degenerate cases (zero throughput ranks worst).
"""

from __future__ import annotations

import math


def kleinrock_power(throughput_bps: float, owd_95th_s: float) -> float:
    """``log(throughput / 95th-percentile OWD)``.

    Returns ``-inf`` for zero throughput so dead schemes rank last;
    raises on non-positive delay (a measurement bug, not a result).
    """
    if owd_95th_s <= 0:
        raise ValueError(f"non-positive 95th percentile OWD: {owd_95th_s}")
    if throughput_bps < 0:
        raise ValueError(f"negative throughput: {throughput_bps}")
    if throughput_bps == 0:
        return float("-inf")
    return math.log(throughput_bps / owd_95th_s)
