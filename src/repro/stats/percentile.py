"""Percentile with linear interpolation (no numpy dependency in the
core library; benchmarks may use numpy freely)."""

from __future__ import annotations

from typing import Sequence


def percentile(values: Sequence[float], pct: float) -> float:
    """The ``pct``-th percentile (0..100) with linear interpolation.

    Raises :class:`ValueError` on an empty input — a silent 0 would
    corrupt delay statistics.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * pct / 100.0
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    if ordered[lo] == ordered[hi]:
        # Exact, avoiding one-ULP drift from the interpolation below
        # (keeps percentile monotone in pct).
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def median(values: Sequence[float]) -> float:
    """Convenience 50th percentile."""
    return percentile(values, 50.0)
