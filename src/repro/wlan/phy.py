"""PHY-layer profiles for 802.11b/g/n/ac.

Timing constants follow the respective standards (slot, SIFS, DIFS,
preamble) and the aggregation limits are calibrated so that saturated
single-flow UDP goodput with 1518-byte frames lands near the paper's
Figure 7 baselines (7 / 26 / 210 / 590 Mbps for b / g / n / ac).
The PHY *raw* rates match Figure 7 exactly: 11 / 54 / 300 / 866.7 Mbps.
"""

from __future__ import annotations

from typing import Optional


class PhyProfile:
    """Timing and rate description of one 802.11 PHY generation.

    All times in seconds, rates in bits per second.

    Attributes
    ----------
    phy_rate_bps:
        Data-frame modulation rate (Figure 7 "PHY capacity").
    basic_rate_bps:
        Control-frame (link ACK / block-ACK) modulation rate.
    slot_s, sifs_s, difs_s:
        DCF timing primitives.
    preamble_s:
        PLCP preamble + header airtime paid once per PPDU.
    ack_s:
        Airtime of the link-layer ACK or block-ACK response
        (preamble + control frame at the basic rate).
    cw_min, cw_max:
        Contention-window bounds in slots (CW doubles per retry).
    max_ampdu_frames / max_ampdu_bytes:
        A-MPDU aggregation limits; ``1`` / ``None`` disables
        aggregation (802.11b/g).
    mpdu_overhead_bytes:
        Per-MPDU delimiter + padding inside an aggregate.
    mac_overhead_bytes:
        MAC header + FCS added to every MPDU.
    retry_limit:
        Transmission attempts before a frame is dropped by the MAC.
    """

    def __init__(
        self,
        name: str,
        phy_rate_bps: float,
        basic_rate_bps: float,
        slot_s: float,
        sifs_s: float,
        difs_s: float,
        preamble_s: float,
        ack_s: float,
        cw_min: int = 15,
        cw_max: int = 1023,
        max_ampdu_frames: int = 1,
        max_ampdu_bytes: Optional[int] = None,
        mpdu_overhead_bytes: int = 0,
        mac_overhead_bytes: int = 34,
        retry_limit: int = 7,
    ):
        if phy_rate_bps <= 0 or basic_rate_bps <= 0:
            raise ValueError("PHY rates must be positive")
        if max_ampdu_frames < 1:
            raise ValueError("max_ampdu_frames must be >= 1")
        self.name = name
        self.phy_rate_bps = phy_rate_bps
        self.basic_rate_bps = basic_rate_bps
        self.slot_s = slot_s
        self.sifs_s = sifs_s
        self.difs_s = difs_s
        self.preamble_s = preamble_s
        self.ack_s = ack_s
        self.cw_min = cw_min
        self.cw_max = cw_max
        self.max_ampdu_frames = max_ampdu_frames
        self.max_ampdu_bytes = max_ampdu_bytes
        self.mpdu_overhead_bytes = mpdu_overhead_bytes
        self.mac_overhead_bytes = mac_overhead_bytes
        self.retry_limit = retry_limit

    # ------------------------------------------------------------------
    def mpdu_bytes(self, payload_bytes: int) -> int:
        """On-air bytes for one MPDU carrying ``payload_bytes``."""
        return payload_bytes + self.mac_overhead_bytes + self.mpdu_overhead_bytes

    def ppdu_airtime(self, total_mpdu_bytes: int,
                     rate_bps: Optional[float] = None) -> float:
        """Airtime of one PPDU (preamble + payload at the PHY rate, or
        at a rate-adaptation-selected ``rate_bps``)."""
        rate = rate_bps if rate_bps is not None else self.phy_rate_bps
        return self.preamble_s + total_mpdu_bytes * 8.0 / rate

    def exchange_airtime(self, total_mpdu_bytes: int,
                         rate_bps: Optional[float] = None) -> float:
        """Airtime of a full data exchange excluding contention:
        PPDU + SIFS + (block-)ACK."""
        return self.ppdu_airtime(total_mpdu_bytes, rate_bps) + self.sifs_s + self.ack_s

    def rate_table(self) -> list[float]:
        """Descending MCS rates for rate adaptation (a simplified
        4-step ladder anchored at the profile's top rate)."""
        return [self.phy_rate_bps * f for f in (1.0, 0.75, 0.5, 0.25)]

    def mean_backoff_s(self, cw: Optional[int] = None) -> float:
        """Expected initial backoff duration for contention window
        ``cw`` (defaults to ``cw_min``)."""
        if cw is None:
            cw = self.cw_min
        return (cw / 2.0) * self.slot_s

    def saturation_goodput_bps(self, payload_bytes: int = 1500,
                               wire_bytes: int = 1518) -> float:
        """Analytic single-station saturation goodput.

        One station, no collisions: every exchange costs
        DIFS + E[backoff] + PPDU + SIFS + ACK and carries
        ``n * payload_bytes`` of goodput where ``n`` is the aggregate
        size.  This is the model used to calibrate profiles against the
        paper's UDP baselines.
        """
        n = self.aggregate_limit(wire_bytes)
        total = n * self.mpdu_bytes(wire_bytes)
        cycle = self.difs_s + self.mean_backoff_s() + self.exchange_airtime(total)
        return n * payload_bytes * 8.0 / cycle

    def aggregate_limit(self, wire_bytes: int) -> int:
        """Max MPDUs of ``wire_bytes`` that fit one A-MPDU."""
        n = self.max_ampdu_frames
        if self.max_ampdu_bytes is not None:
            per = self.mpdu_bytes(wire_bytes)
            n = min(n, max(1, self.max_ampdu_bytes // per))
        return n

    def __repr__(self) -> str:
        return f"PhyProfile({self.name}, {self.phy_rate_bps / 1e6:g} Mbps)"


def _make_profiles() -> dict[str, PhyProfile]:
    """Build the four calibrated profiles from the paper's testbed.

    Calibration targets (paper Figure 7, UDP baseline):
    802.11b ~= 7 Mbps, g ~= 26 Mbps, n ~= 210 Mbps, ac ~= 590 Mbps.
    """
    profiles = {
        # DSSS: long preamble 192 us, ACK at 2 Mbps.
        "802.11b": PhyProfile(
            name="802.11b",
            phy_rate_bps=11e6,
            basic_rate_bps=2e6,
            slot_s=20e-6,
            sifs_s=10e-6,
            difs_s=50e-6,
            preamble_s=192e-6,
            ack_s=192e-6 + 14 * 8 / 2e6,
            cw_min=31,
            cw_max=1023,
        ),
        # ERP-OFDM in b-compatibility mode (20 us slots, 50 us DIFS),
        # which is what a mixed-mode commodity router provides.
        "802.11g": PhyProfile(
            name="802.11g",
            phy_rate_bps=54e6,
            basic_rate_bps=24e6,
            slot_s=20e-6,
            sifs_s=10e-6,
            difs_s=50e-6,
            preamble_s=20e-6,
            ack_s=20e-6 + 14 * 8 / 24e6,
            cw_min=15,
            cw_max=1023,
        ),
        # HT 40 MHz 2x2: A-MPDU aggregation, block ACK.
        "802.11n": PhyProfile(
            name="802.11n",
            phy_rate_bps=300e6,
            basic_rate_bps=24e6,
            slot_s=9e-6,
            sifs_s=16e-6,
            difs_s=34e-6,
            preamble_s=40e-6,
            ack_s=20e-6 + 32 * 8 / 24e6,
            cw_min=15,
            cw_max=1023,
            # Calibrated: the BA window allows 64 MPDUs but commodity
            # NICs rarely sustain more than ~12 per TXOP at this rate;
            # 12 lands the UDP baseline at the paper's 210 Mbps.
            max_ampdu_frames=12,
            max_ampdu_bytes=65535,
            mpdu_overhead_bytes=8,
        ),
        # VHT 80 MHz 2x2: larger A-MPDU, block ACK.
        "802.11ac": PhyProfile(
            name="802.11ac",
            phy_rate_bps=866.7e6,
            basic_rate_bps=24e6,
            slot_s=9e-6,
            sifs_s=16e-6,
            difs_s=34e-6,
            preamble_s=44e-6,
            ack_s=20e-6 + 32 * 8 / 24e6,
            cw_min=15,
            cw_max=1023,
            # Calibrated: 32 MPDUs per TXOP puts the UDP baseline at
            # the paper's 590 Mbps.
            max_ampdu_frames=32,
            max_ampdu_bytes=1048575,
            mpdu_overhead_bytes=8,
        ),
    }
    return profiles


PHY_PROFILES = _make_profiles()
"""Calibrated profiles keyed by standard name."""


def get_profile(name: str) -> PhyProfile:
    """Look up a profile; accepts "802.11n" or the short form "n"."""
    if name in PHY_PROFILES:
        return PHY_PROFILES[name]
    full = f"802.11{name}"
    if full in PHY_PROFILES:
        return PHY_PROFILES[full]
    raise KeyError(f"unknown PHY profile: {name!r} (have {sorted(PHY_PROFILES)})")
