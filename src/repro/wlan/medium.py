"""Shared wireless medium implementing DCF contention.

The medium coordinates all stations in one collision domain.  Rather
than simulating every idle slot, it runs *contention rounds*: when the
medium goes idle and stations have frames queued, each contender holds
a residual backoff counter (in slots); the medium jumps directly to
``DIFS + min(counter) * slot``, the holders of the minimum transmit
(more than one holder means a collision), and everyone else decrements
their counter by the minimum — the standard event-driven shortcut for
IEEE 802.11 DCF that preserves the per-slot collision probabilities.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.netsim.engine import Simulator
from repro.wlan.phy import PhyProfile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.wlan.station import Station, TxOp


class WirelessMedium:
    """One 802.11 collision domain shared by a set of stations.

    Parameters
    ----------
    sim:
        Simulation driver.
    phy:
        The PHY profile all stations use (the paper's experiments run a
        single standard at a time).
    per_mpdu_error_rate:
        Optional PHY-layer error probability applied independently to
        each MPDU of a successful (non-collided) transmission; models
        channel noise as opposed to collision losses.
    """

    def __init__(
        self,
        sim: Simulator,
        phy: PhyProfile,
        per_mpdu_error_rate: float = 0.0,
    ):
        if not 0.0 <= per_mpdu_error_rate <= 1.0:
            raise ValueError("per_mpdu_error_rate must be in [0, 1]")
        self.sim = sim
        self.phy = phy
        self.per_mpdu_error_rate = per_mpdu_error_rate
        self.rng = sim.fork_rng("wlan-medium")
        self.stations: list["Station"] = []
        self._busy = False
        self._round_scheduled = False
        # statistics
        self.transmissions = 0
        self.collisions = 0
        self.airtime_busy_s = 0.0
        self.airtime_collided_s = 0.0
        self.mpdu_phy_errors = 0

    # ------------------------------------------------------------------
    def register(self, station: "Station") -> None:
        """Add a station to the collision domain."""
        self.stations.append(station)

    def notify_backlog(self) -> None:
        """A station enqueued a frame; start a contention round if the
        medium is idle and no round is already pending."""
        if not self._busy and not self._round_scheduled:
            self._schedule_round()

    # ------------------------------------------------------------------
    def _contenders(self) -> list["Station"]:
        return [s for s in self.stations if s.has_backlog()]

    def _schedule_round(self) -> None:
        contenders = self._contenders()
        if not contenders:
            return
        self._round_scheduled = True
        for s in contenders:
            s.ensure_backoff(self.rng)
        min_slots = min(s.backoff_slots for s in contenders)
        wait = self.phy.difs_s + min_slots * self.phy.slot_s
        self.sim.call_in(wait, lambda: self._fire_round(min_slots))

    def _fire_round(self, elapsed_slots: int) -> None:
        self._round_scheduled = False
        if self._busy:  # defensive: a round never overlaps a transmission
            return
        contenders = self._contenders()
        if not contenders:
            return
        winners = []
        for s in contenders:
            s.backoff_slots -= elapsed_slots
            if s.backoff_slots <= 0:
                winners.append(s)
        if not winners:
            # All prior contenders drained their queues (shouldn't
            # happen, but stay safe) -- re-run contention.
            self._schedule_round()
            return
        txops = [s.begin_txop() for s in winners]
        airtime = max(
            self.phy.exchange_airtime(txop.total_mpdu_bytes,
                                      station.current_rate_bps())
            for station, txop in zip(winners, txops)
        )
        self._busy = True
        self.transmissions += len(txops)
        self.airtime_busy_s += airtime
        collided = len(winners) > 1
        if collided:
            self.collisions += len(winners)
            self.airtime_collided_s += airtime
        self.sim.call_in(
            airtime, lambda: self._finish_round(winners, txops, collided)
        )

    def _finish_round(
        self,
        winners: list["Station"],
        txops: list["TxOp"],
        collided: bool,
    ) -> None:
        self._busy = False
        for station, txop in zip(winners, txops):
            if collided:
                station.note_tx_outcome(ok=False)
                station.txop_collided(txop)
            else:
                errored = [
                    self.per_mpdu_error_rate > 0.0
                    and self.rng.random() < self.per_mpdu_error_rate
                    for _ in txop.packets
                ]
                self.mpdu_phy_errors += sum(errored)
                station.note_tx_outcome(ok=not any(errored))
                station.txop_succeeded(txop, errored)
        self._schedule_round()

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        return self._busy

    def collision_rate(self) -> float:
        """Fraction of transmissions that ended in a collision."""
        if self.transmissions == 0:
            return 0.0
        return self.collisions / self.transmissions

    def __repr__(self) -> str:
        return (
            f"WirelessMedium({self.phy.name}, stations={len(self.stations)}, "
            f"tx={self.transmissions}, collisions={self.collisions})"
        )
