"""Wireless station: MAC queue, backoff state, and A-MPDU aggregation.

A :class:`Station` is a netsim "port": upper layers call ``send`` and
register a sink with ``connect``.  Frames destined to the station's
peer wait in a FIFO; when the station wins a contention round it
transmits an A-MPDU of up to the PHY's aggregation limit and the peer's
sink receives every MPDU that survived (collision kills the whole PPDU,
PHY noise kills individual MPDUs).
"""

from __future__ import annotations

import collections
import random
from typing import Callable, Optional

from repro.netsim.packet import Packet
from repro.wlan.medium import WirelessMedium


class TxOp:
    """One transmission opportunity: the MPDUs of a single PPDU."""

    __slots__ = ("packets", "total_mpdu_bytes")

    def __init__(self, packets: list[Packet], total_mpdu_bytes: int):
        self.packets = packets
        self.total_mpdu_bytes = total_mpdu_bytes


class Station:
    """A contender on a :class:`~repro.wlan.medium.WirelessMedium`.

    Parameters
    ----------
    medium:
        Collision domain to join.
    name:
        Diagnostic label.
    queue_frames:
        MAC queue depth in frames; arrivals beyond it are dropped
        (models the NIC ring).  ``None`` means unbounded.
    aggregate:
        When ``False`` the station never aggregates even on n/ac PHYs
        (used by the "no-aggregation" ablation).
    """

    SMALL_FRAME_BYTES = 200
    """Frames below this size count as transport control (ACKs)."""

    def __init__(
        self,
        medium: WirelessMedium,
        name: str = "sta",
        queue_frames: Optional[int] = 1024,
        aggregate: bool = True,
        control_aggregate_limit: Optional[int] = None,
        rate_adaptation: bool = False,
    ):
        self.medium = medium
        self.phy = medium.phy
        self.name = name
        self.queue_frames = queue_frames
        self.aggregate = aggregate
        # Minstrel-lite rate adaptation: step down the MCS ladder after
        # consecutive failed TXOPs (collisions / PHY errors), probe
        # back up after a run of successes.  Off by default — the
        # headline experiments use a fixed MCS like the paper's Fig. 7.
        self.rate_adaptation = rate_adaptation
        self._rate_table = self.phy.rate_table()
        self._rate_index = 0
        self._consec_fail = 0
        self._consec_ok = 0
        # Optional cap on small control frames (transport ACKs) per
        # TXOP, for ablating reverse-path aggregation depth; ``None``
        # (default) lets ACKs aggregate like any other frame.
        self.control_aggregate_limit = control_aggregate_limit
        self.peer: Optional["Station"] = None
        self._peer_map: Optional[dict[int, "Station"]] = None
        self._sink: Optional[Callable[[Packet], None]] = None
        self._queue: collections.deque[Packet] = collections.deque()
        # DCF state
        self.backoff_slots = -1  # -1 means "no backoff drawn"
        self._cw = self.phy.cw_min
        self._retries = 0
        self._inflight: Optional[TxOp] = None
        # statistics
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_dropped_queue = 0
        self.frames_dropped_retry = 0
        self.bytes_delivered = 0
        self.txops_won = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def set_peer(self, peer: "Station") -> None:
        """Point this station's transmissions at ``peer``."""
        self.peer = peer

    def set_peer_map(self, peer_map: dict[int, "Station"]) -> None:
        """Infrastructure mode: route frames to peers by ``flow_id``
        (an AP serving several clients).  ``peer`` stays the fallback
        for unmapped flows.  Enables per-receiver queueing so A-MPDUs
        (single-RA by standard) aggregate fully even with interleaved
        downlink traffic — real APs keep per-RA/TID queues."""
        self._peer_map = peer_map
        self._dest_queues: collections.OrderedDict[int, collections.deque] = (
            collections.OrderedDict()
        )

    def peer_for(self, packet: Packet) -> Optional["Station"]:
        if self._peer_map is not None:
            mapped = self._peer_map.get(packet.flow_id)
            if mapped is not None:
                return mapped
        return self.peer

    def connect(self, sink: Callable[[Packet], None]) -> None:
        """Register the upper-layer receive callback."""
        self._sink = sink

    # ------------------------------------------------------------------
    # netsim port interface
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Enqueue ``packet`` for transmission to the peer."""
        if self._peer_map is not None:
            dest = self.peer_for(packet)
            key = id(dest)
            queue = self._dest_queues.setdefault(key, collections.deque())
            if self.queue_frames is not None and len(queue) >= self.queue_frames:
                self.frames_dropped_queue += 1
                return False
            queue.append(packet)
            self.medium.notify_backlog()
            return True
        if self.queue_frames is not None and len(self._queue) >= self.queue_frames:
            self.frames_dropped_queue += 1
            return False
        self._queue.append(packet)
        self.medium.notify_backlog()
        return True

    def _select_queue(self) -> "collections.deque[Packet]":
        """The queue the next TXOP draws from: round-robin over
        per-destination queues in infrastructure mode."""
        if self._peer_map is None:
            return self._queue
        for key in list(self._dest_queues):
            queue = self._dest_queues[key]
            self._dest_queues.move_to_end(key)
            if queue:
                return queue
        return self._queue

    def deliver(self, packet: Packet) -> None:
        """Hand a received MPDU to the upper layer."""
        self.frames_delivered += 1
        self.bytes_delivered += packet.size
        packet.hops += 1
        if self._sink is not None:
            self._sink(packet)

    # ------------------------------------------------------------------
    # DCF hooks called by the medium
    # ------------------------------------------------------------------
    def has_backlog(self) -> bool:
        if self._inflight is not None:
            return True
        if self._peer_map is not None and any(self._dest_queues.values()):
            return True
        return bool(self._queue)

    def ensure_backoff(self, rng: random.Random) -> None:
        """Draw a fresh backoff counter if none is pending."""
        if self.backoff_slots < 0:
            self.backoff_slots = rng.randint(0, self._cw)

    def begin_txop(self) -> TxOp:
        """Called when this station won the round; builds the A-MPDU."""
        self.txops_won += 1
        if self._inflight is not None:
            # Retransmission of the collided PPDU.
            return self._inflight
        limit = self.phy.max_ampdu_frames if self.aggregate else 1
        byte_limit = self.phy.max_ampdu_bytes if self.aggregate else None
        queue = self._select_queue()
        packets: list[Packet] = []
        total = 0
        small = 0
        dest: Optional["Station"] = None
        while queue and len(packets) < limit:
            nxt = queue[0]
            if packets and self.peer_for(nxt) is not dest:
                # An A-MPDU addresses a single receiver; frames for a
                # different client wait for their own TXOP.
                break
            if (
                packets
                and self.control_aggregate_limit is not None
                and nxt.size < self.SMALL_FRAME_BYTES
                and small >= self.control_aggregate_limit
            ):
                break
            mpdu = self.phy.mpdu_bytes(nxt.size)
            if packets and byte_limit is not None and total + mpdu > byte_limit:
                break
            if nxt.size < self.SMALL_FRAME_BYTES:
                small += 1
            if not packets:
                dest = self.peer_for(nxt)
            packets.append(queue.popleft())
            total += mpdu
        txop = TxOp(packets, total)
        self._inflight = txop
        return txop

    def txop_succeeded(self, txop: TxOp, errored: list[bool]) -> None:
        """PPDU delivered; MPDUs flagged in ``errored`` were corrupted
        by PHY noise and are retried via the MAC (simplified: requeued
        at the head once, then dropped)."""
        self._inflight = None
        self._cw = self.phy.cw_min
        self._retries = 0
        self.backoff_slots = -1
        retry: list[Packet] = []
        for packet, bad in zip(txop.packets, errored):
            self.frames_sent += 1
            if bad:
                if packet.meta.get("mac_retried"):
                    self.frames_dropped_retry += 1
                else:
                    packet.meta["mac_retried"] = True
                    retry.append(packet)
            else:
                receiver = self.peer_for(packet)
                if receiver is not None:
                    receiver.deliver(packet)
        for packet in reversed(retry):
            if self._peer_map is not None:
                key = id(self.peer_for(packet))
                self._dest_queues.setdefault(
                    key, collections.deque()
                ).appendleft(packet)
            else:
                self._queue.appendleft(packet)
        if self.has_backlog():
            self.medium.notify_backlog()

    def txop_collided(self, txop: TxOp) -> None:
        """PPDU collided; double the contention window and retry the
        same aggregate, up to the PHY retry limit."""
        self._retries += 1
        if self._retries > self.phy.retry_limit:
            self.frames_dropped_retry += len(txop.packets)
            self._inflight = None
            self._retries = 0
            self._cw = self.phy.cw_min
        else:
            self._cw = min(self._cw * 2 + 1, self.phy.cw_max)
        self.backoff_slots = -1
        if self.has_backlog():
            self.medium.notify_backlog()

    # ------------------------------------------------------------------
    # ------------------------------------------------------------------
    # rate adaptation
    # ------------------------------------------------------------------
    def current_rate_bps(self) -> float:
        """MCS rate the next PPDU is modulated at."""
        if not self.rate_adaptation:
            return self.phy.phy_rate_bps
        return self._rate_table[self._rate_index]

    def note_tx_outcome(self, ok: bool) -> None:
        """Feed one TXOP outcome into the Minstrel-lite ladder."""
        if not self.rate_adaptation:
            return
        if ok:
            self._consec_ok += 1
            self._consec_fail = 0
            if self._consec_ok >= 10 and self._rate_index > 0:
                self._rate_index -= 1
                self._consec_ok = 0
        else:
            self._consec_fail += 1
            self._consec_ok = 0
            if self._consec_fail >= 2 and self._rate_index < len(self._rate_table) - 1:
                self._rate_index += 1
                self._consec_fail = 0

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:
        return f"Station({self.name}, queued={len(self._queue)})"


def wireless_pair(
    medium: WirelessMedium,
    name_a: str = "ap",
    name_b: str = "sta",
    queue_frames: Optional[int] = 1024,
    aggregate: bool = True,
) -> tuple[Station, Station]:
    """Create two peered stations on ``medium`` (e.g. AP and client)."""
    a = Station(medium, name_a, queue_frames, aggregate)
    b = Station(medium, name_b, queue_frames, aggregate)
    a.set_peer(b)
    b.set_peer(a)
    medium.register(a)
    medium.register(b)
    return a, b
