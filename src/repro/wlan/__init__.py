"""IEEE 802.11 WLAN medium model.

This subpackage replaces the paper's commodity Wi-Fi hardware with a
DCF (distributed coordination function) contention simulator.  The
model keeps the economics that the paper exploits:

* every medium acquisition pays a roughly frame-size-independent cost
  (DIFS + backoff + PHY preamble + SIFS + link-layer ACK), so a 64-byte
  TCP ACK occupies almost as much airtime as a 1518-byte data frame on
  fast PHYs;
* concurrent contenders collide, waste the whole slot, and back off
  exponentially — frequent transport ACKs therefore collide with data;
* A-MPDU aggregation amortizes the acquisition cost over many MPDUs,
  which is how 802.11n/ac reach high goodput and why per-packet ACKs
  hurt them proportionally more.

Not modeled (not load-bearing for the paper's claims): rate adaptation,
capture effect, hidden terminals, RTS/CTS.
"""

from repro.wlan.phy import PHY_PROFILES, PhyProfile
from repro.wlan.medium import WirelessMedium
from repro.wlan.station import Station

__all__ = ["PHY_PROFILES", "PhyProfile", "Station", "WirelessMedium"]
