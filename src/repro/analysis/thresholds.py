"""Rich-information thresholds, paper Eq. (6) and Appendix A.

During one TACK interval, IACKs report fresh losses; if IACKs
themselves are lost (rate ``rho'`` on the ACK path), TACKs must repeat
enough "unacked list" blocks (Q primary blocks) to cover them.  The
derivation bounds the expected number of lost IACKs per interval by Q
and solves for rho' (Eq. 7/8) and for the block deficit delta-Q.
"""

from __future__ import annotations

from repro.netsim.packet import MSS


def _validate(rho: float, rho_prime: float) -> None:
    for name, val in (("rho", rho), ("rho'", rho_prime)):
        if not 0.0 <= val <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {val}")


def is_large_bdp(bdp_bytes: float, beta: float = 4.0, count_l: int = 2,
                 mss: int = MSS) -> bool:
    """Regime test: bdp >= beta * L * MSS selects the periodic branch."""
    return bdp_bytes >= beta * count_l * mss


def rich_info_threshold(
    rho: float,
    bdp_bytes: float,
    q_blocks: int = 1,
    beta: float = 4.0,
    count_l: int = 2,
    mss: int = MSS,
) -> float:
    """Eq. (6): the ACK-path loss rate above which a TACK should carry
    more than its Q primary blocks.

    Returns ``inf`` when the data path is lossless (rho = 0): with no
    losses to report, no amount of ACK loss makes rich blocks useful.
    """
    _validate(rho, 0.0)
    if q_blocks < 0:
        raise ValueError(f"Q must be >= 0, got {q_blocks}")
    if rho == 0.0:
        return float("inf")
    if is_large_bdp(bdp_bytes, beta, count_l, mss):
        return q_blocks * mss / (rho * bdp_bytes)
    return q_blocks / (rho * count_l)


def additional_blocks(
    rho: float,
    rho_prime: float,
    bdp_bytes: float,
    q_blocks: int = 1,
    beta: float = 4.0,
    count_l: int = 2,
    mss: int = MSS,
) -> int:
    """Appendix A delta-Q: extra "unacked list" blocks a TACK should
    report, zero when the primary Q already suffices."""
    _validate(rho, rho_prime)
    if is_large_bdp(bdp_bytes, beta, count_l, mss):
        needed = rho * rho_prime * bdp_bytes / mss
    else:
        needed = rho * rho_prime * count_l
    return max(0, int(round(needed - q_blocks + 0.5)))
