"""Closed-form models from the paper.

* :mod:`repro.analysis.ack_frequency` -- Eqs. (1)-(5): ACK frequency
  of per-packet, delayed, byte-counting, periodic, and Tame ACK.
* :mod:`repro.analysis.thresholds` -- Eq. (6) / Appendix A: when a
  TACK should carry more blocks, and how many more.
* :mod:`repro.analysis.buffer_req` -- Appendix B: beta lower bound,
  L upper bound, and the minimum-send-window / buffer requirement.
"""

from repro.analysis.ack_frequency import (
    byte_counting_frequency,
    delayed_ack_frequency,
    per_packet_frequency,
    periodic_frequency,
    tack_frequency,
)
from repro.analysis.thresholds import additional_blocks, rich_info_threshold
from repro.analysis.buffer_req import (
    buffer_requirement_bytes,
    l_upper_bound,
    min_send_window_bytes,
)

__all__ = [
    "additional_blocks",
    "buffer_requirement_bytes",
    "byte_counting_frequency",
    "delayed_ack_frequency",
    "l_upper_bound",
    "min_send_window_bytes",
    "per_packet_frequency",
    "periodic_frequency",
    "rich_info_threshold",
    "tack_frequency",
]
