"""Send-window and buffer analysis, paper S7 and Appendix B.

With beta ACKs per RTT, full utilization needs a minimum send window
``W_min = beta / (beta - 1) * bdp`` (Landstrom [50], Eq. 11) and the
bottleneck buffer must absorb ``W_min - bdp``.  beta = 2 is the lower
bound (one ACK per RTT degenerates to stop-and-wait, Appendix B.1);
the byte-counting parameter is bounded above by ``L <= Q / (rho *
rho')`` (Appendix B.2, Eq. 10).
"""

from __future__ import annotations


def min_send_window_bytes(bdp_bytes: float, beta: float = 4.0) -> float:
    """Eq. (11): W_min = beta / (beta - 1) * bdp, beta >= 2."""
    if beta < 2:
        raise ValueError(
            f"beta must be >= 2 (beta=1 is stop-and-wait), got {beta}"
        )
    if bdp_bytes < 0:
        raise ValueError(f"negative bdp: {bdp_bytes}")
    return beta / (beta - 1.0) * bdp_bytes


def buffer_requirement_bytes(bdp_bytes: float, beta: float = 4.0) -> float:
    """Ideal bottleneck buffer: W_min - bdp (= bdp/(beta-1)).

    beta = 2 needs a full bdp of buffer; the paper's default beta = 4
    needs 0.33 bdp (S7).
    """
    return min_send_window_bytes(bdp_bytes, beta) - bdp_bytes


def l_upper_bound(q_blocks: int, rho: float, rho_prime: float) -> float:
    """Eq. (10): L <= Q / (rho * rho').

    Returns ``inf`` when either path is lossless (no feedback-loss
    pressure bounds L).
    """
    if q_blocks < 0:
        raise ValueError(f"Q must be >= 0, got {q_blocks}")
    for name, val in (("rho", rho), ("rho'", rho_prime)):
        if not 0.0 <= val <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {val}")
    if rho == 0.0 or rho_prime == 0.0:
        return float("inf")
    return q_blocks / (rho * rho_prime)


def beta_lower_bound() -> int:
    """Appendix B.1: two ACKs per RTT is the floor for full
    utilization of a sliding-window protocol."""
    return 2
