"""Analytic WLAN airtime model: ideal goodput under ACK thinning.

A closed-form companion to the Fig. 9(b) simulation: with one data
station aggregating ``n_agg`` MPDUs per TXOP and the receiver paying a
full medium acquisition per transport ACK (one ACK every ``L`` data
packets), the steady-state cycle alternates data TXOPs and the ACK
TXOPs they generate.  Collisions are ignored (the paper's "ideal"
case assumes no transport disturbance; contention cost enters through
the per-acquisition overhead).

This model also quantifies the paper's core observation: the ACK
airtime share scales with ``n_agg / L``, so faster PHYs (deeper
aggregation) suffer proportionally more from frequent ACKs.
"""

from __future__ import annotations

from repro.netsim.packet import ACK_PACKET_SIZE, DATA_PACKET_SIZE, MSS
from repro.wlan.phy import PhyProfile


def txop_airtime_s(phy: PhyProfile, frame_bytes: int, n_frames: int = 1) -> float:
    """Full cost of one TXOP: DIFS + mean backoff + PPDU + SIFS + ACK."""
    total = n_frames * phy.mpdu_bytes(frame_bytes)
    return phy.difs_s + phy.mean_backoff_s() + phy.exchange_airtime(total)


def ideal_goodput_bps(
    phy: PhyProfile,
    ack_every_l: float,
    data_bytes: int = DATA_PACKET_SIZE,
    ack_bytes: int = ACK_PACKET_SIZE,
    payload_bytes: int = MSS,
    ack_aggregation: int = 1,
) -> float:
    """Saturation goodput when every L-th data packet costs an ACK
    acquisition (ACKs aggregated ``ack_aggregation`` per TXOP)."""
    if ack_every_l <= 0:
        raise ValueError(f"L must be positive, got {ack_every_l}")
    if ack_aggregation < 1:
        raise ValueError(f"ack_aggregation must be >= 1, got {ack_aggregation}")
    n_agg = phy.aggregate_limit(data_bytes)
    data_txop = txop_airtime_s(phy, data_bytes, n_agg)
    # DCF alternates acquisitions between the two saturated stations,
    # so the ACK station wins at most one TXOP per data TXOP: below
    # L = n_agg the ACK path *saturates* instead of consuming more
    # airtime — the paper's "ACK throughput fails to double" effect.
    acks_per_data_txop = min(n_agg / ack_every_l / ack_aggregation, 1.0)
    ack_txop = txop_airtime_s(phy, ack_bytes, ack_aggregation)
    cycle = data_txop + acks_per_data_txop * ack_txop
    return n_agg * payload_bytes * 8.0 / cycle


def ack_airtime_share(
    phy: PhyProfile,
    ack_every_l: float,
    data_bytes: int = DATA_PACKET_SIZE,
    ack_bytes: int = ACK_PACKET_SIZE,
    ack_aggregation: int = 1,
) -> float:
    """Fraction of busy airtime consumed by transport ACKs."""
    n_agg = phy.aggregate_limit(data_bytes)
    data_txop = txop_airtime_s(phy, data_bytes, n_agg)
    acks = min(n_agg / ack_every_l / ack_aggregation, 1.0)
    ack_air = acks * txop_airtime_s(phy, ack_bytes, ack_aggregation)
    return ack_air / (data_txop + ack_air)


def tack_equivalent_l(goodput_bps: float, rtt_min_s: float,
                      beta: float = 4.0, payload_bytes: int = MSS) -> float:
    """The effective L of TACK in the periodic regime: one ACK per
    ``packet_rate * RTT_min / beta`` data packets."""
    pkt_rate_hz = goodput_bps / (payload_bytes * 8.0)
    return max(1.0, pkt_rate_hz * rtt_min_s / beta)
