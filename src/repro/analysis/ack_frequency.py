"""ACK-frequency models, paper Eqs. (1)-(5) and Appendix B.4.

All frequencies in Hz, bandwidth ``bw`` in bits/s, ``mss`` in bytes.
The paper assumes full-sized data packets throughout; these formulas
do the same.
"""

from __future__ import annotations

from repro.netsim.packet import MSS


def _packets_per_second(bw_bps: float, mss: int) -> float:
    return bw_bps / (8.0 * mss)


def per_packet_frequency(bw_bps: float, mss: int = MSS) -> float:
    """Eq. (4): legacy per-packet ACK, f = bw / MSS."""
    if bw_bps < 0:
        raise ValueError(f"negative bandwidth: {bw_bps}")
    return _packets_per_second(bw_bps, mss)


def byte_counting_frequency(bw_bps: float, count_l: int, mss: int = MSS) -> float:
    """Eq. (1): one ACK per L full-sized packets, f = bw / (L*MSS)."""
    if count_l < 1:
        raise ValueError(f"L must be >= 1, got {count_l}")
    return _packets_per_second(bw_bps, mss) / count_l


def periodic_frequency(alpha_s: float) -> float:
    """Eq. (2): one ACK per alpha seconds."""
    if alpha_s <= 0:
        raise ValueError(f"alpha must be positive, got {alpha_s}")
    return 1.0 / alpha_s


def delayed_ack_frequency(
    bw_bps: float,
    gamma_s: float = 0.2,
    mss: int = MSS,
) -> float:
    """Eq. (5): RFC delayed ACK (L = 2 with timer gamma).

    Below two packets per gamma the timer dominates (per-packet-ish
    behavior); above, it is byte-counting with L = 2.
    """
    pps = _packets_per_second(bw_bps, mss)
    if pps < 2.0 / gamma_s:
        return pps
    return pps / 2.0


def tack_frequency(
    bw_bps: float,
    rtt_min_s: float,
    beta: float = 4.0,
    count_l: int = 2,
    mss: int = MSS,
) -> float:
    """Eq. (3): f_tack = min(bw / (L*MSS), beta / RTT_min)."""
    if rtt_min_s <= 0:
        raise ValueError(f"RTT_min must be positive, got {rtt_min_s}")
    if beta < 1:
        raise ValueError(f"beta must be >= 1, got {beta}")
    return min(byte_counting_frequency(bw_bps, count_l, mss), beta / rtt_min_s)


def pivot_bandwidth_bps(rtt_min_s: float, beta: float = 4.0,
                        count_l: int = 2, mss: int = MSS) -> float:
    """Bandwidth where TACK switches from byte-counting to periodic:
    bw* such that bw*/(L*MSS) = beta/RTT_min, i.e. the Fig. 17(a)
    pivot point; equivalently bdp* = beta * L * MSS."""
    return beta * count_l * mss * 8.0 / rtt_min_s


def pivot_rtt_s(bw_bps: float, beta: float = 4.0,
                count_l: int = 2, mss: int = MSS) -> float:
    """RTT_min where TACK switches regimes (Fig. 17(b) pivot)."""
    if bw_bps <= 0:
        raise ValueError(f"bandwidth must be positive, got {bw_bps}")
    return beta * count_l * mss * 8.0 / bw_bps


def reduction_vs_tcp(bw_bps: float, rtt_min_s: float, beta: float = 4.0,
                     count_l: int = 2, mss: int = MSS,
                     tcp_l: int = 2) -> float:
    """Delta f = f_tcp(L=tcp_l) - f_tack (Fig. 8(a))."""
    f_tcp = byte_counting_frequency(bw_bps, tcp_l, mss)
    return f_tcp - tack_frequency(bw_bps, rtt_min_s, beta, count_l, mss)
