"""The diagnosis reducer: observations in, per-flow reports out.

:class:`DiagnosisEngine` is a *pure stream reducer*: it consumes
``(t, category, name, flow_id, fields)`` observations — the diagnosis
event vocabulary, a strict subset of the schema-v1 telemetry taxonomy
— and folds them into per-flow state timelines, byte-weighted
attribution, and anomaly findings.  It never reads a clock, never
draws randomness, and never looks at a file: both the live plane
(:class:`repro.diagnose.live.FlowDoctor`) and the offline plane
(:func:`repro.diagnose.offline.diagnose_trace`) drive the same
reducer with the same values in the same order, which is what makes
their reports byte-identical.

Evidence offsets in anomaly findings are indices into the *flow's own*
diagnosis-vocabulary event subsequence (``open`` is event 0), so they
mean the same thing live and offline regardless of how many unrelated
events the surrounding trace carries.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Tuple

from repro.diagnose.states import (
    ACK_STARVED,
    APP_LIMITED,
    CLOSING,
    CWND_LIMITED,
    DEGRADED_TACK,
    HANDSHAKE,
    PACING_LIMITED,
    PULL_RECOVERY,
    RTO_RECOVERY,
    RWND_LIMITED,
)

__all__ = [
    "DiagnosisConfig",
    "DiagnosisEngine",
    "canonical_json",
    "report_digest",
]

#: Report schema stamp (independent of the telemetry schema version).
REPORT_SCHEMA = "repro-diagnosis"
#: v2: per-flow ``guard`` block + the ``misbehaving-peer`` anomaly
#: (feedback-guard violations and the ACK-withholding watchdog).
REPORT_VERSION = 2

#: The diagnosis event vocabulary: exactly the events the live hooks
#: observe.  Offline replay feeds *whole traces* through the engine,
#: so anything outside this set (sampled per-packet sites, cc/update,
#: rttmin_sync, netsim/chaos categories) must be dropped here — before
#: the per-flow evidence-offset counter — or live and offline offsets
#: would disagree.
TRANSPORT_VOCAB = frozenset({
    "open", "established", "limited", "recovery", "persist", "rto",
    "feedback", "complete", "abort", "close",
})

#: Feedback-guard events (all four are diagnosis vocabulary; the
#: validator rate-limits ``violation`` traces itself, identically live
#: and in the recorded trace, so offsets agree across planes).
GUARD_VOCAB = frozenset({
    "violation", "watchdog_probe", "escalated", "summary",
})


def canonical_json(obj: Any) -> str:
    """Canonical compact JSON: sorted keys, no whitespace."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def report_digest(flows: Dict[str, Any]) -> str:
    """SHA-256 of the canonical JSON of the per-flow reports."""
    return hashlib.sha256(
        canonical_json({"flows": flows}).encode("utf-8")).hexdigest()


class DiagnosisConfig:
    """Thresholds for state classification and anomaly detection.

    All defaults derive from the paper's ACK-clock parameters: with
    the Eq. (3) beta-clock (``beta`` ACKs per RTT_min) a healthy flow
    hears feedback every ``rtt_min / beta`` seconds, so silence for
    ``starve_intervals`` such intervals *plus* a full RTT of transit
    slack marks the ACK clock as stalled.
    """

    __slots__ = (
        "beta",
        "starve_intervals",
        "starve_floor_s",
        "spurious_rtt_frac",
        "persist_stall_s",
        "degrade_flap_min",
        "rho_min_feedbacks",
        "rho_tolerance",
    )

    def __init__(
        self,
        beta: float = 4.0,
        starve_intervals: float = 4.0,
        starve_floor_s: float = 0.05,
        spurious_rtt_frac: float = 0.95,
        persist_stall_s: float = 1.0,
        degrade_flap_min: int = 2,
        rho_min_feedbacks: int = 30,
        rho_tolerance: float = 0.25,
    ):
        self.beta = beta
        self.starve_intervals = starve_intervals
        self.starve_floor_s = starve_floor_s
        self.spurious_rtt_frac = spurious_rtt_frac
        self.persist_stall_s = persist_stall_s
        self.degrade_flap_min = degrade_flap_min
        self.rho_min_feedbacks = rho_min_feedbacks
        self.rho_tolerance = rho_tolerance

    def starve_threshold_s(self, rtt_min_s: float) -> float:
        """Feedback silence longer than this marks ACK starvation."""
        per_interval = rtt_min_s / self.beta
        return max(rtt_min_s + self.starve_intervals * per_interval,
                   self.starve_floor_s)


class _FlowDiagnosis:
    """Per-flow reducer state: one exclusive-state timeline."""

    __slots__ = (
        "cfg", "flow_id", "t_open", "t_established", "last_t", "obs",
        "state", "state_since", "state_time", "state_bytes",
        "limit", "recovery", "starved", "degraded", "completed",
        "abort_reason", "total_bytes",
        "last_fb_t", "in_flight", "rtt_min", "srtt", "bytes_acked",
        "n_feedback", "n_acks_emitted", "n_rtos", "n_persists",
        "n_degrade_on", "n_cc_states",
        "starve_start", "starve_episodes", "rto_pending_t", "rto_armed_s",
        "spurious_rtos", "persist_stalls", "degrade_offsets",
        "fb_seen", "max_fb_seq", "rho_est",
        "guard_violations", "guard_total", "guard_escalated",
        "guard_probes", "guard_offsets",
    )

    def __init__(self, cfg: DiagnosisConfig, flow_id: int, t_open: float,
                 total_bytes: Optional[int]):
        self.cfg = cfg
        self.flow_id = flow_id
        self.t_open = t_open
        self.t_established: Optional[float] = None
        self.last_t = t_open
        self.obs = 0                       # per-flow evidence offset
        self.state = HANDSHAKE
        self.state_since = t_open
        self.state_time: Dict[str, float] = {}
        self.state_bytes: Dict[str, int] = {}
        # condition flags feeding classify()
        self.limit = CWND_LIMITED          # sender limit: cwnd default
        self.recovery = "none"
        self.starved = False
        self.degraded = False
        self.completed = False
        self.abort_reason: Optional[str] = None
        self.total_bytes = total_bytes
        # feedback bookkeeping
        self.last_fb_t: Optional[float] = None
        self.in_flight = 0
        self.rtt_min: Optional[float] = None
        self.srtt: Optional[float] = None
        self.bytes_acked = 0
        # counters
        self.n_feedback = 0
        self.n_acks_emitted = 0
        self.n_rtos = 0
        self.n_persists = 0
        self.n_degrade_on = 0
        self.n_cc_states = 0
        # anomaly raw material
        self.starve_start = 0.0
        self.starve_episodes: List[Tuple[float, float, int]] = []
        self.rto_pending_t: Optional[float] = None
        self.rto_armed_s: Optional[float] = None
        self.spurious_rtos: List[Tuple[float, int]] = []
        self.persist_stalls: List[Tuple[float, float, int]] = []
        self.degrade_offsets: List[int] = []
        self.fb_seen = 0
        self.max_fb_seq: Optional[int] = None
        self.rho_est: Optional[float] = None
        # feedback-guard evidence
        self.guard_violations: Dict[str, int] = {}
        self.guard_total = 0
        self.guard_escalated: Optional[str] = None
        self.guard_probes = 0
        self.guard_offsets: List[int] = []

    # -- timeline ----------------------------------------------------
    def _classify(self) -> str:
        if self.t_established is None:
            return HANDSHAKE
        if self.completed or self.abort_reason is not None:
            return CLOSING
        if self.recovery == "rto":
            return RTO_RECOVERY
        if self.recovery == "pull":
            return PULL_RECOVERY
        if self.limit == "rwnd":
            return RWND_LIMITED
        if self.starved:
            return ACK_STARVED
        if self.degraded:
            return DEGRADED_TACK
        if self.limit == "app":
            return APP_LIMITED
        if self.limit == "pacing":
            return PACING_LIMITED
        return CWND_LIMITED

    def _transition(self, new_state: str, t: float) -> None:
        dt = t - self.state_since
        if dt > 0.0:
            self.state_time[self.state] = (
                self.state_time.get(self.state, 0.0) + dt)
            if self.state == RWND_LIMITED and dt > self.cfg.persist_stall_s:
                self.persist_stalls.append((self.state_since, dt, self.obs))
        self.state = new_state
        self.state_since = t

    def reclassify(self, t: float) -> None:
        desired = self._classify()
        if desired != self.state:
            self._transition(desired, t)

    def check_starvation(self, t: float) -> None:
        """Retroactive ACK-starvation entry, checked on every
        observation: if feedback silence already exceeds the
        threshold, the starved interval began at the threshold
        boundary, not at this (later) observation."""
        if self.starved or self.last_fb_t is None or self.rtt_min is None:
            return
        if (self.t_established is None or self.completed
                or self.abort_reason is not None
                or self.recovery != "none" or self.limit == "rwnd"
                or self.in_flight <= 0):
            return
        threshold = self.cfg.starve_threshold_s(self.rtt_min)
        if t - self.last_fb_t > threshold:
            boundary = self.last_fb_t + threshold
            if boundary < self.state_since:
                boundary = self.state_since
            self.starved = True
            self.starve_start = boundary
            self._transition(ACK_STARVED, boundary)

    def end_starvation(self, t: float) -> None:
        if self.starved:
            self.starve_episodes.append((self.starve_start, t, self.obs))
            self.starved = False

    # -- event handlers ----------------------------------------------
    def on_established(self, t: float, fields: Dict[str, Any]) -> None:
        self.t_established = t
        rtt0 = fields.get("rtt_s")
        if isinstance(rtt0, (int, float)) and rtt0 > 0:
            self.rtt_min = float(rtt0)
            self.srtt = float(rtt0)
        # The handshake round trip counts as feedback: the starvation
        # window opens at establishment, not at the first data ACK.
        self.last_fb_t = t

    def on_limited(self, fields: Dict[str, Any]) -> None:
        limit = fields.get("limit")
        if isinstance(limit, str):
            self.limit = limit

    def on_recovery(self, t: float, fields: Dict[str, Any]) -> None:
        mode = fields.get("mode", "none")
        if mode != "none":
            self.end_starvation(t)
        self.recovery = mode if isinstance(mode, str) else "none"

    def on_rto(self, t: float, fields: Dict[str, Any]) -> None:
        self.end_starvation(t)
        self.n_rtos += 1
        self.rto_pending_t = t
        rto_s = fields.get("rto_s")
        self.rto_armed_s = (
            float(rto_s) if isinstance(rto_s, (int, float)) and rto_s > 0
            else None)
        in_flight = fields.get("in_flight")
        if isinstance(in_flight, int):
            self.in_flight = in_flight

    def on_feedback(self, t: float, fields: Dict[str, Any]) -> None:
        self.end_starvation(t)
        acked = fields.get("acked_bytes")
        acked = acked if isinstance(acked, int) else 0
        if acked > 0:
            # Byte-weighted attribution: delivery confirmed now was
            # earned under the state in force while waiting for it.
            self.state_bytes[self.state] = (
                self.state_bytes.get(self.state, 0) + acked)
            self.bytes_acked += acked
        in_flight = fields.get("in_flight")
        if isinstance(in_flight, int):
            self.in_flight = in_flight
        self.n_feedback += 1
        fb_seq = fields.get("fb_seq")
        if isinstance(fb_seq, int):
            self.fb_seen += 1
            if self.max_fb_seq is None or fb_seq > self.max_fb_seq:
                self.max_fb_seq = fb_seq
        rho = fields.get("rho_est")
        if isinstance(rho, (int, float)):
            self.rho_est = float(rho)
        if self.rto_pending_t is not None and acked > 0:
            # Progress sooner than a minimum RTT after the timeout:
            # the acknowledgment was already in flight when the timer
            # fired, so the RTO itself was spurious (Eifel-style
            # detection without timestamps).
            if (self.rtt_min is not None
                    and t - self.rto_pending_t
                    < self.cfg.spurious_rtt_frac * self.rtt_min):
                self.spurious_rtos.append((t, self.obs))
            self.rto_pending_t = None
            self.rto_armed_s = None
        self.last_fb_t = t

    def on_rtt(self, t: float, fields: Dict[str, Any]) -> None:
        # Eifel-lite, second signature: a *valid* RTT sample larger
        # than the timer that just fired proves the outstanding data
        # was delayed, not lost (Karn's rule already excludes samples
        # from retransmitted segments), so the timeout was spurious.
        # Catches route flips / bufferbloat that the fast-feedback
        # rule in on_feedback cannot, because there the delayed ACKs
        # arrive a full (new) RTT after the timer.
        sample = fields.get("rtt_s")
        if (self.rto_pending_t is not None
                and self.rto_armed_s is not None
                and isinstance(sample, (int, float))
                and sample > self.rto_armed_s):
            self.spurious_rtos.append((t, self.obs))
            self.rto_pending_t = None
            self.rto_armed_s = None
        rtt_min = fields.get("rtt_min_s")
        if isinstance(rtt_min, (int, float)) and rtt_min > 0:
            self.rtt_min = float(rtt_min)
        srtt = fields.get("srtt_s")
        if isinstance(srtt, (int, float)) and srtt > 0:
            self.srtt = float(srtt)

    def on_degrade(self, t: float, fields: Dict[str, Any]) -> None:
        on = bool(fields.get("on"))
        self.degraded = on
        if on:
            self.n_degrade_on += 1
            self.degrade_offsets.append(self.obs)

    def on_guard(self, name: str, fields: Dict[str, Any]) -> None:
        """Fold one feedback-guard event into the evidence.

        ``violation`` traces are rate-limited at the source, so the
        per-rule counts here are running maxima refreshed by the
        ``summary`` event's authoritative totals at close.
        """
        if name == "violation":
            rule = fields.get("rule")
            count = fields.get("count")
            if isinstance(rule, str) and isinstance(count, int):
                if count > self.guard_violations.get(rule, 0):
                    self.guard_violations[rule] = count
                if len(self.guard_offsets) < 8:
                    self.guard_offsets.append(self.obs)
        elif name == "watchdog_probe":
            probes = fields.get("probes")
            if isinstance(probes, int) and probes > self.guard_probes:
                self.guard_probes = probes
            if len(self.guard_offsets) < 8:
                self.guard_offsets.append(self.obs)
        elif name == "escalated":
            rule = fields.get("rule")
            if isinstance(rule, str):
                self.guard_escalated = rule
        elif name == "summary":
            for key, val in fields.items():
                if not isinstance(val, int):
                    continue
                if key == "total":
                    self.guard_total = max(self.guard_total, val)
                elif key != "frames":
                    if val > self.guard_violations.get(key, 0):
                        self.guard_violations[key] = val
        total = sum(self.guard_violations.values())
        if total > self.guard_total:
            self.guard_total = total

    # -- finalization ------------------------------------------------
    def _anomalies(self, t_end: float) -> List[Dict[str, Any]]:
        found: List[Dict[str, Any]] = []
        if self.spurious_rtos:
            found.append({
                "kind": "spurious-rto",
                "count": len(self.spurious_rtos),
                "first_s": self.spurious_rtos[0][0],
                "evidence": [off for _, off in self.spurious_rtos[:8]],
            })
        if self.starve_episodes:
            durations = [end - start for start, end, _ in self.starve_episodes]
            found.append({
                "kind": "ack-starvation",
                "count": len(self.starve_episodes),
                "total_s": sum(durations),
                "max_s": max(durations),
                "first_s": self.starve_episodes[0][0],
                "evidence": [off for _, _, off in self.starve_episodes[:8]],
            })
        if self.n_degrade_on >= self.cfg.degrade_flap_min:
            found.append({
                "kind": "degrade-flap",
                "count": self.n_degrade_on,
                "evidence": self.degrade_offsets[:8],
            })
        if self.persist_stalls:
            found.append({
                "kind": "persist-stall",
                "count": len(self.persist_stalls),
                "max_s": max(dur for _, dur, _ in self.persist_stalls),
                "first_s": self.persist_stalls[0][0],
                "evidence": [off for _, _, off in self.persist_stalls[:8]],
            })
        hostile = {rule: n for rule, n in self.guard_violations.items()
                   if rule != "withheld"}
        if hostile or self.abort_reason == "misbehaving_peer":
            # Watchdog probes alone ("withheld") are not evidence of
            # hostility — legitimate blackouts probe once or twice —
            # but a misbehaving_peer abort always is, whatever fired it.
            found.append({
                "kind": "misbehaving-peer",
                "count": sum(hostile.values()),
                "rules": dict(sorted(hostile.items())),
                "escalated_rule": self.guard_escalated,
                "watchdog_probes": self.guard_probes,
                "evidence": self.guard_offsets[:8],
            })
        rho_truth = self.rho_truth()
        if (rho_truth is not None and self.rho_est is not None
                and self.fb_seen >= self.cfg.rho_min_feedbacks
                and abs(self.rho_est - rho_truth) > self.cfg.rho_tolerance):
            found.append({
                "kind": "rho-mismatch",
                "est": self.rho_est,
                "truth": rho_truth,
            })
        return found

    def rho_truth(self) -> Optional[float]:
        """Ground-truth ACK-path loss: the receiver numbered its
        feedback densely (``fb_seq``), so holes in what the sender saw
        are exactly the feedback the reverse path dropped."""
        if self.max_fb_seq is None or self.fb_seen == 0:
            return None
        return 1.0 - self.fb_seen / (self.max_fb_seq + 1)

    def finalize(self, t_end: float) -> Dict[str, Any]:
        self.end_starvation(t_end)
        self._transition(self.state, t_end)   # close the open interval
        duration = t_end - self.t_open
        # The dominant diagnosis excludes the closing tail: a host may
        # keep the simulation running long after the transfer finished
        # (chaos time limits do), and that idle wait must not shadow
        # what actually shaped the transfer.
        active = {state: secs for state, secs in self.state_time.items()
                  if state != CLOSING}
        if active:
            dominant = max(active.items(), key=lambda kv: (kv[1], kv[0]))[0]
        elif self.state_time:
            dominant = CLOSING
        else:
            dominant = self.state
        if self.abort_reason is not None:
            outcome = "aborted"
        elif self.completed:
            outcome = "completed"
        else:
            outcome = "open"
        # Goodput over the *active* lifetime: the closing tail (after
        # completion/abort, before the close event) is by definition
        # post-transfer and would dilute the rate with idle time.
        active_s = duration - self.state_time.get(CLOSING, 0.0)
        goodput = self.bytes_acked * 8.0 / active_s if active_s > 0 else 0.0
        return {
            "open_s": self.t_open,
            "established_s": self.t_established,
            "close_s": t_end,
            "duration_s": duration,
            "active_s": active_s,
            "outcome": outcome,
            "abort_reason": self.abort_reason,
            "total_bytes": self.total_bytes,
            "bytes_acked": self.bytes_acked,
            "goodput_bps": goodput,
            "dominant": dominant,
            "state_time_s": dict(sorted(self.state_time.items())),
            "state_bytes": dict(sorted(self.state_bytes.items())),
            "anomalies": self._anomalies(t_end),
            "rho": {
                "est": self.rho_est,
                "truth": self.rho_truth(),
                "fb_seen": self.fb_seen,
                "max_fb_seq": self.max_fb_seq,
            },
            "guard": {
                "violations": dict(sorted(self.guard_violations.items())),
                "total": self.guard_total,
                "escalated_rule": self.guard_escalated,
                "watchdog_probes": self.guard_probes,
            },
            "counters": {
                "events": self.obs,
                "feedbacks": self.n_feedback,
                "acks_emitted": self.n_acks_emitted,
                "rtos": self.n_rtos,
                "persist_probes": self.n_persists,
                "degrades": self.n_degrade_on,
                "cc_states": self.n_cc_states,
            },
        }


class DiagnosisEngine:
    """Stream reducer over the diagnosis event vocabulary.

    Feed it every diagnosis-relevant observation via :meth:`observe`
    (times must be non-decreasing, as simulator clocks and traces
    are); collect per-flow reports via :meth:`report`, or pop flows
    incrementally with :meth:`pop_flow` to keep memory flat at fleet
    scale.
    """

    def __init__(self, config: Optional[DiagnosisConfig] = None):
        self.config = config if config is not None else DiagnosisConfig()
        self._flows: Dict[int, _FlowDiagnosis] = {}
        self._done: Dict[int, Dict[str, Any]] = {}

    # -- ingestion ---------------------------------------------------
    def observe(self, t_s: float, category: str, name: str, flow_id: int,
                fields: Dict[str, Any]) -> None:
        # Vocabulary gate first: the `ack` category is all-vocabulary
        # (feedback kinds + degrade), the others carry one or a few
        # diagnosis events amid hot-path noise.
        if category == "transport":
            if name not in TRANSPORT_VOCAB:
                return
        elif category == "timing":
            if name != "rtt_sample":
                return
        elif category == "cc":
            if name != "state":
                return
        elif category == "guard":
            if name not in GUARD_VOCAB:
                return
        elif category != "ack":
            return
        if category == "transport" and name == "open":
            if flow_id not in self._flows and flow_id not in self._done:
                total = fields.get("total_bytes")
                self._flows[flow_id] = _FlowDiagnosis(
                    self.config, flow_id, t_s,
                    total if isinstance(total, int) else None)
            return
        flow = self._flows.get(flow_id)
        if flow is None:
            return      # before open or after close: both paths drop it
        flow.obs += 1
        flow.last_t = t_s
        flow.check_starvation(t_s)
        if category == "transport":
            if name == "feedback":
                flow.on_feedback(t_s, fields)
            elif name == "limited":
                flow.on_limited(fields)
            elif name == "recovery":
                flow.on_recovery(t_s, fields)
            elif name == "rto":
                flow.on_rto(t_s, fields)
            elif name == "persist":
                flow.n_persists += 1
            elif name == "established":
                flow.on_established(t_s, fields)
            elif name == "complete":
                flow.completed = True
            elif name == "abort":
                reason = fields.get("reason")
                flow.abort_reason = (reason if isinstance(reason, str)
                                     else "unknown")
            elif name == "close":
                self._done[flow_id] = flow.finalize(t_s)
                del self._flows[flow_id]
                return
        elif category == "ack":
            if name == "degrade":
                flow.on_degrade(t_s, fields)
            else:
                flow.n_acks_emitted += 1
        elif category == "timing":
            if name == "rtt_sample":
                flow.on_rtt(t_s, fields)
        elif category == "cc":
            if name == "state":
                flow.n_cc_states += 1
        elif category == "guard":
            flow.on_guard(name, fields)
        flow.reclassify(t_s)

    # -- extraction --------------------------------------------------
    def finalize(self, end_s: Optional[float] = None) -> None:
        """Close every still-open flow.  Without an explicit end time
        each flow ends at its own last observation — a stream-derived
        value, identical live and offline."""
        for flow_id in sorted(self._flows):
            flow = self._flows.pop(flow_id)
            self._done[flow_id] = flow.finalize(
                end_s if end_s is not None else flow.last_t)

    def pop_flow(self, flow_id: int,
                 end_s: Optional[float] = None) -> Optional[Dict[str, Any]]:
        """Finalize (if needed) and remove one flow's report."""
        flow = self._flows.pop(flow_id, None)
        if flow is not None:
            self._done[flow_id] = flow.finalize(
                end_s if end_s is not None else flow.last_t)
        return self._done.pop(flow_id, None)

    def flows(self) -> Dict[str, Dict[str, Any]]:
        """Finalized per-flow reports, keyed by stringified flow id."""
        return {str(fid): rep for fid, rep in sorted(self._done.items())}

    def report(self) -> Dict[str, Any]:
        """The full diagnosis report with its canonical digest."""
        flows = self.flows()
        return {
            "schema": REPORT_SCHEMA,
            "version": REPORT_VERSION,
            "flows": flows,
            "digest": report_digest(flows),
        }
