"""Offline diagnosis plane: replay any schema-v1 trace.

Host-side module (file I/O).  ``diagnose_trace`` accepts either a
JSONL trace or a binary ``.rtb`` trace (sniffed by magic, no flag
needed) and replays its diagnosis-vocabulary events through the same
:class:`~repro.diagnose.engine.DiagnosisEngine` the live
:class:`~repro.diagnose.live.FlowDoctor` drives — which is why the
resulting report, including its digest, is byte-identical to the live
one for the same run.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional

from repro.diagnose.engine import DiagnosisConfig, DiagnosisEngine
from repro.telemetry.events import TraceEvent
from repro.telemetry.trace_io import read_trace

__all__ = ["diagnose_events", "diagnose_trace", "load_trace_events"]


def load_trace_events(path: str, allow_truncated: bool = False):
    """Load ``(meta, events)`` from a JSONL or binary trace."""
    from repro.telemetry.binlog.format import is_binary_preamble

    with open(path, "rb") as fh:
        head = fh.read(16)
    if is_binary_preamble(head):
        from repro.telemetry.binlog.convert import read_binary_trace

        return read_binary_trace(path, require_trailer=not allow_truncated)
    header, events = read_trace(path)
    return header.get("meta"), events


def diagnose_events(events: Iterable[TraceEvent],
                    config: Optional[DiagnosisConfig] = None,
                    ) -> Dict[str, Any]:
    """Run the diagnosis reducer over an in-memory event stream."""
    engine = DiagnosisEngine(config)
    for event in events:
        engine.observe(event.time, event.category, event.name,
                       event.flow_id, event.fields)
    engine.finalize()
    return engine.report()


def diagnose_trace(path: str, config: Optional[DiagnosisConfig] = None,
                   allow_truncated: bool = False) -> Dict[str, Any]:
    """Diagnose a trace file; returns the full report dict."""
    _meta, events = load_trace_events(path, allow_truncated=allow_truncated)
    return diagnose_events(events, config)
