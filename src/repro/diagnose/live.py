"""Live diagnosis plane: the simulator-attached flow doctor.

:class:`FlowDoctor` is the only simulation-side piece of the package:
it holds the bound simulation clock and forwards hook calls into the
pure :class:`~repro.diagnose.engine.DiagnosisEngine`.  Components
reach it through the ``sim.diagnosis`` slot with the same null-guard
discipline as telemetry/energy/simsan hooks — one ``is not None``
check per site when diagnosis is off.

The hooks sit *next to* the telemetry emits and pass the *same field
values*, and the doctor stamps time from the same simulation clock the
trace collector binds, so replaying the recorded trace offline through
the same engine reproduces this doctor's report byte-for-byte
(provided the collector did not sample away diagnosis-vocabulary
categories — the default configuration does not).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.diagnose.engine import DiagnosisConfig, DiagnosisEngine

__all__ = ["FlowDoctor"]


class FlowDoctor:
    """Per-simulation diagnosis collector.

    Create it before the endpoints, attach with
    ``sim.attach_diagnosis(doctor)`` (or the ``diagnosis=`` constructor
    argument of :class:`~repro.netsim.engine.Simulator`), and read the
    report after the run::

        doctor = FlowDoctor()
        sim = Simulator(seed=1, diagnosis=doctor)
        ...  # build path + connection, run
        doctor.finalize()
        report = doctor.report()
    """

    def __init__(self, config: Optional[DiagnosisConfig] = None):
        self.engine = DiagnosisEngine(config)
        self._now = None

    def attach(self, sim) -> "FlowDoctor":
        """Bind the simulation clock; called by ``attach_diagnosis``."""
        self._now = sim.clock.now
        return self

    # -- hook entry point (hot-ish path; one call per diagnosis event)
    def observe(self, category: str, name: str, flow_id: int = 0,
                **fields: Any) -> None:
        self.engine.observe(self._now(), category, name, flow_id, fields)

    # -- extraction ---------------------------------------------------
    def finalize(self, end_s: Optional[float] = None) -> None:
        self.engine.finalize(end_s)

    def pop_flow(self, flow_id: int) -> Optional[Dict[str, Any]]:
        return self.engine.pop_flow(flow_id)

    def flows(self) -> Dict[str, Dict[str, Any]]:
        return self.engine.flows()

    def report(self) -> Dict[str, Any]:
        return self.engine.report()
