"""Send-limit state vocabulary for the flow doctor.

Every instant of a flow's lifetime belongs to exactly one of these
states.  When several conditions hold at once (a flow can be inside
RTO recovery *and* nominally cwnd-limited), the state earlier in
:data:`PRIORITY` wins — recovery and control-plane conditions shadow
the steady-state limit classification, mirroring how tcp_info-style
rate samples fold app-limited epochs out of cwnd-limited ones.
"""

from __future__ import annotations

#: Connection has not completed the handshake yet (includes SYN
#: retries and handshake-timeout aborts).
HANDSHAKE = "handshake"

#: Transfer finished (all bytes cumulatively acked) or structurally
#: aborted; the tail until ``close`` is bookkeeping, not sending.
CLOSING = "closing"

#: Timeout recovery: an RTO fired and the recovery point (the highest
#: sequence outstanding at the timeout) has not been fully acked yet.
RTO_RECOVERY = "rto-recovery"

#: Feedback-driven loss recovery (IACK pulls, TACK unacked blocks,
#: dupACK/RACK) without a timeout.
PULL_RECOVERY = "pull-recovery"

#: The receiver's advertised window (not cwnd) is the binding
#: constraint — includes zero-window persist probing.
RWND_LIMITED = "rwnd-limited"

#: No feedback of any kind for longer than the starvation threshold
#: while bytes are in flight: the ACK clock has stalled.
ACK_STARVED = "ack-starved"

#: The TACK receiver has boosted its ACK frequency above the Eq. (3)
#: minimum because measured ACK-path loss crossed the degradation
#: threshold.
DEGRADED_TACK = "degraded-tack"

#: The application ran out of data to send.
APP_LIMITED = "app-limited"

#: The pacer (paper S5.3) is metering transmissions; the window has
#: room.
PACING_LIMITED = "pacing-limited"

#: Default steady state: the congestion window is the binding
#: constraint.
CWND_LIMITED = "cwnd-limited"

#: Classification priority, highest first.  ``classify`` returns the
#: first state whose condition holds.
PRIORITY = (
    HANDSHAKE,
    CLOSING,
    RTO_RECOVERY,
    PULL_RECOVERY,
    RWND_LIMITED,
    ACK_STARVED,
    DEGRADED_TACK,
    APP_LIMITED,
    PACING_LIMITED,
    CWND_LIMITED,
)

#: Every state, in priority order (stable for table rendering).
ALL_STATES = PRIORITY

#: States that represent productive steady-state sending; everything
#: else is waiting, recovering, or tearing down.  Used by ``explain``
#: to phrase where a slower run's extra time went.
PRODUCTIVE_STATES = frozenset({CWND_LIMITED, PACING_LIMITED, APP_LIMITED})
