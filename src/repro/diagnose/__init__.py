"""Flow doctor: per-connection send-limit diagnosis (PR 9).

The package classifies every instant of a flow's lifetime into one of
the exclusive send-limit states of :mod:`repro.diagnose.states`, either
**live** (a :class:`FlowDoctor` attached to the simulator, fed by
null-guarded hooks sitting next to the existing telemetry hooks) or
**offline** (replaying any schema-v1 trace, JSONL or binary, through
the same reducer).  The two paths observe the same event vocabulary
with the same values and the same clock, so their reports — and the
report digests — are byte-identical.

Layering:

* :mod:`repro.diagnose.states` — state vocabulary and priority.
* :mod:`repro.diagnose.engine` — the pure stream reducer
  (:class:`DiagnosisEngine`) plus anomaly detection.
* :mod:`repro.diagnose.live` — :class:`FlowDoctor`, the simulation-side
  adapter (holds the bound sim clock; everything else is host code).
* :mod:`repro.diagnose.offline` — trace replay (`diagnose_trace`).
* :mod:`repro.diagnose.explain` — two-run goodput-delta attribution.
* :mod:`repro.diagnose.cli` — ``python -m repro.diagnose``.
"""

from repro.diagnose.engine import DiagnosisConfig, DiagnosisEngine
from repro.diagnose.explain import explain_reports
from repro.diagnose.live import FlowDoctor
from repro.diagnose.offline import diagnose_trace
from repro.diagnose.states import ALL_STATES

__all__ = [
    "ALL_STATES",
    "DiagnosisConfig",
    "DiagnosisEngine",
    "FlowDoctor",
    "diagnose_trace",
    "explain_reports",
]
