"""Run-diff explainer: attribute a goodput delta between two runs.

Two diagnosis reports of the *same experiment* (same transfer, same
scheme, different conditions or code) differ in goodput because the
slower run spent extra wall-clock somewhere.  Since per-flow state
times partition each flow's lifetime exactly, the per-state time
deltas partition the duration delta exactly — so ranking positive
state-time deltas *is* the attribution, no model needed.  Anomaly
count deltas ride along as corroborating findings.
"""

from __future__ import annotations

from typing import Any, Dict, List

__all__ = ["explain_reports", "summarize_report"]


def summarize_report(report: Dict[str, Any]) -> Dict[str, Any]:
    """Collapse a diagnosis report across flows into run totals."""
    duration = 0.0
    bytes_acked = 0
    state_time: Dict[str, float] = {}
    anomalies: Dict[str, int] = {}
    outcomes: Dict[str, int] = {}
    active = 0.0
    for _fid, flow in sorted(report.get("flows", {}).items()):
        duration += flow["duration_s"]
        # "active_s" excludes the post-completion closing tail; fall
        # back to full duration for reports predating the field.
        active += flow.get("active_s", flow["duration_s"])
        bytes_acked += flow["bytes_acked"]
        for state, secs in flow["state_time_s"].items():
            state_time[state] = state_time.get(state, 0.0) + secs
        for finding in flow["anomalies"]:
            kind = finding["kind"]
            anomalies[kind] = anomalies.get(kind, 0) + finding.get("count", 1)
        outcome = flow["outcome"]
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
    goodput = bytes_acked * 8.0 / active if active > 0 else 0.0
    return {
        "flows": len(report.get("flows", {})),
        "duration_s": duration,
        "active_s": active,
        "bytes_acked": bytes_acked,
        "goodput_bps": goodput,
        "state_time_s": dict(sorted(state_time.items())),
        "anomalies": dict(sorted(anomalies.items())),
        "outcomes": dict(sorted(outcomes.items())),
    }


def explain_reports(report_a: Dict[str, Any], report_b: Dict[str, Any],
                    label_a: str = "A", label_b: str = "B",
                    min_delta_s: float = 1e-6) -> Dict[str, Any]:
    """Explain why run B's goodput differs from run A's.

    Returns a dict with per-run summaries, the per-state time deltas
    (B minus A) ranked by contribution, anomaly count deltas, and a
    one-line human ``headline``.
    """
    a = summarize_report(report_a)
    b = summarize_report(report_b)
    states = sorted(set(a["state_time_s"]) | set(b["state_time_s"]))
    deltas = []
    for state in states:
        delta = (b["state_time_s"].get(state, 0.0)
                 - a["state_time_s"].get(state, 0.0))
        if abs(delta) > min_delta_s:
            deltas.append({"state": state, "delta_s": delta})
    deltas.sort(key=lambda d: (-d["delta_s"], d["state"]))
    gained = sum(d["delta_s"] for d in deltas if d["delta_s"] > 0)
    for d in deltas:
        d["share"] = d["delta_s"] / gained if gained > 0 else 0.0

    kinds = sorted(set(a["anomalies"]) | set(b["anomalies"]))
    anomaly_delta = {}
    for kind in kinds:
        diff = b["anomalies"].get(kind, 0) - a["anomalies"].get(kind, 0)
        if diff != 0:
            anomaly_delta[kind] = diff

    if a["goodput_bps"] > 0:
        goodput_frac = b["goodput_bps"] / a["goodput_bps"] - 1.0
    else:
        goodput_frac = 0.0
    headline = _headline(label_a, label_b, goodput_frac, deltas,
                         anomaly_delta, b)
    return {
        "a": {"label": label_a, **a},
        "b": {"label": label_b, **b},
        "goodput_delta_frac": goodput_frac,
        "duration_delta_s": b["duration_s"] - a["duration_s"],
        "active_delta_s": b["active_s"] - a["active_s"],
        "attribution": deltas,
        "anomaly_delta": anomaly_delta,
        "headline": headline,
    }


def _headline(label_a: str, label_b: str, goodput_frac: float,
              deltas: List[Dict[str, Any]], anomaly_delta: Dict[str, int],
              b: Dict[str, Any]) -> str:
    if goodput_frac < -0.005:
        verdict = f"{label_b} lost {-goodput_frac:.1%} goodput vs {label_a}"
    elif goodput_frac > 0.005:
        verdict = f"{label_b} gained {goodput_frac:.1%} goodput vs {label_a}"
    else:
        verdict = f"{label_b} matches {label_a} (goodput within 0.5%)"
    parts = [verdict]
    top = [d for d in deltas if d["delta_s"] > 0][:3]
    if top:
        parts.append(", ".join(
            f"+{d['delta_s']:.2f} s in {d['state']}" for d in top))
    worst = sorted(anomaly_delta.items(), key=lambda kv: (-kv[1], kv[0]))
    worst = [(kind, diff) for kind, diff in worst if diff > 0][:3]
    if worst:
        parts.append(", ".join(
            f"{diff} extra {kind} finding{'s' if diff != 1 else ''}"
            for kind, diff in worst))
    aborted = b["outcomes"].get("aborted", 0)
    if aborted:
        parts.append(f"{aborted} flow(s) aborted in {label_b}")
    return "; ".join(parts)
