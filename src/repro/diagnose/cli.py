"""``python -m repro.diagnose`` — flow-doctor CLI.

Subcommands::

    report  TRACE             per-flow state timeline + anomalies
    check   TRACE --expect S  assert the dominant diagnosis (exit 1 on
                              mismatch) — CI-friendly
    explain A B               attribute the goodput delta between two
                              traces of the same experiment

Exit codes: 0 success, 1 check failed (diagnosis mismatch),
2 usage/format error — the same convention as the telemetry CLI.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Optional

from repro.diagnose.explain import explain_reports
from repro.diagnose.offline import diagnose_trace

__all__ = ["main"]


def _load_report(path: str, allow_truncated: bool) -> Dict[str, Any]:
    try:
        return diagnose_trace(path, allow_truncated=allow_truncated)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: {exc}")


def _fmt_seconds(secs: float) -> str:
    return f"{secs:.3f}"


def _print_report(report: Dict[str, Any], path: str) -> None:
    print(f"# diagnosis of {path}")
    print(f"# digest {report['digest']}")
    for fid, flow in sorted(report["flows"].items()):
        dur = flow["duration_s"]
        print(f"flow {fid}: {flow['outcome']}"
              + (f" ({flow['abort_reason']})" if flow["abort_reason"] else "")
              + f", {_fmt_seconds(dur)} s,"
              f" {flow['bytes_acked']} bytes acked,"
              f" {flow['goodput_bps'] / 1e6:.3f} Mbit/s,"
              f" dominant {flow['dominant']}")
        header = f"  {'state':<16} {'time s':>10} {'share':>7} {'bytes':>12}"
        print(header)
        for state, secs in sorted(flow["state_time_s"].items(),
                                  key=lambda kv: -kv[1]):
            share = secs / dur if dur > 0 else 0.0
            nbytes = flow["state_bytes"].get(state, 0)
            print(f"  {state:<16} {secs:>10.4f} {share:>6.1%} {nbytes:>12}")
        rho = flow["rho"]
        if rho["truth"] is not None:
            est = "-" if rho["est"] is None else f"{rho['est']:.3f}"
            print(f"  rho': est {est}, truth {rho['truth']:.3f} "
                  f"({rho['fb_seen']}/{rho['max_fb_seq'] + 1} feedback seen)")
        for finding in flow["anomalies"]:
            extra = {k: v for k, v in finding.items()
                     if k not in ("kind", "evidence")}
            detail = ", ".join(
                f"{k}={v:.4f}" if isinstance(v, float) else f"{k}={v}"
                for k, v in sorted(extra.items()))
            print(f"  anomaly {finding['kind']}: {detail}"
                  f" (evidence offsets {finding.get('evidence', [])})")


def cmd_report(args: argparse.Namespace) -> int:
    report = _load_report(args.trace, args.allow_truncated)
    if args.json:
        json.dump(report, sys.stdout, indent=None if args.compact else 2,
                  sort_keys=True)
        print()
    else:
        _print_report(report, args.trace)
    if args.save:
        with open(args.save, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    report = _load_report(args.trace, args.allow_truncated)
    flows = report["flows"]
    if args.flow is not None:
        flows = {k: v for k, v in flows.items() if k == str(args.flow)}
        if not flows:
            raise SystemExit(f"error: no flow {args.flow} in {args.trace}")
    if not flows:
        raise SystemExit(f"error: no flows diagnosed in {args.trace}")
    failures = []
    for fid, flow in sorted(flows.items()):
        kinds = {finding["kind"] for finding in flow["anomalies"]}
        if args.expect is not None:
            accepted = args.expect.split("|")
            if not any(tok == flow["dominant"] or tok in kinds
                       for tok in accepted):
                failures.append(
                    f"flow {fid}: dominant {flow['dominant']} "
                    f"(anomalies: {sorted(kinds) or 'none'}), "
                    f"expected {args.expect}")
        if args.max_anomalies is not None:
            total = sum(finding.get("count", 1)
                        for finding in flow["anomalies"])
            if total > args.max_anomalies:
                failures.append(
                    f"flow {fid}: {total} anomalies "
                    f"> allowed {args.max_anomalies}")
    for line in failures:
        print(f"FAIL {line}")
    if not failures:
        doms = {flow["dominant"] for flow in flows.values()}
        print(f"OK {len(flows)} flow(s), dominant {sorted(doms)}")
    return 1 if failures else 0


def cmd_explain(args: argparse.Namespace) -> int:
    report_a = _load_report(args.trace_a, args.allow_truncated)
    report_b = _load_report(args.trace_b, args.allow_truncated)
    result = explain_reports(report_a, report_b,
                             label_a=args.label_a, label_b=args.label_b)
    if args.json:
        json.dump(result, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        print(result["headline"])
        for d in result["attribution"]:
            print(f"  {d['state']:<16} {d['delta_s']:>+10.4f} s"
                  f"  ({d['share']:>6.1%} of added time)"
                  if d["delta_s"] > 0 else
                  f"  {d['state']:<16} {d['delta_s']:>+10.4f} s")
        for kind, diff in sorted(result["anomaly_delta"].items()):
            print(f"  anomaly {kind}: {diff:+d}")
    if args.save:
        with open(args.save, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.diagnose",
        description="Flow doctor: diagnose schema-v1 traces.")
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_report = sub.add_parser("report", help="per-flow diagnosis report")
    p_report.add_argument("trace")
    p_report.add_argument("--json", action="store_true")
    p_report.add_argument("--compact", action="store_true",
                          help="single-line JSON (implies --json)")
    p_report.add_argument("--save", metavar="PATH",
                          help="also write the JSON report to PATH")
    p_report.add_argument("--allow-truncated", action="store_true",
                          help="accept a binary trace missing its trailer")
    p_report.set_defaults(fn=cmd_report)

    p_check = sub.add_parser(
        "check", help="assert the dominant diagnosis (exit 1 on mismatch)")
    p_check.add_argument("trace")
    p_check.add_argument("--expect", metavar="STATE[|STATE...]",
                         help="accepted dominant state or anomaly kind; "
                              "'|' separates alternatives")
    p_check.add_argument("--flow", type=int, default=None,
                         help="check only this flow id")
    p_check.add_argument("--max-anomalies", type=int, default=None)
    p_check.add_argument("--allow-truncated", action="store_true")
    p_check.set_defaults(fn=cmd_check)

    p_explain = sub.add_parser(
        "explain", help="attribute the goodput delta between two traces")
    p_explain.add_argument("trace_a")
    p_explain.add_argument("trace_b")
    p_explain.add_argument("--label-a", default="A")
    p_explain.add_argument("--label-b", default="B")
    p_explain.add_argument("--json", action="store_true")
    p_explain.add_argument("--save", metavar="PATH")
    p_explain.add_argument("--allow-truncated", action="store_true")
    p_explain.set_defaults(fn=cmd_explain)
    return parser


def main(argv: Optional[list] = None) -> int:
    args = _build_parser().parse_args(argv)
    if getattr(args, "compact", False):
        args.json = True
    try:
        return args.fn(args)
    except SystemExit as exc:
        if isinstance(exc.code, str):
            print(exc.code, file=sys.stderr)
            return 2
        raise
