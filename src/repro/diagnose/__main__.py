"""Entry point for ``python -m repro.diagnose``."""

import sys

from repro.diagnose.cli import main

if __name__ == "__main__":
    sys.exit(main())
