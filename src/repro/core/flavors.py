"""Assembled protocol flavors.

``make_connection`` builds the schemes the paper evaluates:

========================  ==========================================
scheme                    composition
========================  ==========================================
``tcp-tack``              TACK policy + receiver-driven loss
                          detection + advanced timing + co-designed
                          BBR on receiver-reported rates (TCP-TACK)
``tcp-tack-poor``         same but TACKs carry only Q=1 blocks and run
                          the literal Eq. (3) clock (no HoLB
                          keep-alive) — the paper's Fig. 5(b) baseline
``tcp-tack-cubic``        TACK mechanism with CUBIC
``tcp-bbr``               delayed ACK + SACK + RACK + sender BBR
``tcp-cubic``             delayed ACK + SACK + RACK + CUBIC
``tcp-reno``              delayed ACK + SACK + NewReno
``tcp-vegas``             delayed ACK + SACK + Vegas
``tcp-bbr-l{4,8,16}``     the paper's ACK-thinning patch: L=4/8/16
``tcp-bbr-perpacket``     TCP_QUICKACK (L=1)
========================  ==========================================
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.ack import (
    AckPolicy,
    ByteCountingAck,
    DelayedAck,
    PeriodicAck,
    PerPacketAck,
    TackPolicy,
)
from repro.cc import BBR, CompoundTcp, Cubic, NewReno, Vegas
from repro.cc.base import CongestionController
from repro.core.params import TackParams
from repro.netsim.engine import Simulator
from repro.transport.connection import Connection, ConnectionConfig
from repro.transport.guard import GuardConfig


def _tack_scheme(cc_factory: Callable[[], CongestionController],
                 rich: "bool | str", timing_mode: str = "advanced",
                 holb_keepalive: bool = True):
    def build(sim: Simulator, params: Optional[TackParams], flow_id: int,
              rcv_buffer: int, initial_rtt_s: float,
              guard: Optional[GuardConfig] = None) -> Connection:
        tack_params = (params or TackParams()).copy(
            rich=rich, timing_mode=timing_mode, holb_keepalive=holb_keepalive
        )
        cc = cc_factory()
        if isinstance(cc, BBR):
            cc._initial_rtt_s = initial_rtt_s
        config = ConnectionConfig(
            receiver_driven=True,
            use_receiver_rate=True,
            timing_mode=tack_params.timing_mode,
            rcv_buffer_bytes=rcv_buffer,
            flow_id=flow_id,
            guard=guard,
        )
        return Connection(sim, cc, TackPolicy(tack_params), config)
    return build


def _legacy_scheme(cc_factory: Callable[[], CongestionController],
                   policy_factory: Callable[[], AckPolicy]):
    def build(sim: Simulator, params: Optional[TackParams], flow_id: int,
              rcv_buffer: int, initial_rtt_s: float,
              guard: Optional[GuardConfig] = None) -> Connection:
        cc = cc_factory()
        if isinstance(cc, BBR):
            cc._initial_rtt_s = initial_rtt_s
        config = ConnectionConfig(
            receiver_driven=False,
            use_receiver_rate=False,
            rcv_buffer_bytes=rcv_buffer,
            flow_id=flow_id,
            guard=guard,
        )
        return Connection(sim, cc, policy_factory(), config)
    return build


SCHEMES: dict[str, Callable] = {
    "tcp-tack": _tack_scheme(BBR, rich=True),
    "tcp-tack-poor": _tack_scheme(BBR, rich=False),
    "tcp-tack-poor-literal": _tack_scheme(BBR, rich=False, holb_keepalive=False),
    "tcp-tack-adaptive": _tack_scheme(BBR, rich="adaptive"),
    "tcp-tack-naive-timing": _tack_scheme(BBR, rich=True, timing_mode="naive"),
    "tcp-tack-perpacket-timing": _tack_scheme(BBR, rich=True,
                                              timing_mode="per-packet"),
    "tcp-tack-cubic": _tack_scheme(Cubic, rich=True),
    "tcp-tack-compound": _tack_scheme(CompoundTcp, rich=True),
    "tcp-compound": _legacy_scheme(CompoundTcp, DelayedAck),
    "tcp-bbr": _legacy_scheme(BBR, DelayedAck),
    "tcp-cubic": _legacy_scheme(Cubic, DelayedAck),
    "tcp-reno": _legacy_scheme(NewReno, DelayedAck),
    "tcp-vegas": _legacy_scheme(Vegas, DelayedAck),
    "tcp-bbr-perpacket": _legacy_scheme(BBR, PerPacketAck),
    "tcp-bbr-periodic": _legacy_scheme(BBR, PeriodicAck),
    "tcp-bbr-l4": _legacy_scheme(BBR, lambda: ByteCountingAck(4)),
    "tcp-bbr-l8": _legacy_scheme(BBR, lambda: ByteCountingAck(8)),
    "tcp-bbr-l16": _legacy_scheme(BBR, lambda: ByteCountingAck(16)),
}


def make_connection(
    sim: Simulator,
    scheme: str = "tcp-tack",
    params: Optional[TackParams] = None,
    flow_id: int = 0,
    rcv_buffer_bytes: int = 8 * 1024 * 1024,
    initial_rtt_s: float = 0.05,
    guard: Optional[GuardConfig] = None,
) -> Connection:
    """Build a connection of the named scheme.

    ``initial_rtt_s`` seeds BBR before the first measurement (the real
    stack inherits this from the handshake).  ``guard`` tunes the
    sender's feedback validator (``None`` keeps the default-enabled
    :class:`~repro.transport.guard.GuardConfig`).
    """
    try:
        factory = SCHEMES[scheme]
    except KeyError:
        raise KeyError(f"unknown scheme {scheme!r}; have {sorted(SCHEMES)}") from None
    return factory(sim, params, flow_id, rcv_buffer_bytes, initial_rtt_s,
                   guard=guard)
