"""Receiver-based rate measurement synced via TACK (paper S5.3/S5.4).

The receiver computes the average delivery rate over each TACK
interval (data delivered / time elapsed) and the data-path loss rate;
``bw`` — the input to the TACK frequency Eq. (3) and to the co-designed
BBR — is the windowed max of those per-interval rates
(theta_filter = 5~10 RTTs).  The sender mirrors the loss-rate
calculation for the ACK path: expected TACKs (from the synced
frequency) vs received TACKs.
"""

from __future__ import annotations

from typing import Optional

from repro.cc.windowed_filter import WindowedMaxFilter


class ReceiverRateEstimator:
    """Delivery-rate measurement at the receiver."""

    def __init__(self, bw_filter_window_s: float = 1.0,
                 min_interval_s: float = 2e-3):
        self._bytes_in_interval = 0
        self._interval_start: Optional[float] = None
        self._last_arrival: Optional[float] = None
        self._max_filter = WindowedMaxFilter(window=bw_filter_window_s)
        self.min_interval_s = min_interval_s
        self.last_interval_rate_bps: Optional[float] = None

    def on_data(self, nbytes: int, now: float) -> None:
        if self._interval_start is None:
            self._interval_start = now
        self._last_arrival = now
        self._bytes_in_interval += nbytes

    def close_interval(self, now: float) -> Optional[float]:
        """Finish the current TACK interval; returns its average
        delivery rate (bits/s) or ``None`` for an empty interval.

        The rate is measured over the *arrival span* (first to last
        packet of the interval), not wall-clock: idle gaps of an
        app-limited flow must not dilute the estimate (BBR's rate
        samples have the same property).  Spans shorter than
        ``min_interval_s`` keep accumulating — A-MPDU delivery is
        bursty, and rating a burst over its own microsecond span would
        feed the max filter PHY-rate outliers.
        """
        if self._interval_start is None or self._last_arrival is None:
            return None
        if now - self._interval_start < self.min_interval_s:
            return None
        span = max(self._last_arrival - self._interval_start, self.min_interval_s)
        rate: Optional[float] = None
        if self._bytes_in_interval > 0:
            rate = self._bytes_in_interval * 8.0 / span
            self._max_filter.update(rate, now)
            self.last_interval_rate_bps = rate
        self._interval_start = None
        self._last_arrival = None
        self._bytes_in_interval = 0
        return rate

    def set_filter_window(self, window_s: float) -> None:
        """Retarget theta_filter as RTT_min estimates evolve."""
        if window_s > 0:
            self._max_filter.window = window_s

    def bw_bps(self, now: Optional[float] = None, default: float = 0.0) -> float:
        """Windowed-max delivery rate — the paper's ``bw``."""
        value = self._max_filter.get(now)
        return value if value is not None else default


class AckPathLossEstimator:
    """Sender-side rho' (ACK-path loss) estimate.

    The sender knows the negotiated TACK frequency, so over any
    period it can compare the TACKs that *should* have arrived with
    those that did (paper S5.4).
    """

    def __init__(self, min_expected: int = 8):
        self.min_expected = min_expected
        self._window_start: Optional[float] = None
        self._received_in_window = 0
        self.loss_rate = 0.0

    def on_tack(self, now: float) -> None:
        if self._window_start is None:
            self._window_start = now
        self._received_in_window += 1

    def on_rtt_min_update(self, now: float, tack_interval_s: float) -> None:
        """Re-estimate rho' (the paper refreshes it on RTT_min
        updates); resets the measurement window."""
        if self._window_start is None or tack_interval_s <= 0:
            return
        elapsed = now - self._window_start
        expected = elapsed / tack_interval_s
        if expected >= self.min_expected:
            missed = max(0.0, expected - self._received_in_window)
            self.loss_rate = min(1.0, missed / expected)
            self._window_start = now
            self._received_in_window = 0
