"""Receiver-based rate measurement synced via TACK (paper S5.3/S5.4).

The receiver computes the average delivery rate over each TACK
interval (data delivered / time elapsed) and the data-path loss rate;
``bw`` — the input to the TACK frequency Eq. (3) and to the co-designed
BBR — is the windowed max of those per-interval rates
(theta_filter = 5~10 RTTs).  The sender measures the ACK-path loss
rate (rho', S5.4) from gaps in the feedback sequence numbers the
receiver stamps on every acknowledgment.
"""

from __future__ import annotations

from typing import Optional

from repro.cc.windowed_filter import WindowedMaxFilter


class ReceiverRateEstimator:
    """Delivery-rate measurement at the receiver."""

    def __init__(self, bw_filter_window_s: float = 1.0,
                 min_interval_s: float = 2e-3):
        self._bytes_in_interval = 0
        self._interval_start: Optional[float] = None
        self._last_arrival: Optional[float] = None
        self._max_filter = WindowedMaxFilter(window=bw_filter_window_s)
        self.min_interval_s = min_interval_s
        self.last_interval_rate_bps: Optional[float] = None

    def on_data(self, nbytes: int, now: float) -> None:
        if self._interval_start is None:
            self._interval_start = now
        self._last_arrival = now
        self._bytes_in_interval += nbytes

    def close_interval(self, now: float) -> Optional[float]:
        """Finish the current TACK interval; returns its average
        delivery rate (bits/s) or ``None`` for an empty interval.

        The rate is measured over the *arrival span* (first to last
        packet of the interval), not wall-clock: idle gaps of an
        app-limited flow must not dilute the estimate (BBR's rate
        samples have the same property).  Spans shorter than
        ``min_interval_s`` keep accumulating — A-MPDU delivery is
        bursty, and rating a burst over its own microsecond span would
        feed the max filter PHY-rate outliers.
        """
        if self._interval_start is None or self._last_arrival is None:
            return None
        if now - self._interval_start < self.min_interval_s:
            return None
        span = max(self._last_arrival - self._interval_start, self.min_interval_s)
        rate: Optional[float] = None
        if self._bytes_in_interval > 0:
            rate = self._bytes_in_interval * 8.0 / span
            self._max_filter.update(rate, now)
            self.last_interval_rate_bps = rate
        self._interval_start = None
        self._last_arrival = None
        self._bytes_in_interval = 0
        return rate

    def set_filter_window(self, window_s: float) -> None:
        """Retarget theta_filter as RTT_min estimates evolve."""
        if window_s > 0:
            self._max_filter.window = window_s

    def bw_bps(self, now: Optional[float] = None, default: float = 0.0) -> float:
        """Windowed-max delivery rate — the paper's ``bw``."""
        value = self._max_filter.get(now)
        return value if value is not None else default


class AckPathLossEstimator:
    """Sender-side rho' (ACK-path loss) estimate from feedback
    sequence numbers.

    The receiver numbers every feedback packet it emits (one shared
    counter across ACK/TACK/IACK); gaps in the sequence the sender
    observes are feedback that died on the ACK path.  This measures
    rho' (paper S5.4) *exactly* — the earlier design guessed the
    expected TACK count from the negotiated frequency, which
    overestimates badly for app-limited flows (few data packets in
    flight means few TACK triggers, which the guess misread as loss).

    Each time the covered span reaches ``window`` the loss fraction
    over that span folds into ``loss_rate`` with EWMA ``ewma_gain``, so the
    estimate tracks regime changes (a reverse-path blackout lifting)
    within a few windows.  Reordered feedback arriving after its
    window folded is ignored: the slight overestimate decays with the
    next clean window.
    """

    def __init__(self, window: int = 32, ewma_gain: float = 0.5):
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if not 0.0 < ewma_gain <= 1.0:
            raise ValueError(f"ewma_gain must be in (0, 1], got {ewma_gain}")
        self.window = window
        self.ewma_gain = ewma_gain
        self._base: Optional[int] = None   # first seq of current window
        self._highest: Optional[int] = None
        self._received = 0
        self.loss_rate = 0.0

    def on_feedback(self, fb_seq: Optional[int]) -> None:
        """Record one arrived feedback packet (any flavor)."""
        if fb_seq is None:  # peer does not number its feedback
            return
        if self._base is None:
            self._base = fb_seq
            self._highest = fb_seq
            self._received = 1
            return
        if fb_seq < self._base:  # straggler from a folded window
            return
        self._received += 1
        if self._highest is None or fb_seq > self._highest:
            self._highest = fb_seq
        span = self._highest - self._base + 1
        if span >= self.window:
            lost = max(0, span - self._received)  # dups can exceed span
            sample = lost / span
            self.loss_rate += self.ewma_gain * (sample - self.loss_rate)
            self._base = self._highest + 1
            self._highest = None
            self._received = 0

    def reset(self) -> None:
        self._base = None
        self._highest = None
        self._received = 0
        self.loss_rate = 0.0
