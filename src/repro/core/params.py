"""TACK protocol parameters (paper S4.1, Appendix B)."""

from __future__ import annotations

from repro.netsim.packet import MSS


class TackParams:
    """Tunable constants of the TACK acknowledgment mechanism.

    Attributes
    ----------
    beta:
        ACKs per RTT_min in the periodic regime.  The paper derives a
        lower bound of 2 (Appendix B.1) and defaults to 4 for
        robustness (B.3).
    ack_count_l:
        Byte-counting parameter ``L``: full-sized packets counted
        before an ACK when the bdp is small.  Upper bound is
        ``Q / (rho * rho')`` (B.2); default 2 mirrors delayed ACK.
    primary_blocks_q:
        Primary number of "unacked list" blocks a TACK reports
        (paper's Q).  ``rich=True`` lets TACK exceed it on demand per
        Eq. 6.
    rich:
        ``True`` — TACKs repeat as many acked/unacked blocks as fit
        one MTU ("TACK-rich"); ``False`` — only the Q smallest-numbered
        missing blocks are reported ("TACK-poor"); ``"adaptive"`` —
        the Eq. (6) on-demand mode: Q blocks while the synced ACK-path
        loss rate is below the threshold, Q + delta-Q above it.
    bw_filter_rtts:
        theta_filter for the windowed-max delivery-rate filter,
        "recommended as 5~10 RTTs" (S5.4).
    min_rtt_window_s:
        tau for both RTT_min minimum filters, <= 10 s (S5.2).
    owd_ewma_gain:
        Gain of the receiver's smoothed-OWD EWMA (S5.2).
    iack_reorder_delay_s:
        Settling-time allowance before a PKT.SEQ gap triggers a
        loss-event IACK (S7 "Handling reordering": RTT_min/4 is the
        recommended allowance; 0 disables the delay).
    timing_mode:
        "advanced" = per-interval min-OWD reference (S5.2);
        "naive" = one sample per TACK from the latest packet (the
        biased legacy scheme of Fig. 6(a)).
    degrade_ack_loss:
        Synced ACK-path loss rate (rho', S5.4) above which a rich/
        adaptive TACK receiver *degrades gracefully*: the periodic
        clock densifies so enough feedback survives the impairment.
        Poor mode never degrades — it is the Fig. 5(b) baseline.
    max_degrade_factor:
        Cap on the degraded-mode frequency multiplier (bounds feedback
        overhead even under a near-dead ACK path).
    """

    def __init__(
        self,
        beta: float = 4.0,
        ack_count_l: int = 2,
        primary_blocks_q: int = 1,
        rich: "bool | str" = True,
        bw_filter_rtts: float = 8.0,
        min_rtt_window_s: float = 10.0,
        owd_ewma_gain: float = 0.25,
        iack_reorder_delay_factor: float = 0.0,
        loss_event_iack: bool = True,
        holb_keepalive: bool = True,
        timing_mode: str = "advanced",
        mss: int = MSS,
        degrade_ack_loss: float = 0.15,
        max_degrade_factor: float = 4.0,
    ):
        if beta < 1:
            raise ValueError(f"beta must be >= 1, got {beta}")
        if ack_count_l < 1:
            raise ValueError(f"L must be >= 1, got {ack_count_l}")
        if primary_blocks_q < 0:
            raise ValueError(f"Q must be >= 0, got {primary_blocks_q}")
        if timing_mode not in ("advanced", "naive", "per-packet"):
            raise ValueError(f"unknown timing mode: {timing_mode!r}")
        if not isinstance(rich, bool) and rich != "adaptive":
            raise ValueError(f"rich must be True, False, or 'adaptive', got {rich!r}")
        if not 0.0 < degrade_ack_loss <= 1.0:
            raise ValueError(
                f"degrade_ack_loss must be in (0, 1], got {degrade_ack_loss}")
        if max_degrade_factor < 1.0:
            raise ValueError(
                f"max_degrade_factor must be >= 1, got {max_degrade_factor}")
        self.beta = beta
        self.ack_count_l = ack_count_l
        self.primary_blocks_q = primary_blocks_q
        self.rich = rich
        self.bw_filter_rtts = bw_filter_rtts
        self.min_rtt_window_s = min_rtt_window_s
        self.owd_ewma_gain = owd_ewma_gain
        self.iack_reorder_delay_factor = iack_reorder_delay_factor
        self.loss_event_iack = loss_event_iack
        # Robustness extension beyond the paper: keep the TACK clock
        # running while holes are outstanding even if no new data
        # arrives (the literal Eq. (3) clock goes silent when receiving
        # stalls, leaving recovery to the sender's RTO).
        self.holb_keepalive = holb_keepalive
        self.timing_mode = timing_mode
        self.mss = mss
        self.degrade_ack_loss = degrade_ack_loss
        self.max_degrade_factor = max_degrade_factor

    def tack_interval(self, bw_bps: float, rtt_min_s: float) -> float:
        """Interval between TACKs per Eq. (3): the *slower* of the
        byte-counting and periodic clocks wins (min frequency)."""
        periodic_s = rtt_min_s / self.beta
        if bw_bps <= 0:
            return periodic_s if periodic_s > 0 else 0.01
        byte_counting_s = self.ack_count_l * self.mss * 8.0 / bw_bps
        return max(byte_counting_s, periodic_s)

    def tack_frequency(self, bw_bps: float, rtt_min_s: float) -> float:
        """f_tack per Eq. (3) in Hz."""
        interval_s = self.tack_interval(bw_bps, rtt_min_s)
        return 1.0 / interval_s if interval_s > 0 else float("inf")

    def is_periodic_regime(self, bdp_bytes: float) -> bool:
        """True when bdp >= beta * L * MSS (paper S4.1)."""
        return bdp_bytes >= self.beta * self.ack_count_l * self.mss

    def copy(self, **overrides) -> "TackParams":
        """Clone with selected fields replaced."""
        kwargs = dict(
            beta=self.beta,
            ack_count_l=self.ack_count_l,
            primary_blocks_q=self.primary_blocks_q,
            rich=self.rich,
            bw_filter_rtts=self.bw_filter_rtts,
            min_rtt_window_s=self.min_rtt_window_s,
            owd_ewma_gain=self.owd_ewma_gain,
            iack_reorder_delay_factor=self.iack_reorder_delay_factor,
            loss_event_iack=self.loss_event_iack,
            holb_keepalive=self.holb_keepalive,
            timing_mode=self.timing_mode,
            mss=self.mss,
            degrade_ack_loss=self.degrade_ack_loss,
            max_degrade_factor=self.max_degrade_factor,
        )
        kwargs.update(overrides)
        return TackParams(**kwargs)
