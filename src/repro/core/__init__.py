"""TACK protocol core (the paper's primary contribution).

Modules:

* :mod:`repro.core.params` -- protocol constants (beta, L, Q, filters).
* :mod:`repro.core.owd_timing` -- advanced round-trip timing via
  relative one-way delay (paper S5.2).
* :mod:`repro.core.loss_detect` -- receiver-based loss detection over
  packet numbers (paper S5.1).
* :mod:`repro.core.rate_sync` -- receiver-side delivery-rate and
  loss-rate measurement synced to the sender via TACK (paper S5.3/5.4).
* :mod:`repro.core.flavors` -- assembled protocol flavors: TCP-TACK
  and the legacy baselines used throughout the evaluation.
"""

from repro.core.params import TackParams

__all__ = ["SCHEMES", "TackParams", "make_connection"]


def __getattr__(name):
    # Lazy: flavors imports the ack policies, which import
    # repro.core.params — an eager import here would be circular when
    # repro.ack is imported first.
    if name in ("SCHEMES", "make_connection"):
        from repro.core import flavors

        return getattr(flavors, {"SCHEMES": "SCHEMES",
                                 "make_connection": "make_connection"}[name])
    raise AttributeError(f"module 'repro.core' has no attribute {name!r}")
