"""Receiver-based loss detection over packet numbers (paper S5.1).

Every transmission — original or retransmission — carries a fresh,
monotonically increasing ``PKT.SEQ``, so the receiver can detect the
loss of a *retransmission* (legacy SEQ-only numbering cannot).  The
tracker reports a *gap event* whenever a packet arrives with a number
beyond ``largest_seen + 1``; the event identifies the missing range
``(second_largest, largest)`` exactly as the paper's IACK carries it.

The sender side (:class:`RetransmitGovernor`) enforces the paper's
suppression rule: a given byte range is retransmitted at most once per
RTT even when IACKs and TACKs both report it.
"""

from __future__ import annotations

from typing import Optional


class GapEvent:
    """A freshly detected hole in PKT.SEQ space."""

    __slots__ = ("second_largest", "largest", "missing_count")

    def __init__(self, second_largest: int, largest: int):
        self.second_largest = second_largest
        self.largest = largest
        self.missing_count = largest - second_largest - 1

    def missing_range(self) -> tuple[int, int]:
        """Missing pkt_seqs as an inclusive range."""
        return (self.second_largest + 1, self.largest - 1)

    def __repr__(self) -> str:
        return f"GapEvent(missing pkt_seq {self.second_largest + 1}..{self.largest - 1})"


class PktSeqTracker:
    """Receiver-side packet-number bookkeeping.

    Detects out-of-order arrivals in PKT.SEQ space (loss events) and
    maintains the statistics the TACK syncs back: the receipt horizon
    and the expected-vs-received counts for the loss-rate estimate.
    """

    def __init__(self):
        self.largest_seen: int = 0
        self.received = 0
        self._holes: set[int] = set()
        self.duplicates = 0

    def on_packet(self, pkt_seq: int) -> Optional[GapEvent]:
        """Record an arrival; returns a gap event if this arrival
        exposes fresh missing packet numbers."""
        self.received += 1
        if pkt_seq <= self.largest_seen:
            # Filling a known hole (or a duplicate in pkt space --
            # cannot happen with unique numbering, but stay safe).
            if pkt_seq in self._holes:
                self._holes.discard(pkt_seq)
            else:
                self.duplicates += 1
            return None
        event: Optional[GapEvent] = None
        if pkt_seq > self.largest_seen + 1 and self.largest_seen > 0:
            event = GapEvent(self.largest_seen, pkt_seq)
            for missing in range(self.largest_seen + 1, pkt_seq):
                self._holes.add(missing)
        self.largest_seen = pkt_seq
        return event

    def any_missing(self, lo: int, hi: int) -> bool:
        """True when any pkt_seq in the inclusive range is still an
        unfilled hole (used to re-validate delayed IACK pulls)."""
        return any(p in self._holes for p in range(lo, hi + 1))

    @property
    def outstanding_holes(self) -> int:
        """Packet numbers known missing and never filled.

        Holes filled by *retransmissions* stay outstanding (the retx
        carries a new number), so this counts transmission losses, not
        unrecovered data.
        """
        return len(self._holes)

    def loss_rate(self) -> float:
        """Fraction of transmitted packets (<= horizon) that never
        arrived: the receiver's rho estimate (paper S5.4)."""
        if self.largest_seen == 0:
            return 0.0
        return len(self._holes) / self.largest_seen


class RetransmitGovernor:
    """Sender-side once-per-RTT retransmission suppression.

    The paper: "the sender only retransmits a specific packet once per
    RTT when the loss is repeatedly notified by both IACKs and TACKs."
    Keyed by byte-range start; entries are pruned as data is acked.
    """

    def __init__(self):
        self._last_retx: dict[int, float] = {}

    def may_retransmit(self, seq_start: int, now: float,
                       srtt_s: float) -> bool:
        last = self._last_retx.get(seq_start)
        return last is None or now - last >= srtt_s

    def on_retransmit(self, seq_start: int, now: float) -> None:
        self._last_retx[seq_start] = now

    def on_acked(self, seq_start: int) -> None:
        self._last_retx.pop(seq_start, None)

    def __len__(self) -> int:
        return len(self._last_retx)
