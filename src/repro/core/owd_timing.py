"""Advanced round-trip timing (paper S5.2).

The receiver measures a *relative* one-way delay for every data packet
(``OWD = arrival - departure``; no clock synchronization is needed
because only differences of receiver-side OWDs are compared), smooths
it with an EWMA, and remembers which packet achieved the minimum
smoothed OWD during the current TACK interval.  The TACK then carries
that packet's departure timestamp and its TACK delay
(``delta_t* = tack_send_time - packet_arrival_time``), letting the
sender form one *bias-corrected* RTT sample per interval:

    RTT = tack_arrival - t0* - delta_t*

Both endpoints run minimum filters over tau <= 10 s; the sender-side
filter additionally absorbs ACK-path delivery noise.

The "naive" mode reproduces the legacy sampling of Fig. 6(a): one
sample per TACK, timed against the *oldest* packet the ACK covers
(RFC 6298-style: one measurement per window on the earliest
outstanding segment) and with *no* TACK-delay correction — so the
sample absorbs up to a full ACK interval of receiver hold time, and
RTT_min estimates come out 8-18% high under load ("the higher the
throughput, the larger the biases", paper S4.3).
"""

from __future__ import annotations

from typing import Optional

from repro.cc.windowed_filter import WindowedMinFilter


class OwdSample:
    """Reference packet chosen to represent a TACK interval."""

    __slots__ = ("departure_ts", "arrival_ts", "owd")

    def __init__(self, departure_ts: float, arrival_ts: float, owd: float):
        self.departure_ts = departure_ts
        self.arrival_ts = arrival_ts
        self.owd = owd


class ReceiverOwdTracker:
    """Receiver half of the advanced round-trip timing.

    Call :meth:`on_packet` for every data arrival and
    :meth:`take_reference` when emitting a TACK; the returned sample
    supplies ``echo_departure_ts`` and the base for ``tack_delay``.
    """

    MAX_PER_PACKET_ENTRIES = 120
    """Cap on per-packet delay entries per TACK (S4.3: "the number of
    data packets might be far more than the maximum number of delta-t
    that a TACK is capable to carry")."""

    def __init__(self, ewma_gain: float = 0.25, mode: str = "advanced"):
        if not 0.0 < ewma_gain <= 1.0:
            raise ValueError(f"EWMA gain must be in (0, 1], got {ewma_gain}")
        if mode not in ("advanced", "naive", "per-packet"):
            raise ValueError(f"unknown timing mode: {mode!r}")
        self.ewma_gain = ewma_gain
        self.mode = mode
        self.smoothed_owd: Optional[float] = None
        self._interval_best: Optional[OwdSample] = None
        self._interval_first: Optional[OwdSample] = None
        self._interval_all: list[OwdSample] = []
        self.samples_seen = 0
        self.per_packet_overflow = 0

    # ------------------------------------------------------------------
    def on_packet(self, departure_ts: float, arrival_ts: float) -> float:
        """Fold one data packet's relative OWD; returns the raw OWD."""
        owd = arrival_ts - departure_ts
        self.samples_seen += 1
        if self.smoothed_owd is None:
            self.smoothed_owd = owd
        else:
            self.smoothed_owd += self.ewma_gain * (owd - self.smoothed_owd)
        sample = OwdSample(departure_ts, arrival_ts, owd)
        if self._interval_first is None:
            self._interval_first = sample
        if self._interval_best is None or owd < self._interval_best.owd:
            self._interval_best = sample
        if self.mode == "per-packet":
            if len(self._interval_all) < self.MAX_PER_PACKET_ENTRIES:
                self._interval_all.append(sample)
            else:
                self.per_packet_overflow += 1
        return owd

    def take_reference(self) -> Optional[OwdSample]:
        """Pick the interval's reference packet and reset the interval.

        Advanced mode returns the min-OWD packet; naive mode returns
        the interval's *first* packet (the legacy one-sample-per-window
        measurement on the oldest covered segment).
        """
        if self.mode == "naive":
            ref = self._interval_first
        else:
            ref = self._interval_best
        self._interval_best = None
        self._interval_first = None
        return ref

    def take_all_samples(self, now: float) -> list[tuple[float, float]]:
        """Per-packet mode: drain (departure_ts, delay) entries for the
        TACK, where delay is the receiver hold time of each packet."""
        entries = [(s.departure_ts, now - s.arrival_ts)
                   for s in self._interval_all]
        self._interval_all = []
        return entries


class SenderRttMinEstimator:
    """Sender half: turns echoed references into RTT_min.

    ``on_tack`` computes one RTT sample per feedback and runs it
    through a windowed minimum filter (tau <= 10 s, handles route
    changes).  An initial sample from the handshake seeds the filter.
    """

    def __init__(self, window_s: float = 10.0):
        self._filter = WindowedMinFilter(window=window_s)
        self.last_sample: Optional[float] = None
        self.samples = 0

    def on_handshake(self, rtt: float, now: float) -> None:
        if rtt > 0:
            self._filter.update(rtt, now)
            self.last_sample = rtt
            self.samples += 1

    def on_tack(
        self,
        tack_arrival_ts: float,
        echo_departure_ts: Optional[float],
        tack_delay: Optional[float],
    ) -> Optional[float]:
        """Form an RTT sample from a TACK's timing fields.

        Returns the sample, or ``None`` when the TACK carried no
        timing reference (e.g. a pure window-update IACK).
        """
        if echo_departure_ts is None:
            return None
        delay = tack_delay or 0.0
        rtt = tack_arrival_ts - echo_departure_ts - delay
        if rtt <= 0:
            return None
        self._filter.update(rtt, tack_arrival_ts)
        self.last_sample = rtt
        self.samples += 1
        return rtt

    def rtt_min(self, default: float = 0.1) -> float:
        value = self._filter.get()
        return value if value is not None else default

    @property
    def has_estimate(self) -> bool:
        return self._filter.get() is not None
