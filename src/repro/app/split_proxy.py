"""TCP splitting at the access point (paper S7 discussion).

The paper notes TCP splitting as a possible way to simplify TACK
deployment: a proxy at the AP terminates the WAN connection and
re-originates a fresh connection over the WLAN last hop, so each
segment runs the transport best suited to it — at the cost of
end-to-end reliability semantics (the WAN sender may believe data was
delivered that the proxy still holds).

:class:`SplitTransfer` composes two independent connections back to
back: bytes delivered by the WAN receiver are immediately written into
the WLAN sender.  The proxy's buffering is implicit in the WLAN
sender's pending queue; :attr:`proxy_held_bytes` exposes the
reliability gap the paper warns about.
"""

from __future__ import annotations

from typing import Optional

from repro.core.flavors import make_connection
from repro.core.params import TackParams
from repro.netsim.engine import Simulator
from repro.netsim.paths import PathHandle


class SplitTransfer:
    """A server -> proxy -> client transfer over two connections.

    Parameters
    ----------
    wan_path / wlan_path:
        Pre-built paths for the two segments (the proxy sits between).
    wan_scheme / wlan_scheme:
        Transport flavor per segment — e.g. legacy ``tcp-bbr`` over the
        WAN and ``tcp-tack`` over the WLAN, the deployment S7 sketches.
    """

    def __init__(
        self,
        sim: Simulator,
        wan_path: PathHandle,
        wlan_path: PathHandle,
        wan_scheme: str = "tcp-bbr",
        wlan_scheme: str = "tcp-tack",
        params: Optional[TackParams] = None,
        wan_rtt_hint: float = 0.05,
        wlan_rtt_hint: float = 0.01,
        proxy_buffer_bytes: int = 4 * 1024 * 1024,
    ):
        self.sim = sim
        self.proxy_buffer_bytes = proxy_buffer_bytes
        self.wan_conn = make_connection(sim, wan_scheme, params=params,
                                        flow_id=0, initial_rtt_s=wan_rtt_hint)
        self.wlan_conn = make_connection(sim, wlan_scheme, params=params,
                                         flow_id=1, initial_rtt_s=wlan_rtt_hint)
        self.wan_conn.wire(wan_path.forward, wan_path.reverse)
        self.wlan_conn.wire(wlan_path.forward, wlan_path.reverse)
        # Backpressure: the proxy reads from the WAN connection only
        # while its relay buffer (the WLAN sender's pending bytes) is
        # below the watermark; unread data then shrinks the WAN
        # receiver's advertised window, throttling the server — how a
        # real split proxy couples the two segments.
        self.wan_conn.receiver.auto_drain = False
        self.wan_conn.receiver.rcv_buffer_bytes = proxy_buffer_bytes
        self.wan_conn.receiver.on_deliver(self._relay)
        self._relayed = 0
        self._pump_timer = None

    def _relay(self, nbytes: int, now: float) -> None:
        """Proxy: hand WAN-delivered bytes to the WLAN sender."""
        self._relayed += nbytes
        self.wlan_conn.sender.write(nbytes)

    def _pump(self) -> None:
        room = self.proxy_buffer_bytes - self.wlan_conn.sender.pending_bytes
        if room > 0:
            self.wan_conn.receiver.read(room)
        self._pump_timer = self.sim.call_in(0.002, self._pump)

    # ------------------------------------------------------------------
    def start_bulk(self) -> None:
        self.wlan_conn.sender.start()
        self.wan_conn.start_bulk()
        self._pump()

    def start_transfer(self, nbytes: int) -> None:
        self.wlan_conn.sender.start()
        self.wan_conn.start_transfer(nbytes)
        self._pump()

    @property
    def delivered_bytes(self) -> int:
        """Bytes the *client* has received in order."""
        return self.wlan_conn.receiver.stats.bytes_delivered

    @property
    def proxy_held_bytes(self) -> int:
        """Bytes the WAN sender believes delivered but the client has
        not received — the reliability gap of splitting (paper S7)."""
        return max(0, self.wan_conn.sender.cum_acked - self.delivered_bytes)

    def goodput_bps(self, start: float = 0.0, end: Optional[float] = None) -> float:
        if end is None:
            end = self.sim.now()
        if end <= start:
            return 0.0
        return self.delivered_bytes * 8.0 / (end - 0.0) if start == 0.0 else (
            self.delivered_bytes * 8.0 / end
        )

    def total_acks(self) -> int:
        return self.wan_conn.ack_count() + self.wlan_conn.ack_count()

    @property
    def completed(self) -> bool:
        total = self.wan_conn.sender.total_bytes
        return total is not None and self.delivered_bytes >= total
