"""Miracast-like wireless projection workload (paper S6.4, Fig. 11).

A CBR video source produces frames at ``fps``; each frame is a burst
of bytes written into a transport (reliable schemes) or blasted as UDP
datagrams (the RTP+UDP predecessor).  The playback model consumes one
frame per tick from a jitter buffer and records:

* **rebuffering ratio** -- stalled time / wall time, the metric the
  paper reports at 30-58% for legacy TCP and 3-10% for TCP-TACK;
* **macroblocking** -- frames played with missing bytes, only possible
  on unreliable transport (5-6 per 30 min for RTP+UDP, 0 for TCP).
"""

from __future__ import annotations

from typing import Optional

from repro.core.flavors import make_connection
from repro.core.params import TackParams
from repro.netsim.engine import Simulator
from repro.netsim.packet import DATA_PACKET_SIZE, Packet, PacketType
from repro.netsim.paths import PathHandle


class VideoStats:
    """Playback-side quality counters."""

    def __init__(self):
        self.frames_generated = 0
        self.frames_played = 0
        self.frames_macroblocked = 0
        self.stall_time_s = 0.0
        self.wall_time_s = 0.0
        self.startup_delay_s: Optional[float] = None

    def rebuffering_ratio(self) -> float:
        if self.wall_time_s <= 0:
            return 0.0
        return self.stall_time_s / self.wall_time_s

    def macroblocking_per_30min(self) -> float:
        if self.wall_time_s <= 0:
            return 0.0
        return self.frames_macroblocked * (30 * 60.0) / self.wall_time_s


class VideoSession:
    """One projection session over a reliable transport scheme.

    The source writes ``frame_bytes`` into the connection at ``fps``;
    the player starts after ``prebuffer_frames`` arrive and then
    consumes one frame per tick, stalling (rebuffering) whenever the
    next full frame has not been delivered.
    """

    def __init__(
        self,
        sim: Simulator,
        path: PathHandle,
        scheme: str = "tcp-tack",
        bitrate_bps: float = 16e6,
        fps: float = 30.0,
        prebuffer_frames: int = 8,
        params: Optional[TackParams] = None,
        initial_rtt_s: float = 0.02,
    ):
        self.sim = sim
        self.scheme = scheme
        self.fps = fps
        self.frame_bytes = int(bitrate_bps / fps / 8.0)
        self.prebuffer_frames = prebuffer_frames
        self.stats = VideoStats()
        self.conn = make_connection(
            sim, scheme, params=params, initial_rtt_s=initial_rtt_s
        )
        self.conn.wire(path.forward, path.reverse)
        self._delivered_bytes = 0
        self._played_frames = 0
        self._playing = False
        self._stall_started: Optional[float] = None
        self._start_time = 0.0
        self.conn.receiver.on_deliver(self._on_deliver)

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._start_time = self.sim.now()
        self.conn.sender.start()
        self._produce()

    def _produce(self) -> None:
        self.conn.sender.write(self.frame_bytes)
        self.stats.frames_generated += 1
        self.sim.call_in(1.0 / self.fps, self._produce)

    def _on_deliver(self, nbytes: int, now: float) -> None:
        self._delivered_bytes += nbytes
        if not self._playing:
            if self._frames_available() >= self.prebuffer_frames:
                self._playing = True
                self.stats.startup_delay_s = now - self._start_time
                self._play_tick()
        elif self._stall_started is not None:
            if self._frames_available() >= 1:
                self.stats.stall_time_s += now - self._stall_started
                self._stall_started = None
                self._play_tick()

    def _frames_available(self) -> int:
        return self._delivered_bytes // self.frame_bytes - self._played_frames

    def _play_tick(self) -> None:
        now = self.sim.now()
        if self._frames_available() >= 1:
            self._played_frames += 1
            self.stats.frames_played += 1
            self.sim.call_in(1.0 / self.fps, self._play_tick)
        else:
            self._stall_started = now

    def finish(self) -> VideoStats:
        now = self.sim.now()
        if self._stall_started is not None:
            self.stats.stall_time_s += now - self._stall_started
            self._stall_started = None
        self.stats.wall_time_s = now - self._start_time
        return self.stats


class RtpUdpVideoSession:
    """The RTP-over-UDP predecessor (unreliable).

    Frames are split into datagrams and blasted; a frame missing any
    datagram at its play deadline renders with macroblocking.  No
    rebuffering model — RTP pushes on regardless (matching the paper:
    zero rebuffering, 5-6 macroblocking artifacts per 30 min).
    """

    def __init__(
        self,
        sim: Simulator,
        path: PathHandle,
        bitrate_bps: float = 16e6,
        fps: float = 30.0,
        deadline_s: float = 0.2,
    ):
        self.sim = sim
        self.fps = fps
        self.frame_bytes = int(bitrate_bps / fps / 8.0)
        self.deadline_s = deadline_s
        self.stats = VideoStats()
        self._path = path
        self._received: dict[int, int] = {}
        path.forward.connect(self._on_packet)
        self._frame_id = 0

    def start(self) -> None:
        self._produce()

    def _produce(self) -> None:
        frame_id = self._frame_id
        self._frame_id += 1
        self.stats.frames_generated += 1
        payload = DATA_PACKET_SIZE - 18
        npackets = max(1, (self.frame_bytes + payload - 1) // payload)
        for i in range(npackets):
            pkt = Packet(
                PacketType.UDP,
                size=DATA_PACKET_SIZE,
                payload_len=payload,
                flow_id=frame_id,
            )
            pkt.sent_at = self.sim.now()
            pkt.meta["frame"] = frame_id
            pkt.meta["count"] = npackets
            self._path.forward.send(pkt)
        self.sim.call_in(self.deadline_s, lambda: self._deadline(frame_id, npackets))
        self.sim.call_in(1.0 / self.fps, self._produce)

    def _on_packet(self, packet: Packet) -> None:
        frame = packet.meta.get("frame")
        if frame is not None:
            self._received[frame] = self._received.get(frame, 0) + 1

    def _deadline(self, frame_id: int, npackets: int) -> None:
        got = self._received.pop(frame_id, 0)
        self.stats.frames_played += 1
        if got < npackets:
            self.stats.frames_macroblocked += 1

    def finish(self) -> VideoStats:
        self.stats.wall_time_s = self.sim.now()
        return self.stats
