"""Application workloads driving the transport and WLAN substrates.

* :mod:`repro.app.udp_blast` -- the paper's UDP measurement tool
  (S3.2, Fig. 3 / Fig. 9(b)): fixed-rate unreliable sender plus an
  L-counting ACK responder.
* :mod:`repro.app.bulk` -- long-lived bulk flows over any scheme.
* :mod:`repro.app.video` -- Miracast-like screen projection (S6.4,
  Fig. 11): CBR frame source, playback buffer, rebuffering ratio and
  macroblocking counters.
* :mod:`repro.app.rpc` -- request/response workload (the
  latency-sensitive flows of Appendix B.3).
* :mod:`repro.app.cross_traffic` -- background flows for contended
  WAN trials (Fig. 14/15).
"""

from repro.app.udp_blast import UdpBlaster, UdpAckResponder, run_contention_trial
from repro.app.bulk import BulkFlow
from repro.app.video import VideoSession, VideoStats
from repro.app.rpc import RpcClient, RpcStats

__all__ = [
    "BulkFlow",
    "RpcClient",
    "RpcStats",
    "UdpAckResponder",
    "UdpBlaster",
    "VideoSession",
    "VideoStats",
    "run_contention_trial",
]
