"""The paper's UDP-based measurement tool (S3.2).

"The sender keeps sending 1518-byte packets at a fixed sending rate
(100 Mbps), and the receiver counts the received bytes, and then sends
one 64-byte packet that acts as an ACK" — parameterized by the
byte-counting factor L.  Used for Fig. 3 (contention) and Fig. 9(b)
(ideal goodput of ACK-thinning schemes).
"""

from __future__ import annotations

from typing import Optional

from repro.netsim.engine import Simulator
from repro.netsim.packet import (
    ACK_PACKET_SIZE,
    DATA_PACKET_SIZE,
    Packet,
    PacketType,
)


class UdpBlaster:
    """Fixed-rate unreliable sender."""

    def __init__(
        self,
        sim: Simulator,
        port,
        rate_bps: float,
        packet_size: int = DATA_PACKET_SIZE,
        flow_id: int = 0,
    ):
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        self.sim = sim
        self.port = port
        self.rate_bps = rate_bps
        self.packet_size = packet_size
        self.flow_id = flow_id
        self.packets_sent = 0
        self.bytes_sent = 0
        self._timer = None
        self._seq = 0

    @property
    def interval_s(self) -> float:
        return self.packet_size * 8.0 / self.rate_bps

    def start(self) -> None:
        self._tick()

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _tick(self) -> None:
        payload = self.packet_size - 18  # ethernet framing
        pkt = Packet(
            PacketType.UDP,
            size=self.packet_size,
            seq=self._seq * payload,
            pkt_seq=self._seq + 1,
            payload_len=payload,
            flow_id=self.flow_id,
        )
        pkt.sent_at = self.sim.now()
        self._seq += 1
        self.packets_sent += 1
        self.bytes_sent += self.packet_size
        self.port.send(pkt)
        self._timer = self.sim.call_in(self.interval_s, self._tick)


class UdpAckResponder:
    """Counts arrivals and answers every L-th packet with a 64-byte
    ACK-like datagram (the tool's receiver side)."""

    def __init__(
        self,
        sim: Simulator,
        reverse_port,
        count_l: int = 1,
        ack_size: int = ACK_PACKET_SIZE,
        flow_id: int = 0,
    ):
        if count_l < 1:
            raise ValueError(f"L must be >= 1, got {count_l}")
        self.sim = sim
        self.reverse_port = reverse_port
        self.count_l = count_l
        self.ack_size = ack_size
        self.flow_id = flow_id
        self.packets_received = 0
        self.bytes_received = 0
        self.payload_bytes_received = 0
        self.acks_sent = 0

    def on_packet(self, packet: Packet) -> None:
        self.packets_received += 1
        self.bytes_received += packet.size
        self.payload_bytes_received += packet.payload_len
        if self.packets_received % self.count_l == 0:
            ack = Packet(PacketType.UDP, size=self.ack_size, flow_id=self.flow_id)
            ack.sent_at = self.sim.now()
            self.acks_sent += 1
            self.reverse_port.send(ack)

    def goodput_bps(self, duration: float) -> float:
        if duration <= 0:
            return 0.0
        return self.payload_bytes_received * 8.0 / duration


class ContentionResult:
    """Outcome of one Fig. 3-style trial."""

    def __init__(self, data_throughput_bps: float, ack_throughput_bps: float,
                 collision_rate: float, acks_delivered: int):
        self.data_throughput_bps = data_throughput_bps
        self.ack_throughput_bps = ack_throughput_bps
        self.collision_rate = collision_rate
        self.acks_delivered = acks_delivered


def run_contention_trial(
    sim: Simulator,
    forward_port,
    reverse_port,
    count_l: int,
    rate_bps: float = 100e6,
    duration_s: float = 2.0,
    medium=None,
    ack_sink_counter: Optional[list] = None,
) -> ContentionResult:
    """Run the paper's S3.2 experiment on pre-built ports.

    ``forward_port``/``reverse_port`` carry data and ACKs; the caller
    supplies WLAN ports for the wireless trials.  Returns data-path
    and ACK-path throughputs as the paper plots them.
    """
    responder = UdpAckResponder(sim, reverse_port, count_l=count_l)
    forward_port.connect(responder.on_packet)
    ack_bytes = [0]

    def ack_sink(packet: Packet) -> None:
        ack_bytes[0] += packet.size
        if ack_sink_counter is not None:
            ack_sink_counter.append(sim.now())

    reverse_port.connect(ack_sink)
    blaster = UdpBlaster(sim, forward_port, rate_bps)
    blaster.start()
    sim.run(until=sim.now() + duration_s)
    blaster.stop()
    return ContentionResult(
        data_throughput_bps=responder.goodput_bps(duration_s),
        ack_throughput_bps=ack_bytes[0] * 8.0 / duration_s,
        collision_rate=medium.collision_rate() if medium is not None else 0.0,
        acks_delivered=responder.acks_sent,
    )
