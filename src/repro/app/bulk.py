"""Bulk transfer workload: one long-lived flow of a chosen scheme."""

from __future__ import annotations

from typing import Optional

from repro.core.flavors import make_connection
from repro.core.params import TackParams
from repro.netsim.engine import Simulator
from repro.netsim.paths import PathHandle
from repro.stats.collector import FlowCollector


class BulkFlow:
    """Convenience wrapper: scheme + path -> running bulk flow.

    Exposes the connection, a :class:`FlowCollector`, and the summary
    accessors every benchmark needs.
    """

    def __init__(
        self,
        sim: Simulator,
        path: PathHandle,
        scheme: str = "tcp-tack",
        params: Optional[TackParams] = None,
        flow_id: int = 0,
        rcv_buffer_bytes: int = 8 * 1024 * 1024,
        initial_rtt_s: float = 0.05,
        total_bytes: Optional[int] = None,
    ):
        self.sim = sim
        self.path = path
        self.scheme = scheme
        self.conn = make_connection(
            sim,
            scheme,
            params=params,
            flow_id=flow_id,
            rcv_buffer_bytes=rcv_buffer_bytes,
            initial_rtt_s=initial_rtt_s,
        )
        self.conn.wire(path.forward, path.reverse)
        self.collector = FlowCollector(sim, self.conn, name=f"{scheme}#{flow_id}")
        self.total_bytes = total_bytes

    def start(self) -> None:
        if self.total_bytes is None:
            self.conn.start_bulk()
        else:
            self.conn.start_transfer(self.total_bytes)

    # ------------------------------------------------------------------
    def goodput_bps(self, start: float = 0.0, end: Optional[float] = None) -> float:
        return self.collector.goodput_bps(start, end)

    def ack_count(self) -> int:
        return self.conn.ack_count()

    def data_packet_count(self) -> int:
        return self.conn.sender.stats.data_packets_sent

    def ack_ratio(self) -> float:
        """ACKs per data packet (the paper quotes 1.9% for TACK vs
        ~50% for TCP over 802.11g)."""
        sent = self.data_packet_count()
        return self.ack_count() / sent if sent else 0.0

    @property
    def completed(self) -> bool:
        return self.conn.completed

    def completion_time(self) -> Optional[float]:
        return self.conn.sender.completed_at
