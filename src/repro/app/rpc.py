"""Request/response (RPC) workload.

Latency-sensitive, application-limited flows (Appendix B.3): the
client issues fixed-size requests over a reliable connection and
measures completion latency of each response.  Used by the ablation
benches to show why L is kept small (ACK reduction is not the
bottleneck for thin flows, but large L hurts their latency).
"""

from __future__ import annotations

from typing import Optional

from repro.core.flavors import make_connection
from repro.core.params import TackParams
from repro.netsim.engine import Simulator
from repro.netsim.paths import PathHandle


class RpcStats:
    """Completion latencies of finished RPCs."""

    def __init__(self):
        self.latencies_s: list[float] = []
        self.issued = 0
        self.completed = 0

    def mean_latency_s(self) -> float:
        if not self.latencies_s:
            raise ValueError("no completed RPCs")
        return sum(self.latencies_s) / len(self.latencies_s)


class RpcClient:
    """Issues ``response_bytes``-sized transfers every ``interval_s``.

    Each RPC is modeled as the *response* flowing over the shared
    connection; latency is measured from issue to in-order delivery
    of the response's last byte.
    """

    def __init__(
        self,
        sim: Simulator,
        path: PathHandle,
        scheme: str = "tcp-tack",
        response_bytes: int = 20_000,
        interval_s: float = 0.1,
        params: Optional[TackParams] = None,
        initial_rtt_s: float = 0.02,
    ):
        self.sim = sim
        self.response_bytes = response_bytes
        self.interval_s = interval_s
        self.stats = RpcStats()
        self.conn = make_connection(sim, scheme, params=params, initial_rtt_s=initial_rtt_s)
        self.conn.wire(path.forward, path.reverse)
        self.conn.receiver.on_deliver(self._on_deliver)
        self._delivered = 0
        self._pending: list[tuple[int, float]] = []  # (end byte, issue time)
        self._issued_bytes = 0
        self._timer = None

    def start(self) -> None:
        self.conn.sender.start()
        self._issue()

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _issue(self) -> None:
        self._issued_bytes += self.response_bytes
        self._pending.append((self._issued_bytes, self.sim.now()))
        self.stats.issued += 1
        self.conn.sender.write(self.response_bytes)
        self._timer = self.sim.call_in(self.interval_s, self._issue)

    def _on_deliver(self, nbytes: int, now: float) -> None:
        self._delivered += nbytes
        while self._pending and self._pending[0][0] <= self._delivered:
            end, issued_at = self._pending.pop(0)
            self.stats.completed += 1
            self.stats.latencies_s.append(now - issued_at)
