"""Background cross traffic for contended WAN trials (Fig. 14/15).

Cross traffic shares the bottleneck link of an
:class:`~repro.netsim.emulator.EmulatedPath` by injecting packets
directly into the forward link at a configurable duty cycle — the
"wild cross traffic" of the Pantheon environment without the cost of
full extra transport stacks.
"""

from __future__ import annotations

from repro.netsim.engine import Simulator
from repro.netsim.packet import DATA_PACKET_SIZE, Packet, PacketType


class OnOffCrossTraffic:
    """Markovian on/off CBR interferer.

    During ON periods, sends at ``rate_bps``; period lengths are
    exponential with the given means.  Deterministic given the
    simulator seed.
    """

    def __init__(
        self,
        sim: Simulator,
        port,
        rate_bps: float,
        mean_on_s: float = 1.0,
        mean_off_s: float = 1.0,
        flow_id: int = 999,
    ):
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        self.sim = sim
        self.port = port
        self.rate_bps = rate_bps
        self.mean_on_s = mean_on_s
        self.mean_off_s = mean_off_s
        self.flow_id = flow_id
        self.rng = sim.fork_rng(f"cross-{flow_id}")
        self.packets_sent = 0
        self._on = False
        self._timer = None
        self._stopped = False

    def start(self) -> None:
        self._toggle()

    def stop(self) -> None:
        self._stopped = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _toggle(self) -> None:
        if self._stopped:
            return
        self._on = not self._on
        mean = self.mean_on_s if self._on else self.mean_off_s
        duration = self.rng.expovariate(1.0 / mean)
        self.sim.call_in(duration, self._toggle)
        if self._on:
            self._send_tick()

    def _send_tick(self) -> None:
        if self._stopped or not self._on:
            return
        pkt = Packet(
            PacketType.UDP,
            size=DATA_PACKET_SIZE,
            payload_len=DATA_PACKET_SIZE - 18,
            flow_id=self.flow_id,
        )
        pkt.sent_at = self.sim.now()
        self.port.send(pkt)
        self.packets_sent += 1
        self._timer = self.sim.call_in(
            DATA_PACKET_SIZE * 8.0 / self.rate_bps, self._send_tick
        )
