"""Radio power-state models for the per-flow energy ledger.

The three-state model (transmit / receive / idle draw in watts)
follows the classic WaveLAN measurements by Feeney & Nilsson used by
"An Analysis of Energy Consumption on ACK+Rate Packet in Rate Based
Transport Protocol" (see PAPERS.md): per-packet energy is the
exchange airtime multiplied by the state's power draw, and whatever
lifetime is not spent on the air is billed at the idle draw.

Simulation-side module: pure constants and arithmetic, no clock, no
RNG.
"""

from __future__ import annotations


class RadioPowerModel:
    """Power drawn by one radio in each of its three states."""

    __slots__ = ("name", "tx_w", "rx_w", "idle_w")

    def __init__(self, name: str, tx_w: float = 1.327,
                 rx_w: float = 0.967, idle_w: float = 0.843):
        if tx_w <= 0 or rx_w <= 0 or idle_w < 0:
            raise ValueError(
                f"power draws must be positive (idle >= 0), got "
                f"tx={tx_w} rx={rx_w} idle={idle_w}")
        self.name = name
        self.tx_w = tx_w
        self.rx_w = rx_w
        self.idle_w = idle_w

    def __repr__(self) -> str:
        return (f"RadioPowerModel({self.name}, tx={self.tx_w}W, "
                f"rx={self.rx_w}W, idle={self.idle_w}W)")


#: Named models.  ``wavelan`` is the Feeney–Nilsson 2.4 GHz WaveLAN
#: card (1.327 / 0.967 / 0.843 W), the reference point of the ACK
#: energy paper; ``wavelan-psm`` models the same card with power-save
#: idling (sleep-dominated idle draw, ~66 mW) for sensitivity sweeps.
POWER_MODELS = {
    "wavelan": RadioPowerModel("wavelan", tx_w=1.327, rx_w=0.967,
                               idle_w=0.843),
    "wavelan-psm": RadioPowerModel("wavelan-psm", tx_w=1.327, rx_w=0.967,
                                   idle_w=0.066),
}


def get_power_model(name: str) -> RadioPowerModel:
    """Look up a named power model."""
    try:
        return POWER_MODELS[name]
    except KeyError:
        raise KeyError(f"unknown power model: {name!r} "
                       f"(have {sorted(POWER_MODELS)})") from None
