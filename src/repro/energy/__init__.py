"""repro.energy: per-flow radio energy and airtime accounting.

Quickstart::

    from repro.energy import EnergyLedger

    ledger = EnergyLedger(phy="802.11n", power="wavelan")
    sim = Simulator(seed=7, energy=ledger)   # before endpoints/links!
    ... build connection, run ...
    print(ledger.summary()["ack_energy_j"])

The ledger is fed by null-guarded hooks next to the telemetry hooks
in the link layer and transport endpoints; a simulation without a
ledger pays one ``is not None`` test per hook, the same contract as
``sim.telemetry``.  See DESIGN.md §15 for the energy model.
"""

from repro.energy.ledger import (
    COUNT_KEYS,
    TOTAL_KEYS,
    EnergyLedger,
    FlowEnergy,
)
from repro.energy.model import POWER_MODELS, RadioPowerModel, get_power_model

__all__ = [
    "EnergyLedger",
    "FlowEnergy",
    "TOTAL_KEYS",
    "COUNT_KEYS",
    "RadioPowerModel",
    "POWER_MODELS",
    "get_power_model",
]
