"""Per-flow energy/airtime ledger.

The ledger turns the packet stream into joules and airtime-seconds
per flow, split by direction kind (data vs. ACK-like), using

* the :class:`~repro.wlan.phy.PhyProfile` DCF cost of one exchange —
  ``difs + E[backoff] + PPDU + SIFS + link-ACK`` for the packet's
  wire size — as the airtime of each transmission, and
* a :class:`~repro.energy.model.RadioPowerModel` for the tx / rx /
  idle draws: the transmitting radio is billed ``airtime * tx_w`` at
  serialization start (lost-in-queue packets burn nothing; corrupted-
  after-serialization ones do, like real RF), the receiving radio
  ``airtime * rx_w`` at delivery, and each flow's remaining lifetime
  ``idle_w``.

Hook protocol (null-guarded, mirroring telemetry's ``_tel`` pattern —
components cache ``sim.energy`` at construction):

* ``on_tx(packet)`` / ``on_rx(packet)`` from the link layer,
* ``flow_opened(flow_id)`` / ``flow_closed(flow_id)`` from the
  transport sender (bounds the idle-energy window),
* ``on_feedback_emitted(flow_id, nbytes)`` from the receiver (offered
  feedback load; informational, not an energy source — the feedback
  packets' energy is already billed at the link hooks).

Fleet shards retire finished flows with :meth:`EnergyLedger.pop_flow`
so memory stays flat; retired totals accumulate in
:class:`~repro.stats.streaming.ExactSum` partials, making shard
summaries mergeable in any order with bit-identical results.

Simulation-side module: all timestamps come from the attached sim
clock; there is no RNG (the mean-backoff DCF cost is analytic).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from repro.energy.model import POWER_MODELS, RadioPowerModel, get_power_model
from repro.stats.streaming import ExactSum
from repro.wlan.phy import PhyProfile, get_profile


class FlowEnergy:
    """Running energy/airtime account of one flow."""

    __slots__ = ("flow_id", "data_pkts", "ack_pkts", "data_bytes",
                 "ack_bytes", "data_airtime_s", "ack_airtime_s",
                 "data_energy_j", "ack_energy_j", "feedback_bytes",
                 "opened_t", "closed_t")

    def __init__(self, flow_id: int):
        self.flow_id = flow_id
        self.data_pkts = 0
        self.ack_pkts = 0
        self.data_bytes = 0
        self.ack_bytes = 0
        self.data_airtime_s = 0.0
        self.ack_airtime_s = 0.0
        self.data_energy_j = 0.0
        self.ack_energy_j = 0.0
        self.feedback_bytes = 0
        self.opened_t: Optional[float] = None
        self.closed_t: Optional[float] = None


#: Metrics exported in mergeable (ExactSum-partials) form.
TOTAL_KEYS = ("data_airtime_s", "ack_airtime_s", "data_energy_j",
              "ack_energy_j", "idle_energy_j")

#: Integer totals (exact by construction, summed as plain ints).
COUNT_KEYS = ("data_pkts", "ack_pkts", "data_bytes", "ack_bytes",
              "feedback_bytes")


class EnergyLedger:
    """Folds link/transport hook calls into per-flow joule accounts.

    Parameters
    ----------
    phy:
        :class:`PhyProfile` (or profile name) supplying the DCF
        exchange airtime per wire size.
    power:
        :class:`RadioPowerModel` (or model name) supplying the
        tx/rx/idle draws.

    Attach with ``Simulator(energy=ledger)`` or
    ``sim.attach_energy(ledger)`` *before* links and endpoints are
    constructed — they cache ``sim.energy`` at build time, exactly
    like the telemetry collector.
    """

    def __init__(self, phy: Union[PhyProfile, str] = "802.11n",
                 power: Union[RadioPowerModel, str] = "wavelan"):
        self.phy = phy if isinstance(phy, PhyProfile) else get_profile(phy)
        self.power = (power if isinstance(power, RadioPowerModel)
                      else get_power_model(power))
        self._now = None
        self._flows: Dict[int, FlowEnergy] = {}
        self._airtime_cache: Dict[int, float] = {}
        self._retired: Dict[str, ExactSum] = {k: ExactSum()
                                              for k in TOTAL_KEYS}
        self._retired_counts: Dict[str, int] = {k: 0 for k in COUNT_KEYS}
        self.flows_opened = 0
        self.flows_closed = 0
        self.flows_retired = 0

    # ------------------------------------------------------------------
    def attach(self, sim) -> "EnergyLedger":
        """Bind to a simulator's virtual clock (idle-window bounds)."""
        self._now = sim.clock.now
        return self

    def _flow(self, flow_id: int) -> FlowEnergy:
        rec = self._flows.get(flow_id)
        if rec is None:
            rec = self._flows[flow_id] = FlowEnergy(flow_id)
        return rec

    def airtime_s(self, size_bytes: int) -> float:
        """DCF cost of transmitting one ``size_bytes`` packet: DIFS +
        mean backoff + PPDU + SIFS + link-ACK (cached per size)."""
        a = self._airtime_cache.get(size_bytes)
        if a is None:
            phy = self.phy
            a = (phy.difs_s + phy.mean_backoff_s()
                 + phy.exchange_airtime(phy.mpdu_bytes(size_bytes)))
            self._airtime_cache[size_bytes] = a
        return a

    # ------------------------------------------------------------------
    # link hooks
    # ------------------------------------------------------------------
    def on_tx(self, packet) -> None:
        """One packet started serializing: bill airtime + tx energy."""
        rec = self._flow(packet.flow_id)
        a = self.airtime_s(packet.size)
        e = a * self.power.tx_w
        if packet.is_ack_like():
            rec.ack_pkts += 1
            rec.ack_bytes += packet.size
            rec.ack_airtime_s += a
            rec.ack_energy_j += e
        else:
            rec.data_pkts += 1
            rec.data_bytes += packet.size
            rec.data_airtime_s += a
            rec.data_energy_j += e

    def on_rx(self, packet) -> None:
        """One packet delivered: bill the receiving radio's energy
        (airtime was already counted once, at transmission)."""
        rec = self._flow(packet.flow_id)
        e = self.airtime_s(packet.size) * self.power.rx_w
        if packet.is_ack_like():
            rec.ack_energy_j += e
        else:
            rec.data_energy_j += e

    # ------------------------------------------------------------------
    # transport hooks
    # ------------------------------------------------------------------
    def flow_opened(self, flow_id: int) -> None:
        rec = self._flow(flow_id)
        if rec.opened_t is None:
            self.flows_opened += 1
            rec.opened_t = self._now() if self._now is not None else 0.0

    def flow_closed(self, flow_id: int) -> None:
        rec = self._flow(flow_id)
        if rec.closed_t is None:
            self.flows_closed += 1
            rec.closed_t = self._now() if self._now is not None else 0.0

    def on_feedback_emitted(self, flow_id: int, nbytes: int) -> None:
        self._flow(flow_id).feedback_bytes += nbytes

    # ------------------------------------------------------------------
    # reading the ledger
    # ------------------------------------------------------------------
    def _idle_energy_j(self, rec: FlowEnergy) -> float:
        if rec.opened_t is None:
            return 0.0
        end = rec.closed_t
        if end is None:
            end = self._now() if self._now is not None else rec.opened_t
        busy = rec.data_airtime_s + rec.ack_airtime_s
        idle_s = max(0.0, (end - rec.opened_t) - busy)
        return idle_s * self.power.idle_w

    def flow_summary(self, rec: FlowEnergy) -> Dict[str, Any]:
        """One flow's account as a plain dict (shares and totals)."""
        idle_j = self._idle_energy_j(rec)
        total_j = rec.data_energy_j + rec.ack_energy_j + idle_j
        total_air = rec.data_airtime_s + rec.ack_airtime_s
        return {
            "flow_id": rec.flow_id,
            "data_pkts": rec.data_pkts,
            "ack_pkts": rec.ack_pkts,
            "data_bytes": rec.data_bytes,
            "ack_bytes": rec.ack_bytes,
            "data_airtime_s": rec.data_airtime_s,
            "ack_airtime_s": rec.ack_airtime_s,
            "data_energy_j": rec.data_energy_j,
            "ack_energy_j": rec.ack_energy_j,
            "idle_energy_j": idle_j,
            "total_energy_j": total_j,
            "ack_energy_share": (rec.ack_energy_j / total_j
                                 if total_j > 0 else 0.0),
            "ack_airtime_share": (rec.ack_airtime_s / total_air
                                  if total_air > 0 else 0.0),
            "feedback_bytes": rec.feedback_bytes,
        }

    def pop_flow(self, flow_id: int) -> Optional[Dict[str, Any]]:
        """Retire a finished flow: fold it into the mergeable totals,
        drop its record (keeping ledger memory flat at fleet scale),
        and return its summary — or ``None`` if unknown."""
        rec = self._flows.pop(flow_id, None)
        if rec is None:
            return None
        summary = self.flow_summary(rec)
        for key in TOTAL_KEYS:
            self._retired[key].add(summary[key])
        for key in COUNT_KEYS:
            self._retired_counts[key] += summary[key]
        self.flows_retired += 1
        return summary

    def live_flows(self) -> Dict[int, FlowEnergy]:
        """Flows not yet retired (read-only view for tests/metrics)."""
        return dict(self._flows)

    def summary(self) -> Dict[str, Any]:
        """Ledger-wide totals: retired flows exactly (ExactSum) plus
        the current state of still-live flows."""
        totals = {k: ExactSum(self._retired[k].to_dict()["partials"])
                  for k in TOTAL_KEYS}
        counts = dict(self._retired_counts)
        for rec in self._flows.values():
            flow = self.flow_summary(rec)
            for key in TOTAL_KEYS:
                totals[key].add(flow[key])
            for key in COUNT_KEYS:
                counts[key] += flow[key]
        out: Dict[str, Any] = {k: totals[k].value() for k in TOTAL_KEYS}
        out.update(counts)
        total_j = (out["data_energy_j"] + out["ack_energy_j"]
                   + out["idle_energy_j"])
        total_air = out["data_airtime_s"] + out["ack_airtime_s"]
        out.update({
            "phy": self.phy.name,
            "power": self.power.name,
            "flows_opened": self.flows_opened,
            "flows_closed": self.flows_closed,
            "flows_retired": self.flows_retired,
            "live_flows": len(self._flows),
            "total_energy_j": total_j,
            "ack_energy_share": (out["ack_energy_j"] / total_j
                                 if total_j > 0 else 0.0),
            "ack_airtime_share": (out["ack_airtime_s"] / total_air
                                  if total_air > 0 else 0.0),
            "partials": {k: totals[k].to_dict() for k in TOTAL_KEYS},
        })
        return out

    def __repr__(self) -> str:
        return (f"EnergyLedger(phy={self.phy.name}, "
                f"power={self.power.name}, live={len(self._flows)}, "
                f"retired={self.flows_retired})")


__all__ = ["EnergyLedger", "FlowEnergy", "TOTAL_KEYS", "COUNT_KEYS",
           "RadioPowerModel", "POWER_MODELS", "get_power_model"]
