"""Profile report document: build, write, read, and query.

Schema (``repro-profile``, version 1)::

    {"schema": "repro-profile", "version": 1,
     "meta": {"label": ..., "hostname": ..., "platform": ...,
              "python": ..., "cpus": N, "recorded_unix": ...},
     "events": {"fired": N, "dispatch_s": ..., "per_s": ...,
                "queue_high_water": ..., "sim_s": ...,
                "sim_per_wall": ...},
     "handlers": {"TransportSender._on_send_timer":
                      {"count": ..., "total_s": ..., "self_s": ...,
                       "max_us": ..., "mean_us": ..., "p50_us": ...,
                       "p90_us": ..., "p99_us": ...}, ...},
     "spans": {"transport.sender.feedback": {...same fields...}, ...},
     "memory": null | {"current_bytes": ..., "peak_bytes": ...,
                       "top": [{"site": ..., "bytes": ..., "count": ...}]}}

Percentiles come from :func:`repro.stats.percentile` over the
profiler's (possibly decimated) latency samples; ``null`` when the
histogram was disabled.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.runner.manifest import host_metadata
from repro.stats.percentile import percentile

PROFILE_SCHEMA = "repro-profile"
PROFILE_VERSION = 1


def _agg_doc(agg) -> Dict[str, Any]:
    doc: Dict[str, Any] = {
        "count": agg.count,
        "total_s": round(agg.total_s, 9),
        "self_s": round(agg.self_s, 9),
        "max_us": round(agg.max_s * 1e6, 3),
        "mean_us": round(agg.total_s / agg.count * 1e6, 3) if agg.count else 0.0,
    }
    if agg.samples:
        for pct in (50, 90, 99):
            doc[f"p{pct}_us"] = round(
                percentile(agg.samples, float(pct)) * 1e6, 3)
    else:
        doc["p50_us"] = doc["p90_us"] = doc["p99_us"] = None
    return doc


def build_report(profiler) -> Dict[str, Any]:
    """Assemble the schema-v1 document from a live profiler."""
    dispatch = profiler.dispatch_s
    sim_s = profiler.sim_elapsed_s
    return {
        "schema": PROFILE_SCHEMA,
        "version": PROFILE_VERSION,
        "meta": {
            "label": profiler.label,
            **host_metadata(),
            "recorded_unix": time.time(),
        },
        "events": {
            "fired": profiler.events_fired,
            "dispatch_s": round(dispatch, 6),
            "per_s": round(profiler.events_fired / dispatch, 1)
            if dispatch > 0 else 0.0,
            "queue_high_water": profiler.queue_high_water,
            "sim_s": round(sim_s, 9),
            "sim_per_wall": round(sim_s / dispatch, 3) if dispatch > 0 else 0.0,
        },
        "handlers": {name: _agg_doc(agg)
                     for name, agg in sorted(profiler._handlers.items())},
        "spans": {name: _agg_doc(agg)
                  for name, agg in sorted(profiler._spans.items())},
        "memory": profiler._mem_stats,
    }


def write_profile(path: str, report: Dict[str, Any]) -> Dict[str, Any]:
    """Atomically write a report document as JSON."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    os.replace(tmp, path)
    return report


def read_profile(path: str) -> Dict[str, Any]:
    """Load and validate a profile document."""
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("schema") != PROFILE_SCHEMA:
        raise ValueError(f"{path}: not a {PROFILE_SCHEMA} document")
    return doc


def parse_collapsed(lines) -> List[Tuple[Tuple[str, ...], int]]:
    """Parse collapsed-stack lines back into ``(frames, value)`` pairs.

    Raises :class:`ValueError` on any malformed line — the format
    assertion the tests (and downstream flamegraph tooling) rely on:
    ``frame(;frame)* <positive int>`` with no whitespace in frames.
    """
    out: List[Tuple[Tuple[str, ...], int]] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.rstrip("\n")
        if not line:
            continue
        stack, sep, value = line.rpartition(" ")
        if not sep or not stack:
            raise ValueError(f"line {lineno}: missing stack or value")
        if not value.isdigit() or int(value) <= 0:
            raise ValueError(f"line {lineno}: value {value!r} is not a "
                             "positive integer")
        frames = tuple(stack.split(";"))
        if any((not f) or (" " in f) or ("\t" in f) for f in frames):
            raise ValueError(f"line {lineno}: malformed frame in {stack!r}")
        out.append((frames, int(value)))
    return out


def _top(table: Dict[str, Dict[str, Any]], n: int,
         key: str) -> List[Tuple[str, Dict[str, Any]]]:
    return sorted(table.items(),
                  key=lambda kv: kv[1].get(key) or 0.0,
                  reverse=True)[:n]


def top_handlers(report: Dict[str, Any], n: int = 10,
                 key: str = "self_s") -> List[Tuple[str, Dict[str, Any]]]:
    """Hottest handler classes, descending by *key*."""
    return _top(report.get("handlers", {}), n, key)


def top_spans(report: Dict[str, Any], n: int = 10,
              key: str = "self_s") -> List[Tuple[str, Dict[str, Any]]]:
    """Hottest subsystem spans, descending by *key*."""
    return _top(report.get("spans", {}), n, key)


def render_top(report: Dict[str, Any], n: int = 10) -> str:
    """Human-readable ``top`` table for one report."""
    ev = report["events"]
    lines = [
        f"events: {ev['fired']}  dispatch: {ev['dispatch_s']:.3f}s  "
        f"rate: {ev['per_s']:,.0f}/s  queue high-water: "
        f"{ev['queue_high_water']}",
        f"simulated: {ev['sim_s']:.3f}s  "
        f"({ev['sim_per_wall']:.1f} sim-s per wall-s)",
        "",
        f"{'handler':<44} {'count':>9} {'self':>9} {'total':>9} "
        f"{'p50':>8} {'p99':>8}",
    ]
    for name, h in top_handlers(report, n):
        p50 = f"{h['p50_us']:.0f}us" if h.get("p50_us") is not None else "-"
        p99 = f"{h['p99_us']:.0f}us" if h.get("p99_us") is not None else "-"
        lines.append(
            f"{name[:44]:<44} {h['count']:>9} {h['self_s']:>8.3f}s "
            f"{h['total_s']:>8.3f}s {p50:>8} {p99:>8}")
    spans = report.get("spans") or {}
    if spans:
        lines.append("")
        lines.append(f"{'span':<44} {'calls':>9} {'self':>9} {'total':>9}")
        for name, s in top_spans(report, n):
            lines.append(
                f"{name[:44]:<44} {s['count']:>9} {s['self_s']:>8.3f}s "
                f"{s['total_s']:>8.3f}s")
    mem = report.get("memory")
    if mem:
        lines.append("")
        lines.append(f"memory: current={mem['current_bytes']:,}B "
                     f"peak={mem['peak_bytes']:,}B")
    return "\n".join(lines)
