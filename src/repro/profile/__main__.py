"""``python -m repro.profile`` entry point (host-side)."""

import sys

from repro.profile.cli import main

if __name__ == "__main__":
    sys.exit(main())
