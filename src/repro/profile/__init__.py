"""Host-side simulator performance profiling.

This is the second observability plane next to :mod:`repro.telemetry`:
telemetry watches the *simulated protocol* (ACK cadence, cwnd moves);
this package watches the *simulator itself* — where the host CPU goes
while events fire, how deep the calendar queue grows, how many events
per wall-second the engine sustains, and (optionally, via
``tracemalloc``) where the memory is.

Opt-in follows the simsan/telemetry null-guard discipline::

    prof = Profiler()
    sim = Simulator(seed=1, profiler=prof)   # before endpoints are built
    ... run ...
    prof.report()                 # JSON-ready dict
    prof.write_json("run.profile.json")
    prof.write_collapsed("run.folded")       # flamegraph.pl compatible

Instrumented components hold the reference behind ``if ... is not
None`` guards (reprolint REP007 keeps sim-side modules from importing
this package or touching the profiler unguarded), so a simulation
without a profiler pays one attribute test per hook site.

The CLI (``python -m repro.profile``) adds ``top`` (profile a canned
workload and print the hottest handlers) plus the benchmark-history
commands ``record | compare | gate`` backed by :mod:`repro.bench`.
"""

from repro.profile.profiler import Profiler
from repro.profile.report import (
    PROFILE_SCHEMA,
    PROFILE_VERSION,
    parse_collapsed,
    read_profile,
    top_handlers,
    top_spans,
)

__all__ = [
    "Profiler",
    "PROFILE_SCHEMA", "PROFILE_VERSION",
    "read_profile", "parse_collapsed", "top_handlers", "top_spans",
]
