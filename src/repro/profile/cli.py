"""Profiling / bench-history CLI: ``python -m repro.profile <cmd>``.

Host-side tooling (wall-clock reads are its whole job; the exempt
globs carve this package out of the determinism lint).

Subcommands::

    top      profile a canned workload, print the hottest handlers,
             optionally write the JSON report and a flamegraph-ready
             collapsed-stack file
    record   append BenchRecords to the history (explicit metric or
             every numeric metric of a BENCH_*.json document)
    compare  latest-vs-window table for every recorded series
    gate     like compare but exits 1 when any series regressed
             beyond the noise band — the CI perf gate

Exit codes follow the reprolint/telemetry convention: 0 success (for
``gate``: no regression), 1 regression found (``gate`` only), 2 usage
or file errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.bench import (
    BenchRecord,
    append_records,
    compare_series,
    filter_history,
    gate_history,
    load_history,
)
from repro.bench.history import (
    DEFAULT_MIN_RECORDS,
    DEFAULT_NOISE_PCT,
    DEFAULT_WINDOW,
)
from repro.profile.profiler import Profiler
from repro.profile.report import render_top

#: Environment override for the history root.
HISTORY_ENV = "REPRO_BENCH_HISTORY"


class _UsageError(Exception):
    """Mapped to exit code 2 in main()."""


def default_history_dir(start: Optional[str] = None) -> str:
    """Resolve the bench-history root.

    ``REPRO_BENCH_HISTORY`` wins; otherwise walk upward from *start*
    (default cwd) looking for a ``benchmarks/results`` directory and
    use its ``history/`` child; fall back to
    ``benchmarks/results/history`` under the cwd.
    """
    env = os.environ.get(HISTORY_ENV)
    if env:
        return env
    node = os.path.abspath(start or os.getcwd())
    while True:
        candidate = os.path.join(node, "benchmarks", "results")
        if os.path.isdir(candidate):
            return os.path.join(candidate, "history")
        parent = os.path.dirname(node)
        if parent == node:
            break
        node = parent
    return os.path.join("benchmarks", "results", "history")


def infer_better(metric: str) -> Optional[str]:
    """Guess the improvement direction from a metric name.

    Wall/overhead metrics (``*_s``, ``*_pct``) improve downward;
    rate metrics (``*_per_s``, ``*_bps``, ``*_hz``) improve upward.
    Unknown shapes return ``None`` and are exempt from the gate.
    """
    if metric.endswith(("_per_s", "_bps", "_hz", "_pps")):
        return "higher"
    if metric.endswith(("_s", "_ms", "_us", "_pct")):
        return "lower"
    return None


# ----------------------------------------------------------------------
# record
# ----------------------------------------------------------------------

def _records_from_bench_json(path: str,
                             name: Optional[str]) -> List[BenchRecord]:
    """One record per numeric metric of a ``BENCH_*.json`` document
    (the repo bench schema: ``{bench, config, metrics, timestamp}``)."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        raise _UsageError(f"error: no such file: {path}")
    except json.JSONDecodeError as exc:
        raise _UsageError(f"error: {path}: not JSON: {exc}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        raise _UsageError(
            f"error: {path}: missing 'metrics' table (bench schema)")
    bench = name or doc.get("bench")
    if not bench:
        raise _UsageError(
            f"error: {path}: no 'bench' name; pass --name")
    meta = {"source": os.path.basename(path)}
    config = doc.get("config")
    if isinstance(config, dict):
        meta["config"] = config
    out = []
    for metric, value in sorted(metrics.items()):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        unit = "s" if metric.endswith("_s") else (
            "pct" if metric.endswith("_pct") else "")
        out.append(BenchRecord.make(bench, metric, float(value), unit,
                                    better=infer_better(metric), meta=meta))
    if not out:
        raise _UsageError(f"error: {path}: no numeric metrics to record")
    return out


def cmd_record(args: argparse.Namespace) -> int:
    history = args.history or default_history_dir()
    if args.from_json:
        records = _records_from_bench_json(args.from_json, args.name)
    else:
        missing = [flag for flag, value in (("--name", args.name),
                                            ("--metric", args.metric),
                                            ("--value", args.value))
                   if value is None]
        if missing:
            raise _UsageError(
                f"error: record needs {', '.join(missing)} "
                "(or --from-json FILE)")
        meta: Dict[str, Any] = {}
        for pair in args.meta or []:
            key, sep, value = pair.partition("=")
            if not sep:
                raise _UsageError(f"error: bad --meta {pair!r} (want k=v)")
            meta[key] = value
        records = [BenchRecord.make(
            args.name, args.metric, args.value, args.unit or "",
            better=args.better, meta=meta)]
    n = append_records(history, records)
    print(f"{history}: appended {n} record(s)")
    for rec in records:
        print(f"  {rec.name}/{rec.metric} = {rec.value:g} {rec.unit}".rstrip())
    return 0


# ----------------------------------------------------------------------
# compare / gate
# ----------------------------------------------------------------------

def _only_patterns(args: argparse.Namespace) -> List[str]:
    return [p.strip() for p in (args.only or "").split(",") if p.strip()]


def _load_findings(args: argparse.Namespace):
    history_dir = args.history or default_history_dir()
    history = filter_history(load_history(history_dir),
                             _only_patterns(args))
    if not history.records:
        raise _UsageError(
            f"error: no bench history under {history_dir} "
            "matching the filters "
            "(run the micro-benches or `record` first)")
    findings = compare_series(
        history, window=args.window, min_records=args.min_records,
        noise_pct=args.noise_pct, same_machine=not args.any_machine)
    return history, findings


def _emit_findings(args, history, findings, gate: bool,
                   passed: bool = True) -> None:
    if args.json:
        print(json.dumps({
            "version": 1,
            "history": history.root,
            "records": len(history.records),
            "skipped_lines": history.skipped,
            "window": args.window,
            "noise_pct": args.noise_pct,
            "passed": passed if gate else None,
            "series": [f.to_dict() for f in findings],
        }, indent=2))
        return
    print(f"history: {history.root} ({len(history.records)} records"
          + (f", {history.skipped} unreadable lines skipped" if history.skipped
             else "") + ")")
    for f in findings:
        print("  " + f.render())
    if gate:
        regressed = [f for f in findings if f.failed]
        if regressed:
            print(f"gate: FAIL ({len(regressed)} regressed series)")
        else:
            print("gate: ok")


def cmd_compare(args: argparse.Namespace) -> int:
    history, findings = _load_findings(args)
    _emit_findings(args, history, findings, gate=False)
    return 0


def cmd_gate(args: argparse.Namespace) -> int:
    history_dir = args.history or default_history_dir()
    history = filter_history(load_history(history_dir),
                             _only_patterns(args))
    if not history.records:
        # An empty trajectory is the bootstrap state, not an error:
        # the gate must be safe to wire into CI before any records
        # exist.  (A *missing metrics table* etc. still exits 2.)
        print(f"gate: no bench history under {history_dir}; "
              "nothing to gate (pass)")
        return 0
    findings, passed = gate_history(
        history, window=args.window, min_records=args.min_records,
        noise_pct=args.noise_pct, same_machine=not args.any_machine)
    _emit_findings(args, history, findings, gate=True, passed=passed)
    if not passed and args.warn_only:
        print("gate: --warn-only set; reporting regression without "
              "failing")
        return 0
    return 0 if passed else 1


# ----------------------------------------------------------------------
# top
# ----------------------------------------------------------------------

def _profiled_workload(args: argparse.Namespace) -> Profiler:
    """Run the canned bulk-transfer workload under a profiler."""
    from repro.core.flavors import make_connection
    from repro.netsim.engine import Simulator
    from repro.netsim.paths import wired_path

    prof = Profiler(label=f"top:{args.scheme}", memory=args.memory)
    sim = Simulator(seed=args.seed, profiler=prof)
    path = wired_path(sim, args.rate_mbps * 1e6, args.rtt_ms / 1e3)
    conn = make_connection(sim, args.scheme, initial_rtt_s=args.rtt_ms / 1e3)
    conn.wire(path.forward, path.reverse)
    conn.start_bulk()
    sim.run(until=args.duration_s)
    return prof


def cmd_top(args: argparse.Namespace) -> int:
    prof = _profiled_workload(args)
    report = prof.report()
    print(f"workload: {args.scheme} bulk, {args.rate_mbps:g} Mbps, "
          f"{args.rtt_ms:g} ms RTT, {args.duration_s:g} simulated s")
    print(render_top(report, args.top))
    if args.json_out:
        from repro.profile.report import write_profile
        write_profile(args.json_out, report)
        print(f"report: {args.json_out}")
    if args.flamegraph:
        parent = os.path.dirname(args.flamegraph)
        if parent:
            os.makedirs(parent, exist_ok=True)
        n = prof.write_collapsed(args.flamegraph)
        print(f"flamegraph: {args.flamegraph} ({n} stacks)")
    prof.close()
    return 0


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------

def _add_history_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("--history", default=None,
                   help="history root (default: benchmarks/results/history"
                        f" or ${HISTORY_ENV})")
    p.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                   help="baseline records per series (default %(default)s)")
    p.add_argument("--min-records", type=int, default=DEFAULT_MIN_RECORDS,
                   help="baseline points required before a series can "
                        "fail (default %(default)s)")
    p.add_argument("--noise-pct", type=float, default=DEFAULT_NOISE_PCT,
                   help="relative noise band in percent "
                        "(default %(default)s)")
    p.add_argument("--any-machine", action="store_true",
                   help="compare across machine fingerprints (noisy)")
    p.add_argument("--only", default=None, metavar="PAT[,PAT...]",
                   help="restrict to bench series whose name contains "
                        "any of the comma-separated substrings")
    p.add_argument("--json", action="store_true")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.profile",
        description="Simulator profiling and benchmark-history gating.")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("top", help="profile a canned workload and print "
                                   "the hottest handlers")
    p.add_argument("--scheme", default="tcp-tack")
    p.add_argument("--duration-s", type=float, default=1.0)
    p.add_argument("--rate-mbps", type=float, default=50.0)
    p.add_argument("--rtt-ms", type=float, default=40.0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("-n", "--top", type=int, default=12)
    p.add_argument("--memory", action="store_true",
                   help="include a tracemalloc snapshot")
    p.add_argument("--flamegraph", default=None, metavar="PATH",
                   help="write collapsed stacks for flamegraph tooling")
    p.add_argument("--json", dest="json_out", default=None, metavar="PATH",
                   help="write the JSON report")
    p.set_defaults(fn=cmd_top)

    p = sub.add_parser("record", help="append BenchRecords to the history")
    p.add_argument("--history", default=None)
    p.add_argument("--from-json", default=None, metavar="BENCH_JSON",
                   help="record every numeric metric of a BENCH_*.json doc")
    p.add_argument("--name", default=None)
    p.add_argument("--metric", default=None)
    p.add_argument("--value", type=float, default=None)
    p.add_argument("--unit", default="")
    p.add_argument("--better", choices=("higher", "lower"), default=None)
    p.add_argument("--meta", action="append", metavar="K=V")
    p.set_defaults(fn=cmd_record)

    p = sub.add_parser("compare",
                       help="latest-vs-window table for recorded series")
    _add_history_options(p)
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("gate",
                       help="exit 1 when any series regressed beyond "
                            "the noise band")
    _add_history_options(p)
    p.add_argument("--warn-only", action="store_true",
                   help="report regressions but always exit 0")
    p.set_defaults(fn=cmd_gate)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code not in (0,) else 0
    try:
        return args.fn(args)
    except _UsageError as exc:
        print(str(exc), file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
