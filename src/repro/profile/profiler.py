"""The :class:`Profiler`: wall-CPU accounting for a running simulation.

All wall-clock reads live *here*, on the host side of the fence.  The
instrumented simulation modules only hold an optional reference and
call the hook methods behind ``if ... is not None`` guards (or bind
:meth:`wrap`-ped methods at construction time); they never import this
package — reprolint REP007 enforces both halves of that contract.

Two kinds of accounting share one frame stack:

* **engine events** — :meth:`event_begin` / :meth:`event_end` around
  each fired callback give per-handler-class inclusive latency
  histograms (percentiles via :func:`repro.stats.percentile`), the
  events/second rate, and the calendar-queue high-water mark;
* **subsystem spans** — :meth:`wrap` re-binds a hot method (sender
  feedback path, receiver ingress, congestion-controller update, ACK
  policy) so its wall time is attributed to a named span, nested under
  whatever engine handler fired it.

Because spans nest inside events on one stack, exclusive ("self") time
is exact: a parent's self time never double-counts its children, and
the accumulated ``(stack path -> self seconds)`` map exports directly
as collapsed stacks for standard flamegraph tooling.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

_perf = time.perf_counter

#: Latency samples kept per handler class before decimation kicks in.
_MAX_SAMPLES = 1 << 16


class _Agg:
    """Streaming aggregate of one handler class or span."""

    __slots__ = ("count", "total_s", "self_s", "max_s",
                 "samples", "stride")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.self_s = 0.0
        self.max_s = 0.0
        self.samples: List[float] = []
        self.stride = 1

    def add(self, elapsed: float, self_s: float, keep_sample: bool) -> None:
        self.count += 1
        self.total_s += elapsed
        self.self_s += self_s
        if elapsed > self.max_s:
            self.max_s = elapsed
        if not keep_sample:
            return
        if self.count % self.stride == 0:
            self.samples.append(elapsed)
            if len(self.samples) >= _MAX_SAMPLES:
                # Decimate: keep every other sample, double the stride.
                # Percentiles stay representative at bounded memory.
                self.samples = self.samples[::2]
                self.stride *= 2


class _Frame:
    """One open entry on the profile stack."""

    __slots__ = ("kind", "name", "t0", "child_s", "path")

    def __init__(self, kind: str, name: str, t0: float,
                 path: Tuple[str, ...]):
        self.kind = kind          # "event" | "span"
        self.name = name
        self.t0 = t0
        self.child_s = 0.0
        self.path = path


def _classify(fn: Callable) -> str:
    """Handler-class label for a scheduled callback.

    Bound methods become ``Owner.method`` (the common case: timers and
    deliveries are methods on senders, receivers, links); bare
    functions and closures fall back to their qualname.
    """
    owner = getattr(fn, "__self__", None)
    if owner is not None:
        name = getattr(fn, "__name__", "?")
        return f"{type(owner).__name__}.{name}"
    return getattr(fn, "__qualname__", None) or type(fn).__name__


def _safe_frame(name: str) -> str:
    """Collapsed-stack frames may not contain ';' or whitespace."""
    return (name.replace(";", ":").replace(" ", "_")
            .replace("\n", "_").replace("\t", "_"))


class Profiler:
    """Accumulates wall-CPU accounting for one (or more) simulations.

    Parameters
    ----------
    label:
        Free-form run label stored in the report metadata.
    memory:
        Start :mod:`tracemalloc` at attach time and include a heap
        snapshot (current/peak bytes plus the top allocation sites) in
        the report.  Costs real overhead; off by default.
    histogram:
        Keep per-handler latency samples for percentile computation.
        Disabling drops the per-event list append, for minimum-
        overhead runs where only totals matter.
    """

    def __init__(self, label: str = "", memory: bool = False,
                 histogram: bool = True):
        self.label = label
        self._histogram = histogram
        self._stack: List[_Frame] = []
        self._handlers: Dict[str, _Agg] = {}
        self._spans: Dict[str, _Agg] = {}
        self._folded: Dict[Tuple[str, ...], float] = {}
        self.events_fired = 0
        self.dispatch_s = 0.0          # wall time inside event callbacks
        self.queue_high_water = 0
        self._sim_now: Optional[Callable[[], float]] = None
        self._sim_t0: Optional[float] = None
        self._sim_t1: Optional[float] = None
        self._memory = memory
        self._mem_started = False
        self._mem_stats: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def attach(self, sim) -> "Profiler":
        """Bind to a simulator (sim-clock source for the report's
        simulated-seconds-per-wall-second figure)."""
        self._sim_now = sim.clock.now
        if self._memory and not self._mem_started:
            import tracemalloc
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._mem_started = True
        return self

    def close(self) -> None:
        """Snapshot and stop memory tracing, if this profiler owns it."""
        if self._mem_started:
            self._snapshot_memory()
            import tracemalloc
            tracemalloc.stop()
            self._mem_started = False

    def _snapshot_memory(self) -> None:
        import tracemalloc
        if not tracemalloc.is_tracing():
            return
        current, peak = tracemalloc.get_traced_memory()
        top = tracemalloc.take_snapshot().statistics("lineno")[:15]
        self._mem_stats = {
            "current_bytes": current,
            "peak_bytes": peak,
            "top": [{"site": str(stat.traceback),
                     "bytes": stat.size, "count": stat.count}
                    for stat in top],
        }

    # ------------------------------------------------------------------
    # hooks (called from instrumented sim code, always behind a guard)
    # ------------------------------------------------------------------
    def event_begin(self, fn: Callable, queue_depth: int) -> None:
        """The engine is about to fire *fn*; stack depth must return to
        its current level via exactly one :meth:`event_end`."""
        if queue_depth > self.queue_high_water:
            self.queue_high_water = queue_depth
        self._push("event", _classify(fn))
        if self._sim_t0 is None and self._sim_now is not None:
            self._sim_t0 = self._sim_now()

    def event_end(self) -> None:
        self._pop()
        self.events_fired += 1
        if self._sim_now is not None:
            self._sim_t1 = self._sim_now()

    def wrap(self, name: str, fn: Callable) -> Callable:
        """Return *fn* wrapped in a named subsystem span.

        Meant for construction-time method re-binding
        (``self.method = prof.wrap("span", self.method)``) so the hot
        path carries zero profiling branches when disabled.
        """
        @functools.wraps(fn)
        def profiled(*args, **kwargs):
            self._push("span", name)
            try:
                return fn(*args, **kwargs)
            finally:
                self._pop()
        return profiled

    # ------------------------------------------------------------------
    # frame stack
    # ------------------------------------------------------------------
    def _push(self, kind: str, name: str) -> None:
        parent = self._stack[-1].path if self._stack else ()
        self._stack.append(_Frame(kind, name, _perf(), parent + (name,)))

    def _pop(self) -> None:
        if not self._stack:
            return
        frame = self._stack.pop()
        elapsed = _perf() - frame.t0
        self_s = elapsed - frame.child_s
        if self_s < 0.0:
            self_s = 0.0  # clock granularity can make child > parent
        if self._stack:
            self._stack[-1].child_s += elapsed
        self._folded[frame.path] = self._folded.get(frame.path, 0.0) + self_s
        if frame.kind == "event":
            agg = self._handlers.get(frame.name)
            if agg is None:
                agg = self._handlers[frame.name] = _Agg()
            agg.add(elapsed, self_s, self._histogram)
            self.dispatch_s += elapsed
        else:
            agg = self._spans.get(frame.name)
            if agg is None:
                agg = self._spans[frame.name] = _Agg()
            agg.add(elapsed, self_s, self._histogram)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self) -> Dict[str, Any]:
        """JSON-ready profile document (schema ``repro-profile`` v1)."""
        from repro.profile.report import build_report
        if self._memory and self._mem_stats is None:
            self._snapshot_memory()
        return build_report(self)

    def write_json(self, path: str) -> Dict[str, Any]:
        """Write the report to *path*; returns the document."""
        from repro.profile.report import write_profile
        return write_profile(path, self.report())

    def collapsed_stacks(self) -> List[str]:
        """Flamegraph-compatible lines: ``frame;frame;... <microsec>``.

        Values are integer self-microseconds; zero-self frames are
        dropped (flamegraph tooling requires positive sample counts).
        """
        lines: List[str] = []
        for path in sorted(self._folded):
            us = round(self._folded[path] * 1e6)
            if us <= 0:
                continue
            lines.append(";".join(_safe_frame(f) for f in path) + f" {us}")
        return lines

    def write_collapsed(self, path: str) -> int:
        """Write collapsed stacks to *path*; returns the line count."""
        lines = self.collapsed_stacks()
        with open(path, "w") as fh:
            for line in lines:
                fh.write(line + "\n")
        return len(lines)

    # ------------------------------------------------------------------
    @property
    def sim_elapsed_s(self) -> float:
        """Simulated seconds covered while profiling (0 before run)."""
        if self._sim_t0 is None or self._sim_t1 is None:
            return 0.0
        return max(self._sim_t1 - self._sim_t0, 0.0)

    def __repr__(self) -> str:
        return (f"Profiler(events={self.events_fired}, "
                f"dispatch={self.dispatch_s:.3f}s, "
                f"handlers={len(self._handlers)}, "
                f"spans={len(self._spans)})")
