"""TCP Vegas: delay-based congestion avoidance."""

from __future__ import annotations

from repro.cc.base import CongestionController, RateSample
from repro.cc.windowed_filter import WindowedMinFilter
from repro.netsim.packet import MSS


class Vegas(CongestionController):
    """Vegas keeps ``diff = cwnd/base_rtt - cwnd/rtt`` between alpha_pkts
    and beta_pkts packets by additive adjustment once per RTT."""

    name = "vegas"

    def __init__(
        self,
        mss: int = MSS,
        alpha_pkts: float = 2.0,
        beta_pkts: float = 4.0,
        initial_cwnd_mss: int = 10,
    ):
        super().__init__(mss)
        if beta_pkts < alpha_pkts:
            raise ValueError("beta_pkts must be >= alpha_pkts")
        self.alpha_pkts = alpha_pkts
        self.beta_pkts = beta_pkts
        self._cwnd = float(initial_cwnd_mss * mss)
        self._ssthresh = float("inf")
        self._base_rtt = WindowedMinFilter(window=30.0)
        self._srtt = 0.1
        self._next_adjust = 0.0
        self._last_loss_time = -1.0

    def on_feedback(self, sample: RateSample) -> None:
        if sample.rtt is not None:
            self._srtt = 0.875 * self._srtt + 0.125 * sample.rtt
            self._base_rtt.update(sample.rtt, sample.now)
        if sample.newly_lost > 0 and sample.now - self._last_loss_time > self._srtt:
            self._last_loss_time = sample.now
            self._cwnd = max(self._cwnd * 0.75, 2 * self.mss)
            return
        if sample.newly_acked <= 0:
            return
        base = self._base_rtt.get() or self._srtt
        if self._cwnd < self._ssthresh:
            self._cwnd += sample.newly_acked / 2.0  # slower slow start
        if sample.now < self._next_adjust:
            return
        self._next_adjust = sample.now + self._srtt
        expected = self._cwnd / base
        actual = self._cwnd / max(self._srtt, 1e-6)
        diff_packets = (expected - actual) * base / self.mss
        if diff_packets < self.alpha_pkts:
            self._cwnd += self.mss
        elif diff_packets > self.beta_pkts:
            self._cwnd = max(self._cwnd - self.mss, 2 * self.mss)
        if diff_packets > self.alpha_pkts:
            self._ssthresh = min(self._ssthresh, self._cwnd)

    def on_rto(self, now: float) -> None:
        self._ssthresh = max(self._cwnd / 2.0, 2 * self.mss)
        self._cwnd = float(2 * self.mss)
        self._last_loss_time = now

    def cwnd_bytes(self) -> int:
        return int(self._cwnd)

    def pacing_rate_bps(self) -> float:
        return 1.2 * self._cwnd * 8.0 / max(self._srtt, 1e-4)
