"""BBR congestion control (v1, simplified).

The state machine follows Cardwell et al. [17]: STARTUP discovers the
bottleneck bandwidth with gain 2.885, DRAIN removes the queue it
built, PROBE_BW cycles pacing gains ``[1.25, 0.75, 1 x6]`` around the
estimate, and PROBE_RTT periodically shrinks the window to refresh
RTT_min.  The bottleneck-bandwidth estimate is a windowed max of
delivery-rate samples (theta_filter ~= 10 RTTs, paper S5.3/S5.4).

The same class serves both paradigms from the paper:

* legacy TCP BBR -- the *sender* computes delivery-rate samples from
  ACK arrivals and feeds them in;
* TACK co-designed BBR -- the *receiver* computes delivery rate per
  TACK interval and syncs it in the TACK; the sender passes the
  reported value straight through.

Either way the controller only sees ``RateSample.delivery_rate_bps``.
"""

from __future__ import annotations

from repro.cc.base import CongestionController, RateSample
from repro.cc.windowed_filter import WindowedMaxFilter, WindowedMinFilter
from repro.netsim.packet import MSS

STARTUP = "startup"
DRAIN = "drain"
PROBE_BW = "probe_bw"
PROBE_RTT = "probe_rtt"

_STARTUP_GAIN = 2.885
_DRAIN_GAIN = 1.0 / _STARTUP_GAIN
_CWND_GAIN = 2.0
_PROBE_BW_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
_PROBE_RTT_DURATION = 0.2
_MIN_RTT_WINDOW = 10.0


class BBR(CongestionController):
    """Rate-based controller driven by bandwidth and RTT_min estimates."""

    name = "bbr"

    def __init__(
        self,
        mss: int = MSS,
        initial_rtt_s: float = 0.1,
        bw_window_rtts: float = 10.0,
        min_rtt_window: float = _MIN_RTT_WINDOW,
        initial_cwnd_mss: int = 10,
        aggregation_compensation: bool = True,
    ):
        super().__init__(mss)
        self.aggregation_compensation = aggregation_compensation
        self.state = STARTUP
        self._min_rtt = WindowedMinFilter(window=min_rtt_window)
        self._initial_rtt_s = initial_rtt_s
        self.bw_window_rtts = bw_window_rtts
        self._btl_bw = WindowedMaxFilter(window=bw_window_rtts * initial_rtt_s)
        self._pacing_gain = _STARTUP_GAIN
        self._cwnd_gain = _STARTUP_GAIN
        self._cwnd = initial_cwnd_mss * mss
        # STARTUP full-pipe detection
        self._full_bw = 0.0
        self._full_bw_rounds = 0
        self.filled_pipe = False
        # round/cycle bookkeeping (time-approximated rounds)
        self._round_start = 0.0
        self._cycle_index = 0
        self._cycle_start = 0.0
        # PROBE_RTT bookkeeping
        self._min_rtt_stamp = 0.0
        self._probe_rtt_done_at: float = -1.0
        self._in_flight = 0
        # Aggregation compensation (BBR IETF-101 update, paper ref
        # [18]): wireless links deliver ACK credit in A-MPDU bursts, so
        # cwnd gets a bonus equal to the windowed-max "extra acked"
        # (bytes acked beyond bw * elapsed) or utilization collapses.
        self._extra_acked = WindowedMaxFilter(window=bw_window_rtts * initial_rtt_s)
        self._ack_epoch_start: float = -1.0
        self._ack_epoch_acked = 0

    # ------------------------------------------------------------------
    # estimates
    # ------------------------------------------------------------------
    def bw_estimate(self) -> float:
        """Bottleneck bandwidth estimate in bits/s."""
        bw = self._btl_bw.get()
        if bw is None or bw <= 0:
            # Nothing measured yet: derive from initial cwnd / rtt.
            return self._cwnd * 8.0 / self.min_rtt()
        return bw

    def min_rtt(self) -> float:
        value = self._min_rtt.get()
        return value if value is not None else self._initial_rtt_s

    def bdp_bytes(self, gain: float = 1.0) -> int:
        return max(int(gain * self.bw_estimate() * self.min_rtt() / 8.0), 4 * self.mss)

    # ------------------------------------------------------------------
    # feedback
    # ------------------------------------------------------------------
    def on_feedback(self, sample: RateSample) -> None:
        now = sample.now
        self._in_flight = sample.in_flight
        if sample.rtt is not None and sample.rtt > 0:
            prior = self._min_rtt.get()
            self._min_rtt.update(sample.rtt, now)
            if prior is None or sample.rtt <= prior:
                self._min_rtt_stamp = now
        if sample.min_rtt is not None and sample.min_rtt > 0:
            # Externally supplied RTT_min (TACK advanced timing).
            prior = self._min_rtt.get()
            self._min_rtt.update(sample.min_rtt, now)
            if prior is None or sample.min_rtt <= prior:
                self._min_rtt_stamp = now
        if sample.delivery_rate_bps is not None and sample.delivery_rate_bps > 0:
            if not sample.is_app_limited or sample.delivery_rate_bps > (self._btl_bw.get() or 0.0):
                self._btl_bw.window = self.bw_window_rtts * self.min_rtt()
                prior_bw = self._btl_bw.get() if self._tel is not None else None
                self._btl_bw.update(sample.delivery_rate_bps, now)
                if self._tel is not None:
                    new_bw = self._btl_bw.get()
                    # Value-change detection on the windowed max, not
                    # clock arithmetic; most updates leave it unchanged.
                    if new_bw != prior_bw:
                        self._tel_emit("bw_filter", bw_bps=new_bw)
        if self.aggregation_compensation and sample.newly_acked > 0:
            self._update_extra_acked(sample.newly_acked, now)
        self._update_rounds(now)
        self._update_state(now)
        self._update_cwnd()

    def _update_extra_acked(self, newly_acked: int, now: float) -> None:
        bw_bytes_per_s = self.bw_estimate() / 8.0
        if self._ack_epoch_start < 0:
            self._ack_epoch_start = now
            self._ack_epoch_acked = 0
        expected = bw_bytes_per_s * (now - self._ack_epoch_start)
        self._ack_epoch_acked += newly_acked
        if self._ack_epoch_acked <= expected:
            # Credit stream fell behind the estimate: restart the epoch.
            self._ack_epoch_start = now
            self._ack_epoch_acked = 0
            return
        extra = self._ack_epoch_acked - expected
        extra = min(extra, self._cwnd)  # cap per the reference impl
        self._extra_acked.window = self.bw_window_rtts * self.min_rtt()
        self._extra_acked.update(extra, now)

    def extra_acked_bytes(self) -> int:
        value = self._extra_acked.get()
        return int(value) if value is not None else 0

    def _update_rounds(self, now: float) -> None:
        if now - self._round_start >= self.min_rtt():
            self._round_start = now
            if self.state == STARTUP:
                self._check_full_pipe()

    def _check_full_pipe(self) -> None:
        bw = self._btl_bw.get() or 0.0
        if bw > self._full_bw * 1.25:
            self._full_bw = bw
            self._full_bw_rounds = 0
        else:
            self._full_bw_rounds += 1
            if self._full_bw_rounds >= 3:
                self.filled_pipe = True

    def _set_state(self, state: str) -> None:
        """State transition routed through one point for telemetry."""
        if state == self.state:
            return
        self.state = state
        if self._tel is not None or self._diag is not None:
            bw = self.bw_estimate()
            min_rtt = self.min_rtt()
            if self._tel is not None:
                self._tel_emit("state", state=state, bw_bps=bw,
                               min_rtt_s=min_rtt)
            if self._diag is not None:
                self._diag.observe("cc", "state", self._diag_flow,
                                   state=state, bw_bps=bw,
                                   min_rtt_s=min_rtt)

    def _update_state(self, now: float) -> None:
        if self.state == STARTUP and self.filled_pipe:
            self._set_state(DRAIN)
            self._pacing_gain = _DRAIN_GAIN
            self._cwnd_gain = _CWND_GAIN
        if self.state == DRAIN and self._in_flight <= self.bdp_bytes():
            self._enter_probe_bw(now)
        if self.state == PROBE_BW:
            self._advance_cycle(now)
            self._maybe_enter_probe_rtt(now)
        if self.state == PROBE_RTT and now >= self._probe_rtt_done_at:
            self._min_rtt_stamp = now
            if self.filled_pipe:
                self._enter_probe_bw(now)
            else:
                self._set_state(STARTUP)
                self._pacing_gain = _STARTUP_GAIN
                self._cwnd_gain = _STARTUP_GAIN

    def _enter_probe_bw(self, now: float) -> None:
        self._set_state(PROBE_BW)
        self._cwnd_gain = _CWND_GAIN
        self._cycle_index = 2  # start in a neutral phase
        self._cycle_start = now
        self._pacing_gain = _PROBE_BW_GAINS[self._cycle_index]

    def _advance_cycle(self, now: float) -> None:
        if now - self._cycle_start >= self.min_rtt():
            self._cycle_index = (self._cycle_index + 1) % len(_PROBE_BW_GAINS)
            self._cycle_start = now
            self._pacing_gain = _PROBE_BW_GAINS[self._cycle_index]

    def _maybe_enter_probe_rtt(self, now: float) -> None:
        if now - self._min_rtt_stamp > self._min_rtt.window:
            self._set_state(PROBE_RTT)
            self._pacing_gain = 1.0
            self._probe_rtt_done_at = now + max(_PROBE_RTT_DURATION, self.min_rtt())

    def _update_cwnd(self) -> None:
        if self.state == PROBE_RTT:
            self._cwnd = 4 * self.mss
        else:
            self._cwnd = self.bdp_bytes(self._cwnd_gain)
            if self.aggregation_compensation:
                self._cwnd += self.extra_acked_bytes()

    # ------------------------------------------------------------------
    def on_rto(self, now: float) -> None:
        # BBR reacts to timeouts conservatively: restart from a small
        # window but keep the bandwidth estimate.
        self._cwnd = 4 * self.mss

    def cwnd_bytes(self) -> int:
        return int(self._cwnd)

    def pacing_rate_bps(self) -> float:
        return self._pacing_gain * self.bw_estimate()
