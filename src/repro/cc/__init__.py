"""Congestion controllers and rate machinery.

Controllers implement :class:`repro.cc.base.CongestionController` and
are interchangeable inside the transport sender.  BBR is the paper's
evaluation controller; CUBIC, NewReno, and Vegas serve the baselines
and the friendliness experiment (Fig. 15).  The TACK co-design
(receiver-based BBR, paper S5.3) consumes receiver-reported delivery
rates instead of sender-side samples.
"""

from repro.cc.base import CongestionController, RateSample
from repro.cc.bbr import BBR
from repro.cc.compound import CompoundTcp
from repro.cc.cubic import Cubic
from repro.cc.reno import NewReno
from repro.cc.vegas import Vegas
from repro.cc.windowed_filter import WindowedMaxFilter, WindowedMinFilter

__all__ = [
    "BBR",
    "CompoundTcp",
    "CongestionController",
    "Cubic",
    "NewReno",
    "RateSample",
    "Vegas",
    "WindowedMaxFilter",
    "WindowedMinFilter",
]
