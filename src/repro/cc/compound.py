"""Compound TCP (Tan et al., INFOCOM 2006) — simplified.

The paper's S7 lists Compound among the controllers TACK should be
exercised with.  Compound maintains two windows: a loss-based AIMD
window (``cwnd``, NewReno-like) plus a delay-based window (``dwnd``,
scalable-increase while the path shows no queueing, shrinking as the
queue builds).  The send window is their sum, so Compound fills
high-bdp pipes quickly yet yields like Reno when queueing appears.
"""

from __future__ import annotations

from repro.cc.base import CongestionController, RateSample
from repro.cc.windowed_filter import WindowedMinFilter
from repro.netsim.packet import MSS


class CompoundTcp(CongestionController):
    """Loss window + delay window (CTCP's binomial increase).

    Parameters follow the paper's recommendations: ``alpha = 0.125``,
    ``k = 0.75`` for the binomial increase, ``zeta = 30`` packets of
    backlog as the congestion threshold (gamma), ``beta = 0.5`` AIMD
    decrease.
    """

    name = "compound"

    ALPHA = 0.125
    K = 0.75
    GAMMA_PACKETS = 30.0
    BETA = 0.5

    def __init__(self, mss: int = MSS, initial_cwnd_mss: int = 10):
        super().__init__(mss)
        self._cwnd = float(initial_cwnd_mss * mss)  # loss-based window
        self._dwnd = 0.0                            # delay-based window
        self._ssthresh = float("inf")
        self._srtt = 0.1
        self._base_rtt = WindowedMinFilter(window=30.0)
        self._last_loss_time = -1.0
        self._loss_guard = 0.0
        self._next_adjust = 0.0

    # ------------------------------------------------------------------
    def window(self) -> float:
        return self._cwnd + self._dwnd

    def on_feedback(self, sample: RateSample) -> None:
        if sample.rtt is not None:
            self._srtt = 0.875 * self._srtt + 0.125 * sample.rtt
            self._base_rtt.update(sample.rtt, sample.now)
        if sample.newly_lost > 0 and sample.now - self._last_loss_time > self._loss_guard:
            self._on_loss(sample.now)
            return
        if sample.newly_acked <= 0:
            return
        if self.window() < self._ssthresh:
            self._cwnd += sample.newly_acked  # slow start on the sum
            return
        # Reno component: +1 MSS per window of acks.
        self._cwnd += self.mss * sample.newly_acked / max(self.window(), self.mss)
        if sample.now < self._next_adjust:
            return
        self._next_adjust = sample.now + self._srtt
        self._adjust_dwnd()

    def _adjust_dwnd(self) -> None:
        base = self._base_rtt.get() or self._srtt
        win_packets = self.window() / self.mss
        expected = win_packets / base
        actual = win_packets / max(self._srtt, 1e-6)
        diff = (expected - actual) * base  # backlog estimate in packets
        if diff < self.GAMMA_PACKETS:
            # Binomial increase: alpha * win^k (in packets).
            gain = self.ALPHA * (win_packets ** self.K)
            self._dwnd += gain * self.mss
        else:
            # Queue built up: retreat the delay window.
            self._dwnd = max(self._dwnd - (diff - self.GAMMA_PACKETS) * self.mss, 0.0)

    def _on_loss(self, now: float) -> None:
        self._last_loss_time = now
        self._loss_guard = self._srtt
        total = self.window()
        self._cwnd = max(self._cwnd * self.BETA, 2 * self.mss)
        self._dwnd = max(total * (1 - self.BETA) - self._cwnd, 0.0) * 0.5
        self._ssthresh = max(self.window(), 2 * self.mss)

    def on_rto(self, now: float) -> None:
        self._ssthresh = max(self.window() * self.BETA, 2 * self.mss)
        self._cwnd = float(self.mss)
        self._dwnd = 0.0
        self._last_loss_time = now

    # ------------------------------------------------------------------
    def cwnd_bytes(self) -> int:
        return int(self.window())

    def pacing_rate_bps(self) -> float:
        return 1.2 * self.window() * 8.0 / max(self._srtt, 1e-4)
