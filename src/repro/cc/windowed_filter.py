"""Time-windowed running extrema.

BBR's bandwidth filter, TACK's ``bw`` estimate (paper S5.4:
"windowed max-filtered value of the delivery rates"), and both RTT_min
filters (S5.2) are windowed extrema.  The implementation keeps a
monotonic deque of (time, value) candidates — O(1) amortized updates.
"""

from __future__ import annotations

import collections
from typing import Optional


class _WindowedExtremum:
    """Shared monotonic-deque machinery; subclasses fix the ordering."""

    def __init__(self, window: float):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self._samples: collections.deque[tuple[float, float]] = collections.deque()

    def _better(self, a: float, b: float) -> bool:
        raise NotImplementedError

    def update(self, value: float, now: float) -> None:
        """Insert a sample taken at time ``now``."""
        # Evict candidates dominated by the new value.
        while self._samples and not self._better(self._samples[-1][1], value):
            self._samples.pop()
        self._samples.append((now, value))
        self._expire(now)

    def _expire(self, now: float) -> None:
        horizon = now - self.window
        while self._samples and self._samples[0][0] < horizon:
            self._samples.popleft()

    def get(self, now: Optional[float] = None) -> Optional[float]:
        """Current extremum, or ``None`` when no sample is in window.

        Passing ``now`` expires stale candidates first.
        """
        if now is not None:
            self._expire(now)
        if not self._samples:
            return None
        return self._samples[0][1]

    def reset(self) -> None:
        self._samples.clear()


class WindowedMaxFilter(_WindowedExtremum):
    """Maximum over the trailing ``window`` seconds."""

    def _better(self, a: float, b: float) -> bool:
        return a > b


class WindowedMinFilter(_WindowedExtremum):
    """Minimum over the trailing ``window`` seconds."""

    def _better(self, a: float, b: float) -> bool:
        return a < b
