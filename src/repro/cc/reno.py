"""TCP NewReno: AIMD with slow start and fast recovery."""

from __future__ import annotations

from repro.cc.base import CongestionController, RateSample
from repro.netsim.packet import MSS


class NewReno(CongestionController):
    """Classic AIMD.

    Slow start doubles cwnd per RTT; congestion avoidance adds one MSS
    per RTT; a loss event halves cwnd (the sender's loss detector
    signals at most one "event" per round trip through
    ``newly_lost``).  Pacing rate is cwnd over srtt with a small
    headroom factor so pacing does not itself throttle the window.
    """

    name = "newreno"

    def __init__(self, mss: int = MSS, initial_cwnd_mss: int = 10):
        super().__init__(mss)
        self._cwnd = initial_cwnd_mss * mss
        self._ssthresh = float("inf")
        self._srtt = 0.1
        self._last_loss_time = -1.0
        self._loss_guard = 0.0  # ignore losses within one RTT of a cut

    def on_feedback(self, sample: RateSample) -> None:
        if sample.rtt is not None:
            self._srtt = 0.875 * self._srtt + 0.125 * sample.rtt
        if sample.newly_lost > 0 and sample.now - self._last_loss_time > self._loss_guard:
            self._last_loss_time = sample.now
            self._loss_guard = self._srtt
            self._ssthresh = max(self._cwnd / 2.0, 2 * self.mss)
            self._cwnd = int(self._ssthresh)
            return
        if sample.newly_acked > 0:
            if self._cwnd < self._ssthresh:
                self._cwnd += sample.newly_acked  # slow start
            else:
                self._cwnd += max(
                    1, int(self.mss * sample.newly_acked / self._cwnd)
                )

    def on_rto(self, now: float) -> None:
        self._ssthresh = max(self._cwnd / 2.0, 2 * self.mss)
        self._cwnd = self.mss
        self._last_loss_time = now

    def cwnd_bytes(self) -> int:
        return int(self._cwnd)

    def pacing_rate_bps(self) -> float:
        return 1.2 * self._cwnd * 8.0 / max(self._srtt, 1e-4)
