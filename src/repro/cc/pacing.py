"""Packet pacing.

Paper S5.3: lowering ACK frequency makes ack-clocked senders bursty,
so a TACK-based sender must pace.  The pacer is a simple virtual-time
regulator: each transmission advances the earliest next-send time by
``size * 8 / rate``; short idle periods reset the debt so a flow never
bursts after silence.
"""

from __future__ import annotations


class Pacer:
    """Spaces transmissions at a target bit rate."""

    def __init__(self, rate_bps: float = 1e6, burst_bytes: int = 0):
        if rate_bps <= 0:
            raise ValueError(f"pacing rate must be positive, got {rate_bps}")
        self._rate_bps = rate_bps
        self.burst_bytes = burst_bytes
        self._next_send = 0.0

    @property
    def rate_bps(self) -> float:
        return self._rate_bps

    def set_rate(self, rate_bps: float) -> None:
        if rate_bps > 0:
            self._rate_bps = rate_bps

    def next_send_time(self, now: float) -> float:
        """Earliest time the next packet may leave."""
        return max(self._next_send, now)

    def can_send(self, now: float) -> bool:
        return now >= self._next_send

    def on_sent(self, size_bytes: int, now: float) -> None:
        """Charge one transmission against the budget."""
        base = max(self._next_send, now)
        self._next_send = base + size_bytes * 8.0 / self._rate_bps

    def reset(self, now: float) -> None:
        self._next_send = now
