"""TCP CUBIC (RFC 8312): cubic window growth with fast convergence."""

from __future__ import annotations

from repro.cc.base import CongestionController, RateSample
from repro.netsim.packet import MSS


class Cubic(CongestionController):
    """CUBIC congestion avoidance.

    The window follows ``W(t) = C*(t - K)^3 + W_max`` after a loss,
    with multiplicative decrease ``beta = 0.7`` and fast convergence.
    The TCP-friendly (Reno-tracking) region is included.  Slow start is
    standard.  Pacing rate is cwnd over srtt (paper S5.3: window-based
    controllers convert CWND to a pacing rate).
    """

    name = "cubic"

    C = 0.4
    BETA = 0.7

    def __init__(self, mss: int = MSS, initial_cwnd_mss: int = 10):
        super().__init__(mss)
        self._cwnd = float(initial_cwnd_mss * mss)
        self._ssthresh = float("inf")
        self._w_max = 0.0
        self._epoch_start: float = -1.0
        self._k = 0.0
        self._srtt = 0.1
        self._last_loss_time = -1.0
        self._loss_guard = 0.0
        # TCP-friendly region estimate
        self._w_est = 0.0
        self._acked_in_epoch = 0.0

    # ------------------------------------------------------------------
    def on_feedback(self, sample: RateSample) -> None:
        if sample.rtt is not None:
            self._srtt = 0.875 * self._srtt + 0.125 * sample.rtt
        if sample.newly_lost > 0 and sample.now - self._last_loss_time > self._loss_guard:
            self._on_loss(sample.now)
            return
        if sample.newly_acked <= 0:
            return
        if self._cwnd < self._ssthresh:
            self._cwnd += sample.newly_acked
            return
        self._congestion_avoidance(sample)

    def _on_loss(self, now: float) -> None:
        self._last_loss_time = now
        self._loss_guard = self._srtt
        # Fast convergence: release bandwidth faster when w_max shrinks.
        if self._cwnd < self._w_max:
            self._w_max = self._cwnd * (1.0 + self.BETA) / 2.0
        else:
            self._w_max = self._cwnd
        self._cwnd = max(self._cwnd * self.BETA, 2 * self.mss)
        self._ssthresh = self._cwnd
        self._epoch_start = -1.0

    def _congestion_avoidance(self, sample: RateSample) -> None:
        now = sample.now
        if self._epoch_start < 0:
            self._epoch_start = now
            if self._cwnd < self._w_max:
                # K in seconds, windows in MSS units per RFC 8312.
                self._k = ((self._w_max - self._cwnd) / self.mss / self.C) ** (1.0 / 3.0)
            else:
                self._k = 0.0
            self._w_est = self._cwnd
            self._acked_in_epoch = 0.0
        self._acked_in_epoch += sample.newly_acked
        t = now - self._epoch_start + self._srtt
        target = (
            self.C * (t - self._k) ** 3 * self.mss + self._w_max
        )
        # TCP-friendly region (RFC 8312 Eq. 4, simplified).
        self._w_est += (
            3.0 * (1.0 - self.BETA) / (1.0 + self.BETA)
            * self.mss * sample.newly_acked / max(self._cwnd, self.mss)
        )
        target = max(target, self._w_est)
        if target > self._cwnd:
            # Approach the cubic target over one RTT.
            self._cwnd += (target - self._cwnd) * min(
                1.0, sample.newly_acked / max(self._cwnd, self.mss)
            )
        else:
            self._cwnd += self.mss * 0.01 * sample.newly_acked / max(self._cwnd, self.mss)

    def on_rto(self, now: float) -> None:
        self._w_max = self._cwnd
        self._ssthresh = max(self._cwnd * self.BETA, 2 * self.mss)
        self._cwnd = float(self.mss)
        self._epoch_start = -1.0
        self._last_loss_time = now

    # ------------------------------------------------------------------
    def cwnd_bytes(self) -> int:
        return int(self._cwnd)

    def pacing_rate_bps(self) -> float:
        return 1.2 * self._cwnd * 8.0 / max(self._srtt, 1e-4)
