"""RACK-style time-based loss detection (sender side, legacy TCP).

RACK [21] declares a packet lost when another packet *sent later* has
been (s)acked and more than ``rtt + reordering window`` has elapsed
since the packet's transmission.  The paper's TCP BBR baseline uses
RACK; TCP-TACK replaces this with receiver-based detection.
"""

from __future__ import annotations

from typing import Optional


class RackState:
    """Tracks the most recently delivered packet's send time."""

    def __init__(self, reo_wnd_fraction: float = 0.25):
        self.reo_wnd_fraction = reo_wnd_fraction
        self.latest_delivered_send_time: Optional[float] = None

    def on_delivered(self, send_time: float) -> None:
        """Record that a packet sent at ``send_time`` was (s)acked."""
        if (
            self.latest_delivered_send_time is None
            or send_time > self.latest_delivered_send_time
        ):
            self.latest_delivered_send_time = send_time

    def reo_wnd(self, srtt: float) -> float:
        return self.reo_wnd_fraction * srtt

    def is_lost(self, send_time: float, srtt: float, now: float) -> bool:
        """Is an outstanding packet sent at ``send_time`` lost?"""
        if self.latest_delivered_send_time is None:
            return False
        if send_time >= self.latest_delivered_send_time:
            return False
        return now >= send_time + srtt + self.reo_wnd(srtt)

    def deadline(self, send_time: float, srtt: float) -> float:
        """Time at which the packet would be declared lost."""
        return send_time + srtt + self.reo_wnd(srtt)
