"""Congestion controller interface and the per-feedback rate sample."""

from __future__ import annotations

from typing import Optional

from repro.netsim.packet import MSS


class RateSample:
    """What the sender learned from one feedback packet.

    Attributes
    ----------
    now:
        Time the feedback arrived.
    newly_acked:
        Bytes newly cumulatively-or-selectively acknowledged.
    newly_lost:
        Bytes newly declared lost by the loss detector.
    rtt:
        RTT sample from this feedback, if one could be formed.
    delivery_rate_bps:
        Delivery-rate estimate: sender-computed for legacy schemes,
        receiver-reported for TACK (S5.3/S5.4).
    in_flight:
        Bytes outstanding after processing this feedback.
    is_app_limited:
        True when the send rate was limited by the application rather
        than the window; app-limited rate samples must not lower the
        bandwidth estimate.
    min_rtt:
        Sender's current RTT_min estimate.
    """

    __slots__ = (
        "now",
        "newly_acked",
        "newly_lost",
        "rtt",
        "delivery_rate_bps",
        "in_flight",
        "is_app_limited",
        "min_rtt",
    )

    def __init__(
        self,
        now: float,
        newly_acked: int = 0,
        newly_lost: int = 0,
        rtt: Optional[float] = None,
        delivery_rate_bps: Optional[float] = None,
        in_flight: int = 0,
        is_app_limited: bool = False,
        min_rtt: Optional[float] = None,
    ):
        self.now = now
        self.newly_acked = newly_acked
        self.newly_lost = newly_lost
        self.rtt = rtt
        self.delivery_rate_bps = delivery_rate_bps
        self.in_flight = in_flight
        self.is_app_limited = is_app_limited
        self.min_rtt = min_rtt


class CongestionController:
    """Strategy interface consumed by the transport sender.

    The sender calls :meth:`on_feedback` for every arriving ACK-like
    packet, :meth:`on_rto` on retransmission timeout, and reads
    :meth:`cwnd_bytes` / :meth:`pacing_rate_bps` before each
    transmission.  Controllers never talk to the network directly.
    """

    name = "base"

    def __init__(self, mss: int = MSS):
        self.mss = mss
        # telemetry: attached by the sender (null-guard pattern).  The
        # controller has no simulator reference; the collector stamps
        # sim-time itself, so hooks stay dependency-free.
        self._tel = None
        self._tel_flow = 0
        # diagnosis: attached by the sender under the same pattern;
        # the flow doctor stamps sim-time itself.
        self._diag = None
        self._diag_flow = 0

    def attach_telemetry(self, collector, flow_id: int = 0) -> None:
        """Route ``cc``-category events through *collector*."""
        self._tel = collector
        self._tel_flow = flow_id

    def attach_diagnosis(self, doctor, flow_id: int = 0) -> None:
        """Mirror diagnosis-relevant ``cc`` events to the flow doctor."""
        self._diag = doctor
        self._diag_flow = flow_id

    def attach_profiler(self, profiler) -> None:
        """Bind the feedback hot path to a ``cc.<name>`` profile span.

        Called by the sender at construction time; re-binding the bound
        method keeps the path branch-free when no profiler is attached.
        """
        if profiler is not None:
            self.on_feedback = profiler.wrap(f"cc.{self.name}",
                                             self.on_feedback)

    def _tel_emit(self, name: str, **fields) -> None:
        if self._tel is not None:
            self._tel.emit("cc", name, self._tel_flow, **fields)

    def on_feedback(self, sample: RateSample) -> None:
        raise NotImplementedError

    def on_rto(self, now: float) -> None:
        raise NotImplementedError

    def cwnd_bytes(self) -> int:
        raise NotImplementedError

    def pacing_rate_bps(self) -> float:
        """Target send rate; the pacer spaces packets at this rate.

        Window-based controllers derive it as cwnd / srtt (paper S5.3);
        rate-based controllers own it directly.
        """
        raise NotImplementedError

    def initial_cwnd(self) -> int:
        return 10 * self.mss
