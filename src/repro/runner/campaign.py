"""Campaign orchestration: cache -> pool -> manifest.

A :class:`Campaign` is an ordered set of independent tasks (paper
figures, ablation grid points, sweep cells).  :meth:`Campaign.run`

1. fingerprints the ``repro`` source tree and checks the on-disk
   result cache — unchanged tasks resolve instantly as cache hits;
2. fans the misses out over the worker pool
   (:func:`repro.runner.pool.execute_tasks`) with per-task timeout and
   bounded retry;
3. stores fresh results back into the cache; and
4. returns a :class:`CampaignResult` (plan-ordered results + manifest),
   optionally writing the manifest JSON to disk.

Failed tasks never abort the campaign: they are reported in the
results/manifest and the caller decides what a failure means.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.bench.record import file_sha256
from repro.runner.cache import ResultCache, code_fingerprint
from repro.telemetry.trace_io import trace_digest
from repro.runner.manifest import build_manifest, write_manifest
from repro.runner.pool import execute_tasks
from repro.runner.task import Task, TaskResult, derive_seed, task_signature


class CampaignResult:
    """Plan-ordered task results plus the run manifest."""

    def __init__(self, results: List[TaskResult], manifest: Dict[str, Any]):
        self.results = results
        self.manifest = manifest
        self._by_name = {r.name: r for r in results}

    def result(self, name: str) -> TaskResult:
        return self._by_name[name]

    @property
    def ok(self) -> List[TaskResult]:
        return [r for r in self.results if r.ok]

    @property
    def failed(self) -> List[TaskResult]:
        return [r for r in self.results if not r.ok]

    @property
    def all_ok(self) -> bool:
        return not self.failed

    @property
    def wall_time_s(self) -> float:
        return self.manifest["wall_time_s"]

    def __len__(self) -> int:
        return len(self.results)


class Campaign:
    """An ordered collection of independent tasks."""

    def __init__(self, name: str = "campaign", base_seed: int = 1):
        self.name = name
        self.base_seed = base_seed
        self.tasks: List[Task] = []
        self._names: set[str] = set()

    def add(self, name: str, fn: Callable[..., Any],
            seed: Optional[int] = None, trace_path: Optional[str] = None,
            profile_path: Optional[str] = None,
            **kwargs: Any) -> Task:
        """Append a task; its seed defaults to ``derive_seed(base, name)``.

        Passing *trace_path* opts the task into telemetry capture: the
        path is forwarded to *fn* as a ``trace_path`` keyword and the
        finished trace's sha256 lands in the manifest (see
        :class:`repro.runner.task.Task`).  *profile_path* works the
        same way for host-side profiling: *fn* receives it as a
        ``profile_path`` keyword, writes the ``repro.profile`` JSON
        report there, and the artifact is digested into the manifest.
        """
        if name in self._names:
            raise ValueError(f"duplicate task name {name!r}")
        if trace_path is not None:
            kwargs["trace_path"] = trace_path
        if profile_path is not None:
            kwargs["profile_path"] = profile_path
        task = Task(name=name, fn=fn, kwargs=kwargs,
                    seed=derive_seed(self.base_seed, name)
                    if seed is None else seed,
                    trace_path=trace_path,
                    profile_path=profile_path)
        self._names.add(name)
        self.tasks.append(task)
        return task

    def add_grid(self, name_fmt: str, fn: Callable[..., Any],
                 grid: Sequence[Dict[str, Any]], **common: Any) -> List[Task]:
        """Parameter-grid sweep: one task per grid cell.

        ``name_fmt`` is formatted with the cell's parameters, e.g.
        ``add_grid("beta{beta}_L{L}", run, [{"beta": 2, "L": 44}, ...])``.
        """
        return [self.add(name_fmt.format(**cell), fn, **{**common, **cell})
                for cell in grid]

    # ------------------------------------------------------------------
    def run(self, jobs: int = 1, *,
            cache_dir: Optional[str] = None,
            timeout: Optional[float] = None, retries: int = 0,
            manifest_path: Optional[str] = None,
            fingerprint: Optional[str] = None,
            on_result: Optional[Callable[[TaskResult], None]] = None,
            ) -> CampaignResult:
        """Execute the campaign; caching is on iff *cache_dir* is given."""
        started_unix = time.time()
        started = time.monotonic()

        cache: Optional[ResultCache] = None
        if cache_dir is not None:
            if fingerprint is None:
                fingerprint = code_fingerprint()
            cache = ResultCache(cache_dir, fingerprint)

        results: Dict[str, TaskResult] = {}
        misses: List[Task] = []
        keys: Dict[str, str] = {}
        for task in self.tasks:
            if (cache is None or task.trace_path is not None
                    or task.profile_path is not None):
                # Traced/profiled tasks bypass the cache: a hit would
                # return the table without regenerating the artifact.
                misses.append(task)
                continue
            key = cache.key_for(task)
            keys[task.name] = key
            hit_started = time.monotonic()
            hit, value = cache.load(key)
            if hit:
                result = TaskResult(
                    name=task.name, status="ok", value=value,
                    attempts=0,
                    wall_time_s=time.monotonic() - hit_started,
                    cache="hit", seed=task.seed)
                results[task.name] = result
                if on_result is not None:
                    on_result(result)
            else:
                misses.append(task)

        def settle(result: TaskResult) -> None:
            task = next(t for t in self.tasks if t.name == result.name)
            if (cache is not None and task.trace_path is None
                    and task.profile_path is None):
                result.cache = "miss"
                if result.ok:
                    cache.store(
                        keys[result.name], result.value,
                        meta={
                            "signature": task_signature(task),
                            "fingerprint": cache.fingerprint,
                            "wall_time_s": result.wall_time_s,
                            "stored_unix": time.time(),
                        })
            if (task.trace_path is not None and result.ok
                    and os.path.isfile(task.trace_path)):
                result.trace = {
                    "path": task.trace_path,
                    "sha256": trace_digest(task.trace_path),
                }
            if (task.profile_path is not None and result.ok
                    and os.path.isfile(task.profile_path)):
                result.profile = {
                    "path": task.profile_path,
                    "sha256": file_sha256(task.profile_path),
                }
            results[result.name] = result
            if on_result is not None:
                on_result(result)

        if misses:
            execute_tasks(misses, jobs=jobs, timeout=timeout,
                          retries=retries, on_result=settle)

        ordered = [results[t.name] for t in self.tasks]
        manifest = build_manifest(
            self.name, ordered, jobs=jobs,
            wall_time_s=time.monotonic() - started,
            timeout_s=timeout, retries=retries,
            cache_enabled=cache is not None,
            cache_dir=cache_dir,
            fingerprint=cache.fingerprint if cache is not None else None,
            started_unix=started_unix)
        if manifest_path is not None:
            write_manifest(manifest_path, manifest)
        return CampaignResult(ordered, manifest)


def run_campaign(tasks: Sequence[Task] | Campaign, jobs: int = 1,
                 **kwargs: Any) -> CampaignResult:
    """Convenience wrapper: run a Campaign or a plain task sequence."""
    if isinstance(tasks, Campaign):
        return tasks.run(jobs=jobs, **kwargs)
    campaign = Campaign()
    campaign.tasks = list(tasks)
    campaign._names = {t.name for t in tasks}
    if len(campaign._names) != len(campaign.tasks):
        raise ValueError("task names must be unique")
    return campaign.run(jobs=jobs, **kwargs)
