"""Parallel experiment-campaign runner.

Orchestrates batches of independent, seed-driven experiments over a
process pool with on-disk result caching, per-task timeout + bounded
retry, graceful degradation on failure, and a structured JSON run
manifest.  See DESIGN.md section 8 for the architecture.

Typical use::

    from repro.runner import Campaign

    campaign = Campaign("beta_sweep")
    for beta in (1.5, 2.0, 4.0):
        campaign.add(f"beta{beta}", my_experiment, beta=beta)
    outcome = campaign.run(jobs=4, cache_dir="results/.cache",
                           timeout=300, retries=1,
                           manifest_path="results/run_manifest.json")
    for r in outcome.ok:
        r.value.show()
"""

from repro.runner.cache import ResultCache, code_fingerprint
from repro.runner.campaign import Campaign, CampaignResult, run_campaign
from repro.runner.manifest import (build_manifest, read_manifest,
                                   write_manifest)
from repro.runner.pool import execute_tasks
from repro.runner.task import Task, TaskResult, derive_seed, task_signature

__all__ = [
    "Campaign", "CampaignResult", "run_campaign",
    "Task", "TaskResult", "derive_seed", "task_signature",
    "ResultCache", "code_fingerprint",
    "execute_tasks",
    "build_manifest", "write_manifest", "read_manifest",
]
