"""Task model for the experiment-campaign runner.

A :class:`Task` is one unit of work: a picklable callable plus keyword
arguments and a deterministic seed.  Tasks are executed in worker
processes by :mod:`repro.runner.pool`, so the callable must survive
pickling — a module-level function or a :func:`functools.partial` of
one (lambdas only work under the ``fork`` start method).

:func:`task_signature` flattens a task into a stable, JSON-friendly
description of *what* would run (function identity + parameters + seed)
which the result cache hashes into its key.
"""

from __future__ import annotations

import functools
import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional


def derive_seed(base_seed: int, name: str) -> int:
    """Deterministic per-task seed from a campaign seed and task name.

    Stable across processes and Python versions (unlike ``hash()``),
    so a re-run of the same campaign reproduces every task bit-for-bit
    regardless of scheduling order.
    """
    digest = hashlib.sha256(f"{base_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big") % (2**31 - 1)


@dataclass
class Task:
    """One schedulable experiment.

    ``trace_path`` opts the task into telemetry capture: the path is
    passed to the callable as a ``trace_path`` keyword argument and the
    finished trace is digested into the run manifest.  Traced tasks
    always execute (the result cache is bypassed) — a cache hit would
    return the table without regenerating the trace file.

    ``profile_path`` does the same for host-side profiling
    (:mod:`repro.profile`): the callable receives it as a
    ``profile_path`` keyword, writes the profiler's JSON report there,
    and the manifest records the artifact path plus its sha256.  Like
    traced tasks, profiled tasks bypass the result cache.
    """

    name: str
    fn: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None
    trace_path: Optional[str] = None
    profile_path: Optional[str] = None

    def __post_init__(self) -> None:
        if not callable(self.fn):
            raise TypeError(f"task {self.name!r}: fn must be callable")


def _unwrap(fn: Callable) -> tuple[Callable, tuple, dict]:
    """Peel nested ``functools.partial`` wrappers, merging args/kwargs."""
    args: tuple = ()
    kwargs: dict = {}
    while isinstance(fn, functools.partial):
        kwargs = {**fn.keywords, **kwargs}
        args = fn.args + args
        fn = fn.func
    return fn, args, kwargs


def task_signature(task: Task) -> Dict[str, Any]:
    """Stable description of a task for cache keying.

    Captures the fully-qualified function name, every bound parameter
    (partial args/kwargs plus the task's own kwargs), and the seed.
    Values are rendered with ``repr`` so tuples/floats hash stably.
    """
    fn, args, kwargs = _unwrap(task.fn)
    params = {**kwargs, **task.kwargs}
    return {
        "name": task.name,
        "function": f"{getattr(fn, '__module__', '?')}."
                    f"{getattr(fn, '__qualname__', repr(fn))}",
        "args": [repr(a) for a in args],
        "params": {k: repr(v) for k, v in sorted(params.items())},
        "seed": task.seed,
    }


@dataclass
class TaskResult:
    """Outcome of one task after caching, retries, and degradation."""

    name: str
    status: str = "ok"              # "ok" | "failed"
    value: Any = None
    failure: Optional[str] = None   # "error" | "timeout" | "crashed" | "aborted"
    error: Optional[str] = None     # traceback / diagnostic text
    attempts: int = 0               # 0 means served from cache
    wall_time_s: float = 0.0
    cache: str = "off"              # "hit" | "miss" | "off"
    seed: Optional[int] = None
    trace: Optional[Dict[str, Any]] = None  # {"path", "sha256"} if traced
    profile: Optional[Dict[str, Any]] = None  # {"path", "sha256"} if profiled

    @property
    def ok(self) -> bool:
        return self.status == "ok"
