"""On-disk result cache for campaign tasks.

Keys are content hashes of ``(task signature, code fingerprint)`` —
see :func:`repro.runner.task.task_signature` for the former and
:func:`code_fingerprint` for the latter.  Any change to an experiment's
parameters, its seed, or *any* source file of the ``repro`` package
invalidates the entry, so a warm cache can never serve stale tables.

Entries are two files under the cache root::

    <key>.pkl    pickled return value (e.g. a Table)
    <key>.json   human-readable metadata (task signature, timings)

Corrupt or unreadable entries degrade to a cache miss.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
import pickle
from typing import Any, Dict, Optional, Tuple

from repro.runner.task import Task, task_signature

#: Environment flag that opts ad-hoc callers (the benchmark suite) into
#: cached replays.  Shared with ``benchmarks/conftest.py`` so the bench
#: harness and the runner can never drift apart on the switch name.
BENCH_CACHE_ENV = "REPRO_BENCH_CACHE"


def cached_call(cache_dir: str, name: str, fn, *,
                env: Optional[str] = BENCH_CACHE_ENV, **kwargs) -> Any:
    """Run ``fn(**kwargs)`` through the result cache, gated by *env*.

    This is the one-call version of the campaign cache for callers
    outside a :class:`~repro.runner.campaign.Campaign` (benchmarks,
    scripts).  With the *env* variable unset the call is a plain
    ``fn(**kwargs)``; with it set, the value is served from
    *cache_dir* when the parameters and the ``repro`` source tree are
    unchanged (same content-hash key the campaign runner uses) and
    stored there after a miss.  Pass ``env=None`` to cache
    unconditionally.
    """
    if env is not None and not os.environ.get(env):
        return fn(**kwargs)
    cache = ResultCache(cache_dir, code_fingerprint())
    key = cache.key_for(Task(name, fn, kwargs=kwargs))
    hit, value = cache.load(key)
    if hit:
        return value
    value = fn(**kwargs)
    cache.store(key, value)
    return value


def code_fingerprint(package: str = "repro") -> str:
    """sha256 over every ``.py`` source file of *package*.

    File contents and package-relative paths both feed the hash, so
    renames, additions, deletions, and edits all change the
    fingerprint.  Byte-compiled caches (``__pycache__``) are ignored.
    """
    mod = importlib.import_module(package)
    root = os.path.dirname(os.path.abspath(mod.__file__))
    h = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(root)):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for fname in sorted(filenames):
            if not fname.endswith(".py"):
                continue
            path = os.path.join(dirpath, fname)
            h.update(os.path.relpath(path, root).encode())
            with open(path, "rb") as f:
                h.update(f.read())
    return h.hexdigest()


class ResultCache:
    """Content-addressed store of task return values."""

    def __init__(self, root: str, fingerprint: str = ""):
        self.root = root
        self.fingerprint = fingerprint
        os.makedirs(root, exist_ok=True)

    # -- keying --------------------------------------------------------
    def key_for(self, task: Task) -> str:
        payload = {
            "signature": task_signature(task),
            "fingerprint": self.fingerprint,
        }
        blob = json.dumps(payload, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def _paths(self, key: str) -> Tuple[str, str]:
        return (os.path.join(self.root, key + ".pkl"),
                os.path.join(self.root, key + ".json"))

    # -- lookup / store ------------------------------------------------
    def load(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; unreadable entries count as misses."""
        pkl, _ = self._paths(key)
        try:
            with open(pkl, "rb") as f:
                return True, pickle.load(f)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            return False, None

    def store(self, key: str, value: Any,
              meta: Optional[Dict[str, Any]] = None) -> bool:
        """Persist *value*; returns False if it cannot be pickled."""
        pkl, meta_path = self._paths(key)
        tmp = pkl + ".tmp"
        try:
            with open(tmp, "wb") as f:
                pickle.dump(value, f)
        except (pickle.PickleError, TypeError, AttributeError):
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        os.replace(tmp, pkl)
        if meta is not None:
            with open(meta_path, "w") as f:
                json.dump(meta, f, indent=2, sort_keys=True, default=repr)
        return True

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed."""
        removed = 0
        for fname in os.listdir(self.root):
            if fname.endswith((".pkl", ".json")):
                os.unlink(os.path.join(self.root, fname))
                removed += 1
        return removed
