"""Structured JSON run manifests.

A manifest is the campaign's flight recorder: one document per run,
written next to the output tables, listing per-task status, wall time,
cache behavior, attempts, and seed plus enough host metadata to
reproduce the run.  Schema (version 1)::

    {
      "schema_version": 1,
      "campaign": "run_all",
      "host": {"hostname": ..., "platform": ..., "python": ..., "cpus": N},
      "jobs": 4,
      "timeout_s": 120.0,
      "retries": 1,
      "cache": {"enabled": true, "dir": ..., "fingerprint": "..."},
      "started_unix": 1700000000.0,
      "wall_time_s": 12.3,
      "counts": {"total": 31, "ok": 31, "failed": 0,
                 "cache_hits": 29, "cache_misses": 2},
      "tasks": [
        {"name": ..., "status": "ok"|"failed", "failure": null|"error"|
         "timeout"|"crashed", "cache": "hit"|"miss"|"off",
         "attempts": 1, "wall_time_s": 0.8, "seed": 123, "error": null,
         "trace": null|{"path": ..., "sha256": "..."},
         "profile": null|{"path": ..., "sha256": "..."}},
        ...
      ]
    }
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Any, Dict, Optional, Sequence

from repro.runner.task import TaskResult

SCHEMA_VERSION = 1


def host_metadata() -> Dict[str, Any]:
    return {
        "hostname": platform.node(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "cpus": os.cpu_count(),
    }


def build_manifest(campaign: str, results: Sequence[TaskResult], *,
                   jobs: int, wall_time_s: float,
                   timeout_s: Optional[float] = None, retries: int = 0,
                   cache_enabled: bool = False,
                   cache_dir: Optional[str] = None,
                   fingerprint: Optional[str] = None,
                   started_unix: Optional[float] = None) -> Dict[str, Any]:
    """Assemble the manifest document for one finished campaign."""
    tasks = [{
        "name": r.name,
        "status": r.status,
        "failure": r.failure,
        "cache": r.cache,
        "attempts": r.attempts,
        "wall_time_s": round(r.wall_time_s, 4),
        "seed": r.seed,
        "error": r.error,
        "trace": r.trace,
        "profile": r.profile,
    } for r in results]
    return {
        "schema_version": SCHEMA_VERSION,
        "campaign": campaign,
        "host": host_metadata(),
        "jobs": jobs,
        "timeout_s": timeout_s,
        "retries": retries,
        "cache": {
            "enabled": cache_enabled,
            "dir": cache_dir,
            "fingerprint": fingerprint,
        },
        "started_unix": started_unix if started_unix is not None
        else time.time(),
        "wall_time_s": round(wall_time_s, 4),
        "counts": {
            "total": len(tasks),
            "ok": sum(1 for t in tasks if t["status"] == "ok"),
            "failed": sum(1 for t in tasks if t["status"] == "failed"),
            "cache_hits": sum(1 for t in tasks if t["cache"] == "hit"),
            "cache_misses": sum(1 for t in tasks if t["cache"] == "miss"),
        },
        "tasks": tasks,
    }


def write_manifest(path: str, manifest: Dict[str, Any]) -> None:
    """Atomically write *manifest* as pretty-printed JSON."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w") as f:
        json.dump(manifest, f, indent=2, sort_keys=False)
        f.write("\n")
    os.replace(tmp, path)


def read_manifest(path: str) -> Dict[str, Any]:
    with open(path) as f:
        return json.load(f)
