"""Process-pool executor with per-task timeout, retry, and degradation.

The scheduler runs each attempt in its **own** worker process (one
process per attempt, at most *jobs* alive at once).  This costs a few
milliseconds of fork overhead per task — negligible next to a
simulation — and buys the two properties a shared pool cannot offer:

* a hung task can be *killed* (``Process.terminate``) without poisoning
  sibling workers, and
* a crashed worker (segfault, ``os._exit``, OOM kill) is detected via
  its exit code and degrades to a reported failure instead of
  deadlocking the campaign.

Results travel back over a one-way pipe.  Determinism: every attempt
reseeds ``random`` (and numpy, when present) from the task's own seed
before calling the function, so results are independent of scheduling
order and of how many workers run concurrently.
"""

from __future__ import annotations

import multiprocessing as mp
import multiprocessing.connection  # noqa: F401  (populates mp.connection)
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.runner.task import Task, TaskResult

#: polling granularity of the scheduler loop (also bounds how stale a
#: timeout check can be).
_POLL_S = 0.05


def _seed_everything(seed: int) -> None:
    import random
    random.seed(seed)
    try:  # numpy is not a dependency; seed it only if it is around
        import numpy
        numpy.random.seed(seed % (2**32))
    except Exception:
        pass


def _child_main(conn, fn: Callable, kwargs: dict, seed: Optional[int]) -> None:
    """Worker entry point: run one attempt, ship the outcome back."""
    from repro.transport.errors import ConnectionAborted, abort_result
    try:
        if seed is not None:
            _seed_everything(seed)
        value = fn(**kwargs)
        conn.send(("ok", value, None))
    except ConnectionAborted as exc:
        # A structured transport abort is an *outcome*, not a crash:
        # the simulation terminated deliberately (RTO exhaustion, dead
        # path, ...).  Report it as a degraded result — deterministic,
        # so retrying would only reproduce it.
        conn.send(("aborted", abort_result(exc.info), exc.info.describe()))
    except BaseException:
        conn.send(("error", None, traceback.format_exc()))
    finally:
        conn.close()


@dataclass
class _Running:
    task: Task
    index: int
    attempt: int
    proc: mp.process.BaseProcess
    conn: mp.connection.Connection
    started: float = field(default_factory=time.monotonic)


def execute_tasks(tasks: Sequence[Task], jobs: int = 1,
                  timeout: Optional[float] = None, retries: int = 0,
                  context: Optional[str] = None,
                  on_result: Optional[Callable[[TaskResult], None]] = None,
                  ) -> List[TaskResult]:
    """Run *tasks* over a pool of worker processes.

    Returns one :class:`TaskResult` per task, in the order given.  A
    task is retried up to *retries* extra attempts after an error,
    timeout, or worker crash; when every attempt fails the result is
    marked ``failed`` and the campaign continues (graceful
    degradation).  *on_result* fires as each task settles, enabling
    streaming consumption while later tasks still run.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be positive, got {timeout}")

    try:
        ctx = mp.get_context(context or "fork")
    except ValueError:  # platform without fork (Windows, some macOS)
        ctx = mp.get_context("spawn")

    pending: deque[tuple[int, Task, int]] = deque(
        (i, t, 1) for i, t in enumerate(tasks))
    running: List[_Running] = []
    results: Dict[int, TaskResult] = {}
    spent: Dict[int, float] = {}  # cumulative wall time across attempts

    def settle(run: _Running, kind: str, value, error) -> None:
        elapsed = time.monotonic() - run.started
        spent[run.index] = spent.get(run.index, 0.0) + elapsed
        # "aborted" is deterministic — never retried.
        if kind not in ("ok", "aborted") and run.attempt <= retries:
            pending.append((run.index, run.task, run.attempt + 1))
            return
        result = TaskResult(
            name=run.task.name,
            status="ok" if kind == "ok" else "failed",
            value=value,
            failure=None if kind == "ok" else kind,
            error=error,
            attempts=run.attempt,
            wall_time_s=spent[run.index],
            cache="off",
            seed=run.task.seed,
        )
        results[run.index] = result
        if on_result is not None:
            on_result(result)

    while pending or running:
        while pending and len(running) < jobs:
            index, task, attempt = pending.popleft()
            recv_end, send_end = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_child_main,
                args=(send_end, task.fn, task.kwargs, task.seed),
                daemon=True,
            )
            proc.start()
            send_end.close()  # child holds the only write end now
            running.append(_Running(task, index, attempt, proc, recv_end))

        if not running:
            continue

        # Sleep until some worker is readable (result ready or pipe
        # closed by a dying child) or the poll interval elapses so
        # timeouts stay responsive.
        mp.connection.wait([r.conn for r in running], timeout=_POLL_S)

        now = time.monotonic()
        still_running: List[_Running] = []
        for run in running:
            finished = True
            if run.conn.poll():
                try:
                    kind, value, error = run.conn.recv()
                    run.proc.join()
                except (EOFError, OSError):
                    # Readable-at-EOF: the child died without sending
                    # (crash, os._exit, kill) and its pipe end closed.
                    run.proc.join()
                    kind, value, error = (
                        "crashed", None,
                        f"worker exited with code {run.proc.exitcode} "
                        "before reporting a result")
                settle(run, kind, value, error)
            elif not run.proc.is_alive():
                run.proc.join()
                settle(run, "crashed", None,
                       f"worker exited with code {run.proc.exitcode} "
                       "before reporting a result")
            elif timeout is not None and now - run.started > timeout:
                run.proc.terminate()
                run.proc.join()
                settle(run, "timeout", None,
                       f"killed after exceeding {timeout:g}s timeout")
            else:
                finished = False
                still_running.append(run)
            if finished:
                run.conn.close()
        running = still_running

    return [results[i] for i in sorted(results)]
