"""Packet-level tracing helpers.

Traces are ordinary lists of records so tests and benchmarks can make
assertions about what crossed a link without adding probes inside
protocol code.
"""

from __future__ import annotations

import collections
from typing import Callable, Optional

from repro.netsim.engine import Simulator
from repro.netsim.packet import Packet, PacketType


class TraceRecord:
    """One observed packet."""

    __slots__ = ("time", "kind", "size", "seq", "pkt_seq", "flow_id")

    def __init__(self, time: float, packet: Packet):
        self.time = time
        self.kind = packet.kind
        self.size = packet.size
        self.seq = packet.seq
        self.pkt_seq = packet.pkt_seq
        self.flow_id = packet.flow_id

    def __repr__(self) -> str:
        return f"TraceRecord(t={self.time:.6f}, {self.kind.value}, size={self.size})"


class Tap:
    """Wraps a sink callback and records every packet flowing through.

    Construct through :func:`make_tap`:
    ``tap = make_tap(sim, real_sink); link.connect(tap)``.

    A tap observes one sink; for whole-topology visibility attach a
    ``repro.telemetry.TraceCollector`` to the simulator and consume the
    ``netsim`` event category instead — it covers every link (enqueue,
    drop with reason, transmit, deliver).  When the simulator carries a
    collector, the tap also forwards each observed packet as a
    ``netsim``/``tap`` event so both worlds see the same traffic.

    ``max_records`` bounds the in-memory record list (oldest records
    are evicted first); the default ``None`` keeps an unbounded list.
    """

    def __init__(self, sim: Simulator,
                 sink: Optional[Callable[[Packet], None]] = None,
                 max_records: Optional[int] = None,
                 telemetry=None):
        self.sim = sim
        self.sink = sink
        self.max_records = max_records
        if max_records is not None:
            self.records: "collections.deque[TraceRecord]" = (
                collections.deque(maxlen=max_records))
        else:
            self.records = []  # type: ignore[assignment]
        self._tel = telemetry if telemetry is not None else sim.telemetry

    def __call__(self, packet: Packet) -> None:
        self.records.append(TraceRecord(self.sim.now(), packet))
        if self._tel is not None:
            self._tel.emit("netsim", "tap", packet.flow_id,
                           kind=packet.kind.value, size=packet.size,
                           pkt_seq=packet.pkt_seq)
        if self.sink is not None:
            self.sink(packet)

    # ------------------------------------------------------------------
    def count(self, kind: Optional[PacketType] = None) -> int:
        """Number of packets seen, optionally filtered by kind."""
        if kind is None:
            return len(self.records)
        return sum(1 for r in self.records if r.kind is kind)

    def count_acks(self) -> int:
        """All acknowledgment flavors combined."""
        return sum(
            1
            for r in self.records
            if r.kind in (PacketType.ACK, PacketType.TACK, PacketType.IACK)
        )

    def bytes_seen(self, kind: Optional[PacketType] = None) -> int:
        if kind is None:
            return sum(r.size for r in self.records)
        return sum(r.size for r in self.records if r.kind is kind)

    def rate_bps(self, kind: Optional[PacketType] = None,
                 start_s: float = 0.0, end_s: Optional[float] = None) -> float:
        """Average bit rate of matching packets over ``[start_s, end_s]``."""
        if end_s is None:
            end_s = self.sim.now()
        duration_s = end_s - start_s
        if duration_s <= 0:
            return 0.0
        total = sum(
            r.size
            for r in self.records
            if start_s <= r.time <= end_s and (kind is None or r.kind is kind)
        )
        return total * 8.0 / duration_s

    def clear(self) -> None:
        self.records.clear()

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_csv(self, path: str) -> int:
        """Write the trace as CSV (time, kind, size, seq, pkt_seq,
        flow_id); returns the number of rows written."""
        import csv
        import os

        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(["time", "kind", "size", "seq", "pkt_seq", "flow_id"])
            for r in self.records:
                writer.writerow([
                    f"{r.time:.9f}", r.kind.value, r.size,
                    "" if r.seq is None else r.seq,
                    "" if r.pkt_seq is None else r.pkt_seq,
                    r.flow_id,
                ])
        return len(self.records)

    def summary(self) -> dict:
        """Aggregate counts and byte totals by packet kind."""
        out: dict = {}
        for r in self.records:
            entry = out.setdefault(r.kind.value, {"packets": 0, "bytes": 0})
            entry["packets"] += 1
            entry["bytes"] += r.size
        return out


def make_tap(sim: Simulator,
             sink: Optional[Callable[[Packet], None]] = None,
             max_records: Optional[int] = None,
             telemetry=None) -> Tap:
    """Build a :class:`Tap` recording everything passed to ``sink``.

    This factory is the supported constructor (the old ``PacketTap``
    class was removed after its deprecation cycle); it exists so the
    concrete tap type can evolve without touching call sites.
    """
    return Tap(sim, sink=sink, max_records=max_records, telemetry=telemetry)
