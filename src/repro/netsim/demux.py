"""Flow demultiplexer: many connections over one shared path.

The fairness experiments (paper Fig. 15) run several flows through a
single bottleneck.  Links deliver to one sink, so :class:`FlowDemux`
fans packets out to per-flow sinks by ``flow_id``, and
:class:`SharedPort` presents the shared link as a private port to each
flow's endpoint.
"""

from __future__ import annotations

from typing import Callable

from repro.netsim.packet import Packet


class FlowDemux:
    """Routes delivered packets to per-flow sinks by ``flow_id``."""

    __slots__ = ("_sinks", "unrouted")

    def __init__(self):
        self._sinks: dict[int, Callable[[Packet], None]] = {}
        self.unrouted = 0

    def register(self, flow_id: int, sink: Callable[[Packet], None]) -> None:
        self._sinks[flow_id] = sink

    def unregister(self, flow_id: int) -> None:
        """Drop a flow's sink; late packets count as ``unrouted``.

        Fleet shards retire thousands of short flows per run — removing
        the sink releases the connection object and keeps the routing
        table bounded by the *active* population.
        """
        self._sinks.pop(flow_id, None)

    def __call__(self, packet: Packet) -> None:
        sink = self._sinks.get(packet.flow_id)
        if sink is None:
            self.unrouted += 1
            return
        sink(packet)


class SharedPort:
    """A per-flow facade over a shared link.

    ``send`` forwards into the shared link; ``connect`` registers the
    flow's sink with the demux sitting at the link's far end.
    """

    __slots__ = ("link", "demux", "flow_id")

    def __init__(self, link, demux: FlowDemux, flow_id: int):
        self.link = link
        self.demux = demux
        self.flow_id = flow_id

    def send(self, packet: Packet) -> bool:
        return self.link.send(packet)

    def connect(self, sink: Callable[[Packet], None]) -> None:
        self.demux.register(self.flow_id, sink)


def share_path(wan, n_flows: int):
    """Split an :class:`~repro.netsim.emulator.EmulatedPath` into
    ``n_flows`` (forward, reverse) port pairs sharing its links."""
    fwd_demux = FlowDemux()
    rev_demux = FlowDemux()
    wan.forward.connect(fwd_demux)
    wan.reverse.connect(rev_demux)
    pairs = []
    for flow_id in range(n_flows):
        pairs.append(
            (
                SharedPort(wan.forward, fwd_demux, flow_id),
                SharedPort(wan.reverse, rev_demux, flow_id),
            )
        )
    return pairs
