"""Point-to-point wired link: serialization + propagation + queue + loss.

This is the building block of the WAN emulator.  A link is
unidirectional; bidirectional paths are a pair of links (possibly with
different loss models, matching the paper's data-path vs ACK-path
impairments).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.netsim.engine import Simulator
from repro.netsim.loss import LossModel, NoLoss
from repro.netsim.packet import Packet
from repro.netsim.queue import DropTailQueue


class LinkConfig:
    """Static parameters of a wired link."""

    def __init__(
        self,
        rate_bps: float,
        delay_s: float = 0.0,
        queue_bytes: Optional[int] = None,
        loss: Optional[LossModel] = None,
    ):
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        if delay_s < 0:
            raise ValueError(f"negative propagation delay: {delay_s}")
        self.rate_bps = float(rate_bps)
        self.delay_s = float(delay_s)
        self.queue_bytes = queue_bytes
        self.loss = loss or NoLoss()

    def serialization_delay(self, size_bytes: int) -> float:
        """Time to clock ``size_bytes`` onto the wire."""
        return size_bytes * 8.0 / self.rate_bps

    def __repr__(self) -> str:
        return (
            f"LinkConfig(rate={self.rate_bps / 1e6:.3f}Mbps, "
            f"delay={self.delay_s * 1e3:.3f}ms, queue={self.queue_bytes})"
        )


class Link:
    """Unidirectional link delivering packets to a sink callback.

    Packets are dropped either by the loss model (applied on ingress,
    like a hardware impairment port) or by queue overflow at the
    bottleneck.  Serialization is modeled exactly: the transmitter is
    busy for ``size * 8 / rate`` per packet, then the packet propagates
    for ``delay_s`` and is handed to ``sink``.
    """

    def __init__(
        self,
        sim: Simulator,
        config: LinkConfig,
        sink: Optional[Callable[[Packet], None]] = None,
        name: str = "link",
    ):
        self.sim = sim
        self.config = config
        self.sink = sink
        self.name = name
        self.queue = DropTailQueue(config.queue_bytes)
        self._busy = False
        # counters
        self.packets_sent = 0
        self.packets_delivered = 0
        self.packets_lost = 0
        self.bytes_delivered = 0
        # telemetry: one None-check per packet event when disabled.
        self._tel = sim.telemetry

    # ------------------------------------------------------------------
    def connect(self, sink: Callable[[Packet], None]) -> None:
        """Attach the receive-side callback."""
        self.sink = sink

    def send(self, packet: Packet) -> bool:
        """Offer ``packet`` to the link.

        Returns ``False`` if it was dropped at ingress (loss model or
        full queue); the caller must not assume delivery either way.
        """
        self.packets_sent += 1
        if self.config.loss.should_drop(packet, self.sim.now()):
            self.packets_lost += 1
            if self._tel is not None:
                self._tel.emit("netsim", "drop", packet.flow_id,
                               link=self.name, reason="loss",
                               kind=packet.kind.value, size=packet.size,
                               pkt_seq=packet.pkt_seq)
            return False
        if not self.queue.try_enqueue(packet):
            self.packets_lost += 1
            if self._tel is not None:
                self._tel.emit("netsim", "drop", packet.flow_id,
                               link=self.name, reason="queue",
                               kind=packet.kind.value, size=packet.size,
                               pkt_seq=packet.pkt_seq)
            return False
        if self._tel is not None:
            self._tel.emit("netsim", "enqueue", packet.flow_id,
                           link=self.name, kind=packet.kind.value,
                           size=packet.size,
                           queued_bytes=self.queue.bytes_queued)
        if not self._busy:
            self._start_transmission()
        return True

    # ------------------------------------------------------------------
    def _start_transmission(self) -> None:
        packet = self.queue.dequeue()
        if packet is None:
            if self._busy and self._tel is not None:
                self._tel.emit("netsim", "idle", 0, link=self.name)
            self._busy = False
            return
        self._busy = True
        if self._tel is not None:
            self._tel.emit("netsim", "tx_start", packet.flow_id,
                           link=self.name, kind=packet.kind.value,
                           size=packet.size)
        tx_time = self.config.serialization_delay(packet.size)
        self.sim.call_in(tx_time, lambda p=packet: self._finish_transmission(p))

    def _finish_transmission(self, packet: Packet) -> None:
        self.sim.call_in(self.config.delay_s, lambda p=packet: self._deliver(p))
        self._start_transmission()

    def _deliver(self, packet: Packet) -> None:
        self.packets_delivered += 1
        self.bytes_delivered += packet.size
        packet.hops += 1
        if self._tel is not None:
            self._tel.emit("netsim", "delivered", packet.flow_id,
                           link=self.name, kind=packet.kind.value,
                           size=packet.size)
        if self.sink is not None:
            self.sink(packet)

    # ------------------------------------------------------------------
    @property
    def loss_rate_observed(self) -> float:
        """Fraction of offered packets dropped so far."""
        if self.packets_sent == 0:
            return 0.0
        return self.packets_lost / self.packets_sent

    def __repr__(self) -> str:
        return f"Link({self.name}, {self.config!r})"
