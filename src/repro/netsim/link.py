"""Point-to-point wired link: serialization + propagation + queue + loss.

This is the building block of the WAN emulator.  A link is
unidirectional; bidirectional paths are a pair of links (possibly with
different loss models, matching the paper's data-path vs ACK-path
impairments).

Two chaos-plane extensions live here (see :mod:`repro.chaos`):

* a **mutation API** (:meth:`Link.set_rate`, :meth:`Link.set_delay`,
  :meth:`Link.set_loss`) so scripted faults can retune a live link
  instead of rebuilding the topology — rate changes apply from the
  next serialization, delay changes from the next propagation;
* an optional **impairment stage** (:class:`LinkImpairments`) applied
  at ingress like a hardware impairment port: blackout, duplication,
  corruption, reordering, and jitter.  The stage is null-guarded the
  same way telemetry is (``if self._imp is not None``), so an
  unimpaired link pays one attribute test per packet.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.netsim.engine import Simulator
from repro.netsim.loss import LossModel, NoLoss, RngLike, coerce_rng
from repro.netsim.packet import Packet
from repro.netsim.queue import DropTailQueue


class LinkConfig:
    """Static parameters of a wired link."""

    __slots__ = ("rate_bps", "delay_s", "queue_bytes", "loss")

    def __init__(
        self,
        rate_bps: float,
        delay_s: float = 0.0,
        queue_bytes: Optional[int] = None,
        loss: Optional[LossModel] = None,
    ):
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        if delay_s < 0:
            raise ValueError(f"negative propagation delay: {delay_s}")
        self.rate_bps = float(rate_bps)
        self.delay_s = float(delay_s)
        self.queue_bytes = queue_bytes
        self.loss = loss or NoLoss()

    def serialization_delay(self, size_bytes: int) -> float:
        """Time to clock ``size_bytes`` onto the wire."""
        return size_bytes * 8.0 / self.rate_bps

    def __repr__(self) -> str:
        return (
            f"LinkConfig(rate={self.rate_bps / 1e6:.3f}Mbps, "
            f"delay={self.delay_s * 1e3:.3f}ms, queue={self.queue_bytes})"
        )


class LinkImpairments:
    """Mutable impairment knobs a chaos schedule drives on one link.

    All fields default to "no effect"; the injector flips them on for
    the duration of a fault window and back off afterwards.  Random
    decisions (duplicate/corrupt/reorder/jitter draws) come from the
    explicit ``rng``, independent of the loss model's stream.
    """

    __slots__ = ("rng", "blackout", "duplicate_prob", "corrupt_prob",
                 "reorder_prob", "reorder_extra_s", "jitter_s")

    def __init__(self, rng: RngLike):
        self.rng = coerce_rng(rng, "LinkImpairments")
        self.blackout = False          # drop everything at ingress
        self.duplicate_prob = 0.0      # enqueue an extra copy
        self.corrupt_prob = 0.0        # deliver-side drop ("corrupt")
        self.reorder_prob = 0.0        # hold one packet back ...
        self.reorder_extra_s = 0.0     # ... by this much extra delay
        self.jitter_s = 0.0            # uniform [0, jitter_s) per packet

    def active(self) -> bool:
        return (self.blackout or self.duplicate_prob > 0.0
                or self.corrupt_prob > 0.0 or self.reorder_prob > 0.0
                or self.jitter_s > 0.0)

    def clear(self) -> None:
        """Back to pass-through (fault window closed)."""
        self.blackout = False
        self.duplicate_prob = 0.0
        self.corrupt_prob = 0.0
        self.reorder_prob = 0.0
        self.reorder_extra_s = 0.0
        self.jitter_s = 0.0


class Link:
    """Unidirectional link delivering packets to a sink callback.

    Packets are dropped either by the loss model (applied on ingress,
    like a hardware impairment port) or by queue overflow at the
    bottleneck.  Serialization is modeled exactly: the transmitter is
    busy for ``size * 8 / rate`` per packet, then the packet propagates
    for ``delay_s`` and is handed to ``sink``.

    Fleet-scale shards construct and drive thousands of links'
    packets through one process, so the class is slotted; new state
    belongs in the slots tuple, not ad-hoc attributes.
    """

    __slots__ = ("sim", "config", "sink", "name", "queue", "_busy",
                 "packets_sent", "packets_delivered", "packets_lost",
                 "packets_duplicated", "packets_corrupted",
                 "packets_reordered", "bytes_delivered", "_tel",
                 "_tel_stride", "_tel_n", "_imp", "_en")

    def __init__(
        self,
        sim: Simulator,
        config: LinkConfig,
        sink: Optional[Callable[[Packet], None]] = None,
        name: str = "link",
    ):
        self.sim = sim
        self.config = config
        self.sink = sink
        self.name = name
        self.queue = DropTailQueue(config.queue_bytes)
        self._busy = False
        # counters
        self.packets_sent = 0
        self.packets_delivered = 0
        self.packets_lost = 0
        self.packets_duplicated = 0
        self.packets_corrupted = 0
        self.packets_reordered = 0
        self.bytes_delivered = 0
        # telemetry: one None-check per packet event when disabled.
        # Per-packet events sample through a site-local stride counter
        # (see TraceCollector.sampling_stride): stride 0 = never emit.
        self._tel = sim.telemetry
        self._tel_stride = (self._tel.sampling_stride("netsim")
                            if self._tel is not None else 0)
        self._tel_n = 0
        # energy/airtime ledger: same null-guard pattern.
        self._en = sim.energy
        # chaos impairment stage: same null-guard pattern.
        self._imp: Optional[LinkImpairments] = None

    # ------------------------------------------------------------------
    def connect(self, sink: Callable[[Packet], None]) -> None:
        """Attach the receive-side callback."""
        self.sink = sink

    # ------------------------------------------------------------------
    # chaos mutation API
    # ------------------------------------------------------------------
    def set_rate(self, rate_bps: float) -> None:
        """Retune the serialization rate; applies from the next packet
        clocked onto the wire (an in-flight serialization finishes at
        the old rate, like a real shaper reconfiguration)."""
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        self.config.rate_bps = float(rate_bps)

    def set_delay(self, delay_s: float) -> None:
        """Retune the propagation delay; applies from the next packet
        finishing serialization."""
        if delay_s < 0:
            raise ValueError(f"negative propagation delay: {delay_s}")
        self.config.delay_s = float(delay_s)

    def set_loss(self, model: Optional[LossModel]) -> LossModel:
        """Swap the ingress loss model; returns the previous one so a
        fault window can restore it when it closes."""
        previous = self.config.loss
        self.config.loss = model or NoLoss()
        return previous

    def impairments(self, rng: RngLike) -> LinkImpairments:
        """Attach (or return the existing) impairment stage.

        The first call installs the stage with ``rng``; later calls
        return the same object so composed faults share one stage.
        """
        if self._imp is None:
            self._imp = LinkImpairments(rng)
        return self._imp

    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Offer ``packet`` to the link.

        Returns ``False`` if it was dropped at ingress (loss model,
        blackout, or full queue); the caller must not assume delivery
        either way.
        """
        self.packets_sent += 1
        # Hot path: the site-local stride counter decides keep/drop
        # with plain attribute arithmetic, so a sampled-out event
        # costs neither a collector call nor its field dict (see
        # TraceCollector.sampling_stride).
        if self._imp is not None and self._imp.blackout:
            self.packets_lost += 1
            if self._tel_stride and self._tick():
                self._tel.emit_kept("netsim", "drop", packet.flow_id,
                                    link=self.name, reason="blackout",
                                    kind=packet.kind.value,
                                    size=packet.size,
                                    pkt_seq=packet.pkt_seq)
            return False
        if self.config.loss.should_drop(packet, self.sim.now()):
            self.packets_lost += 1
            if self._tel_stride and self._tick():
                self._tel.emit_kept("netsim", "drop", packet.flow_id,
                                    link=self.name, reason="loss",
                                    kind=packet.kind.value,
                                    size=packet.size,
                                    pkt_seq=packet.pkt_seq)
            return False
        if not self.queue.try_enqueue(packet):
            self.packets_lost += 1
            if self._tel_stride and self._tick():
                self._tel.emit_kept("netsim", "drop", packet.flow_id,
                                    link=self.name, reason="queue",
                                    kind=packet.kind.value,
                                    size=packet.size,
                                    pkt_seq=packet.pkt_seq)
            return False
        if self._tel_stride:
            n = self._tel_n + 1
            if n >= self._tel_stride:
                self._tel_n = 0
                self._tel.emit_kept("netsim", "enqueue", packet.flow_id,
                                    link=self.name, kind=packet.kind.value,
                                    size=packet.size,
                                    queued_bytes=self.queue.bytes_queued)
            else:
                self._tel_n = n
        if (self._imp is not None and self._imp.duplicate_prob > 0.0
                and self._imp.rng.random() < self._imp.duplicate_prob
                and self.queue.try_enqueue(packet)):
            # A duplicated packet consumes queue space and airtime like
            # any other; overflow silently cancels the duplication.
            self.packets_duplicated += 1
        if not self._busy:
            self._start_transmission()
        return True

    def _tick(self) -> bool:
        """Advance the netsim stride counter; ``True`` = keep.  Only
        call when ``self._tel_stride`` is non-zero."""
        n = self._tel_n + 1
        if n >= self._tel_stride:
            self._tel_n = 0
            return True
        self._tel_n = n
        return False

    # ------------------------------------------------------------------
    def _start_transmission(self) -> None:
        packet = self.queue.dequeue()
        if packet is None:
            if self._busy and self._tel_stride and self._tick():
                self._tel.emit_kept("netsim", "idle", 0, link=self.name)
            self._busy = False
            return
        self._busy = True
        if self._tel_stride:
            n = self._tel_n + 1
            if n >= self._tel_stride:
                self._tel_n = 0
                self._tel.emit_kept("netsim", "tx_start", packet.flow_id,
                                    link=self.name, kind=packet.kind.value,
                                    size=packet.size)
            else:
                self._tel_n = n
        if self._en is not None:
            self._en.on_tx(packet)
        tx_time = self.config.serialization_delay(packet.size)
        self.sim.call_in(tx_time, lambda p=packet: self._finish_transmission(p))

    def _finish_transmission(self, packet: Packet) -> None:
        delay = self.config.delay_s
        if self._imp is not None:
            delay += self._propagation_impairment(packet)
            if delay < 0:
                # Corruption: the packet evaporates mid-flight.
                self.packets_corrupted += 1
                self.packets_lost += 1
                if self._tel_stride and self._tick():
                    self._tel.emit_kept("netsim", "drop", packet.flow_id,
                                        link=self.name, reason="corrupt",
                                        kind=packet.kind.value,
                                        size=packet.size,
                                        pkt_seq=packet.pkt_seq)
                self._start_transmission()
                return
        self.sim.call_in(delay, lambda p=packet: self._deliver(p))
        self._start_transmission()

    def _propagation_impairment(self, packet: Packet) -> float:
        """Extra propagation delay from the impairment stage, or a
        negative sentinel when the packet is corrupted away."""
        imp = self._imp
        extra = 0.0
        if imp.corrupt_prob > 0.0 and imp.rng.random() < imp.corrupt_prob:
            return -1.0
        if imp.jitter_s > 0.0:
            extra += imp.rng.random() * imp.jitter_s
        if imp.reorder_prob > 0.0 and imp.rng.random() < imp.reorder_prob:
            self.packets_reordered += 1
            extra += imp.reorder_extra_s
        return extra

    def _deliver(self, packet: Packet) -> None:
        self.packets_delivered += 1
        self.bytes_delivered += packet.size
        packet.hops += 1
        if self._tel_stride:
            n = self._tel_n + 1
            if n >= self._tel_stride:
                self._tel_n = 0
                self._tel.emit_kept("netsim", "delivered", packet.flow_id,
                                    link=self.name, kind=packet.kind.value,
                                    size=packet.size)
            else:
                self._tel_n = n
        if self._en is not None:
            self._en.on_rx(packet)
        if self.sink is not None:
            self.sink(packet)

    # ------------------------------------------------------------------
    @property
    def loss_rate_observed(self) -> float:
        """Fraction of offered packets dropped so far."""
        if self.packets_sent == 0:
            return 0.0
        return self.packets_lost / self.packets_sent

    def __repr__(self) -> str:
        return f"Link({self.name}, {self.config!r})"
