"""Packet loss models for links and emulated paths.

Each model answers one question per packet: drop it or not.  Models are
seeded independently per link direction so the data path and ACK path
of an experiment can be impaired separately (as the paper's Spirent
Attero setup does in Figures 5(b) and 13).

Stochastic models therefore **require** an explicit ``rng`` — either a
seeded :class:`random.Random` or an integer seed.  A shared implicit
default (the old ``random.Random(0)``) silently correlated drops
across every link and direction of an experiment, which is exactly the
kind of hidden coupling reprolint rule REP008 now bans.

``reset()`` restores a model to its *construction* state, RNG
included, so a reset model replays the identical drop sequence — what
the chaos injector relies on when it re-installs a model for a second
burst-loss episode.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Union

from repro.netsim.packet import Packet

#: Accepted by stochastic models: a ready generator or an integer seed.
RngLike = Union[random.Random, int]


def coerce_rng(rng: RngLike, owner: str) -> random.Random:
    """Normalize an ``rng`` argument to a :class:`random.Random`.

    Raises ``TypeError`` for ``None`` (the historical implicit-default
    footgun) and for anything that is neither a generator nor a seed.
    """
    if isinstance(rng, random.Random):
        return rng
    if isinstance(rng, bool) or not isinstance(rng, int):
        raise TypeError(
            f"{owner} requires an explicit rng: pass a seeded "
            f"random.Random or an int seed, got {rng!r}"
        )
    return random.Random(rng)


class LossModel:
    """Interface: return ``True`` to drop ``packet`` at time ``now``."""

    def should_drop(self, packet: Packet, now: float) -> bool:
        raise NotImplementedError

    def reset(self) -> None:
        """Restore construction state (models with memory override)."""


class NoLoss(LossModel):
    """Lossless link."""

    def should_drop(self, packet: Packet, now: float) -> bool:
        return False


class BernoulliLoss(LossModel):
    """Independent drops with fixed probability ``rate``."""

    def __init__(self, rate: float, rng: RngLike):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.rng = coerce_rng(rng, "BernoulliLoss")
        self._rng_state0 = self.rng.getstate()

    def should_drop(self, packet: Packet, now: float) -> bool:
        if self.rate == 0.0:
            return False
        return self.rng.random() < self.rate

    def reset(self) -> None:
        self.rng.setstate(self._rng_state0)


class GilbertElliottLoss(LossModel):
    """Two-state bursty loss (good/bad Markov chain).

    ``p_gb`` is the per-packet probability of moving good->bad and
    ``p_bg`` of bad->good; in the bad state packets drop with
    probability ``bad_loss`` (1.0 by default: a blackout burst).
    """

    def __init__(
        self,
        p_gb: float,
        p_bg: float,
        bad_loss: float = 1.0,
        good_loss: float = 0.0,
        rng: Optional[RngLike] = None,
    ):
        for name, val in (("p_gb", p_gb), ("p_bg", p_bg),
                          ("bad_loss", bad_loss), ("good_loss", good_loss)):
            if not 0.0 <= val <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {val}")
        if rng is None:
            raise TypeError(
                "GilbertElliottLoss requires an explicit rng: pass a "
                "seeded random.Random or an int seed"
            )
        self.p_gb = p_gb
        self.p_bg = p_bg
        self.bad_loss = bad_loss
        self.good_loss = good_loss
        self.rng = coerce_rng(rng, "GilbertElliottLoss")
        self._rng_state0 = self.rng.getstate()
        self._bad = False

    def should_drop(self, packet: Packet, now: float) -> bool:
        if self._bad:
            if self.rng.random() < self.p_bg:
                self._bad = False
        else:
            if self.rng.random() < self.p_gb:
                self._bad = True
        loss = self.bad_loss if self._bad else self.good_loss
        if loss == 0.0:
            return False
        return self.rng.random() < loss

    @property
    def in_bad_state(self) -> bool:
        return self._bad

    def reset(self) -> None:
        self._bad = False
        self.rng.setstate(self._rng_state0)

    def steady_state_loss(self) -> float:
        """Long-run average drop probability of the chain."""
        denom = self.p_gb + self.p_bg
        if denom == 0.0:
            return self.good_loss
        pi_bad = self.p_gb / denom
        return pi_bad * self.bad_loss + (1.0 - pi_bad) * self.good_loss


class BurstLoss(LossModel):
    """Deterministic blackout windows: drop everything inside
    ``[start, start + duration)`` for each window."""

    def __init__(self, windows: Iterable[tuple[float, float]]):
        self.windows = sorted((float(s), float(s) + float(d)) for s, d in windows)
        for start, end in self.windows:
            if end <= start:
                raise ValueError(f"empty blackout window [{start}, {end})")

    def should_drop(self, packet: Packet, now: float) -> bool:
        for start, end in self.windows:
            if start <= now < end:
                return True
            if now < start:
                break
        return False


class PatternLoss(LossModel):
    """Drop the packets whose arrival index is in ``indices`` (0-based).

    Handy for tests that need an exact loss pattern ("drop the third
    packet, then the retransmission of it").
    """

    def __init__(self, indices: Iterable[int]):
        self.indices = set(int(i) for i in indices)
        self._count = 0

    def should_drop(self, packet: Packet, now: float) -> bool:
        drop = self._count in self.indices
        self._count += 1
        return drop

    @property
    def seen(self) -> int:
        return self._count

    def reset(self) -> None:
        self._count = 0
