"""Packet representation shared by every layer of the simulation.

A single mutable class models data segments, the five ACK flavors, UDP
datagrams, and control frames.  Transport-layer metadata (sequence
numbers, block lists, rate/delay reports) lives in optional fields that
default to ``None`` so a bare UDP datagram stays cheap.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Optional


class PacketType(enum.Enum):
    """Wire-level packet kinds used across the stack."""

    DATA = "data"
    ACK = "ack"            # legacy cumulative/SACK acknowledgment
    TACK = "tack"          # periodic/byte-counting Tame ACK
    IACK = "iack"          # event-driven Instant ACK
    SYN = "syn"
    SYN_ACK = "syn_ack"
    FIN = "fin"
    UDP = "udp"            # unreliable datagram (UDP blaster, RTP video)


_packet_uid = itertools.count(1)


class Packet:
    """A simulated packet.

    Attributes
    ----------
    kind:
        One of :class:`PacketType`.
    size:
        Total on-wire size in bytes including headers; this is what
        links and the WLAN medium serialize.
    seq:
        Byte-stream sequence number of the first payload byte
        (``None`` for pure control packets).
    pkt_seq:
        Monotonically increasing packet number (paper's ``PKT.SEQ``);
        retransmissions get a fresh value, removing retransmission
        ambiguity for receiver-based loss detection.
    payload_len:
        Number of bytestream payload bytes carried.
    sent_at:
        Departure timestamp stamped by the sending endpoint; used for
        relative one-way-delay samples (no clock sync needed since both
        endpoints share the virtual clock, but the protocol code only
        ever uses *differences* of these values, as the paper requires).
    flow_id:
        Opaque identifier used by stats collectors and the medium to
        attribute packets to flows.
    meta:
        Free-form per-layer annotations (e.g. ACK feedback structures).
    """

    __slots__ = (
        "uid",
        "kind",
        "size",
        "seq",
        "pkt_seq",
        "payload_len",
        "sent_at",
        "flow_id",
        "meta",
        "hops",
    )

    def __init__(
        self,
        kind: PacketType,
        size: int,
        seq: Optional[int] = None,
        pkt_seq: Optional[int] = None,
        payload_len: int = 0,
        flow_id: int = 0,
    ):
        if size <= 0:
            raise ValueError(f"packet size must be positive, got {size}")
        if payload_len < 0:
            raise ValueError(f"negative payload length: {payload_len}")
        self.uid = next(_packet_uid)
        self.kind = kind
        self.size = size
        self.seq = seq
        self.pkt_seq = pkt_seq
        self.payload_len = payload_len
        self.sent_at: Optional[float] = None
        self.flow_id = flow_id
        self.meta: dict[str, Any] = {}
        self.hops = 0

    # ------------------------------------------------------------------
    def is_ack_like(self) -> bool:
        """True for every acknowledgment flavor (ACK, TACK, IACK)."""
        return self.kind in (PacketType.ACK, PacketType.TACK, PacketType.IACK)

    def is_data(self) -> bool:
        """True for byte-stream data segments."""
        return self.kind is PacketType.DATA

    def end_seq(self) -> int:
        """Sequence number one past the last payload byte."""
        if self.seq is None:
            raise ValueError("packet has no sequence number")
        return self.seq + self.payload_len

    def copy_for_retransmit(self, new_pkt_seq: int) -> "Packet":
        """Clone this segment for retransmission.

        The payload and ``seq`` stay identical while ``pkt_seq`` is
        replaced, exactly as S5.1 of the paper prescribes.
        """
        clone = Packet(
            self.kind,
            self.size,
            seq=self.seq,
            pkt_seq=new_pkt_seq,
            payload_len=self.payload_len,
            flow_id=self.flow_id,
        )
        clone.meta = dict(self.meta)
        return clone

    def __repr__(self) -> str:
        parts = [f"{self.kind.value}", f"size={self.size}"]
        if self.seq is not None:
            parts.append(f"seq={self.seq}")
        if self.pkt_seq is not None:
            parts.append(f"pkt_seq={self.pkt_seq}")
        return f"Packet({', '.join(parts)})"


# Conventional wire sizes used throughout the paper's experiments.
MSS = 1500
"""Maximum segment size in payload bytes (paper S6.1)."""

DATA_PACKET_SIZE = 1518
"""Full-sized data packet on the wire (paper S3.2: 1518-byte packets)."""

ACK_PACKET_SIZE = 64
"""Bare acknowledgment on the wire (paper S3.2: 64-byte ACKs)."""

HEADER_SIZE = DATA_PACKET_SIZE - MSS
"""Ethernet + IP + TCP framing overhead implied by the sizes above."""


def make_data_packet(seq: int, pkt_seq: int, payload_len: int = MSS, flow_id: int = 0) -> Packet:
    """Build a data segment with conventional framing overhead."""
    return Packet(
        PacketType.DATA,
        size=payload_len + HEADER_SIZE,
        seq=seq,
        pkt_seq=pkt_seq,
        payload_len=payload_len,
        flow_id=flow_id,
    )


def make_ack_packet(kind: PacketType = PacketType.ACK, extra_bytes: int = 0, flow_id: int = 0) -> Packet:
    """Build an acknowledgment; ``extra_bytes`` models rich TACK blocks."""
    if not extra_bytes >= 0:
        raise ValueError(f"negative extra_bytes: {extra_bytes}")
    size = min(ACK_PACKET_SIZE + extra_bytes, DATA_PACKET_SIZE)
    return Packet(kind, size=size, flow_id=flow_id)
