"""Virtual clock shared by every component of a simulation."""


class Clock:
    """Monotonic virtual clock measured in seconds.

    Only the simulator advances the clock; every other component reads
    it through :meth:`now`.  Keeping the clock separate from the event
    queue lets protocol modules be unit-tested with a hand-driven clock.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        """Return the current simulated time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to absolute time ``t``.

        Raises :class:`ValueError` if ``t`` is in the past; the simulator
        never rewinds time and neither may tests.
        """
        if t < self._now:
            raise ValueError(f"clock cannot rewind: {t} < {self._now}")
        self._now = t

    def advance_by(self, dt: float) -> None:
        """Move the clock forward by ``dt`` seconds (``dt >= 0``)."""
        if dt < 0:
            raise ValueError(f"negative clock step: {dt}")
        self._now += dt

    def __repr__(self) -> str:
        return f"Clock(now={self._now:.9f})"
