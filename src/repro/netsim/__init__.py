"""Deterministic discrete-event network simulator.

This subpackage is the substrate every experiment runs on.  The paper's
testbed (real Wi-Fi NICs plus a Spirent Attero hardware emulator) is
replaced by a virtual-clock simulation: time advances only when events
fire, so simulated goodput is independent of interpreter speed.
"""

from repro.netsim.clock import Clock
from repro.netsim.engine import Event, Simulator
from repro.netsim.link import Link, LinkConfig
from repro.netsim.loss import (
    BernoulliLoss,
    BurstLoss,
    GilbertElliottLoss,
    LossModel,
    NoLoss,
    PatternLoss,
)
from repro.netsim.packet import Packet, PacketType
from repro.netsim.pipe import Pipe
from repro.netsim.emulator import EmulatedPath, PathConfig

__all__ = [
    "BernoulliLoss",
    "BurstLoss",
    "Clock",
    "EmulatedPath",
    "Event",
    "GilbertElliottLoss",
    "Link",
    "LinkConfig",
    "LossModel",
    "NoLoss",
    "Packet",
    "PacketType",
    "PathConfig",
    "PatternLoss",
    "Pipe",
    "Simulator",
]
