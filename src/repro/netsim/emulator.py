"""Bidirectional WAN path emulator (software Spirent Attero).

The paper impairs the WAN segment with a hardware emulator that adds
latency and loss independently on the ingress (data) and egress (ACK)
ports.  :class:`EmulatedPath` reproduces that: a forward link and a
reverse link, each with its own rate, one-way delay, queue, and loss
model.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.netsim.engine import Simulator
from repro.netsim.link import Link, LinkConfig
from repro.netsim.loss import BernoulliLoss, LossModel
from repro.netsim.packet import Packet


class PathConfig:
    """Parameters for a symmetric-rate, possibly asymmetric-loss path.

    ``rtt_s`` is split evenly between the two directions, matching the
    paper's setup of "latency of 100 ms on both ingress and egress
    ports provides a 200 ms RTT".
    """

    def __init__(
        self,
        rate_bps: float,
        rtt_s: float,
        queue_bytes: Optional[int] = None,
        data_loss: float = 0.0,
        ack_loss: float = 0.0,
        reverse_rate_bps: Optional[float] = None,
        reverse_queue_bytes: Optional[int] = None,
    ):
        if rtt_s < 0:
            raise ValueError(f"negative RTT: {rtt_s}")
        self.rate_bps = float(rate_bps)
        self.rtt_s = float(rtt_s)
        self.queue_bytes = queue_bytes
        self.data_loss = float(data_loss)
        self.ack_loss = float(ack_loss)
        # Asymmetric paths (ADSL-style): a slower, shallower return
        # channel for the ACK stream.  ``None`` keeps symmetry.
        self.reverse_rate_bps = (
            float(reverse_rate_bps) if reverse_rate_bps is not None else None
        )
        self.reverse_queue_bytes = reverse_queue_bytes

    @property
    def one_way_delay_s(self) -> float:
        return self.rtt_s / 2.0

    def bdp_bytes(self) -> int:
        """Bandwidth-delay product of the path in bytes."""
        return int(self.rate_bps * self.rtt_s / 8.0)


class EmulatedPath:
    """A data-direction link plus an ACK-direction link.

    ``forward`` carries client->server traffic (data), ``reverse``
    carries server->client traffic (ACKs); attach sinks with
    :meth:`connect`.  Loss models may be overridden for burst/pattern
    impairments.
    """

    def __init__(
        self,
        sim: Simulator,
        config: PathConfig,
        forward_loss: Optional[LossModel] = None,
        reverse_loss: Optional[LossModel] = None,
        name: str = "path",
    ):
        self.sim = sim
        self.config = config
        fwd_loss = forward_loss or BernoulliLoss(
            config.data_loss, sim.fork_rng(f"{name}-fwd-loss")
        )
        rev_loss = reverse_loss or BernoulliLoss(
            config.ack_loss, sim.fork_rng(f"{name}-rev-loss")
        )
        self.forward = Link(
            sim,
            LinkConfig(
                config.rate_bps,
                config.one_way_delay_s,
                config.queue_bytes,
                fwd_loss,
            ),
            name=f"{name}-fwd",
        )
        rev_rate_bps = (config.reverse_rate_bps
                        if config.reverse_rate_bps is not None
                        else config.rate_bps)
        rev_queue = (config.reverse_queue_bytes
                     if config.reverse_queue_bytes is not None
                     else config.queue_bytes)
        self.reverse = Link(
            sim,
            LinkConfig(
                rev_rate_bps,
                config.one_way_delay_s,
                rev_queue,
                rev_loss,
            ),
            name=f"{name}-rev",
        )

    def connect(
        self,
        forward_sink: Callable[[Packet], None],
        reverse_sink: Callable[[Packet], None],
    ) -> None:
        """Attach the server-side (forward) and client-side (reverse)
        receive callbacks."""
        self.forward.connect(forward_sink)
        self.reverse.connect(reverse_sink)

    def send_forward(self, packet: Packet) -> bool:
        return self.forward.send(packet)

    def send_reverse(self, packet: Packet) -> bool:
        return self.reverse.send(packet)
