"""Event queue and simulation driver.

The engine is a classic calendar queue built on :mod:`heapq`.  Two
properties matter for reproducibility:

* **Determinism** -- ties in firing time are broken by insertion order
  (a monotonically increasing sequence number), never by callback
  identity, so a given seed always replays the same trajectory.
* **Cancellation** -- protocol timers (RTO, delayed-ACK, TACK period)
  are rescheduled constantly; events carry a ``cancelled`` flag and the
  queue skips dead entries lazily instead of paying for removal.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Callable, Optional

from repro import sanitize
from repro.netsim.clock import Clock


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` (``call_at`` /
    ``call_in``) and can be cancelled.  Comparison orders events by
    ``(time, seq)`` which is what :mod:`heapq` requires.
    """

    __slots__ = ("time", "seq", "fn", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event dead; the queue drops it when it surfaces."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.9f}, seq={self.seq}, {state})"


class Simulator:
    """Discrete-event simulation driver.

    Parameters
    ----------
    seed:
        Seed for the simulation-wide :class:`random.Random`.  All
        stochastic components (loss models, backoff draws, workload
        jitter) must draw from :attr:`rng` or from generators forked via
        :meth:`fork_rng` so runs are reproducible.
    simsan:
        Runtime invariant checking (see :mod:`repro.sanitize`):
        ``True``/``False`` force it, ``None`` (default) follows the
        ``REPRO_SIMSAN`` environment variable.
    telemetry:
        Optional :class:`repro.telemetry.TraceCollector` capturing
        structured events from instrumented components.  Like the
        sanitizer it must be in place before endpoints/links are
        constructed — they cache the reference at build time.
    profiler:
        Optional :class:`repro.profile.Profiler` accounting host wall
        time per handler class and subsystem.  Same construction-order
        rule as telemetry: attach before endpoints are built so they
        can bind profiled spans at construction time.
    energy:
        Optional :class:`repro.energy.EnergyLedger` folding per-packet
        airtime and radio power states into per-flow joule accounts.
        Same construction-order rule: links/endpoints cache
        ``sim.energy`` at build time.
    """

    def __init__(self, seed: int = 1, simsan: Optional[bool] = None,
                 telemetry=None, profiler=None, energy=None, diagnosis=None):
        self.clock = Clock()
        self.rng = random.Random(seed)
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._events_fired = 0
        self.san = (sanitize.SimSanitizer(self)
                    if sanitize.resolve(simsan) else None)
        self.telemetry = None
        if telemetry is not None:
            self.attach_telemetry(telemetry)
        self.profiler = None
        if profiler is not None:
            self.attach_profiler(profiler)
        self.energy = None
        if energy is not None:
            self.attach_energy(energy)
        self.diagnosis = None
        if diagnosis is not None:
            self.attach_diagnosis(diagnosis)

    def enable_sanitizer(self) -> "sanitize.SimSanitizer":
        """Attach (or return the already-attached) invariant sanitizer.

        Must be called before endpoints are constructed — they cache
        the sanitizer reference at build time.
        """
        if self.san is None:
            self.san = sanitize.SimSanitizer(self)
        return self.san

    def attach_telemetry(self, collector):
        """Attach an event-trace collector (``repro.telemetry``).

        Binds the collector to this simulator's virtual clock.  Must
        be called before endpoints/links are constructed — they cache
        ``sim.telemetry`` at build time (same rule as the sanitizer).
        """
        self.telemetry = collector.attach(self)
        return self.telemetry

    def attach_energy(self, ledger):
        """Attach a per-flow energy/airtime ledger (``repro.energy``).

        Binds the ledger to this simulator's virtual clock (it bounds
        each flow's idle-energy window).  Must be called before links
        and endpoints are constructed — they cache ``sim.energy`` at
        build time (same rule as telemetry).
        """
        self.energy = ledger.attach(self)
        return self.energy

    def attach_diagnosis(self, doctor):
        """Attach a live flow doctor (``repro.diagnose``).

        Binds the doctor to this simulator's virtual clock so its
        observations are stamped identically to trace events.  Must be
        called before endpoints are constructed — they cache
        ``sim.diagnosis`` at build time (same rule as telemetry).
        """
        self.diagnosis = doctor.attach(self)
        return self.diagnosis

    def attach_profiler(self, profiler):
        """Attach a host-side profiler (``repro.profile``).

        Binds the profiler to this simulator's virtual clock so the
        report can state simulated-seconds-per-wall-second.  Must be
        called before endpoints/links are constructed — they bind
        profiled method spans at build time (same rule as telemetry).
        """
        if profiler is not None:
            profiler.attach(self)
        self.profiler = profiler
        return self.profiler

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now()

    @property
    def events_fired(self) -> int:
        """Number of callbacks executed so far (profiling aid)."""
        return self._events_fired

    def fork_rng(self, label: str) -> random.Random:
        """Derive an independent, reproducible RNG for a component.

        Components that consume randomness at different rates would
        otherwise perturb each other through the shared stream.
        """
        return random.Random(f"{self.rng.random()}-{label}")

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def call_at(self, t: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run at absolute time ``t``."""
        if t < self.clock.now():
            raise ValueError(
                f"cannot schedule in the past: {t} < {self.clock.now()}"
            )
        ev = Event(t, next(self._seq), fn)
        heapq.heappush(self._queue, ev)
        return ev

    def call_in(self, delay: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.call_at(self.clock.now() + delay, fn)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single earliest pending event.

        Returns ``False`` when the queue is empty (simulation is over).
        """
        while self._queue:
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            if self.san is not None:
                self.san.on_event(ev.time)
            self.clock.advance_to(ev.time)
            self._events_fired += 1
            if self.profiler is not None:
                self.profiler.event_begin(ev.fn, len(self._queue))
                try:
                    ev.fn()
                finally:
                    self.profiler.event_end()
            else:
                ev.fn()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` callbacks have fired.

        Returns the clock value when the run stops.  When ``until`` is
        given the clock is advanced to exactly ``until`` even if the
        last event fired earlier, mirroring how a wall-clock testbed
        measurement window behaves.
        """
        fired = 0
        prof = self.profiler  # hoisted: attach happens before run()
        while self._queue:
            ev = self._queue[0]
            if ev.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and ev.time > until:
                break
            if max_events is not None and fired >= max_events:
                break
            heapq.heappop(self._queue)
            if self.san is not None:
                self.san.on_event(ev.time)
            self.clock.advance_to(ev.time)
            self._events_fired += 1
            fired += 1
            if prof is not None:
                prof.event_begin(ev.fn, len(self._queue))
                try:
                    ev.fn()
                finally:
                    prof.event_end()
            else:
                ev.fn()
        if until is not None and self.clock.now() < until:
            self.clock.advance_to(until)
        return self.clock.now()

    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for ev in self._queue if not ev.cancelled)

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self.clock.now():.6f}, "
            f"pending={len(self._queue)}, fired={self._events_fired})"
        )
