"""Bottleneck queues for wired links.

The default is a byte-limited droptail FIFO, which is what the paper's
hardware emulator provides.  A RED variant is included for ablations on
queueing discipline.
"""

from __future__ import annotations

import collections
from typing import Optional

from repro.netsim.loss import RngLike, coerce_rng
from repro.netsim.packet import Packet


class DropTailQueue:
    """Byte-limited FIFO.

    ``capacity_bytes`` of ``None`` means unbounded (useful for access
    links that are never the bottleneck).
    """

    __slots__ = ("capacity_bytes", "_queue", "_bytes", "drops",
                 "enqueued", "peak_bytes")

    def __init__(self, capacity_bytes: Optional[int] = None):
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._queue: collections.deque[Packet] = collections.deque()
        self._bytes = 0
        self.drops = 0
        self.enqueued = 0
        self.peak_bytes = 0

    # ------------------------------------------------------------------
    def try_enqueue(self, packet: Packet) -> bool:
        """Append ``packet``; returns ``False`` (and counts a drop) when
        it would overflow the byte capacity."""
        if (
            self.capacity_bytes is not None
            and self._bytes + packet.size > self.capacity_bytes
        ):
            self.drops += 1
            return False
        self._queue.append(packet)
        self._bytes += packet.size
        self.enqueued += 1
        if self._bytes > self.peak_bytes:
            self.peak_bytes = self._bytes
        return True

    def dequeue(self) -> Optional[Packet]:
        """Pop the head packet, or ``None`` when empty."""
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size
        return packet

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._queue)

    @property
    def bytes_queued(self) -> int:
        return self._bytes

    def is_empty(self) -> bool:
        return not self._queue


class REDQueue(DropTailQueue):
    """Random Early Detection on top of the byte FIFO.

    Drop probability ramps linearly from 0 at ``min_thresh`` to
    ``max_p`` at ``max_thresh`` (thresholds in bytes), then the queue
    behaves droptail above ``max_thresh``.  Present for the queueing
    ablation, not used by the headline experiments.
    """

    __slots__ = ("min_thresh", "max_thresh", "max_p", "rng")

    def __init__(
        self,
        capacity_bytes: int,
        min_thresh: Optional[int] = None,
        max_thresh: Optional[int] = None,
        max_p: float = 0.1,
        rng: Optional[RngLike] = None,
    ):
        super().__init__(capacity_bytes)
        self.min_thresh = min_thresh if min_thresh is not None else capacity_bytes // 4
        self.max_thresh = max_thresh if max_thresh is not None else capacity_bytes // 2
        if not 0.0 <= max_p <= 1.0:
            raise ValueError(f"max_p must be in [0, 1], got {max_p}")
        if self.max_thresh <= self.min_thresh:
            raise ValueError("max_thresh must exceed min_thresh")
        self.max_p = max_p
        # An implicit shared seed would correlate RED's marking across
        # every queue of an experiment (see REP008); the thresholds are
        # validated first so configuration errors surface before the
        # missing-rng error.
        if rng is None:
            raise TypeError(
                "REDQueue requires an explicit rng: pass a seeded "
                "random.Random or an int seed"
            )
        self.rng = coerce_rng(rng, "REDQueue")

    def try_enqueue(self, packet: Packet) -> bool:
        depth = self._bytes
        if depth > self.min_thresh:
            if depth >= self.max_thresh:
                p = self.max_p
            else:
                frac = (depth - self.min_thresh) / (self.max_thresh - self.min_thresh)
                p = frac * self.max_p
            if self.rng.random() < p:
                self.drops += 1
                return False
        return super().try_enqueue(packet)
