"""Simple forwarding node (access point / router glue).

A :class:`Forwarder` bridges two "ports".  A port is anything with a
``send(packet) -> bool`` method — a :class:`~repro.netsim.link.Link`,
an :class:`~repro.netsim.emulator.EmulatedPath` direction, a WLAN
station, or a test stub.  The forwarder is store-and-forward with no
extra delay of its own; queueing happens inside the egress port.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.netsim.packet import Packet


class Port:
    """Minimal duck-typed port contract (documentation aid).

    Concrete ports implement ``send(packet) -> bool`` and accept a
    receive callback via ``connect(sink)``.
    """

    def send(self, packet: Packet) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def connect(self, sink: Callable[[Packet], None]) -> None:  # pragma: no cover
        raise NotImplementedError


class Forwarder:
    """Bridges packets between two ports in both directions.

    Typical use: an access point joining a wired WAN path and a WLAN
    station::

        ap = Forwarder(name="ap")
        ap.attach_a(path.reverse_sender)   # WAN side
        ap.attach_b(ap_station)            # WLAN side

    Call :meth:`from_a` / :meth:`from_b` (or wire them as sinks) to
    inject traffic arriving on either side.
    """

    def __init__(self, name: str = "fwd"):
        self.name = name
        self._a: Optional[Port] = None
        self._b: Optional[Port] = None
        self.forwarded_a_to_b = 0
        self.forwarded_b_to_a = 0
        self.dropped = 0

    def attach_a(self, port: Port) -> None:
        self._a = port

    def attach_b(self, port: Port) -> None:
        self._b = port

    def from_a(self, packet: Packet) -> None:
        """Packet arrived on side A; forward out side B."""
        if self._b is None:
            self.dropped += 1
            return
        if self._b.send(packet):
            self.forwarded_a_to_b += 1
        else:
            self.dropped += 1

    def from_b(self, packet: Packet) -> None:
        """Packet arrived on side B; forward out side A."""
        if self._a is None:
            self.dropped += 1
            return
        if self._a.send(packet):
            self.forwarded_b_to_a += 1
        else:
            self.dropped += 1
