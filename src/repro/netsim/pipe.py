"""Ideal pipe: fixed-delay, infinite-rate delivery.

Used to unit-test protocol logic in isolation from link dynamics and
to model intra-host handoff between layers.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.netsim.engine import Simulator
from repro.netsim.loss import LossModel, NoLoss
from repro.netsim.packet import Packet


class Pipe:
    """Delivers every packet to ``sink`` after exactly ``delay_s``.

    Optionally applies a loss model, so protocol tests can inject exact
    drop patterns without configuring a full link.
    """

    __slots__ = ("sim", "delay_s", "sink", "loss", "packets_sent",
                 "packets_lost", "packets_delivered")

    def __init__(
        self,
        sim: Simulator,
        delay_s: float = 0.0,
        sink: Optional[Callable[[Packet], None]] = None,
        loss: Optional[LossModel] = None,
    ):
        if delay_s < 0:
            raise ValueError(f"negative delay: {delay_s}")
        self.sim = sim
        self.delay_s = delay_s
        self.sink = sink
        self.loss = loss or NoLoss()
        self.packets_sent = 0
        self.packets_lost = 0
        self.packets_delivered = 0

    def connect(self, sink: Callable[[Packet], None]) -> None:
        self.sink = sink

    def send(self, packet: Packet) -> bool:
        self.packets_sent += 1
        if self.loss.should_drop(packet, self.sim.now()):
            self.packets_lost += 1
            return False
        self.sim.call_in(self.delay_s, lambda p=packet: self._deliver(p))
        return True

    def _deliver(self, packet: Packet) -> None:
        self.packets_delivered += 1
        packet.hops += 1
        if self.sink is not None:
            self.sink(packet)
