"""Topology composition: chain links, pipes, and WLAN hops into ports.

Every experiment in the paper is one of three shapes:

* **wired** -- two endpoints across the Attero emulator
  (:func:`wired_path`);
* **WLAN-only** -- endpoints on two stations of one collision domain,
  optionally with extra end-to-end latency (:func:`wlan_path`);
* **hybrid** -- a wired WAN segment feeding an access point that
  forwards onto the WLAN (:func:`hybrid_path`, paper Fig. 12).

A *port* is anything with ``send(packet)`` and ``connect(sink)``;
:class:`ChainPort` composes ports in series and
:class:`WirelessHop` adapts a (transmitting station, receiving
station) pair into a single port.
"""

from __future__ import annotations

from typing import Optional

from repro.netsim.emulator import EmulatedPath, PathConfig
from repro.netsim.engine import Simulator
from repro.netsim.loss import LossModel
from repro.netsim.packet import Packet
from repro.netsim.pipe import Pipe
from repro.wlan.medium import WirelessMedium
from repro.wlan.phy import PhyProfile, get_profile
from repro.wlan.station import Station


class WirelessHop:
    """Port over one WLAN hop: transmit from ``tx``, deliver at ``rx``."""

    def __init__(self, tx: Station, rx: Station):
        self.tx = tx
        self.rx = rx

    def send(self, packet: Packet) -> bool:
        return self.tx.send(packet)

    def connect(self, sink) -> None:
        self.rx.connect(sink)


class ChainPort:
    """Ports composed in series: ``send`` enters the first stage, each
    stage's delivery feeds the next stage's ``send``, and ``connect``
    binds the final sink."""

    def __init__(self, *stages):
        if not stages:
            raise ValueError("a chain needs at least one stage")
        self.stages = stages
        for upstream, downstream in zip(stages, stages[1:]):
            upstream.connect(downstream.send)

    def send(self, packet: Packet) -> bool:
        return self.stages[0].send(packet)

    def connect(self, sink) -> None:
        self.stages[-1].connect(sink)


class PathHandle:
    """What a path builder returns: the two ports plus the pieces a
    benchmark may want to introspect (medium stats, link counters)."""

    def __init__(self, forward, reverse, medium: Optional[WirelessMedium] = None,
                 wan: Optional[EmulatedPath] = None,
                 stations: Optional[tuple[Station, Station]] = None):
        self.forward = forward
        self.reverse = reverse
        self.medium = medium
        self.wan = wan
        self.stations = stations

    # -- chaos-plane access --------------------------------------------
    # The injector mutates *links* (rate/delay/loss/impairments), not
    # ports; on wired and hybrid topologies those are the WAN pair.
    @property
    def forward_link(self):
        """The mutable data-direction :class:`~repro.netsim.link.Link`,
        or ``None`` on a pure-WLAN path."""
        return self.wan.forward if self.wan is not None else None

    @property
    def reverse_link(self):
        """The mutable ACK-direction link, or ``None`` (pure WLAN)."""
        return self.wan.reverse if self.wan is not None else None


def wired_path(
    sim: Simulator,
    rate_bps: float,
    rtt_s: float,
    queue_bytes: Optional[int] = None,
    data_loss: float = 0.0,
    ack_loss: float = 0.0,
    forward_loss: Optional[LossModel] = None,
    reverse_loss: Optional[LossModel] = None,
) -> PathHandle:
    """Two endpoints across the software Attero (paper S6.1)."""
    if queue_bytes is None:
        queue_bytes = max(int(rate_bps * rtt_s / 8.0), 64 * 1024)
    wan = EmulatedPath(
        sim,
        PathConfig(rate_bps, rtt_s, queue_bytes, data_loss, ack_loss),
        forward_loss=forward_loss,
        reverse_loss=reverse_loss,
    )
    return PathHandle(wan.forward, wan.reverse, wan=wan)


def _make_wlan(
    sim: Simulator,
    phy: "str | PhyProfile",
    queue_frames: int,
    aggregate: bool,
    per_mpdu_error_rate: float,
) -> tuple[WirelessMedium, Station, Station]:
    profile = get_profile(phy) if isinstance(phy, str) else phy
    medium = WirelessMedium(sim, profile, per_mpdu_error_rate)
    ap = Station(medium, "ap", queue_frames=queue_frames, aggregate=aggregate)
    sta = Station(medium, "sta", queue_frames=queue_frames, aggregate=aggregate)
    ap.set_peer(sta)
    sta.set_peer(ap)
    medium.register(ap)
    medium.register(sta)
    return medium, ap, sta


def wlan_path(
    sim: Simulator,
    phy: "str | PhyProfile" = "802.11n",
    extra_rtt_s: float = 0.0,
    queue_frames: int = 1024,
    aggregate: bool = True,
    per_mpdu_error_rate: float = 0.0,
) -> PathHandle:
    """Endpoints across one WLAN hop (downlink data, uplink ACKs).

    ``extra_rtt_s`` adds symmetric end-to-end latency (the paper's
    RTT = 10/80/200 ms settings) via lossless delay pipes.
    """
    medium, ap, sta = _make_wlan(sim, phy, queue_frames, aggregate, per_mpdu_error_rate)
    down = WirelessHop(ap, sta)
    up = WirelessHop(sta, ap)
    if extra_rtt_s > 0:
        owd = extra_rtt_s / 2.0
        forward = ChainPort(Pipe(sim, owd), down)
        reverse = ChainPort(up, Pipe(sim, owd))
    else:
        forward, reverse = down, up
    return PathHandle(forward, reverse, medium=medium, stations=(ap, sta))


def multi_client_wlan(
    sim: Simulator,
    n_clients: int,
    phy: "str | PhyProfile" = "802.11n",
    extra_rtt_s: float = 0.0,
    queue_frames: int = 2048,
) -> list[PathHandle]:
    """One AP serving ``n_clients`` stations in a single collision
    domain (the paper's crowded-room motivation).

    Returns one :class:`PathHandle` per client; flow ``i`` must stamp
    ``flow_id=i`` on its packets so the AP routes its downlink frames
    to the right station.  All handles share the same medium object.
    """
    from repro.netsim.demux import FlowDemux

    if n_clients < 1:
        raise ValueError(f"need at least one client, got {n_clients}")
    profile = get_profile(phy) if isinstance(phy, str) else phy
    medium = WirelessMedium(sim, profile)
    ap = Station(medium, "ap", queue_frames=queue_frames)
    medium.register(ap)
    # Uplink frames from every client land at the AP; a demux fans
    # them out to the right flow's sender.
    uplink_demux = FlowDemux()
    ap.connect(uplink_demux)
    peer_map: dict[int, Station] = {}
    handles: list[PathHandle] = []
    owd = extra_rtt_s / 2.0

    class _UplinkPort:
        """Per-flow reverse port: client station in, demux out."""

        def __init__(self, client: Station, flow_id: int):
            self.client = client
            self.flow_id = flow_id

        def send(self, packet: Packet) -> bool:
            return self.client.send(packet)

        def connect(self, sink) -> None:
            if owd > 0:
                pipe = Pipe(sim, owd, sink=sink)
                uplink_demux.register(self.flow_id, pipe.send)
            else:
                uplink_demux.register(self.flow_id, sink)

    for i in range(n_clients):
        client = Station(medium, f"sta{i}", queue_frames=queue_frames)
        client.set_peer(ap)
        medium.register(client)
        peer_map[i] = client
        down = WirelessHop(ap, client)
        forward = ChainPort(Pipe(sim, owd), down) if owd > 0 else down
        handles.append(PathHandle(forward, _UplinkPort(client, i),
                                  medium=medium, stations=(ap, client)))
    ap.set_peer_map(peer_map)
    return handles


def hybrid_path(
    sim: Simulator,
    phy: "str | PhyProfile" = "802.11n",
    wan_rate_bps: float = 100e6,
    wan_rtt_s: float = 0.02,
    wan_queue_bytes: Optional[int] = None,
    data_loss: float = 0.0,
    ack_loss: float = 0.0,
    queue_frames: int = 1024,
    aggregate: bool = True,
) -> PathHandle:
    """WAN segment + WLAN last hop (paper Fig. 12 topology).

    Data: server --WAN--> AP --medium--> client.
    ACKs: client --medium--> AP --WAN--> server.
    Loss is injected on the WAN segment (where the paper's emulator
    sits): ``data_loss`` on the ingress port, ``ack_loss`` on egress.
    """
    medium, ap, sta = _make_wlan(sim, phy, queue_frames, aggregate, 0.0)
    if wan_queue_bytes is None:
        wan_queue_bytes = max(int(wan_rate_bps * max(wan_rtt_s, 0.02) / 8.0), 128 * 1024)
    wan = EmulatedPath(
        sim,
        PathConfig(wan_rate_bps, wan_rtt_s, wan_queue_bytes, data_loss, ack_loss),
    )
    forward = ChainPort(wan.forward, WirelessHop(ap, sta))
    reverse = ChainPort(WirelessHop(sta, ap), wan.reverse)
    return PathHandle(forward, reverse, medium=medium, wan=wan, stations=(ap, sta))
