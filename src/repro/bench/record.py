"""The ``BenchRecord`` schema: one measured metric of one bench run.

This module is host-side tooling (exempt from the determinism lint's
wall-clock rules): records are *about* wall time, stamped at append
time, and never read from inside a simulation — reprolint REP007
enforces that sim-side packages cannot import it.

Schema (version 1), one JSON object per line in a history file::

    {"schema": "repro-bench", "version": 1,
     "name": "engine_micro", "metric": "events_per_s",
     "value": 812345.6, "unit": "1/s", "better": "higher",
     "recorded_unix": 1700000000.0,
     "machine": {"fingerprint": "9f2c…", "hostname": ..., "platform": ...,
                 "python": "3.11.8", "cpus": 8},
     "git_rev": "ad3ac78", "meta": {...}}

``better`` states the improvement direction (``"higher"`` |
``"lower"`` | ``null``); the regression gate skips metrics whose
direction is unknown rather than guessing.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

SCHEMA_NAME = "repro-bench"
SCHEMA_VERSION = 1

#: Valid improvement directions.
BETTER_VALUES = ("higher", "lower")


def machine_fingerprint(host: Optional[Dict[str, Any]] = None) -> str:
    """Short stable hash of the measuring machine.

    Records from different machines are never compared by the gate —
    a laptop's events/sec says nothing about a CI runner's — so every
    record carries this fingerprint and series are filtered by it.
    """
    if host is None:
        # Deferred: repro.runner.campaign imports this module for
        # file_sha256, so a top-level manifest import would be circular.
        from repro.runner.manifest import host_metadata
        host = host_metadata()
    blob = json.dumps(host, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:12]


def git_revision(start: Optional[str] = None) -> str:
    """Current git commit (short hex) by reading ``.git`` directly.

    No subprocess: benches run inside pytest workers where spawning
    ``git`` is slow and may be unavailable.  Walks upward from *start*
    (default: this file) to the repository root; returns ``"unknown"``
    outside a checkout or on any parse problem.
    """
    node = os.path.abspath(start or os.path.dirname(__file__))
    while True:
        git_dir = os.path.join(node, ".git")
        if os.path.isdir(git_dir):
            break
        parent = os.path.dirname(node)
        if parent == node:
            return "unknown"
        node = parent
    try:
        with open(os.path.join(git_dir, "HEAD")) as fh:
            head = fh.read().strip()
        if head.startswith("ref:"):
            ref = head.split(None, 1)[1]
            ref_path = os.path.join(git_dir, *ref.split("/"))
            if os.path.isfile(ref_path):
                with open(ref_path) as fh:
                    return fh.read().strip()[:12]
            packed = os.path.join(git_dir, "packed-refs")
            if os.path.isfile(packed):
                with open(packed) as fh:
                    for line in fh:
                        if line.strip().endswith(ref):
                            return line.split()[0][:12]
            return "unknown"
        return head[:12]
    except OSError:
        return "unknown"


def file_sha256(path: str) -> str:
    """SHA-256 hex digest of a file's bytes (profile/trace artifacts)."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 16), b""):
            h.update(chunk)
    return h.hexdigest()


@dataclass
class BenchRecord:
    """One measured metric of one benchmark run."""

    name: str                       # bench identity, e.g. "engine_micro"
    metric: str                     # e.g. "events_per_s"
    value: float
    unit: str                       # "s", "1/s", "pct", "bytes", ...
    better: Optional[str] = None    # "higher" | "lower" | None (no gate)
    recorded_unix: float = 0.0
    machine: Dict[str, Any] = field(default_factory=dict)
    git_rev: str = "unknown"
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.better is not None and self.better not in BETTER_VALUES:
            raise ValueError(
                f"better must be one of {BETTER_VALUES} or None, "
                f"got {self.better!r}")

    # ------------------------------------------------------------------
    @classmethod
    def make(cls, name: str, metric: str, value: float, unit: str,
             better: Optional[str] = None,
             meta: Optional[Dict[str, Any]] = None) -> "BenchRecord":
        """Construct a record stamped with the current run context."""
        from repro.runner.manifest import host_metadata
        host = host_metadata()
        return cls(
            name=name, metric=metric, value=float(value), unit=unit,
            better=better,
            recorded_unix=time.time(),
            machine={"fingerprint": machine_fingerprint(host), **host},
            git_rev=git_revision(),
            meta=dict(meta) if meta else {},
        )

    @property
    def fingerprint(self) -> str:
        """The measuring machine's fingerprint (``""`` if unstamped)."""
        return self.machine.get("fingerprint", "")

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA_NAME,
            "version": SCHEMA_VERSION,
            "name": self.name,
            "metric": self.metric,
            "value": self.value,
            "unit": self.unit,
            "better": self.better,
            "recorded_unix": self.recorded_unix,
            "machine": self.machine,
            "git_rev": self.git_rev,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "BenchRecord":
        if doc.get("schema") != SCHEMA_NAME:
            raise ValueError(
                f"not a {SCHEMA_NAME} record: schema={doc.get('schema')!r}")
        return cls(
            name=doc["name"], metric=doc["metric"],
            value=float(doc["value"]), unit=doc.get("unit", ""),
            better=doc.get("better"),
            recorded_unix=float(doc.get("recorded_unix", 0.0)),
            machine=dict(doc.get("machine") or {}),
            git_rev=doc.get("git_rev", "unknown"),
            meta=dict(doc.get("meta") or {}),
        )

    def to_json_line(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)
