"""Append-only benchmark history and the regression gate.

History layout: one JSONL file per bench name under a history root
(the repo uses ``benchmarks/results/history/``) —
``history/engine_micro.jsonl`` holds every recorded metric of the
``engine_micro`` bench in append order.  Unreadable lines are skipped
with a count, never fatal: a corrupt record must not brick the gate.

The gate compares, per ``(name, metric)`` series, the latest record
against the median of the previous *window* records **from the same
machine fingerprint** (cross-machine comparisons are pure noise).  A
metric regresses when it moves past the noise band in its "worse"
direction; improvements and unknown-direction metrics never fail the
gate.  Series with fewer than *min_records* baseline points report
``insufficient-history`` and pass — this is what keeps a freshly
bootstrapped trajectory (or a new CI machine) warn-only for the first
window, as the CI job relies on.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.bench.record import BenchRecord
from repro.stats.percentile import median

#: Default relative noise band (fraction) for the gate.
DEFAULT_NOISE_PCT = 10.0

#: Default number of baseline records the gate compares against.
DEFAULT_WINDOW = 5

#: Baseline points required before the gate can fail a series.
DEFAULT_MIN_RECORDS = 3

_SAFE_NAME = re.compile(r"[^A-Za-z0-9._-]+")


def _history_path(root: str, name: str) -> str:
    return os.path.join(root, _SAFE_NAME.sub("_", name) + ".jsonl")


def append_records(root: str, records: Iterable[BenchRecord]) -> int:
    """Append records to ``<root>/<name>.jsonl``; returns the count."""
    os.makedirs(root, exist_ok=True)
    appended = 0
    by_name: Dict[str, List[BenchRecord]] = {}
    for rec in records:
        by_name.setdefault(rec.name, []).append(rec)
    for name, group in by_name.items():
        with open(_history_path(root, name), "a") as fh:
            for rec in group:
                fh.write(rec.to_json_line() + "\n")
                appended += 1
    return appended


def load_history(root: str,
                 name: Optional[str] = None) -> "BenchHistory":
    """Load every record under *root* (or only the named bench)."""
    records: List[BenchRecord] = []
    skipped = 0
    if not os.path.isdir(root):
        return BenchHistory(records=records, skipped=0, root=root)
    if name is not None:
        files = [_history_path(root, name)]
    else:
        files = [os.path.join(root, f)
                 for f in sorted(os.listdir(root)) if f.endswith(".jsonl")]
    for path in files:
        if not os.path.isfile(path):
            continue
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(BenchRecord.from_dict(json.loads(line)))
                except (json.JSONDecodeError, KeyError, TypeError,
                        ValueError):
                    skipped += 1
    return BenchHistory(records=records, skipped=skipped, root=root)


@dataclass
class BenchHistory:
    """All loaded records plus load diagnostics."""

    records: List[BenchRecord] = field(default_factory=list)
    skipped: int = 0
    root: str = ""

    def __len__(self) -> int:
        return len(self.records)

    def series(self) -> Dict[Tuple[str, str], List[BenchRecord]]:
        """Records grouped by ``(name, metric)`` in append order."""
        out: Dict[Tuple[str, str], List[BenchRecord]] = {}
        for rec in self.records:
            out.setdefault((rec.name, rec.metric), []).append(rec)
        return out


def filter_history(history: BenchHistory,
                   only: Iterable[str]) -> BenchHistory:
    """Subset *history* to benches whose name contains any pattern.

    Lets CI enforce the gate per series tier — e.g. fail hard on
    ``engine_micro`` regressions while newer series are still
    accumulating baseline records under ``--warn-only``.  Empty
    patterns leave the history untouched.
    """
    patterns = [p for p in only if p]
    if not patterns:
        return history
    records = [r for r in history.records
               if any(p in r.name for p in patterns)]
    return BenchHistory(records=records, skipped=history.skipped,
                        root=history.root)


# ----------------------------------------------------------------------
# comparison and gating
# ----------------------------------------------------------------------

@dataclass
class GateFinding:
    """Verdict for one ``(name, metric)`` series."""

    name: str
    metric: str
    status: str             # "ok" | "regressed" | "improved" |
    #                         "insufficient-history" | "no-direction"
    latest: float = 0.0
    baseline: Optional[float] = None   # median of the window
    window_n: int = 0                  # baseline records actually used
    change_pct: Optional[float] = None  # signed, relative to baseline
    unit: str = ""
    better: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.status == "regressed"

    def to_dict(self) -> dict:
        return {
            "name": self.name, "metric": self.metric,
            "status": self.status, "latest": self.latest,
            "baseline": self.baseline, "window_n": self.window_n,
            "change_pct": self.change_pct, "unit": self.unit,
            "better": self.better,
        }

    def render(self) -> str:
        head = f"{self.name}/{self.metric}"
        if self.baseline is None:
            return f"{head}: {self.status} (latest={self.latest:g}{self.unit and ' ' + self.unit})"
        change = (f"{self.change_pct:+.1f}%" if self.change_pct is not None
                  else "n/a")
        return (f"{head}: {self.status}  latest={self.latest:g} "
                f"baseline={self.baseline:g} ({change}, "
                f"n={self.window_n}, better={self.better})")


def _same_machine(series: List[BenchRecord]) -> List[BenchRecord]:
    """Restrict a series to the latest record's machine fingerprint."""
    if not series:
        return series
    fp = series[-1].fingerprint
    return [r for r in series if r.fingerprint == fp]


def compare_series(history: BenchHistory, window: int = DEFAULT_WINDOW,
                   min_records: int = DEFAULT_MIN_RECORDS,
                   noise_pct: float = DEFAULT_NOISE_PCT,
                   same_machine: bool = True) -> List[GateFinding]:
    """Latest-vs-window verdict for every ``(name, metric)`` series."""
    findings: List[GateFinding] = []
    for (name, metric), series in sorted(history.series().items()):
        if same_machine:
            series = _same_machine(series)
        latest = series[-1]
        baseline_records = series[:-1][-window:] if len(series) > 1 else []
        finding = GateFinding(
            name=name, metric=metric, status="ok", latest=latest.value,
            window_n=len(baseline_records), unit=latest.unit,
            better=latest.better)
        if len(baseline_records) < min_records:
            finding.status = "insufficient-history"
            findings.append(finding)
            continue
        baseline = median([r.value for r in baseline_records])
        finding.baseline = baseline
        if baseline != 0:
            finding.change_pct = 100.0 * (latest.value - baseline) / abs(baseline)
        if latest.better is None:
            finding.status = "no-direction"
            findings.append(finding)
            continue
        if latest.unit == "pct":
            # The metric is already a relative quantity (often near
            # zero, e.g. an overhead percentage): a band proportional
            # to |baseline| would collapse to nothing and gate on pure
            # noise.  Use noise_pct as absolute percentage points.
            band = noise_pct
        else:
            band = abs(baseline) * noise_pct / 100.0
        if latest.better == "lower":
            if latest.value > baseline + band:
                finding.status = "regressed"
            elif latest.value < baseline - band:
                finding.status = "improved"
        else:  # higher is better
            if latest.value < baseline - band:
                finding.status = "regressed"
            elif latest.value > baseline + band:
                finding.status = "improved"
        findings.append(finding)
    return findings


def gate_history(history: BenchHistory, window: int = DEFAULT_WINDOW,
                 min_records: int = DEFAULT_MIN_RECORDS,
                 noise_pct: float = DEFAULT_NOISE_PCT,
                 same_machine: bool = True,
                 ) -> Tuple[List[GateFinding], bool]:
    """``(findings, passed)`` — passed is False iff any series regressed."""
    findings = compare_series(history, window=window,
                              min_records=min_records,
                              noise_pct=noise_pct,
                              same_machine=same_machine)
    return findings, not any(f.failed for f in findings)
