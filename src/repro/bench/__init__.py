"""Benchmark-history tracking.

The simulator's *protocol* behavior is observed by ``repro.telemetry``;
this package observes the simulator's own *performance trajectory*.
Every benchmark run appends one :class:`BenchRecord` per metric to a
JSONL file under ``benchmarks/results/history/``, stamped with run
metadata (machine fingerprint, git revision, wall timestamp), so a
hot-path regression in the engine or a protocol module is visible as a
bend in a machine-readable series rather than a silently-shipped slow
build.

The companion CLI lives in :mod:`repro.profile`
(``python -m repro.profile record|compare|gate|top``): ``gate`` exits
non-zero when the latest record for a metric falls outside a noise
band around the recent window — the CI perf gate.
"""

from repro.bench.record import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    BenchRecord,
    file_sha256,
    git_revision,
    machine_fingerprint,
)
from repro.bench.history import (
    BenchHistory,
    GateFinding,
    append_records,
    compare_series,
    filter_history,
    gate_history,
    load_history,
)

__all__ = [
    "SCHEMA_NAME", "SCHEMA_VERSION",
    "BenchRecord", "machine_fingerprint", "git_revision", "file_sha256",
    "BenchHistory", "GateFinding",
    "append_records", "load_history", "compare_series", "gate_history",
    "filter_history",
]
