"""One fleet shard: a busy access point serving a churning flow population.

A shard is the unit of parallelism in a fleet campaign: one simulator,
one AP bottleneck (downlink data link + uplink ACK link shared by every
flow through a demux), and a workload-driven population of connections
that arrive, transfer a heavy-tailed number of bytes, and leave.  A
shard runs in a worker process and returns a **bounded-size summary**
— counters plus mergeable digests (:mod:`repro.stats.streaming`) —
never a per-flow record list, so campaign memory stays flat at any
flow count.

Topology note: the paper's WLAN collision-domain model
(:mod:`repro.wlan`) simulates every DCF contention round and is
tractable for tens of stations, not thousands.  Fleet shards therefore
model the AP as an asymmetric wired bottleneck (fast downlink, slow
uplink that all ACK traffic shares — the crowded-uplink story of paper
Fig. 3) and account WLAN airtime analytically: each uplink ACK is
costed at one DCF exchange (DIFS + mean backoff + PPDU + SIFS + link
ACK) of the configured PHY profile.  DESIGN.md section 13 discusses
the substitution.

Flow lifecycle: arrivals are pulled lazily from
:mod:`repro.fleet.workload` (one pending arrival event at a time); a
periodic reaper retires finished or aborted connections, folds their
metrics into the digests, unregisters them from the demux, and drops
the last reference.  Active-set size is capped (``max_active``);
arrivals beyond the cap wait in a deferral queue, modeling an AP's
admission backlog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.flavors import make_connection
from repro.diagnose import ALL_STATES
from repro.diagnose.live import FlowDoctor
from repro.energy import EnergyLedger
from repro.fleet.workload import FlowSpec, WorkloadConfig, generate_flows
from repro.netsim.demux import FlowDemux, SharedPort
from repro.netsim.emulator import EmulatedPath, PathConfig
from repro.netsim.engine import Simulator
from repro.stats.streaming import BottomKReservoir, ExactSum, LogHistogram
from repro.wlan.phy import get_profile

#: LogHistogram bounds shared by every shard of a campaign.  These are
#: part of the digest *identity* (merges require equal configs), so
#: they are module constants rather than knobs.
FCT_HIST_BOUNDS = (1e-3, 1e4)          # 1 ms .. ~3 h
GOODPUT_HIST_BOUNDS = (1e2, 1e11)      # 100 bps .. 100 Gbps
HIST_BINS_PER_DECADE = 64
RESERVOIR_K = 128


@dataclass
class ShardSpec:
    """Everything a worker needs to simulate one shard, picklable."""

    shard_id: int
    scheme: str
    seed: int
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    # AP bottleneck: fast shared downlink, slow shared uplink (ACKs).
    rate_bps: float = 100e6
    uplink_rate_bps: float = 20e6
    rtt_s: float = 0.03
    queue_bytes: Optional[int] = None
    uplink_queue_bytes: Optional[int] = None
    # lifecycle
    drain_s: float = 10.0               # grace after the arrival window
    reap_interval_s: float = 0.25
    max_active: int = 2048
    rcv_buffer_bytes: int = 1024 * 1024
    phy: str = "802.11n"                # airtime/energy-ledger PHY profile
    power: str = "wavelan"              # radio power model (repro.energy)

    @property
    def name(self) -> str:
        return f"shard{self.shard_id:04d}-{self.scheme}"

    def to_dict(self) -> Dict[str, Any]:
        data = {f: getattr(self, f) for f in self.__dataclass_fields__}
        data["workload"] = self.workload.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ShardSpec":
        known = {k: v for k, v in data.items() if k in cls.__dataclass_fields__}
        known["workload"] = WorkloadConfig.from_dict(data.get("workload", {}))
        return cls(**known)


class _ShardRun:
    """Mutable state of one in-progress shard simulation."""

    def __init__(self, spec: ShardSpec, simsan: Optional[bool] = None):
        self.spec = spec
        # Per-flow energy/airtime ledger: attached before links and
        # endpoints so they cache sim.energy at construction.  Retired
        # flows fold into ExactSum partials, so the summary merges
        # bit-identically in any shard order.
        self.energy = EnergyLedger(phy=spec.phy, power=spec.power)
        # Flow doctor rides the same pattern: attached before endpoints
        # (they cache sim.diagnosis at construction), retired flows
        # fold into ExactSum state-time partials at _retire so doctor
        # memory stays flat under churn.
        self.doctor = FlowDoctor()
        self.sim = Simulator(seed=spec.seed, simsan=simsan,
                             energy=self.energy, diagnosis=self.doctor)
        queue_bytes = (spec.queue_bytes if spec.queue_bytes is not None
                       else max(int(spec.rate_bps * spec.rtt_s / 8.0),
                                128 * 1024))
        uplink_queue = (spec.uplink_queue_bytes
                        if spec.uplink_queue_bytes is not None
                        else max(int(spec.uplink_rate_bps * spec.rtt_s / 8.0),
                                 64 * 1024))
        self.wan = EmulatedPath(
            self.sim,
            PathConfig(spec.rate_bps, spec.rtt_s, queue_bytes,
                       reverse_rate_bps=spec.uplink_rate_bps,
                       reverse_queue_bytes=uplink_queue),
            name=spec.name,
        )
        self.fwd_demux = FlowDemux()
        self.rev_demux = FlowDemux()
        self.wan.forward.connect(self.fwd_demux)
        self.wan.reverse.connect(self.rev_demux)

        self.flows = generate_flows(spec.workload,
                                    self.sim.fork_rng("fleet-workload"))
        # flow index -> (connection, start_s, size_bytes)
        self.active: Dict[int, tuple] = {}
        self.deferred: list[FlowSpec] = []

        self.fct_hist = LogHistogram(*FCT_HIST_BOUNDS,
                                     bins_per_decade=HIST_BINS_PER_DECADE)
        self.goodput_hist = LogHistogram(*GOODPUT_HIST_BOUNDS,
                                         bins_per_decade=HIST_BINS_PER_DECADE)
        self.samples = BottomKReservoir(RESERVOIR_K, salt="fleet-flows")

        self.diag_flows = 0
        self.diag_state_time = {s: ExactSum() for s in ALL_STATES}
        self.diag_state_bytes = {s: 0 for s in ALL_STATES}
        self.diag_anomalies: Dict[str, int] = {}

        self.started = 0
        self.completed = 0
        self.aborted = 0
        self.guard_aborted = 0
        self.unfinished = 0
        self.offered_bytes = 0
        self.delivered_bytes = 0
        self.ack_packets = 0
        self.data_packets = 0
        self.retransmissions = 0
        self.peak_active = 0

    # ------------------------------------------------------------------
    def _admit(self, flow: FlowSpec) -> None:
        spec = self.spec
        conn = make_connection(
            self.sim, spec.scheme, flow_id=flow.index,
            rcv_buffer_bytes=spec.rcv_buffer_bytes,
            initial_rtt_s=spec.rtt_s)
        fwd = SharedPort(self.wan.forward, self.fwd_demux, flow.index)
        rev = SharedPort(self.wan.reverse, self.rev_demux, flow.index)
        conn.wire(fwd, rev)
        conn.start_transfer(flow.size_bytes)
        self.active[flow.index] = (conn, self.sim.now(), flow.size_bytes)
        self.started += 1
        self.offered_bytes += flow.size_bytes
        if len(self.active) > self.peak_active:
            self.peak_active = len(self.active)

    def _on_arrival(self, flow: FlowSpec) -> None:
        if len(self.active) >= self.spec.max_active:
            self.deferred.append(flow)
        else:
            self._admit(flow)
        self._schedule_next_arrival()

    def _schedule_next_arrival(self) -> None:
        flow = next(self.flows, None)
        if flow is not None:
            self.sim.call_at(flow.start_s, lambda f=flow: self._on_arrival(f))

    # ------------------------------------------------------------------
    def _retire(self, index: int, status: str) -> None:
        conn, start_s, size_bytes = self.active.pop(index)
        self.delivered_bytes += conn.receiver.stats.bytes_delivered
        self.ack_packets += conn.receiver.stats.total_feedback()
        self.data_packets += conn.sender.stats.data_packets_sent
        self.retransmissions += conn.sender.stats.retransmissions
        if status == "completed":
            self.completed += 1
            fct_s = conn.sender.completed_at - start_s
            if fct_s > 0:
                self.fct_hist.add(fct_s)
                self.goodput_hist.add(size_bytes * 8.0 / fct_s)
            self.samples.add(
                f"shard{self.spec.shard_id}/flow{index}",
                {"flow": index, "size_bytes": size_bytes,
                 "fct_s": round(fct_s, 9)})
        elif status == "aborted":
            self.aborted += 1
            if (conn.aborted is not None
                    and conn.aborted.reason == "misbehaving_peer"):
                self.guard_aborted += 1
        else:
            self.unfinished += 1
        conn.close()
        self.fwd_demux.unregister(index)
        self.rev_demux.unregister(index)
        # Fold the flow's diagnosis and drop the per-flow record.  The
        # transport/close event just emitted by conn.close() finalized
        # it inside the engine; states fold in the fixed ALL_STATES
        # order so the partials layout is shard-deterministic.
        diag = self.doctor.pop_flow(index)
        if diag is not None:
            self.diag_flows += 1
            for state in ALL_STATES:
                secs = diag["state_time_s"].get(state)
                if secs:
                    self.diag_state_time[state].add(secs)
                self.diag_state_bytes[state] += \
                    diag["state_bytes"].get(state, 0)
            for anomaly in diag["anomalies"]:
                kind = anomaly["kind"]
                self.diag_anomalies[kind] = (
                    self.diag_anomalies.get(kind, 0)
                    + anomaly.get("count", 1))
        # Retire the flow's energy account too: ledger memory stays
        # flat no matter how many flows churn through the shard.  (A
        # packet still in flight after retirement re-opens a stub
        # record; summary() folds those in, so totals stay exact.)
        self.energy.pop_flow(index)

    def _reap(self, final: bool = False) -> None:
        for index in list(self.active):
            conn = self.active[index][0]
            if conn.completed:
                self._retire(index, "completed")
            elif conn.aborted is not None:
                self._retire(index, "aborted")
            elif final:
                self._retire(index, "unfinished")
        while self.deferred and len(self.active) < self.spec.max_active:
            self._admit(self.deferred.pop(0))

    def _reaper_tick(self) -> None:
        self._reap()
        end_s = self.spec.workload.duration_s + self.spec.drain_s
        if self.active or self.deferred or self.sim.now() < self.spec.workload.duration_s:
            if self.sim.now() + self.spec.reap_interval_s <= end_s:
                self.sim.call_in(self.spec.reap_interval_s, self._reaper_tick)

    # ------------------------------------------------------------------
    def run(self) -> Dict[str, Any]:
        spec = self.spec
        self._schedule_next_arrival()
        self.sim.call_in(spec.reap_interval_s, self._reaper_tick)
        end_s = spec.workload.duration_s + spec.drain_s
        self.sim.run(until=end_s)
        self._reap(final=True)
        elapsed_s = self.sim.now()

        # WLAN airtime/energy: the per-packet ledger costs every
        # transmission at one DCF exchange (DIFS + mean backoff + PPDU
        # + SIFS + link ACK) of the configured PHY — the paper's
        # Fig. 3 accounting, now exact per packet size instead of the
        # old mean-ACK-size analytic estimate.
        phy = get_profile(spec.phy)
        rev = self.wan.reverse
        en = self.energy.summary()
        ack_airtime_s = en["ack_airtime_s"]
        per_ack_airtime_s = (
            ack_airtime_s / en["ack_pkts"] if en["ack_pkts"]
            else phy.difs_s + phy.mean_backoff_s()
            + phy.exchange_airtime(phy.mpdu_bytes(64)))

        return {
            "shard_id": spec.shard_id,
            "scheme": spec.scheme,
            "seed": spec.seed,
            "elapsed_s": elapsed_s,
            "duration_s": spec.workload.duration_s,
            "flows": {
                "started": self.started,
                "completed": self.completed,
                "aborted": self.aborted,
                "guard_aborted": self.guard_aborted,
                "unfinished": self.unfinished,
                "deferred_peak": len(self.deferred),
                "peak_active": self.peak_active,
            },
            "bytes": {
                "offered": self.offered_bytes,
                "delivered": self.delivered_bytes,
            },
            "packets": {
                "data": self.data_packets,
                "retransmissions": self.retransmissions,
                "acks": self.ack_packets,
            },
            "links": {
                "down_delivered_bytes": self.wan.forward.bytes_delivered,
                "down_drops": self.wan.forward.packets_lost,
                "up_delivered_bytes": rev.bytes_delivered,
                "up_delivered_packets": rev.packets_delivered,
                "up_drops": rev.packets_lost,
            },
            "airtime": {
                "ack_airtime_s": ack_airtime_s,
                "per_ack_airtime_s": per_ack_airtime_s,
                "uplink_serialization_s":
                    rev.bytes_delivered * 8.0 / spec.uplink_rate_bps,
            },
            "energy": {
                "phy": en["phy"],
                "power": en["power"],
                "data_energy_j": en["data_energy_j"],
                "ack_energy_j": en["ack_energy_j"],
                "idle_energy_j": en["idle_energy_j"],
                "total_energy_j": en["total_energy_j"],
                "ack_energy_share": en["ack_energy_share"],
                "ack_airtime_share": en["ack_airtime_share"],
                "data_airtime_s": en["data_airtime_s"],
                "ack_airtime_s": en["ack_airtime_s"],
                "data_pkts": en["data_pkts"],
                "ack_pkts": en["ack_pkts"],
                "feedback_bytes": en["feedback_bytes"],
                "partials": en["partials"],
            },
            "digests": {
                "fct_s": self.fct_hist.to_dict(),
                "flow_goodput_bps": self.goodput_hist.to_dict(),
                "samples": self.samples.to_dict(),
            },
            "diagnosis": {
                "flows": self.diag_flows,
                "state_time_partials": {
                    s: list(self.diag_state_time[s]._partials)
                    for s in ALL_STATES},
                "state_bytes": dict(self.diag_state_bytes),
                "anomalies": {k: self.diag_anomalies[k]
                              for k in sorted(self.diag_anomalies)},
            },
            "engine": {
                "events_fired": self.sim.events_fired,
            },
        }


def run_shard(spec: Dict[str, Any],
              simsan: Optional[bool] = None) -> Dict[str, Any]:
    """Worker entry point: simulate one shard, return its summary dict.

    ``spec`` is a :meth:`ShardSpec.to_dict` payload (plain JSON types
    so it pickles cheaply into the pool and hashes stably for resume
    fingerprints).
    """
    return _ShardRun(ShardSpec.from_dict(spec), simsan=simsan).run()


def expected_flows(workload: WorkloadConfig) -> float:
    """Expected flow count of one shard (planning aid)."""
    return workload.mean_arrival_hz * workload.duration_s
