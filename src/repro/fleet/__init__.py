"""Fleet-scale edge simulation: workload generation, sharded campaigns
with streaming aggregation, and resumable manifests.

See DESIGN.md section 13 and ``python -m repro.fleet --help``.
"""

from repro.fleet.workload import FlowSpec, WorkloadConfig, generate_flows
from repro.fleet.shard import ShardSpec, run_shard
from repro.fleet.manifest import ManifestMismatch, ShardManifest
from repro.fleet.campaign import (
    CampaignOutcome,
    FleetConfig,
    plan_shards,
    run_fleet,
)
from repro.fleet.report import aggregate, aggregate_digest, campaign_report

__all__ = [
    "CampaignOutcome",
    "FleetConfig",
    "FlowSpec",
    "ManifestMismatch",
    "ShardManifest",
    "ShardSpec",
    "WorkloadConfig",
    "aggregate",
    "aggregate_digest",
    "campaign_report",
    "generate_flows",
    "plan_shards",
    "run_fleet",
    "run_shard",
]
