"""``python -m repro.fleet`` — run, resume, and report fleet campaigns.

Host-side code: argument parsing, progress printing, file layout.
All simulation happens in :mod:`repro.fleet.shard` workers; nothing
here draws randomness or touches simulated time, which is why this
module (and the campaign/manifest/report plumbing) sits outside
reprolint's sim scope while ``workload``/``shard`` sit inside it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.fleet.campaign import (
    DEFAULT_SCHEMES,
    FleetConfig,
    plan_shards,
    run_fleet,
)
from repro.fleet.manifest import ManifestMismatch
from repro.fleet.report import (
    aggregate,
    aggregate_digest,
    campaign_report,
    load_campaign,
    report_table,
)
from repro.fleet.workload import WorkloadConfig
from repro.stats.streaming import LogHistogram


def _manifest_path(out_dir: str) -> Path:
    return Path(out_dir) / "manifest.jsonl"


class _Progress:
    """Streaming one-line-per-shard progress with running percentiles."""

    def __init__(self, total: int, already_done: int, quiet: bool):
        self.total = total
        self.done = already_done
        self.quiet = quiet
        self.fct: Optional[LogHistogram] = None

    def __call__(self, shard: Dict[str, Any]) -> None:
        self.done += 1
        fct = LogHistogram.from_dict(shard["digests"]["fct_s"])
        if self.fct is None:
            self.fct = fct
        else:
            self.fct.merge(fct)
        if self.quiet:
            return
        flows = shard["flows"]
        if self.fct.count:
            p50 = self.fct.quantile(50) * 1e3
            p99 = self.fct.quantile(99) * 1e3
            running = f"running fct p50={p50:8.1f}ms p99={p99:9.1f}ms"
        else:
            running = "running fct (no completed flows yet)"
        print(f"[{self.done:>4}/{self.total}] "
              f"shard{shard['shard_id']:04d} {shard['scheme']:<18} "
              f"flows {flows['completed']:>5}/{flows['started']:<5} "
              f"{running}", flush=True)


def _config_from_args(args: argparse.Namespace) -> FleetConfig:
    workload = WorkloadConfig(
        arrival=args.arrival,
        mean_arrival_hz=args.arrival_hz,
        duration_s=args.duration,
        diurnal_amplitude=args.diurnal_amplitude,
        diurnal_period_s=args.diurnal_period,
        size_dist=args.size_dist,
        size_median_bytes=args.size_median,
        size_sigma=args.size_sigma,
        n_users=args.users,
    )
    return FleetConfig(
        schemes=tuple(s.strip() for s in args.schemes.split(",") if s.strip()),
        shards_per_scheme=args.shards,
        seed=args.seed,
        workload=workload,
        rate_bps=args.rate_mbps * 1e6,
        uplink_rate_bps=args.uplink_mbps * 1e6,
        rtt_s=args.rtt_ms / 1e3,
        drain_s=args.drain,
        max_active=args.max_active,
        phy=args.phy,
        power=args.power,
    )


def _execute(config: FleetConfig, args: argparse.Namespace,
             resumed: bool) -> int:
    manifest = _manifest_path(args.out)
    specs = plan_shards(config)
    try:
        from repro.fleet.manifest import ShardManifest
        _, done = ShardManifest(manifest).load()
    except ManifestMismatch as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not args.quiet:
        expected = config.total_flows_expected()
        mode = "resuming" if resumed or done else "starting"
        print(f"{mode} campaign {config.fingerprint()[:16]}: "
              f"{len(specs)} shards ({len(done)} already done), "
              f"~{expected:,.0f} flows expected, jobs={args.jobs}",
              flush=True)
    progress = _Progress(len(specs), len(done), args.quiet)
    try:
        outcome = run_fleet(
            config, manifest,
            jobs=args.jobs,
            max_shards=args.max_shards,
            timeout_s=args.timeout,
            on_shard=progress,
        )
    except ManifestMismatch as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for failure in outcome.failed:
        print(f"shard failed: {failure}", file=sys.stderr)
    if outcome.complete:
        _render_report(manifest, args)
        return 0
    if not args.quiet:
        remaining = outcome.total_shards - outcome.skipped - outcome.ran
        print(f"campaign incomplete: {remaining} shards remaining "
              f"({len(outcome.failed)} failed); "
              f"re-run `repro.fleet resume --out {args.out}` to continue",
              flush=True)
    return 1 if outcome.failed else 0


def _render_report(manifest: Path, args: argparse.Namespace) -> None:
    report = campaign_report(manifest)
    if getattr(args, "json", False):
        print(json.dumps(report, indent=2, sort_keys=True))
        return
    if not args.quiet:
        print()
    report_table(report).show()
    save = getattr(args, "save", None)
    if save:
        Path(save).parent.mkdir(parents=True, exist_ok=True)
        Path(save).write_text(json.dumps(report, indent=2, sort_keys=True)
                              + "\n")
        if not args.quiet:
            print(f"report saved to {save}")


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------

def cmd_run(args: argparse.Namespace) -> int:
    return _execute(_config_from_args(args), args, resumed=False)


def cmd_resume(args: argparse.Namespace) -> int:
    manifest = _manifest_path(args.out)
    try:
        config, _ = load_campaign(manifest)
    except (ManifestMismatch, FileNotFoundError) as exc:
        print(f"error: cannot resume: {exc}", file=sys.stderr)
        return 2
    return _execute(config, args, resumed=True)


def cmd_report(args: argparse.Namespace) -> int:
    manifest = _manifest_path(args.out)
    try:
        report = campaign_report(manifest)
    except (ManifestMismatch, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.check_complete and report["missing_shards"]:
        print(f"error: campaign incomplete, missing shards "
              f"{report['missing_shards']}", file=sys.stderr)
        return 1
    _render_report(manifest, args)
    return 0


def cmd_digest(args: argparse.Namespace) -> int:
    """Print only the aggregate digest (CI resume-equality check)."""
    manifest = _manifest_path(args.out)
    try:
        _, shards = load_campaign(manifest)
    except (ManifestMismatch, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(aggregate_digest(aggregate(shards.values())))
    return 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------

def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--out", required=True,
                        help="campaign directory (manifest.jsonl lives here)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress lines")


def _add_exec(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1)")
    parser.add_argument("--max-shards", type=int, default=None,
                        help="stop after running N new shards "
                             "(deterministic interruption for testing)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-shard timeout in seconds")
    parser.add_argument("--json", action="store_true",
                        help="print the final report as JSON")
    parser.add_argument("--save", default=None,
                        help="also write the JSON report to this path")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Fleet-scale edge simulation campaigns "
                    "(TACK vs ACK schemes under user churn)")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="start (or resume) a campaign")
    _add_common(run)
    _add_exec(run)
    run.add_argument("--schemes", default=",".join(DEFAULT_SCHEMES),
                     help="comma-separated scheme list")
    run.add_argument("--shards", type=int, default=4,
                     help="shards (APs) per scheme")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--arrival", choices=("poisson", "onoff"),
                     default="poisson")
    run.add_argument("--arrival-hz", type=float, default=50.0,
                     help="mean flow arrivals per second per shard")
    run.add_argument("--duration", type=float, default=30.0,
                     help="arrival window per shard, seconds")
    run.add_argument("--diurnal-amplitude", type=float, default=0.0)
    run.add_argument("--diurnal-period", type=float, default=60.0)
    run.add_argument("--size-dist", choices=("lognormal", "pareto"),
                     default="lognormal")
    run.add_argument("--size-median", type=int, default=50_000)
    run.add_argument("--size-sigma", type=float, default=1.2)
    run.add_argument("--users", type=int, default=50,
                     help="on/off user population per shard")
    run.add_argument("--rate-mbps", type=float, default=100.0,
                     help="AP downlink rate")
    run.add_argument("--uplink-mbps", type=float, default=20.0,
                     help="AP uplink (ACK path) rate")
    run.add_argument("--rtt-ms", type=float, default=30.0)
    run.add_argument("--drain", type=float, default=10.0,
                     help="grace period after the arrival window, seconds")
    run.add_argument("--max-active", type=int, default=2048)
    run.add_argument("--phy", default="802.11n",
                     help="PHY profile for the ACK airtime ledger")
    run.add_argument("--power", default="wavelan",
                     help="radio power model for the energy ledger "
                          "(wavelan, wavelan-psm)")
    run.set_defaults(fn=cmd_run)

    resume = sub.add_parser(
        "resume", help="continue an interrupted campaign from its manifest")
    _add_common(resume)
    _add_exec(resume)
    resume.set_defaults(fn=cmd_resume)

    report = sub.add_parser("report", help="aggregate and print a campaign")
    _add_common(report)
    report.add_argument("--json", action="store_true")
    report.add_argument("--save", default=None)
    report.add_argument("--check-complete", action="store_true",
                        help="fail if any planned shard is missing")
    report.set_defaults(fn=cmd_report)

    digest = sub.add_parser(
        "digest", help="print the campaign's aggregate digest")
    _add_common(digest)
    digest.set_defaults(fn=cmd_digest)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)
