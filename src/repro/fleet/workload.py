"""Workload generation for fleet-scale edge simulation.

A busy access point does not serve a handful of infinite bulk flows —
it serves a churning population of users whose flows arrive in bursts,
whose sizes are heavy-tailed, and whose aggregate intensity follows the
time of day.  This module generates that population as a lazy stream of
:class:`FlowSpec` records so a shard never materializes its whole flow
list.

Determinism: every sampling decision draws from an explicitly supplied
``random.Random`` (or per-user generators forked from it with labeled
seeds, the same recipe as ``Simulator.fork_rng``) — reprolint's
REP002/REP008 rules apply to this module, and simsan-reproducibility
depends on it.

Two arrival processes are provided:

* ``poisson`` — a (possibly non-homogeneous) Poisson process.  The
  diurnal load curve modulates the instantaneous rate; generation uses
  Lewis-Shedler thinning against the peak rate so the sample path is
  exact, not binned.
* ``onoff`` — a fixed population of users, each alternating log-normal
  ON and OFF periods; during ON periods a user launches flows at its
  own Poisson rate.  This produces the session-burst correlation
  structure a pure Poisson stream lacks.

Flow sizes come from a log-normal (web/CDN-style) or bounded Pareto
(archival/heavy-tail) distribution, clamped to ``[min_bytes,
max_bytes]``.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional


class FlowSpec:
    """One planned flow: when it starts and how many bytes it carries."""

    __slots__ = ("index", "start_s", "size_bytes")

    def __init__(self, index: int, start_s: float, size_bytes: int):
        self.index = index
        self.start_s = start_s
        self.size_bytes = size_bytes

    def __repr__(self) -> str:
        return (f"FlowSpec(#{self.index}, t={self.start_s:.3f}s, "
                f"{self.size_bytes}B)")


@dataclass
class WorkloadConfig:
    """Parameters of one shard's offered traffic.

    ``mean_arrival_hz`` is the *time-averaged* flow arrival rate; the
    diurnal curve redistributes it over the period without changing the
    mean.  ``diurnal_amplitude`` of 0 disables modulation; 1.0 swings
    the instantaneous rate between 0 and twice the mean over
    ``diurnal_period_s`` (a compressed "day" — fleet campaigns default
    to a short period so a few simulated minutes still sweep through
    peak and trough).
    """

    arrival: str = "poisson"              # "poisson" | "onoff"
    mean_arrival_hz: float = 50.0
    duration_s: float = 30.0
    # diurnal modulation (applies to both arrival processes)
    diurnal_amplitude: float = 0.0        # 0..1
    diurnal_period_s: float = 60.0
    # flow sizes
    size_dist: str = "lognormal"          # "lognormal" | "pareto"
    size_median_bytes: int = 50_000
    size_sigma: float = 1.2               # log-normal shape (natural log)
    pareto_alpha: float = 1.3             # bounded-Pareto tail index
    min_bytes: int = 1_500
    max_bytes: int = 20_000_000
    # on/off user population ("onoff" arrivals only)
    n_users: int = 50
    user_on_median_s: float = 8.0
    user_off_median_s: float = 12.0
    user_onoff_sigma: float = 0.8

    def __post_init__(self) -> None:
        if self.arrival not in ("poisson", "onoff"):
            raise ValueError(f"unknown arrival process {self.arrival!r}")
        if self.size_dist not in ("lognormal", "pareto"):
            raise ValueError(f"unknown size distribution {self.size_dist!r}")
        if self.mean_arrival_hz <= 0:
            raise ValueError("mean_arrival_hz must be positive")
        if not 0.0 <= self.diurnal_amplitude <= 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1]")
        if self.min_bytes < 1 or self.max_bytes < self.min_bytes:
            raise ValueError("need 1 <= min_bytes <= max_bytes")

    # ------------------------------------------------------------------
    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at time ``t`` (diurnal curve).

        A raised sinusoid starting at the trough, so short smoke runs
        see the ramp-up rather than starting at peak load.
        """
        if self.diurnal_amplitude == 0.0:
            return self.mean_arrival_hz
        phase = 2.0 * math.pi * t / self.diurnal_period_s
        return self.mean_arrival_hz * (
            1.0 - self.diurnal_amplitude * math.cos(phase))

    def mean_size_bytes(self) -> float:
        """Expected flow size implied by the size distribution (used to
        translate an offered-load target into an arrival rate)."""
        if self.size_dist == "lognormal":
            mu = math.log(self.size_median_bytes)
            raw = math.exp(mu + self.size_sigma ** 2 / 2.0)
        else:
            a = self.pareto_alpha
            lo, hi = float(self.size_median_bytes), float(self.max_bytes)
            if a == 1.0:
                raw = lo * math.log(hi / lo) / (1.0 - lo / hi)
            else:
                raw = (a * lo / (a - 1.0)) * (
                    (1.0 - (lo / hi) ** (a - 1.0))
                    / (1.0 - (lo / hi) ** a)) if hi > lo else lo
        return min(max(raw, float(self.min_bytes)), float(self.max_bytes))

    def offered_load_bps(self) -> float:
        """Time-averaged offered load implied by rate x mean size."""
        return self.mean_arrival_hz * self.mean_size_bytes() * 8.0

    def to_dict(self) -> Dict[str, Any]:
        return {f: getattr(self, f) for f in self.__dataclass_fields__}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WorkloadConfig":
        known = {k: v for k, v in data.items() if k in cls.__dataclass_fields__}
        return cls(**known)


# ----------------------------------------------------------------------
# flow sizes
# ----------------------------------------------------------------------

def sample_flow_size(cfg: WorkloadConfig, rng: random.Random) -> int:
    """Draw one flow size in bytes from the configured distribution."""
    if cfg.size_dist == "lognormal":
        mu = math.log(cfg.size_median_bytes)
        size = rng.lognormvariate(mu, cfg.size_sigma)
    else:
        # Bounded Pareto via inverse transform on [median, max].
        a = cfg.pareto_alpha
        lo, hi = float(cfg.size_median_bytes), float(cfg.max_bytes)
        u = rng.random()
        if hi <= lo:
            size = lo
        else:
            ratio = (lo / hi) ** a
            size = lo / (1.0 - u * (1.0 - ratio)) ** (1.0 / a)
    return int(min(max(size, cfg.min_bytes), cfg.max_bytes))


# ----------------------------------------------------------------------
# arrival processes
# ----------------------------------------------------------------------

def _poisson_arrivals(cfg: WorkloadConfig,
                      rng: random.Random) -> Iterator[float]:
    """Non-homogeneous Poisson via Lewis-Shedler thinning."""
    peak_hz = cfg.mean_arrival_hz * (1.0 + cfg.diurnal_amplitude)
    t = 0.0
    while True:
        t += rng.expovariate(peak_hz)
        if t >= cfg.duration_s:
            return
        if rng.random() * peak_hz <= cfg.rate_at(t):
            yield t


@dataclass(order=True)
class _UserEvent:
    time_s: float
    user: int = field(compare=False)
    kind: str = field(compare=False)      # "flow" | "toggle"


def _onoff_arrivals(cfg: WorkloadConfig,
                    rng: random.Random) -> Iterator[float]:
    """Merged arrival stream of ``n_users`` independent on/off users.

    Each user gets its own labeled RNG forked from ``rng`` so adding a
    user never perturbs the others' sample paths.  The per-user flow
    rate is scaled so the population's time-averaged rate matches
    ``mean_arrival_hz`` (accounting for the expected ON duty cycle).
    """
    if cfg.n_users < 1:
        raise ValueError("onoff arrivals need n_users >= 1")
    mu_on = math.log(cfg.user_on_median_s)
    mu_off = math.log(cfg.user_off_median_s)
    sigma = cfg.user_onoff_sigma
    mean_on = math.exp(mu_on + sigma ** 2 / 2.0)
    mean_off = math.exp(mu_off + sigma ** 2 / 2.0)
    duty = mean_on / (mean_on + mean_off)
    # Over-drive the per-user rate by the diurnal peak factor, then
    # thin each candidate by rate_at/peak below — the accepted stream
    # keeps the target time-averaged rate while following the curve.
    peak_factor = 1.0 + cfg.diurnal_amplitude
    user_rate_hz = cfg.mean_arrival_hz * peak_factor / (cfg.n_users * duty)

    rngs = [random.Random(f"{rng.random()}-user{i}")
            for i in range(cfg.n_users)]
    heap: list[_UserEvent] = []
    # Stagger session starts uniformly over one OFF period so the
    # population does not toggle in lockstep.
    on_until: list[float] = [0.0] * cfg.n_users
    for i, urng in enumerate(rngs):
        first_on = urng.random() * mean_off
        heapq.heappush(heap, _UserEvent(first_on, i, "toggle"))

    while heap:
        ev = heapq.heappop(heap)
        if ev.time_s >= cfg.duration_s:
            continue
        urng = rngs[ev.user]
        if ev.kind == "toggle":
            # Session begins: draw its length, schedule first flow and
            # the next session start.
            on_s = urng.lognormvariate(mu_on, sigma)
            off_s = urng.lognormvariate(mu_off, sigma)
            on_until[ev.user] = ev.time_s + on_s
            heapq.heappush(heap, _UserEvent(ev.time_s + on_s + off_s,
                                            ev.user, "toggle"))
            gap = urng.expovariate(user_rate_hz)
            heapq.heappush(heap, _UserEvent(ev.time_s + gap, ev.user, "flow"))
        else:
            if ev.time_s < on_until[ev.user]:
                # Diurnal thinning on top of the session process.
                if (urng.random() * peak_factor * cfg.mean_arrival_hz
                        <= cfg.rate_at(ev.time_s)):
                    yield ev.time_s
                gap = urng.expovariate(user_rate_hz)
                heapq.heappush(heap, _UserEvent(ev.time_s + gap,
                                                ev.user, "flow"))
            # Flows scheduled past the session end are dropped; the
            # next session's toggle restarts the per-user clock.


def generate_flows(cfg: WorkloadConfig,
                   rng: random.Random,
                   start_index: int = 0) -> Iterator[FlowSpec]:
    """Lazy stream of this shard's flows, in start-time order.

    The generator holds O(n_users) state, never the whole flow list;
    fleet shards pull one arrival at a time and schedule the next pull
    as a simulator event, keeping memory flat at any campaign size.
    """
    arrivals = (_poisson_arrivals(cfg, rng) if cfg.arrival == "poisson"
                else _onoff_arrivals(cfg, rng))
    index = start_index
    for t in arrivals:
        yield FlowSpec(index, t, sample_flow_size(cfg, rng))
        index += 1
