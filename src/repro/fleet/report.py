"""Campaign aggregation and reporting.

Merges shard summaries out of a manifest into per-scheme aggregates.
Two rules make the result *reproducible across interruptions*:

* shards merge in **shard-id order**, never completion order, and
* every mergeable quantity is either an integer counter, an
  :class:`~repro.stats.streaming.ExactSum`, or a digest with exact
  merge semantics (:class:`~repro.stats.streaming.LogHistogram`,
  :class:`~repro.stats.streaming.BottomKReservoir`).

So the aggregate — and therefore :func:`aggregate_digest`, the sha256
over its canonical JSON — is a pure function of the *set* of shard
results, and a resumed campaign reproduces the uninterrupted run's
digest bit-for-bit.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterable, List, Optional

from repro.diagnose import ALL_STATES as DIAG_STATES
from repro.energy import TOTAL_KEYS as ENERGY_TOTAL_KEYS
from repro.experiments.table import Table
from repro.fleet.campaign import FleetConfig, plan_shards
from repro.fleet.manifest import ManifestMismatch, ShardManifest, canonical_json
from repro.stats.streaming import BottomKReservoir, ExactSum, LogHistogram

#: Integer energy counters folded across shards (plain int sums).
ENERGY_COUNT_KEYS = ("data_pkts", "ack_pkts", "feedback_bytes")


class SchemeAggregate:
    """Everything the campaign knows about one scheme, merged."""

    def __init__(self, scheme: str):
        self.scheme = scheme
        self.shards = 0
        self.flows_started = 0
        self.flows_completed = 0
        self.flows_aborted = 0
        self.flows_guard_aborted = 0
        self.flows_unfinished = 0
        self.bytes_offered = 0
        self.bytes_delivered = 0
        self.data_packets = 0
        self.retransmissions = 0
        self.ack_packets = 0
        self.up_bytes = 0
        self.measure_s = ExactSum()
        self.ack_airtime_s = ExactSum()
        self.uplink_serialization_s = ExactSum()
        # energy ledger totals: ExactSum partials merge so the fold is
        # order-insensitive in value; shards lacking an "energy" block
        # (pre-ledger manifests) simply don't contribute.
        self.energy = {k: ExactSum() for k in ENERGY_TOTAL_KEYS}
        self.energy_counts = {k: 0 for k in ENERGY_COUNT_KEYS}
        self.energy_shards = 0
        # flow-doctor attribution: per-state time folds as ExactSum
        # partials (order-insensitive in value); shards predating the
        # doctor simply lack the "diagnosis" block and don't contribute.
        self.diag_state_time = {s: ExactSum() for s in DIAG_STATES}
        self.diag_state_bytes = {s: 0 for s in DIAG_STATES}
        self.diag_anomalies: Dict[str, int] = {}
        self.diag_flows = 0
        self.diag_shards = 0
        self.fct_hist: Optional[LogHistogram] = None
        self.goodput_hist: Optional[LogHistogram] = None
        self.samples: Optional[BottomKReservoir] = None

    def fold(self, shard: Dict[str, Any]) -> None:
        """Merge one shard summary (call in shard-id order)."""
        flows, by, pk = shard["flows"], shard["bytes"], shard["packets"]
        self.shards += 1
        self.flows_started += flows["started"]
        self.flows_completed += flows["completed"]
        self.flows_aborted += flows["aborted"]
        # .get(): shard summaries predating the feedback guard carry
        # no guard_aborted count and contribute zero.
        self.flows_guard_aborted += flows.get("guard_aborted", 0)
        self.flows_unfinished += flows["unfinished"]
        self.bytes_offered += by["offered"]
        self.bytes_delivered += by["delivered"]
        self.data_packets += pk["data"]
        self.retransmissions += pk["retransmissions"]
        self.ack_packets += pk["acks"]
        self.up_bytes += shard["links"]["up_delivered_bytes"]
        self.measure_s.add(shard["elapsed_s"])
        self.ack_airtime_s.add(shard["airtime"]["ack_airtime_s"])
        self.uplink_serialization_s.add(
            shard["airtime"]["uplink_serialization_s"])
        energy = shard.get("energy")
        if energy is not None:
            self.energy_shards += 1
            partials = energy.get("partials", {})
            for key in ENERGY_TOTAL_KEYS:
                part = partials.get(key)
                if part is not None:
                    self.energy[key].merge(ExactSum(part["partials"]))
                else:
                    self.energy[key].add(energy.get(key, 0.0))
            for key in ENERGY_COUNT_KEYS:
                self.energy_counts[key] += energy.get(key, 0)
        diagnosis = shard.get("diagnosis")
        if diagnosis is not None:
            self.diag_shards += 1
            self.diag_flows += diagnosis.get("flows", 0)
            partials = diagnosis.get("state_time_partials", {})
            for state in DIAG_STATES:
                part = partials.get(state)
                if part is not None:
                    self.diag_state_time[state].merge(ExactSum(part))
                self.diag_state_bytes[state] += \
                    diagnosis.get("state_bytes", {}).get(state, 0)
            for kind, count in diagnosis.get("anomalies", {}).items():
                self.diag_anomalies[kind] = (
                    self.diag_anomalies.get(kind, 0) + count)
        digests = shard["digests"]
        fct = LogHistogram.from_dict(digests["fct_s"])
        goodput = LogHistogram.from_dict(digests["flow_goodput_bps"])
        samples = BottomKReservoir.from_dict(digests["samples"])
        if self.fct_hist is None:
            self.fct_hist, self.goodput_hist, self.samples = fct, goodput, samples
        else:
            self.fct_hist.merge(fct)
            self.goodput_hist.merge(goodput)
            self.samples.merge(samples)

    # ------------------------------------------------------------------
    def goodput_bps(self) -> float:
        """Aggregate goodput per AP: delivered bits over measured time."""
        t = self.measure_s.value()
        return self.bytes_delivered * 8.0 * self.shards / t if t > 0 else 0.0

    def ack_per_data(self) -> float:
        return self.ack_packets / self.data_packets if self.data_packets else 0.0

    def ack_airtime_share(self) -> float:
        """Fraction of measured airtime spent on uplink ACK exchanges."""
        t = self.measure_s.value()
        return self.ack_airtime_s.value() / t if t > 0 else 0.0

    def ack_energy_j(self) -> float:
        """Total joules spent on ACK-like packets (ledger-exact)."""
        return self.energy["ack_energy_j"].value()

    def energy_ack_airtime_share(self) -> float:
        """ACK share of busy airtime as billed by the energy ledger."""
        ack = self.energy["ack_airtime_s"].value()
        busy = ack + self.energy["data_airtime_s"].value()
        return ack / busy if busy > 0 else 0.0

    def state_time_fractions(self) -> Dict[str, float]:
        """Fraction of diagnosed flow-lifetime spent in each state."""
        totals = {s: self.diag_state_time[s].value() for s in DIAG_STATES}
        whole = sum(totals.values())
        if whole <= 0:
            return {}
        return {s: totals[s] / whole for s in DIAG_STATES if totals[s] > 0}

    def top_state(self) -> Optional[str]:
        """Dominant send-limit state across the scheme's flows, by time
        (excluding the post-completion ``closing`` tail)."""
        fractions = {s: f for s, f in self.state_time_fractions().items()
                     if s != "closing"}
        if not fractions:
            return None
        return max(fractions, key=lambda s: (fractions[s], s))

    def fct_quantile_s(self, pct: float) -> Optional[float]:
        if self.fct_hist is None or self.fct_hist.count == 0:
            return None
        return self.fct_hist.quantile(pct)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scheme": self.scheme,
            "shards": self.shards,
            "flows": {
                "started": self.flows_started,
                "completed": self.flows_completed,
                "aborted": self.flows_aborted,
                "guard_aborted": self.flows_guard_aborted,
                "unfinished": self.flows_unfinished,
            },
            "bytes": {
                "offered": self.bytes_offered,
                "delivered": self.bytes_delivered,
            },
            "packets": {
                "data": self.data_packets,
                "retransmissions": self.retransmissions,
                "acks": self.ack_packets,
            },
            "uplink_bytes": self.up_bytes,
            "measure_s_partials": list(self.measure_s._partials),
            "ack_airtime_s_partials": list(self.ack_airtime_s._partials),
            "uplink_serialization_s_partials":
                list(self.uplink_serialization_s._partials),
            "energy": {
                "shards": self.energy_shards,
                "partials": {k: list(self.energy[k]._partials)
                             for k in ENERGY_TOTAL_KEYS},
                "counts": dict(self.energy_counts),
            },
            "diagnosis": {
                "shards": self.diag_shards,
                "flows": self.diag_flows,
                "state_time_partials": {
                    s: list(self.diag_state_time[s]._partials)
                    for s in DIAG_STATES},
                "state_bytes": dict(self.diag_state_bytes),
                "anomalies": {k: self.diag_anomalies[k]
                              for k in sorted(self.diag_anomalies)},
            },
            "fct_s": self.fct_hist.to_dict() if self.fct_hist else None,
            "flow_goodput_bps":
                self.goodput_hist.to_dict() if self.goodput_hist else None,
            "samples": self.samples.to_dict() if self.samples else None,
        }


def aggregate(shards: Iterable[Dict[str, Any]]) -> Dict[str, SchemeAggregate]:
    """Fold shard summaries into per-scheme aggregates, shard-id order."""
    by_scheme: Dict[str, SchemeAggregate] = {}
    for shard in sorted(shards, key=lambda s: s["shard_id"]):
        agg = by_scheme.setdefault(shard["scheme"],
                                   SchemeAggregate(shard["scheme"]))
        agg.fold(shard)
    return by_scheme


def aggregate_digest(by_scheme: Dict[str, SchemeAggregate]) -> str:
    """Content hash of the merged campaign state.

    Equal digests mean equal aggregates down to the last float — the
    resume-correctness check in CI compares this between an
    interrupted-and-resumed campaign and an uninterrupted one.
    """
    payload = {name: agg.to_dict() for name, agg in sorted(by_scheme.items())}
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


# ----------------------------------------------------------------------
# manifest-level entry points
# ----------------------------------------------------------------------

def load_campaign(manifest_path):
    """Read a manifest back: ``(config, {shard_id: result})``."""
    header, shards = ShardManifest(manifest_path).load()
    if header is None:
        raise ManifestMismatch(f"{manifest_path}: no manifest header found")
    return FleetConfig.from_dict(header["config"]), shards


def campaign_report(manifest_path) -> Dict[str, Any]:
    """Aggregate a manifest into the report payload the CLI renders."""
    config, shards = load_campaign(manifest_path)
    planned = plan_shards(config)
    missing = [s.shard_id for s in planned if s.shard_id not in shards]
    by_scheme = aggregate(shards.values())
    schemes = []
    for name in config.schemes:
        agg = by_scheme.get(name)
        if agg is None:
            continue
        schemes.append({
            "scheme": name,
            "shards": agg.shards,
            "flows_completed": agg.flows_completed,
            "flows_started": agg.flows_started,
            "flows_aborted": agg.flows_aborted,
            "flows_guard_aborted": agg.flows_guard_aborted,
            "goodput_mbps": agg.goodput_bps() / 1e6,
            "fct_p50_s": agg.fct_quantile_s(50),
            "fct_p95_s": agg.fct_quantile_s(95),
            "fct_p99_s": agg.fct_quantile_s(99),
            "ack_per_data": agg.ack_per_data(),
            "ack_airtime_share": agg.ack_airtime_share(),
            "ack_energy_j": agg.ack_energy_j(),
            "energy_ack_airtime_share": agg.energy_ack_airtime_share(),
            "top_state": agg.top_state(),
            "state_time_frac": agg.state_time_fractions(),
            "anomalies": {k: agg.diag_anomalies[k]
                          for k in sorted(agg.diag_anomalies)},
        })
    return {
        "fingerprint": config.fingerprint(),
        "config": config.to_dict(),
        "planned_shards": len(planned),
        "completed_shards": len(shards),
        "missing_shards": missing,
        "aggregate_digest": aggregate_digest(by_scheme),
        "schemes": schemes,
    }


def report_table(report: Dict[str, Any]) -> Table:
    """Render a campaign report as the repo's standard table."""
    table = Table(
        title="Fleet campaign: TACK vs ACK schemes under churn",
        columns=["scheme", "shards", "flows", "goodput_mbps",
                 "fct_p50_ms", "fct_p99_ms", "ack_per_data",
                 "ack_airtime_%", "ack_energy_j", "ack_airtime_share",
                 "guard_aborts", "top_state"],
        note=(f"digest {report['aggregate_digest'][:16]} | "
              f"{report['completed_shards']}/{report['planned_shards']} "
              "shards | airtime % is uplink ACK DCF exchanges per "
              "measured second; ack_energy_j / ack_airtime_share come "
              "from the per-flow radio energy ledger; top_state is the "
              "flow doctor's dominant send-limit state by time; "
              "guard_aborts counts flows the feedback guard ended "
              "with misbehaving_peer"),
    )
    for row in report["schemes"]:
        table.add_row(
            scheme=row["scheme"],
            shards=row["shards"],
            flows=row["flows_completed"],
            goodput_mbps=row["goodput_mbps"],
            fct_p50_ms=(row["fct_p50_s"] * 1e3
                        if row["fct_p50_s"] is not None else None),
            fct_p99_ms=(row["fct_p99_s"] * 1e3
                        if row["fct_p99_s"] is not None else None),
            ack_per_data=row["ack_per_data"],
            ack_energy_j=row["ack_energy_j"],
            ack_airtime_share=row["energy_ack_airtime_share"],
            guard_aborts=row.get("flows_guard_aborted", 0),
            top_state=row.get("top_state"),
            **{"ack_airtime_%": row["ack_airtime_share"] * 100.0},
        )
    return table


def merge_scheme_digest_order_check(shards: List[Dict[str, Any]]) -> bool:
    """True when aggregation is order-insensitive for these shards
    (sanity helper used by tests)."""
    forward = aggregate_digest(aggregate(shards))
    backward = aggregate_digest(aggregate(list(reversed(shards))))
    return forward == backward
