"""Append-only shard manifest: the campaign's durable progress log.

Fleet campaigns run for a long time and die for boring reasons (ssh
drop, OOM killer, ctrl-C).  Rather than checkpointing state, the
campaign streams each finished shard's summary to a JSONL manifest —
header line first, one ``shard`` line per result, each line flushed
and fsync'd before the campaign acknowledges the shard.  Resume is
then trivial: reload the manifest, skip every shard already present,
run the rest.  Because shard summaries carry exactly-mergeable digests
(:mod:`repro.stats.streaming`) and reports merge them in shard-id
order, a resumed campaign's final aggregate is **byte-identical** to
an uninterrupted run's — the CI ``fleet-smoke`` job asserts this.

Crash tolerance: a kill mid-write leaves at most one truncated tail
line, which :meth:`ShardManifest.load` drops (and the next append
rewrites cleanly, because the writer re-opens in append mode after
truncating the partial line).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

MANIFEST_VERSION = 1


class ManifestMismatch(RuntimeError):
    """The manifest on disk belongs to a different campaign config."""


def canonical_json(obj: Any) -> str:
    """The one JSON rendering used for fingerprints and digests."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class ShardManifest:
    """Reader/writer for one campaign's append-only shard log."""

    def __init__(self, path: "str | os.PathLike[str]"):
        self.path = Path(path)
        self._fh = None

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def load(self) -> Tuple[Optional[Dict[str, Any]], Dict[int, Dict[str, Any]]]:
        """Parse the manifest, returning ``(header, {shard_id: result})``.

        Missing file -> ``(None, {})``.  A truncated final line (the
        signature of a mid-write kill) is dropped; a malformed line
        anywhere *else* raises, because that means corruption rather
        than interruption.
        """
        if not self.path.exists():
            return None, {}
        header: Optional[Dict[str, Any]] = None
        shards: Dict[int, Dict[str, Any]] = {}
        raw = self.path.read_bytes().decode("utf-8", errors="replace")
        lines = raw.split("\n")
        # A well-formed file ends with "\n", so the final split element
        # is empty; anything else is a partial tail write.
        tail_partial = lines and lines[-1] != ""
        body = lines[:-1]
        for lineno, line in enumerate(body, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ManifestMismatch(
                    f"{self.path}:{lineno}: corrupt manifest line: {exc}"
                ) from None
            kind = record.get("kind")
            if kind == "header":
                if header is not None:
                    raise ManifestMismatch(
                        f"{self.path}:{lineno}: duplicate header")
                header = record
            elif kind == "shard":
                result = record["result"]
                shards[int(result["shard_id"])] = result
            # Unknown kinds are skipped so future versions can add
            # annotation records without breaking old readers.
        if tail_partial:
            # Drop the partial line on disk so the next append starts
            # at a line boundary.
            keep = len(raw) - len(lines[-1])
            with open(self.path, "r+", encoding="utf-8") as fh:
                fh.truncate(keep)
        return header, shards

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def _append_line(self, record: Dict[str, Any]) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(canonical_json(record) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def ensure_header(self, fingerprint: str,
                      config: Dict[str, Any]) -> Dict[int, Dict[str, Any]]:
        """Open (or adopt) the manifest for a campaign.

        A fresh manifest gets a header line; an existing one must carry
        the same config fingerprint — resuming under a different config
        would merge incomparable digests, so that raises
        :class:`ManifestMismatch` instead.  Returns the shard results
        already on disk (the resume set).
        """
        header, shards = self.load()
        if header is None:
            if shards:
                raise ManifestMismatch(
                    f"{self.path}: shard records but no header")
            self._append_line({
                "kind": "header",
                "version": MANIFEST_VERSION,
                "fingerprint": fingerprint,
                "config": config,
            })
            return {}
        if header.get("fingerprint") != fingerprint:
            raise ManifestMismatch(
                f"{self.path}: manifest belongs to campaign "
                f"{header.get('fingerprint')!r}, not {fingerprint!r}; "
                "use a fresh --out directory or the original config")
        return shards

    def append_shard(self, result: Dict[str, Any]) -> None:
        """Durably record one finished shard (flush + fsync)."""
        self._append_line({"kind": "shard", "result": result})

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ShardManifest":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
