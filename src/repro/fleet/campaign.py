"""Fleet campaign planning and execution.

A campaign is ``schemes x shards_per_scheme`` independent shard
simulations (each a :class:`~repro.fleet.shard.ShardSpec`) executed on
the :mod:`repro.runner` process pool and streamed into a
:class:`~repro.fleet.manifest.ShardManifest`.  Shard seeds derive from
``(campaign seed, shard name)`` via :func:`repro.runner.task.derive_seed`,
so results are independent of worker scheduling and of how many times
the campaign was interrupted and resumed.

The campaign *fingerprint* — sha256 over the canonical JSON of the
config — names the exact experiment; the manifest refuses to mix
shards from different fingerprints.  Host-side execution knobs (job
count, shard cap per invocation) are deliberately **not** part of the
fingerprint: running with ``--jobs 1`` or ``--jobs 32`` is the same
experiment.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.fleet.manifest import ShardManifest, canonical_json
from repro.fleet.shard import ShardSpec, run_shard
from repro.fleet.workload import WorkloadConfig
from repro.runner.pool import execute_tasks
from repro.runner.task import Task, TaskResult, derive_seed

DEFAULT_SCHEMES = ("tcp-tack", "tcp-bbr", "tcp-bbr-perpacket")


@dataclass
class FleetConfig:
    """One fleet experiment: which schemes, how many shards, what load."""

    schemes: tuple = DEFAULT_SCHEMES
    shards_per_scheme: int = 4
    seed: int = 1
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    # per-shard AP parameters (see ShardSpec)
    rate_bps: float = 100e6
    uplink_rate_bps: float = 20e6
    rtt_s: float = 0.03
    drain_s: float = 10.0
    max_active: int = 2048
    phy: str = "802.11n"
    power: str = "wavelan"

    def __post_init__(self) -> None:
        self.schemes = tuple(self.schemes)
        if not self.schemes:
            raise ValueError("need at least one scheme")
        if self.shards_per_scheme < 1:
            raise ValueError("shards_per_scheme must be >= 1")

    def to_dict(self) -> Dict[str, Any]:
        data = {f: getattr(self, f) for f in self.__dataclass_fields__}
        data["schemes"] = list(self.schemes)
        data["workload"] = self.workload.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FleetConfig":
        known = {k: v for k, v in data.items() if k in cls.__dataclass_fields__}
        known["workload"] = WorkloadConfig.from_dict(data.get("workload", {}))
        return cls(**known)

    def fingerprint(self) -> str:
        """Content address of the experiment (config, not host knobs)."""
        return hashlib.sha256(canonical_json(self.to_dict()).encode()).hexdigest()

    def total_flows_expected(self) -> float:
        return (len(self.schemes) * self.shards_per_scheme
                * self.workload.mean_arrival_hz * self.workload.duration_s)


def plan_shards(config: FleetConfig) -> List[ShardSpec]:
    """Enumerate every shard of the campaign, in shard-id order.

    Shard ids interleave schemes (replica-major) so a truncated run
    (``--max-shards``) still covers every scheme rather than finishing
    one scheme before starting the next.
    """
    specs: List[ShardSpec] = []
    shard_id = 0
    for replica in range(config.shards_per_scheme):
        for scheme in config.schemes:
            name = f"fleet-{scheme}-r{replica:03d}"
            specs.append(ShardSpec(
                shard_id=shard_id,
                scheme=scheme,
                seed=derive_seed(config.seed, name),
                workload=config.workload,
                rate_bps=config.rate_bps,
                uplink_rate_bps=config.uplink_rate_bps,
                rtt_s=config.rtt_s,
                drain_s=config.drain_s,
                max_active=config.max_active,
                phy=config.phy,
                power=config.power,
            ))
            shard_id += 1
    return specs


@dataclass
class CampaignOutcome:
    """What one ``run_fleet`` invocation did."""

    fingerprint: str
    total_shards: int
    skipped: int                      # already in the manifest (resume)
    ran: int
    failed: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return self.skipped + self.ran == self.total_shards and not self.failed


def run_fleet(config: FleetConfig,
              manifest_path,
              jobs: int = 1,
              max_shards: Optional[int] = None,
              timeout_s: Optional[float] = None,
              simsan: Optional[bool] = None,
              on_shard: Optional[Callable[[Dict[str, Any]], None]] = None,
              ) -> CampaignOutcome:
    """Run (or resume) a fleet campaign.

    Shards already present in the manifest are skipped; newly finished
    shards are fsync'd into it before being acknowledged.  Failed
    shards are reported but not recorded, so a re-run retries exactly
    those.  ``max_shards`` caps how many *new* shards this invocation
    runs — the CI smoke test uses it as a deterministic mid-campaign
    "kill" before exercising resume.
    """
    specs = plan_shards(config)
    fingerprint = config.fingerprint()
    with ShardManifest(manifest_path) as manifest:
        done = manifest.ensure_header(fingerprint, config.to_dict())
        remaining = [s for s in specs if s.shard_id not in done]
        todo = (remaining[:max_shards] if max_shards is not None
                else remaining)

        failed: List[str] = []

        def settle(result: TaskResult) -> None:
            if result.ok:
                manifest.append_shard(result.value)
                if on_shard is not None:
                    on_shard(result.value)
            else:
                failed.append(f"{result.name}: {result.failure}")

        tasks = [
            Task(name=spec.name,
                 fn=run_shard,
                 kwargs={"spec": spec.to_dict(), "simsan": simsan},
                 seed=spec.seed)
            for spec in todo
        ]
        results = execute_tasks(tasks, jobs=jobs, timeout=timeout_s,
                                on_result=settle)

    ran = sum(1 for r in results if r.ok)
    return CampaignOutcome(
        fingerprint=fingerprint,
        total_shards=len(specs),
        skipped=len(specs) - len(remaining),
        ran=ran,
        failed=failed,
    )
