"""Reproduction of TACK (SIGCOMM 2020): taming acknowledgments for
wireless transport.

The package is organized bottom-up:

* :mod:`repro.netsim` -- deterministic discrete-event network simulator
  (virtual clock, wired links, loss models, WAN emulator).
* :mod:`repro.wlan` -- IEEE 802.11 DCF medium model with PHY profiles
  for 802.11b/g/n/ac and A-MPDU aggregation.
* :mod:`repro.transport` -- reliable byte-stream transport engine with
  pluggable ACK policies and congestion controllers.
* :mod:`repro.ack` -- acknowledgment policies: per-packet, delayed,
  byte-counting, periodic, and TACK (the paper's contribution).
* :mod:`repro.cc` -- congestion controllers: NewReno, CUBIC, Vegas, BBR,
  and the TACK co-designed receiver-based BBR.
* :mod:`repro.core` -- the TACK protocol proper (TCP-TACK): IACK,
  receiver-based loss detection, OWD round-trip timing, rate sync.
* :mod:`repro.app` -- workloads: bulk flows, the UDP contention tool,
  Miracast-like video, RPC, cross traffic.
* :mod:`repro.stats` -- measurement: time series, percentiles,
  Kleinrock power metric, scheme ranking.
* :mod:`repro.analysis` -- closed-form models of ACK frequency
  (paper Eqs. 1-11) and buffer requirements.
"""

from repro.netsim.engine import Simulator
from repro.version import __version__

__all__ = ["Simulator", "__version__"]
