"""Fig. 5(a): IACK reduces HoLB blockage in the receive buffer.

Randomized trials (loss 0-3%, RTT 1-200 ms, paper S5.1) of TCP-TACK
with and without loss-event IACKs; at every TACK emission the amount
of data blocked behind holes is sampled, and the distribution is
summarized as a CDF table.
"""

from __future__ import annotations

import random

from repro.app.bulk import BulkFlow
from repro.core.params import TackParams
from repro.experiments.table import Table
from repro.netsim.engine import Simulator
from repro.netsim.paths import wired_path
from repro.stats.percentile import percentile


def _trial_samples(enable_iack: bool, seed: int, duration_s: float) -> list[int]:
    """One randomized trial at a FIXED application rate.

    A fixed-rate source (not a greedy bulk flow) keeps the offered
    traffic identical with and without IACK, so the blockage CDF
    isolates repair latency rather than achieved throughput.
    """
    rng = random.Random(seed)
    loss = rng.uniform(0.001, 0.03)
    rtt = rng.uniform(0.005, 0.2)
    app_rate = 10e6
    sim = Simulator(seed=seed)
    path = wired_path(sim, 20e6, rtt, data_loss=loss,
                      queue_bytes=max(int(20e6 * rtt / 8), 30_000))
    params = TackParams(loss_event_iack=enable_iack)
    flow = BulkFlow(sim, path, "tcp-tack", params=params, initial_rtt_s=rtt)
    samples: list[int] = []
    receiver = flow.conn.receiver
    emit = receiver.emit_feedback

    def sampling_emit(kind, fb):
        samples.append(receiver.holb_blocked_bytes())
        emit(kind, fb)

    receiver.emit_feedback = sampling_emit  # type: ignore[method-assign]
    flow.conn.sender.start()
    chunk = 12_500  # bytes per 10 ms tick = 10 Mbps

    def produce():
        flow.conn.sender.write(chunk)
        sim.call_in(chunk * 8 / app_rate, produce)

    produce()
    sim.run(until=duration_s)
    return samples


def run(trials: int = 10, duration_s: float = 8.0, seed: int = 100) -> Table:
    table = Table(
        "Fig. 5(a): data blocked in receive buffer at TACK send times (bytes)",
        ["percentile", "with_iack", "without_iack", "ratio"],
        note=("CDF of HoLB blockage over randomized (loss, RTT) trials; "
              "paper shows IACK shifting the CDF left by orders of magnitude."),
    )
    with_iack: list[int] = []
    without_iack: list[int] = []
    for i in range(trials):
        with_iack.extend(_trial_samples(True, seed + i, duration_s))
        without_iack.extend(_trial_samples(False, seed + i, duration_s))
    for pct in (50, 75, 90, 99):
        w = percentile(with_iack, pct)
        wo = percentile(without_iack, pct)
        table.add_row(
            percentile=f"p{pct}",
            with_iack=w,
            without_iack=wo,
            ratio=(wo / w) if w > 0 else float("inf"),
        )
    return table


if __name__ == "__main__":
    run().show()
