"""Reproduction experiments: one module per paper table/figure.

Each module exposes ``run(...) -> repro.experiments.table.Table`` so
the same logic drives the ``benchmarks/`` harness, the examples, and
ad-hoc exploration.  Durations are parameterized: the defaults are
chosen so the full harness completes in minutes on a laptop while
preserving the paper's qualitative shapes (documented per experiment
in ``EXPERIMENTS.md``).
"""

from repro.experiments.table import Table

__all__ = ["Table"]
