"""Fig. 8: ACK frequency reduction over the 802.11 standards.

(a) analytic delta-f = f_tcp - f_tack per standard and RTT;
(b) absolute frequencies, validated against the *measured* TACK rate
    of a simulated bulk flow.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.analysis.ack_frequency import byte_counting_frequency, tack_frequency
from repro.app.bulk import BulkFlow
from repro.diagnose.live import FlowDoctor
from repro.experiments.table import Table
from repro.netsim.engine import Simulator
from repro.netsim.paths import wired_path, wlan_path
from repro.telemetry import BinaryFileSink, JsonlSink, TraceCollector
from repro.wlan.phy import PHY_PROFILES

# Effective transport-level bandwidths (paper Fig. 7 UDP baselines).
EFFECTIVE_BW = {
    "802.11b": 7e6,
    "802.11g": 26e6,
    "802.11n": 210e6,
    "802.11ac": 590e6,
}


def run_analytic(rtts=(0.01, 0.08, 0.2)) -> Table:
    table = Table(
        "Fig. 8(a): ACK frequency reduction delta-f = f_tcp - f_tack (Hz)",
        ["link", "f_tcp_L2"] + [f"delta_f@{int(r*1e3)}ms" for r in rtts],
    )
    for name, bw in EFFECTIVE_BW.items():
        row = {"link": name, "f_tcp_L2": byte_counting_frequency(bw, 2)}
        for rtt in rtts:
            row[f"delta_f@{int(rtt*1e3)}ms"] = (
                byte_counting_frequency(bw, 2) - tack_frequency(bw, rtt)
            )
        table.add_row(**row)
    return table


def run_measured(rtt_s: float = 0.08, duration_s: float = 5.0,
                 warmup_s: float = 1.0, seed: int = 5) -> Table:
    table = Table(
        "Fig. 8(b) validation: analytic vs measured TACK frequency (Hz)",
        ["link", "analytic_hz", "measured_hz"],
        note=f"Bulk TCP-TACK flow, RTT {rtt_s*1e3:.0f} ms.",
    )
    for name in PHY_PROFILES:
        sim = Simulator(seed=seed)
        path = wlan_path(sim, name, extra_rtt_s=rtt_s)
        flow = BulkFlow(sim, path, "tcp-tack", initial_rtt_s=rtt_s)
        flow.start()
        sim.run(until=warmup_s)
        tacks_at_warmup = flow.conn.receiver.stats.tacks_sent
        sim.run(until=duration_s)
        measured = (
            (flow.conn.receiver.stats.tacks_sent - tacks_at_warmup)
            / (duration_s - warmup_s)
        )
        table.add_row(
            link=name,
            analytic_hz=tack_frequency(EFFECTIVE_BW[name], rtt_s),
            measured_hz=measured,
        )
    return table


def run_traced(trace_path: Optional[str] = None, rate_bps: float = 20e6,
               rtt_s: float = 0.04, duration_s: float = 6.0,
               warmup_s: float = 2.0, seed: int = 7,
               binary: bool = False) -> Table:
    """Fig. 8-style single-link run with full telemetry capture.

    A bulk TCP-TACK flow over a wired bottleneck, traced end to end:
    the trace written to *trace_path* carries every ``ack`` event with
    its emission reason, so the Eq. (3) frequency can be re-derived
    offline from the trace alone (``python -m repro.telemetry
    summarize``).  With ``binary=True`` the trace is written through a
    :class:`BinaryFileSink` instead of JSONL; run ``python -m
    repro.telemetry convert`` on it to get the byte-identical JSONL a
    live ``JsonlSink`` would have produced.  Returns the same
    analytic-vs-measured table as :func:`run_measured` for the one
    link.

    A live flow doctor rides along: when a trace is written, the
    diagnosis report lands next to it at ``<trace_path>.diagnosis.json``
    with the same digest ``python -m repro.diagnose report <trace>``
    computes offline from the trace.
    """
    meta = {
        "experiment": "fig08_traced", "rate_bps": rate_bps,
        "rtt_s": rtt_s, "duration_s": duration_s,
        "warmup_s": warmup_s, "seed": seed,
    }
    if trace_path is None:
        sink = None
    elif binary:
        sink = BinaryFileSink(trace_path, meta=meta)
    else:
        sink = JsonlSink(trace_path, meta=meta)
    collector = TraceCollector(sink=sink)
    doctor = FlowDoctor()
    sim = Simulator(seed=seed, telemetry=collector, diagnosis=doctor)
    path = wired_path(sim, rate_bps, rtt_s)
    flow = BulkFlow(sim, path, "tcp-tack", initial_rtt_s=rtt_s)
    flow.start()
    sim.run(until=warmup_s)
    tacks_at_warmup = flow.conn.receiver.stats.tacks_sent
    sim.run(until=duration_s)
    measured = ((flow.conn.receiver.stats.tacks_sent - tacks_at_warmup)
                / (duration_s - warmup_s))
    collector.close()
    doctor.finalize()
    if trace_path is not None:
        with open(f"{trace_path}.diagnosis.json", "w") as fh:
            json.dump(doctor.report(), fh, indent=2, sort_keys=True)
    table = Table(
        "Fig. 8 traced validation: analytic vs measured TACK frequency (Hz)",
        ["link", "analytic_hz", "measured_hz"],
        note=f"Bulk TCP-TACK flow, {rate_bps/1e6:.0f} Mbps wired "
             f"bottleneck, RTT {rtt_s*1e3:.0f} ms, telemetry on.",
    )
    table.add_row(
        link=f"wired-{rate_bps/1e6:.0f}M",
        analytic_hz=tack_frequency(rate_bps, rtt_s),
        measured_hz=measured,
    )
    return table


def run(rtt_s: float = 0.08, duration_s: float = 5.0, seed: int = 5) -> Table:
    # The harness treats the analytic table as the headline; the
    # measured table is produced alongside by the benchmark wrapper.
    return run_analytic()


if __name__ == "__main__":
    run_analytic().show()
    run_measured().show()
