"""Extension experiment: TCP splitting at the AP (paper S7).

Compares three deployments on the hybrid WLAN+WAN topology:

* end-to-end TCP BBR (the legacy baseline);
* end-to-end TCP-TACK (the paper's deployment);
* split: legacy TCP BBR on the WAN segment, TCP-TACK on the WLAN last
  hop, bridged by a proxy at the access point.

The paper leaves "the cost performance of TACK with/without TCP
splitting" as future work; this bench quantifies it on our substrate,
including the reliability gap (bytes acknowledged to the server that
the client has not received) that splitting introduces.
"""

from __future__ import annotations

from repro.app.bulk import BulkFlow
from repro.app.split_proxy import SplitTransfer
from repro.experiments.table import Table
from repro.netsim.engine import Simulator
from repro.netsim.paths import hybrid_path, wired_path, wlan_path


def _end_to_end(scheme: str, phy: str, wan_rate_bps: float, wan_rtt_s: float,
                loss: float, duration_s: float, warmup_s: float,
                seed: int) -> dict:
    sim = Simulator(seed=seed)
    path = hybrid_path(sim, phy, wan_rate_bps=wan_rate_bps, wan_rtt_s=wan_rtt_s,
                       data_loss=loss, ack_loss=loss)
    flow = BulkFlow(sim, path, scheme, initial_rtt_s=wan_rtt_s + 0.005)
    flow.start()
    sim.run(until=duration_s)
    return {
        "goodput_mbps": flow.goodput_bps(start=warmup_s) / 1e6,
        "acks": flow.ack_count(),
        "held_kb": 0.0,
    }


def _split(phy: str, wan_rate_bps: float, wan_rtt_s: float, loss: float,
           duration_s: float, warmup_s: float, seed: int) -> dict:
    sim = Simulator(seed=seed)
    wan = wired_path(sim, wan_rate_bps, wan_rtt_s, data_loss=loss, ack_loss=loss)
    wlan = wlan_path(sim, phy, extra_rtt_s=0.004)
    split = SplitTransfer(sim, wan, wlan, wan_scheme="tcp-bbr",
                          wlan_scheme="tcp-tack",
                          wan_rtt_hint=wan_rtt_s, wlan_rtt_hint=0.01)
    split.start_bulk()
    sim.run(until=duration_s)
    span = duration_s - warmup_s
    # goodput over the steady window
    d0 = split.delivered_bytes
    return {
        "goodput_mbps": split.delivered_bytes * 8.0 / duration_s / 1e6,
        "acks": split.total_acks(),
        "held_kb": split.proxy_held_bytes / 1e3,
    }


def run(phy: str = "802.11g", wan_rate_bps: float = 100e6, wan_rtt_s: float = 0.2,
        loss: float = 0.01, duration_s: float = 10.0, warmup_s: float = 3.0,
        seed: int = 11) -> Table:
    table = Table(
        "Extension (paper S7): TCP splitting at the access point",
        ["deployment", "goodput_mbps", "acks", "proxy_held_kb"],
        note=(f"{phy} last hop, WAN {wan_rate_bps/1e6:.0f} Mbps / "
              f"{wan_rtt_s*1e3:.0f} ms, {loss:.0%} bidirectional loss.  "
              "proxy_held = bytes acked to the server but not yet at "
              "the client (splitting's reliability gap)."),
    )
    for label, runner in (
        ("end-to-end TCP BBR",
         lambda: _end_to_end("tcp-bbr", phy, wan_rate_bps, wan_rtt_s, loss,
                             duration_s, warmup_s, seed)),
        ("end-to-end TCP-TACK",
         lambda: _end_to_end("tcp-tack", phy, wan_rate_bps, wan_rtt_s, loss,
                             duration_s, warmup_s, seed)),
        ("split: BBR (WAN) + TACK (WLAN)",
         lambda: _split(phy, wan_rate_bps, wan_rtt_s, loss,
                        duration_s, warmup_s, seed)),
    ):
        result = runner()
        table.add_row(
            deployment=label,
            goodput_mbps=result["goodput_mbps"],
            acks=result["acks"],
            proxy_held_kb=result["held_kb"],
        )
    return table


if __name__ == "__main__":
    run().show()
