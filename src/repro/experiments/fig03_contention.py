"""Fig. 3: data-vs-ACK contention over 802.11n with the UDP tool.

Reproduces S3.2: a fixed 100 Mbps UDP stream of 1518-byte packets,
with the receiver answering every L-th packet with a 64-byte ACK.
The shape to reproduce: the ACK path saturates well below 1.5 Mbps
as L shrinks (the paper's "ACK throughput fails to double from 4:1 to
2:1"), collisions grow several-fold, and the data path loses goodput.

Testbed substitution (see DESIGN.md): the paper's driver kept shallow,
non-adaptive A-MPDU aggregation at this offered load, so the data
station is configured with a fixed aggregation depth of 4 and the ACK
station does not aggregate — without this the simulated NIC absorbs
the ACK pressure by deepening its aggregates, which commodity 2014-era
hardware did not do.
"""

from __future__ import annotations

import copy

from repro.app.udp_blast import run_contention_trial
from repro.experiments.table import Table
from repro.netsim.engine import Simulator
from repro.wlan.medium import WirelessMedium
from repro.wlan.phy import get_profile
from repro.wlan.station import Station


def _build_fig3_wlan(sim: Simulator, ampdu_depth: int,
                     rate_adaptation: bool = False,
                     per_mpdu_error_rate: float = 0.0):
    phy = copy.copy(get_profile("802.11n"))
    phy.max_ampdu_frames = ampdu_depth
    medium = WirelessMedium(sim, phy, per_mpdu_error_rate)
    ap = Station(medium, "ap", queue_frames=512, aggregate=True,
                 rate_adaptation=rate_adaptation)
    sta = Station(medium, "sta", queue_frames=512, aggregate=False)
    ap.set_peer(sta)
    sta.set_peer(ap)
    medium.register(ap)
    medium.register(sta)
    return medium, ap, sta


class _HopPort:
    def __init__(self, tx, rx):
        self.tx, self.rx = tx, rx

    def send(self, p):
        return self.tx.send(p)

    def connect(self, sink):
        self.rx.connect(sink)


def run(rate_bps: float = 100e6, duration_s: float = 2.0,
        ampdu_depth: int = 4, seed: int = 7,
        ratios=(16, 8, 4, 2, 1),
        rate_adaptation: bool = False,
        per_mpdu_error_rate: float = 0.0) -> Table:
    """``rate_adaptation=True`` enables the Minstrel-lite extension:
    collision-triggered MCS down-shifts amplify the decline, moving the
    reproduction toward the paper's ~25% drop at 1:1."""
    title = "Fig. 3: contention between data packets and ACKs (802.11n)"
    if rate_adaptation:
        title += " [with rate adaptation]"
    table = Table(
        title,
        ["data:acks", "data_mbps", "ack_mbps", "collision_rate_%"],
        note=(f"UDP tool, offered {rate_bps/1e6:.0f} Mbps of 1518-B packets; "
              "64-B ACK every L packets."),
    )
    for L in ratios:
        sim = Simulator(seed=seed)
        medium, ap, sta = _build_fig3_wlan(
            sim, ampdu_depth, rate_adaptation, per_mpdu_error_rate
        )
        result = run_contention_trial(
            sim,
            _HopPort(ap, sta),
            _HopPort(sta, ap),
            count_l=L,
            rate_bps=rate_bps,
            duration_s=duration_s,
            medium=medium,
        )
        table.add_row(**{
            "data:acks": f"{L}:1",
            "data_mbps": result.data_throughput_bps / 1e6,
            "ack_mbps": result.ack_throughput_bps / 1e6,
            "collision_rate_%": 100 * result.collision_rate,
        })
    return table


if __name__ == "__main__":
    run().show()
