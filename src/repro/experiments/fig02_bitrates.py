"""Fig. 2: average bit rates of the video application classes.

A context table in the paper; here each class additionally drives the
video source model for one second over an ideal path to verify the
source produces the nominal rate.
"""

from __future__ import annotations

from repro.app.video import VideoSession
from repro.experiments.table import Table
from repro.netsim.engine import Simulator
from repro.netsim.paths import wired_path

APPLICATION_BITRATES_MBPS = {
    "SD video": 2,
    "HD video": 8,
    "UHD streaming": 16,
    "VR": 17,
    "UHD IP video": 51,
    "8K wall TV": 100,
    "HD VR": 167,
    "UHD VR": 500,
}


def run(duration_s: float = 2.0) -> Table:
    table = Table(
        "Fig. 2: average bit rate per application class",
        ["application", "paper_mbps", "source_model_mbps"],
        note="source_model is the CBR video source measured over an ideal link.",
    )
    for app, mbps in APPLICATION_BITRATES_MBPS.items():
        sim = Simulator(seed=1)
        path = wired_path(sim, rate_bps=2e9, rtt_s=0.001)
        session = VideoSession(sim, path, "tcp-tack", bitrate_bps=mbps * 1e6,
                               initial_rtt_s=0.001)
        session.start()
        sim.run(until=duration_s)
        produced = session.stats.frames_generated * session.frame_bytes
        table.add_row(
            application=app,
            paper_mbps=mbps,
            source_model_mbps=produced * 8 / duration_s / 1e6,
        )
    return table


if __name__ == "__main__":
    run().show()
