"""Fig. 16 / Appendix B: beta lower bound and buffer requirements.

Analytic side: W_min = beta/(beta-1) * bdp and the ideal bottleneck
buffer W_min - bdp (Eq. 11).  Simulated side: TACK utilization versus
beta on a fixed path with the buffer the formula prescribes for
beta = 4 (0.33 bdp) — beta = 1 degenerates toward stop-and-wait while
beta >= 2 sustains utilization, and beta = 4 adds robustness.
"""

from __future__ import annotations

from repro.analysis.buffer_req import (
    buffer_requirement_bytes,
    min_send_window_bytes,
)
from repro.app.bulk import BulkFlow
from repro.core.params import TackParams
from repro.experiments.table import Table
from repro.netsim.engine import Simulator
from repro.netsim.paths import wired_path


def run_analytic(bdp_bytes: float = 1_000_000) -> Table:
    table = Table(
        "Appendix B.1: minimum send window and buffer vs beta",
        ["beta", "w_min_bdp", "buffer_bdp"],
        note="W_min = beta/(beta-1) * bdp; buffer = W_min - bdp (Eq. 11).",
    )
    for beta in (2, 3, 4, 8, 16):
        table.add_row(
            beta=beta,
            w_min_bdp=min_send_window_bytes(bdp_bytes, beta) / bdp_bytes,
            buffer_bdp=buffer_requirement_bytes(bdp_bytes, beta) / bdp_bytes,
        )
    return table


def run_simulated(rate_bps: float = 20e6, rtt_s: float = 0.1,
                  duration_s: float = 15.0, warmup_s: float = 5.0,
                  seed: int = 13) -> Table:
    bdp = int(rate_bps * rtt_s / 8)
    table = Table(
        "Appendix B.1 (simulated): TACK utilization vs beta, buffer = 0.5 bdp",
        ["beta", "utilization_%", "acks_per_s"],
        note=("beta = 1 is stop-and-wait-like; the paper's default "
              "beta = 4 balances utilization and robustness."),
    )
    for beta in (1, 2, 4, 8):
        sim = Simulator(seed=seed)
        path = wired_path(sim, rate_bps, rtt_s, queue_bytes=bdp // 2)
        flow = BulkFlow(sim, path, "tcp-tack",
                        params=TackParams(beta=beta), initial_rtt_s=rtt_s)
        flow.start()
        sim.run(until=duration_s)
        table.add_row(
            beta=beta,
            **{"utilization_%": 100 * min(flow.goodput_bps(start=warmup_s) / rate_bps, 1.0)},
            acks_per_s=flow.ack_count() / duration_s,
        )
    return table


def run(**kwargs) -> Table:
    return run_simulated(**kwargs)


if __name__ == "__main__":
    run_analytic().show()
    run_simulated().show()
