"""Design-choice ablations (DESIGN.md section 6).

Each function isolates one co-design decision of the TACK protocol and
measures what it buys:

* ``run_beta_l_sweep`` — Appendix B.3 robustness: beta in {2, 4, 8}
  x L in {1, 2, 4} on a WLAN path (goodput and ACK economy).
* ``run_pacing_ablation`` — S5.3: paced vs ack-clocked-burst sending
  under a shallow bottleneck buffer.
* ``run_governor_ablation`` — S5.1's once-per-RTT retransmission rule:
  spurious retransmissions with and without suppression.
* ``run_rtt_latency_ablation`` — the latency cost of fewer ACKs for
  short RPCs as L grows (why the paper keeps L = 2).
"""

from __future__ import annotations

from repro.app.bulk import BulkFlow
from repro.core.params import TackParams
from repro.experiments.table import Table
from repro.netsim.engine import Simulator
from repro.netsim.paths import wired_path, wlan_path
from repro.stats.percentile import percentile


def run_beta_l_sweep(duration_s: float = 5.0, warmup_s: float = 1.5,
                     rtt_s: float = 0.08, seed: int = 5) -> Table:
    table = Table(
        "Ablation: TACK beta x L over 802.11n (paper Appendix B.3)",
        ["beta", "L", "goodput_mbps", "acks_per_s"],
        note="Default beta=4, L=2; beta=2 is the utilization floor.",
    )
    for beta in (2.0, 4.0, 8.0):
        for L in (1, 2, 4):
            sim = Simulator(seed=seed)
            path = wlan_path(sim, "802.11n", extra_rtt_s=rtt_s)
            flow = BulkFlow(
                sim, path, "tcp-tack",
                params=TackParams(beta=beta, ack_count_l=L),
                initial_rtt_s=rtt_s,
            )
            flow.start()
            sim.run(until=duration_s)
            table.add_row(
                beta=beta, L=L,
                goodput_mbps=flow.goodput_bps(start=warmup_s) / 1e6,
                acks_per_s=flow.ack_count() / duration_s,
            )
    return table


def run_pacing_ablation(rate_bps: float = 20e6, rtt_s: float = 0.1,
                        duration_s: float = 15.0, warmup_s: float = 5.0,
                        seed: int = 9) -> Table:
    """Paced vs burst sending at a shallow (0.25 bdp) buffer.

    Burst mode is emulated by letting the pacer run far faster than
    the controller's rate: packets leave back-to-back whenever window
    space opens (one TACK can release a whole window, paper S4.3).
    """
    table = Table(
        "Ablation: pacing vs ack-clocked bursts (shallow buffer)",
        ["mode", "goodput_mbps", "retx", "queue_peak_kb"],
        note="Shallow 0.25-bdp bottleneck; paper S5.3: TACK must pace.",
    )
    bdp = int(rate_bps * rtt_s / 8)
    for mode in ("paced", "burst"):
        sim = Simulator(seed=seed)
        path = wired_path(sim, rate_bps, rtt_s, queue_bytes=bdp // 4)
        flow = BulkFlow(sim, path, "tcp-tack", initial_rtt_s=rtt_s)
        if mode == "burst":
            pacer = flow.conn.sender.pacer
            real_set = pacer.set_rate
            pacer.set_rate = lambda r: real_set(max(r * 50, 1e9))  # defeat pacing
        flow.start()
        sim.run(until=duration_s)
        table.add_row(
            mode=mode,
            goodput_mbps=flow.goodput_bps(start=warmup_s) / 1e6,
            retx=flow.conn.sender.stats.retransmissions,
            queue_peak_kb=path.wan.forward.queue.peak_bytes // 1000,
        )
    return table


def run_governor_ablation(rate_bps: float = 20e6, rtt_s: float = 0.2,
                          data_loss: float = 0.01, ack_loss: float = 0.05,
                          duration_s: float = 15.0, seed: int = 7) -> Table:
    """Once-per-RTT retransmission suppression on/off.

    Without the governor every TACK re-reporting a hole triggers a
    retransmission, so the same segment is sent several times per
    recovery — visible as duplicate deliveries at the receiver.
    """
    table = Table(
        "Ablation: once-per-RTT retransmission governor",
        ["governor", "goodput_mbps", "retx", "duplicates"],
        note="Bidirectionally lossy 200 ms path; duplicates = spurious retx.",
    )
    for enabled in (True, False):
        sim = Simulator(seed=seed)
        path = wired_path(sim, rate_bps, rtt_s,
                          queue_bytes=int(rate_bps * rtt_s / 8),
                          data_loss=data_loss, ack_loss=ack_loss)
        flow = BulkFlow(sim, path, "tcp-tack", initial_rtt_s=rtt_s)
        if not enabled:
            flow.conn.sender.governor.may_retransmit = (
                lambda seq, now, srtt: True
            )
        flow.start()
        sim.run(until=duration_s)
        table.add_row(
            governor="on" if enabled else "off",
            goodput_mbps=flow.goodput_bps(start=duration_s / 3) / 1e6,
            retx=flow.conn.sender.stats.retransmissions,
            duplicates=flow.conn.receiver.stats.duplicate_packets,
        )
    return table


def run_rpc_latency_ablation(rtt_s: float = 0.04, duration_s: float = 10.0,
                             seed: int = 3) -> Table:
    """Sender-side RPC completion latency as L grows.

    Delivery latency at the receiver is ACK-independent; what large L
    delays is the *sender learning* the response completed — the
    latency an application blocked on the socket actually feels (paper
    B.3: keep L small for thin flows; offer L=1 a la TCP_QUICKACK).
    """
    from repro.core.flavors import make_connection

    response_bytes = 3000  # 2 segments: thinner than L for L >= 4
    table = Table(
        "Ablation: sender-side RPC completion latency vs TACK L",
        ["L", "p95_ack_latency_ms", "mean_ack_latency_ms", "acks"],
        note="3 kB responses every 100 ms over a 100 Mbps / 40 ms path; "
             "latency until the sender's cum-ACK covers the response. "
             "Responses thinner than L packets wait for the straggler "
             "flush, which is the latency cost of a large L.",
    )
    for L in (1, 2, 4, 8):
        sim = Simulator(seed=seed)
        path = wired_path(sim, 100e6, rtt_s)
        conn = make_connection(sim, "tcp-tack",
                               params=TackParams(ack_count_l=L),
                               initial_rtt_s=rtt_s)
        conn.wire(path.forward, path.reverse)
        conn.sender.start()
        latencies: list[float] = []
        pending: list[tuple[int, float]] = []
        issued = [0]

        original = conn.sender._on_feedback

        def on_feedback(fb, kind, _orig=original, _snd=conn.sender):
            _orig(fb, kind)
            while pending and pending[0][0] <= _snd.cum_acked:
                end, t0 = pending.pop(0)
                latencies.append(sim.now() - t0)

        conn.sender._on_feedback = on_feedback  # type: ignore[method-assign]

        def issue():
            issued[0] += response_bytes
            pending.append((issued[0], sim.now()))
            conn.sender.write(response_bytes)
            sim.call_in(0.1, issue)

        issue()
        sim.run(until=duration_s)
        table.add_row(
            L=L,
            p95_ack_latency_ms=percentile(latencies, 95) * 1e3,
            mean_ack_latency_ms=1e3 * sum(latencies) / len(latencies),
            acks=conn.ack_count(),
        )
    return table


if __name__ == "__main__":
    run_beta_l_sweep().show()
    run_pacing_ablation().show()
    run_governor_ablation().show()
    run_rpc_latency_ablation().show()
