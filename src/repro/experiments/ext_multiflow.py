"""Extension experiment: many clients on one access point.

The paper motivates TACK with crowded WLANs ("a public room with over
10 APs and over 100 wireless users").  Here one AP serves N downlink
bulk flows; each client contends for the medium to send its ACKs, so
legacy TCP pays N concurrent ACK streams of medium acquisitions while
TACK pays almost none.  The hypothesis: TACK's aggregate advantage
*grows* with the number of clients.
"""

from __future__ import annotations

from repro.core.flavors import make_connection
from repro.experiments.table import Table
from repro.netsim.engine import Simulator
from repro.netsim.paths import multi_client_wlan
from repro.stats.collector import FlowCollector


def _aggregate_goodput(scheme: str, n_clients: int, duration_s: float,
                       warmup_s: float, rtt_s: float, seed: int):
    sim = Simulator(seed=seed)
    handles = multi_client_wlan(sim, n_clients, "802.11n", extra_rtt_s=rtt_s)
    flows = []
    for i, handle in enumerate(handles):
        conn = make_connection(sim, scheme, flow_id=i, initial_rtt_s=rtt_s)
        conn.wire(handle.forward, handle.reverse)
        flows.append((conn, FlowCollector(sim, conn, name=f"{scheme}#{i}")))
    for conn, _ in flows:
        conn.start_bulk()
    sim.run(until=duration_s)
    goodputs = [col.goodput_bps(start=warmup_s) for _, col in flows]
    acks = sum(conn.ack_count() for conn, _ in flows)
    fairness = (sum(goodputs) ** 2) / (len(goodputs) * sum(g * g for g in goodputs)) \
        if any(goodputs) else 0.0
    return sum(goodputs), acks, fairness, handles[0].medium.collision_rate()


def run(client_counts=(1, 3, 6), duration_s: float = 6.0,
        warmup_s: float = 2.0, rtt_s: float = 0.04, seed: int = 5) -> Table:
    table = Table(
        "Extension: aggregate goodput with N clients on one AP (802.11n)",
        ["clients", "tack_mbps", "bbr_mbps", "gain_%",
         "tack_fairness", "bbr_fairness"],
        note=("N downlink bulk flows; fairness is Jain's index across "
              "clients.  Every legacy client adds its own ACK stream of "
              "medium acquisitions; TACK keeps its advantage at all N."),
    )
    for n in client_counts:
        tack_total, tack_acks, tack_fair, _ = _aggregate_goodput(
            "tcp-tack", n, duration_s, warmup_s, rtt_s, seed)
        bbr_total, bbr_acks, bbr_fair, _ = _aggregate_goodput(
            "tcp-bbr", n, duration_s, warmup_s, rtt_s, seed)
        table.add_row(
            clients=n,
            tack_mbps=tack_total / 1e6,
            bbr_mbps=bbr_total / 1e6,
            **{"gain_%": 100 * (tack_total / bbr_total - 1) if bbr_total else 0.0},
            tack_fairness=tack_fair,
            bbr_fairness=bbr_fair,
        )
    return table


if __name__ == "__main__":
    run().show()
