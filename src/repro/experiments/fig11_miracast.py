"""Fig. 11: wireless projection (Miracast) quality by transport.

A/B comparison over one 802.11n hop at a UHD projection bitrate near
the channel's TCP capacity, with residual channel noise: RTP+UDP never
rebuffers but macroblocks; legacy TCP never macroblocks but rebuffers;
TCP-TACK's extra goodput headroom keeps rebuffering minimal.
"""

from __future__ import annotations

from repro.app.video import RtpUdpVideoSession, VideoSession
from repro.experiments.table import Table
from repro.netsim.engine import Simulator
from repro.netsim.paths import wlan_path

PAPER = {
    "RTP+UDP": ("0", "5-6"),
    "TCP CUBIC": ("30-58", "0"),
    "TCP BBR": ("5-15" , "0"),
    "TCP-TACK": ("3-10", "0"),
}


def run(bitrate_bps: float = 165e6, duration_s: float = 20.0,
        mpdu_error: float = 0.002, seed: int = 3) -> Table:
    table = Table(
        "Fig. 11: Miracast projection quality by transport",
        ["transport", "rebuffering_%", "macroblock_per_30min",
         "paper_rebuffering_%", "paper_macroblock"],
        note=(f"{bitrate_bps/1e6:.0f} Mbps UHD projection over 802.11n, "
              f"{mpdu_error:.1%} residual MPDU error."),
    )
    runs = [
        ("RTP+UDP", "rtp+udp"),
        ("TCP CUBIC", "tcp-cubic"),
        ("TCP BBR", "tcp-bbr"),
        ("TCP-TACK", "tcp-tack"),
    ]
    for label, scheme in runs:
        sim = Simulator(seed=seed)
        path = wlan_path(sim, "802.11n", extra_rtt_s=0.004,
                         per_mpdu_error_rate=mpdu_error)
        if scheme == "rtp+udp":
            session = RtpUdpVideoSession(sim, path, bitrate_bps=bitrate_bps)
        else:
            session = VideoSession(sim, path, scheme, bitrate_bps=bitrate_bps,
                                   initial_rtt_s=0.004)
        session.start()
        sim.run(until=duration_s)
        stats = session.finish()
        paper_rebuf, paper_block = PAPER[label]
        table.add_row(
            transport=label,
            **{
                "rebuffering_%": 100 * stats.rebuffering_ratio(),
                "macroblock_per_30min": stats.macroblocking_per_30min(),
                "paper_rebuffering_%": paper_rebuf,
                "paper_macroblock": paper_block,
            },
        )
    return table


if __name__ == "__main__":
    run().show()
