"""Fig. 13: performance over combined WLAN + WAN links.

Four cases (paper Fig. 12/13): WLAN bandwidth is the bottleneck, the
WAN adds latency and optional symmetric 1% loss.  Reports goodput,
data-packet count, and ACK count for TCP BBR and TCP-TACK.
"""

from __future__ import annotations

from repro.app.bulk import BulkFlow
from repro.experiments.table import Table
from repro.netsim.engine import Simulator
from repro.netsim.paths import hybrid_path

CASES = [
    # (case, phy, wan_rate, wan_rtt_s, loss)
    (1, "802.11g", 100e6, 0.02, 0.0),
    (2, "802.11g", 100e6, 0.02, 0.01),
    (3, "802.11n", 500e6, 0.20, 0.0),
    (4, "802.11n", 500e6, 0.20, 0.01),
]

PAPER = {
    # case -> (bbr_goodput, bbr_acks, tack_goodput, tack_acks)
    1: (17.16, 104_298, 20.21, 24_356),
    2: (16.90, 84_523, 18.44, 26_068),
    3: (159.50, 882_545, 190.22, 2_474),
    4: (156.39, 897_361, 185.73, 22_407),
}


def run(duration_s: float = 10.0, warmup_s: float = 2.0, seed: int = 11) -> Table:
    table = Table(
        "Fig. 13: combined WLAN + WAN performance",
        ["case", "scheme", "goodput_mbps", "paper_mbps", "data_pkts",
         "acks", "paper_acks"],
        note="Cases 1-2: 802.11g + 100Mbps/20ms WAN; 3-4: 802.11n + "
             "500Mbps/200ms WAN; even cases add 1% bidirectional loss.",
    )
    for case, phy, rate, rtt, loss in CASES:
        for scheme, p_good, p_acks in (
            ("tcp-bbr", PAPER[case][0], PAPER[case][1]),
            ("tcp-tack", PAPER[case][2], PAPER[case][3]),
        ):
            sim = Simulator(seed=seed)
            path = hybrid_path(sim, phy, wan_rate_bps=rate, wan_rtt_s=rtt,
                               data_loss=loss, ack_loss=loss)
            flow = BulkFlow(sim, path, scheme, initial_rtt_s=rtt + 0.005)
            flow.start()
            sim.run(until=duration_s)
            table.add_row(
                case=case,
                scheme=scheme,
                goodput_mbps=flow.goodput_bps(start=warmup_s) / 1e6,
                paper_mbps=p_good,
                data_pkts=flow.data_packet_count(),
                acks=flow.ack_count(),
                paper_acks=p_acks,
            )
    return table


if __name__ == "__main__":
    run().show()
