"""Fig. 6(b): deployment effect of the advanced round-trip timing.

The paper compares Pantheon runs before and after deploying the
advanced timing: 95th-percentile one-way delay dropped ~20% and packet
loss ~54%, attributed to an accurate RTT_min no longer overfilling the
pipe.

On our substrate the naive and advanced variants run the same paced
BBR, and pacing — not the cwnd cap — governs queue occupancy, so the
tail-delay gap is within noise (documented deviation, EXPERIMENTS.md).
What *is* reproducible end to end: the naive variant operates on an
RTT_min biased high by up to a TACK interval while the advanced
variant tracks the true minimum, at identical goodput — i.e. the
correction is free.  The table reports both the delay/loss metrics and
the per-variant RTT_min estimate from the same runs.
"""

from __future__ import annotations

from repro.app.bulk import BulkFlow
from repro.experiments.table import Table
from repro.netsim.engine import Simulator
from repro.netsim.paths import wired_path
from repro.stats.percentile import percentile


def _measure(scheme: str, rate_bps: float, rtt_s: float, duration_s: float,
             warmup_s: float, seed: int):
    sim = Simulator(seed=seed)
    path = wired_path(sim, rate_bps, rtt_s,
                      queue_bytes=int(2 * rate_bps * rtt_s / 8))
    flow = BulkFlow(sim, path, scheme, initial_rtt_s=rtt_s)
    flow.start()
    sim.run(until=duration_s)
    owds = [o for o in flow.collector.owd_samples]
    tail = owds[len(owds) // 4:]  # drop startup transient
    sender = flow.conn.sender
    sent = max(sender.stats.data_packets_sent, 1)
    return {
        "owd95_ms": percentile(tail, 95) * 1e3,
        "loss_%": 100.0 * path.forward.packets_lost / max(path.forward.packets_sent, 1),
        "retx_%": 100.0 * sender.stats.retransmissions / sent,
        "goodput_mbps": flow.goodput_bps(start=warmup_s) / 1e6,
        "rtt_min_ms": sender.rtt_min_est.rtt_min() * 1e3,
    }


def run(rate_bps: float = 30e6, rtt_s: float = 0.1, duration_s: float = 20.0,
        warmup_s: float = 5.0, seed: int = 9) -> Table:
    table = Table(
        "Fig. 6(b): naive vs advanced timing — delay, loss, and RTT_min",
        ["timing", "owd95_ms", "loss_%", "retx_%", "goodput_mbps",
         "rtt_min_ms"],
        note=("Paper (Pantheon deployment): advanced timing cut 95th-pct "
              "OWD ~20% and loss ~54%.  Here both variants pace, so tail "
              "delay is at parity; the reproducible effect is the "
              "unbiased RTT_min at zero goodput cost "
              f"(true minimum = {rtt_s * 1e3:.0f} ms)."),
    )
    for label, scheme in (("naive", "tcp-tack-naive-timing"),
                          ("advanced", "tcp-tack")):
        m = _measure(scheme, rate_bps, rtt_s, duration_s, warmup_s, seed)
        table.add_row(timing=label, **m)
    return table


if __name__ == "__main__":
    run().show()
