"""Eq. (6) / Appendix A: when must a TACK carry more blocks?

Closed-form thresholds plus a simulation check: at ACK-path loss above
the threshold, TACK-poor (Q = 1) loses utilization versus TACK-rich;
below it they are equivalent.
"""

from __future__ import annotations

from repro.analysis.thresholds import additional_blocks, rich_info_threshold
from repro.app.bulk import BulkFlow
from repro.experiments.table import Table
from repro.netsim.engine import Simulator
from repro.netsim.paths import wired_path


def run_analytic() -> Table:
    table = Table(
        "Eq. (6): ACK-path loss threshold rho' for carrying rich blocks",
        ["rho_data_%", "bdp_kb", "threshold_%", "dq_at_10%_ackloss"],
        note="Above the threshold a Q=1 TACK cannot cover lost IACKs.",
    )
    for rho_pct, bdp_kb in ((0.5, 250), (1.0, 500), (2.0, 500), (3.0, 2000)):
        rho = rho_pct / 100
        bdp = bdp_kb * 1000
        thr = rich_info_threshold(rho, bdp, q_blocks=1)
        table.add_row(**{
            "rho_data_%": rho_pct,
            "bdp_kb": bdp_kb,
            "threshold_%": 100 * min(thr, 1.0),
            "dq_at_10%_ackloss": additional_blocks(rho, 0.10, bdp, q_blocks=1),
        })
    return table


def run_simulated(rate_bps: float = 20e6, rtt_s: float = 0.2,
                  data_loss: float = 0.01, duration_s: float = 15.0,
                  warmup_s: float = 5.0, seed: int = 7) -> Table:
    bdp = rate_bps * rtt_s / 8
    threshold = rich_info_threshold(data_loss, bdp, q_blocks=1)
    table = Table(
        "Eq. (6) validation: rich-vs-poor utilization around the threshold",
        ["ack_loss_%", "relation", "poor_util_%", "rich_util_%"],
        note=(f"Analytic threshold rho' = {100 * threshold:.2f}% for "
              f"rho = {data_loss:.0%}, bdp = {bdp/1e3:.0f} kB."),
    )
    for ack_loss in (threshold / 4, threshold * 8):
        utils = {}
        for scheme in ("tcp-tack-poor", "tcp-tack"):
            sim = Simulator(seed=seed)
            path = wired_path(sim, rate_bps, rtt_s,
                              queue_bytes=int(bdp),
                              data_loss=data_loss,
                              ack_loss=min(ack_loss, 0.3))
            flow = BulkFlow(sim, path, scheme, initial_rtt_s=rtt_s)
            flow.start()
            sim.run(until=duration_s)
            utils[scheme] = 100 * min(flow.goodput_bps(start=warmup_s) / rate_bps, 1.0)
        table.add_row(**{
            "ack_loss_%": 100 * min(ack_loss, 0.3),
            "relation": "below threshold" if ack_loss < threshold else "above threshold",
            "poor_util_%": utils["tcp-tack-poor"],
            "rich_util_%": utils["tcp-tack"],
        })
    return table


def run(**kwargs) -> Table:
    return run_analytic()


if __name__ == "__main__":
    run_analytic().show()
    run_simulated().show()
