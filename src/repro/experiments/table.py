"""Result tables: the textual stand-in for the paper's figures."""

from __future__ import annotations

import os
from typing import Any, Optional, Sequence


class Table:
    """Ordered rows of {column: value} plus formatting helpers."""

    def __init__(self, title: str, columns: Sequence[str],
                 note: Optional[str] = None):
        self.title = title
        self.columns = list(columns)
        self.note = note
        self.rows: list[dict[str, Any]] = []

    def add_row(self, **values: Any) -> None:
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns: {sorted(unknown)}")
        self.rows.append(values)

    def column(self, name: str) -> list[Any]:
        if name not in self.columns:
            raise KeyError(f"no column {name!r}")
        return [row.get(name) for row in self.rows]

    # ------------------------------------------------------------------
    @staticmethod
    def _fmt(value: Any) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            if value != 0 and abs(value) < 0.01:
                return f"{value:.2e}"
            return f"{value:,.2f}".rstrip("0").rstrip(".")
        return str(value)

    def format_text(self) -> str:
        widths = {
            c: max(len(c), *(len(self._fmt(r.get(c))) for r in self.rows))
            if self.rows else len(c)
            for c in self.columns
        }
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(c.rjust(widths[c]) for c in self.columns))
        lines.append("  ".join("-" * widths[c] for c in self.columns))
        for row in self.rows:
            lines.append(
                "  ".join(self._fmt(row.get(c)).rjust(widths[c]) for c in self.columns)
            )
        if self.note:
            lines.append("")
            lines.append(self.note)
        return "\n".join(lines)

    def show(self) -> None:
        print(self.format_text())
        print()

    def save(self, path: str) -> None:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as f:
            f.write(self.format_text() + "\n")

    def __len__(self) -> int:
        return len(self.rows)
