"""Fig. 17: analytic ACK-frequency dynamics and pivot points.

(a) frequency vs bandwidth at several RTT_min values — TACK follows
    per-packet/byte-counting at low bw and plateaus at beta/RTT_min
    past the pivot bdp = beta * L * MSS;
(b) frequency vs RTT_min at several bandwidths.
"""

from __future__ import annotations

from repro.analysis.ack_frequency import (
    per_packet_frequency,
    pivot_bandwidth_bps,
    pivot_rtt_s,
    tack_frequency,
)
from repro.experiments.table import Table


def run_vs_bandwidth(rtts=(0.001, 0.01, 0.08, 0.2, 0.4)) -> Table:
    table = Table(
        "Fig. 17(a): ACK frequency (Hz) vs bandwidth",
        ["bw_mbps", "f_tcp_L1"] + [f"tack@{int(r*1e3)}ms" for r in rtts],
        note="Pivot bandwidths (Mbps): " + ", ".join(
            f"{int(r*1e3)}ms->{pivot_bandwidth_bps(r)/1e6:.2f}" for r in rtts
        ),
    )
    for bw_mbps in (0.1, 1, 2, 5, 10, 50, 100, 500, 1000, 2000, 3000):
        bw = bw_mbps * 1e6
        row = {"bw_mbps": bw_mbps, "f_tcp_L1": per_packet_frequency(bw)}
        for rtt in rtts:
            row[f"tack@{int(rtt*1e3)}ms"] = tack_frequency(bw, rtt)
        table.add_row(**row)
    return table


def run_vs_rtt(bws=(0.1e6, 100e6, 1000e6)) -> Table:
    table = Table(
        "Fig. 17(b): ACK frequency (Hz) vs RTT_min",
        ["rtt_ms"] + [f"tcp@{int(b/1e6)}M" for b in bws]
        + [f"tack@{int(b/1e6)}M" for b in bws],
        note="Pivot RTTs (ms): " + ", ".join(
            f"{int(b/1e6)}M->{pivot_rtt_s(b)*1e3:.3f}" for b in bws
        ),
    )
    for rtt_ms in (0.001, 0.01, 0.1, 1, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100):
        row = {"rtt_ms": rtt_ms}
        for b in bws:
            row[f"tcp@{int(b/1e6)}M"] = per_packet_frequency(b)
            row[f"tack@{int(b/1e6)}M"] = tack_frequency(b, rtt_ms / 1e3)
        table.add_row(**row)
    return table


def run(**kwargs) -> Table:
    return run_vs_bandwidth()


if __name__ == "__main__":
    run_vs_bandwidth().show()
    run_vs_rtt().show()
