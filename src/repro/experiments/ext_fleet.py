"""Extension experiment: a fleet-scale "busy AP day" load sweep.

The paper evaluates TACK on single long flows; this extension asks
what taming acknowledgments buys an *access point* serving a churning
population of short, heavy-tailed flows (the workload model of
:mod:`repro.fleet`).  For each offered load we simulate one fleet
shard per scheme — hundreds of arriving/leaving flows sharing the AP's
downlink while every acknowledgment fights over the slower uplink —
and compare aggregate goodput, tail flow-completion time, and the ACK
overhead and WLAN airtime the feedback stream costs.

Expected shape: at low load all schemes complete flows promptly; as
load approaches the downlink's capacity, per-packet ACKs saturate
uplink airtime first and delayed ACK second, while TACK's
RTT-modulated feedback keeps both ACK rate and p99 FCT flat the
longest (paper sections 2 and 5.4 extended to population scale).
"""

from __future__ import annotations

from repro.experiments.table import Table
from repro.fleet.shard import ShardSpec, run_shard
from repro.fleet.workload import WorkloadConfig
from repro.stats.streaming import LogHistogram

SCHEMES = (("tcp-tack", "tack"),
           ("tcp-bbr", "delack"),
           ("tcp-bbr-perpacket", "perpkt"))


def run(loads_hz=(10.0, 40.0, 80.0), duration_s: float = 12.0,
        size_median_bytes: int = 50_000, rate_bps: float = 100e6,
        uplink_bps: float = 20e6, rtt_s: float = 0.03,
        seed: int = 17) -> Table:
    table = Table(
        "Extension: fleet shard under offered-load sweep "
        "(TACK vs delayed vs per-packet ACK)",
        ["load_hz", "offered_mbps", "scheme", "flows", "goodput_mbps",
         "fct_p50_ms", "fct_p99_ms", "ack_per_data", "ack_airtime_%",
         "ack_energy_j", "ack_airtime_share"],
        note=(f"one AP shard per cell: {rate_bps/1e6:.0f} Mbps down / "
              f"{uplink_bps/1e6:.0f} Mbps up, RTT {rtt_s*1e3:.0f} ms, "
              f"log-normal flows (median {size_median_bytes//1000} kB), "
              f"{duration_s:.0f} s Poisson arrival window; airtime is "
              "uplink ACK DCF exchanges per measured second; "
              "ack_energy_j / ack_airtime_share from the radio energy "
              "ledger (WaveLAN draw model)"),
    )
    for load_hz in loads_hz:
        workload = WorkloadConfig(
            mean_arrival_hz=load_hz,
            duration_s=duration_s,
            size_median_bytes=size_median_bytes,
        )
        for scheme, _tag in SCHEMES:
            spec = ShardSpec(
                shard_id=0,
                scheme=scheme,
                seed=seed,
                workload=workload,
                rate_bps=rate_bps,
                uplink_rate_bps=uplink_bps,
                rtt_s=rtt_s,
            )
            result = run_shard(spec.to_dict())
            fct = LogHistogram.from_dict(result["digests"]["fct_s"])
            data = result["packets"]["data"]
            elapsed = result["elapsed_s"]
            table.add_row(
                load_hz=load_hz,
                offered_mbps=workload.offered_load_bps() / 1e6,
                scheme=scheme,
                flows=result["flows"]["completed"],
                goodput_mbps=(result["bytes"]["delivered"] * 8.0
                              / elapsed / 1e6),
                fct_p50_ms=(fct.quantile(50) * 1e3 if fct.count else None),
                fct_p99_ms=(fct.quantile(99) * 1e3 if fct.count else None),
                ack_per_data=(result["packets"]["acks"] / data
                              if data else 0.0),
                ack_energy_j=result["energy"]["ack_energy_j"],
                ack_airtime_share=result["energy"]["ack_airtime_share"],
                **{"ack_airtime_%":
                   result["airtime"]["ack_airtime_s"] / elapsed * 100.0},
            )
    return table


if __name__ == "__main__":
    run().show()
