"""Fig. 15: TCP friendliness of the TACK co-designed controllers.

Two flows share one randomized bottleneck (bandwidth 1-100 Mbps, RTT
1-200 ms, buffer 0.5-5 bdp) for 60 seconds; each flow's throughput is
reported as a ratio of its fair share.  The claim: TACK-BBR shares
like standard BBR (TACK is an ACK mechanism, not a new controller).
"""

from __future__ import annotations

import random

from repro.core.flavors import make_connection
from repro.experiments.table import Table
from repro.netsim.demux import share_path
from repro.netsim.emulator import EmulatedPath, PathConfig
from repro.netsim.engine import Simulator

PAIRS = [
    ("BBR vs CUBIC", ("tcp-bbr", "tcp-cubic")),
    ("TACK vs CUBIC", ("tcp-tack", "tcp-cubic")),
    ("TACK vs BBR", ("tcp-tack", "tcp-bbr")),
]


def _one_trial(schemes, seed: int, duration_s: float):
    rng = random.Random(seed)
    rate = rng.uniform(1e6, 100e6)
    rtt = rng.uniform(0.005, 0.2)
    buf = rng.uniform(0.5, 5.0)
    sim = Simulator(seed=seed)
    wan = EmulatedPath(
        sim,
        PathConfig(rate, rtt, max(int(buf * rate * rtt / 8), 20_000)),
    )
    ports = share_path(wan, len(schemes))
    flows = []
    for flow_id, (scheme, (fwd, rev)) in enumerate(zip(schemes, ports)):
        conn = make_connection(sim, scheme, flow_id=flow_id, initial_rtt_s=rtt)
        conn.wire(fwd, rev)
        flows.append(conn)
    for conn in flows:
        conn.start_bulk()
    sim.run(until=duration_s)
    fair = rate / len(schemes)
    ratios = []
    for conn in flows:
        delivered = conn.receiver.stats.bytes_delivered
        ratios.append(delivered * 8 / duration_s / fair)
    return ratios


def run(trials: int = 6, duration_s: float = 60.0, seed: int = 77) -> Table:
    table = Table(
        "Fig. 15: throughput / ideal fair share when sharing a bottleneck",
        ["pairing", "flow_a", "ratio_a", "flow_b", "ratio_b"],
        note=(f"{trials} randomized trials per pairing, {duration_s:.0f} s "
              "each; 1.0 = perfectly fair.  Paper: TACK flows share like "
              "their standard counterparts."),
    )
    for label, schemes in PAIRS:
        sums = [0.0, 0.0]
        for i in range(trials):
            ratios = _one_trial(schemes, seed + i, duration_s)
            sums[0] += ratios[0]
            sums[1] += ratios[1]
        table.add_row(
            pairing=label,
            flow_a=schemes[0], ratio_a=sums[0] / trials,
            flow_b=schemes[1], ratio_b=sums[1] / trials,
        )
    return table


if __name__ == "__main__":
    run().show()
