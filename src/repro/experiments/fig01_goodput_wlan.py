"""Fig. 1 / Fig. 10(a): TCP-TACK vs TCP BBR over 802.11b/g/n/ac.

Single bulk flow across one WLAN hop with the paper's testbed-typical
end-to-end latency; reports steady-state goodput, the goodput
improvement, and the fraction of ACKs removed.
"""

from __future__ import annotations

from repro.app.bulk import BulkFlow
from repro.experiments.table import Table
from repro.netsim.engine import Simulator
from repro.netsim.paths import wlan_path

PAPER_GOODPUT = {
    # Fig. 10(a): (TCP-TACK, TCP BBR) in Mbps
    "802.11b": (6.0, 5.0),
    "802.11g": (24.0, 19.0),
    "802.11n": (198.0, 155.0),
    "802.11ac": (556.0, 434.0),
}

PAPER_ACK_REDUCTION = {
    # Fig. 1: percentage of ACKs removed
    "802.11b": 90.5,
    "802.11g": 95.4,
    "802.11n": 99.4,
    "802.11ac": 99.8,
}


def _run_flow(scheme: str, phy: str, rtt_s: float, duration_s: float,
              warmup_s: float, seed: int):
    sim = Simulator(seed=seed)
    path = wlan_path(sim, phy, extra_rtt_s=rtt_s)
    flow = BulkFlow(sim, path, scheme, initial_rtt_s=rtt_s)
    flow.start()
    sim.run(until=duration_s)
    return {
        "goodput_mbps": flow.goodput_bps(start=warmup_s) / 1e6,
        "acks": flow.ack_count(),
        "data": flow.data_packet_count(),
    }


def run(rtt_s: float = 0.08, duration_s: float = 6.0, warmup_s: float = 2.0,
        seed: int = 5, phys=("802.11b", "802.11g", "802.11n", "802.11ac")) -> Table:
    table = Table(
        "Fig. 1 / Fig. 10(a): goodput and ACK reduction, TCP-TACK vs TCP BBR",
        [
            "link", "tack_mbps", "bbr_mbps", "improve_%", "paper_improve_%",
            "ack_reduction_%", "paper_reduction_%",
        ],
        note=(f"Bulk flow, RTT {rtt_s * 1e3:.0f} ms, "
              f"{duration_s - warmup_s:.0f} s steady state."),
    )
    for phy in phys:
        tack = _run_flow("tcp-tack", phy, rtt_s, duration_s, warmup_s, seed)
        bbr = _run_flow("tcp-bbr", phy, rtt_s, duration_s, warmup_s, seed)
        paper_t, paper_b = PAPER_GOODPUT[phy]
        table.add_row(
            link=phy,
            tack_mbps=tack["goodput_mbps"],
            bbr_mbps=bbr["goodput_mbps"],
            **{
                "improve_%": 100 * (tack["goodput_mbps"] / bbr["goodput_mbps"] - 1)
                if bbr["goodput_mbps"] else 0.0,
                "paper_improve_%": 100 * (paper_t / paper_b - 1),
                "ack_reduction_%": 100 * (1 - tack["acks"] / max(bbr["acks"], 1)),
                "paper_reduction_%": PAPER_ACK_REDUCTION[phy],
            },
        )
    return table


if __name__ == "__main__":
    run().show()
