"""Fig. 9: goodput improvement (a) and the ideal goodput trend (b).

(a) TACK-minus-BBR goodput per standard at RTT 10/80/200 ms — the gain
    grows with the PHY rate and is largely insensitive to latency.
(b) the *ideal* goodput of ACK thinning, measured with the UDP tool
    (no transport control loop to disturb): data offered at the UDP
    baseline rate, ACK every L packets; TACK's low periodic rate
    approaches the no-ACK upper bound.
"""

from __future__ import annotations

import math

from repro.app.bulk import BulkFlow
from repro.app.udp_blast import run_contention_trial
from repro.experiments.table import Table
from repro.netsim.engine import Simulator
from repro.netsim.paths import wlan_path
from repro.wlan.phy import get_profile


def run_improvement(rtts=(0.01, 0.08, 0.2), duration_s: float = 5.0,
                    warmup_s: float = 1.5, seed: int = 5,
                    phys=("802.11b", "802.11g", "802.11n", "802.11ac")) -> Table:
    table = Table(
        "Fig. 9(a): goodput improvement Goodput_tack - Goodput_tcp (Mbps)",
        ["link"] + [f"improve@{int(r*1e3)}ms" for r in rtts],
    )
    for phy in phys:
        row = {"link": phy}
        for rtt in rtts:
            vals = {}
            # Receive buffer must exceed the path bdp (Linux autotunes
            # this; 802.11ac at 200 ms RTT has a ~15 MB bdp).
            bdp = get_profile(phy).saturation_goodput_bps() * rtt / 8
            rcv_buffer = max(8 * 1024 * 1024, int(4 * bdp))
            for scheme in ("tcp-tack", "tcp-bbr"):
                sim = Simulator(seed=seed)
                path = wlan_path(sim, phy, extra_rtt_s=rtt)
                flow = BulkFlow(sim, path, scheme, initial_rtt_s=rtt,
                                rcv_buffer_bytes=rcv_buffer)
                flow.start()
                sim.run(until=duration_s)
                vals[scheme] = flow.goodput_bps(start=warmup_s) / 1e6
            row[f"improve@{int(rtt*1e3)}ms"] = vals["tcp-tack"] - vals["tcp-bbr"]
        table.add_row(**row)
    return table


def run_ideal(duration_s: float = 2.0, seed: int = 7,
              rtt_s: float = 0.08) -> Table:
    """Fig. 9(b) over 802.11n: ideal goodput per ACK policy.

    The offered rate is the UDP baseline (saturation), so any goodput
    shortfall is pure ACK overhead — the "positive effect" isolated
    from transport dynamics.  TACK's row uses its Eq. (3) ACK count
    (beta/RTT_min), emulated by the equivalent L.
    """
    phy = get_profile("802.11n")
    baseline = phy.saturation_goodput_bps()
    table = Table(
        "Fig. 9(b): ideal goodput of ACK thinning over 802.11n (Mbps)",
        ["policy", "ideal_goodput_mbps"],
        note=(f"Offered rate = UDP baseline {baseline/1e6:.0f} Mbps; "
              "TACK emulated at its Eq. (3) ACK rate "
              f"(RTT_min {rtt_s*1e3:.0f} ms)."),
    )

    class _HopPort:
        def __init__(self, tx, rx):
            self.tx, self.rx = tx, rx

        def send(self, p):
            return self.tx.send(p)

        def connect(self, sink):
            self.rx.connect(sink)

    def ideal(count_l: int) -> float:
        sim = Simulator(seed=seed)
        handle = wlan_path(sim, "802.11n")
        ap, sta = handle.stations
        result = run_contention_trial(
            sim, _HopPort(ap, sta), _HopPort(sta, ap),
            count_l=count_l, rate_bps=baseline, duration_s=duration_s,
            medium=handle.medium,
        )
        return result.data_throughput_bps / 1e6

    for L in (1, 2, 4, 8, 16):
        table.add_row(policy=f"TCP (L={L})", ideal_goodput_mbps=ideal(L))
    # TACK at beta/RTT_min ACKs per second == one ACK per
    # (pkt_rate * RTT_min / beta) packets.
    pkt_rate = baseline / (1500 * 8)
    tack_l = max(1, math.ceil(pkt_rate * rtt_s / 4.0))
    table.add_row(policy=f"TACK (L=2) ~1:{tack_l}", ideal_goodput_mbps=ideal(tack_l))
    table.add_row(policy="UDP baseline", ideal_goodput_mbps=baseline / 1e6)
    table.add_row(policy="PHY capacity", ideal_goodput_mbps=phy.phy_rate_bps / 1e6)
    return table


def run_doctor_compare(scheme: str = "tcp-tack", seed: int = 7) -> dict:
    """Fig. 9 companion: *why* does goodput drop under ACK impairment?

    Runs the same bulk transfer twice — clean path vs the Fig. 5(b)
    ``ack-path-loss`` chaos profile — diagnoses both with the live flow
    doctor, and returns the run-diff explanation attributing the
    goodput delta to send-limit states and anomalies (the programmatic
    twin of ``python -m repro.diagnose explain clean.json impaired.json``).
    """
    from repro.chaos.faults import FaultSchedule
    from repro.chaos.runner import run_scenario
    from repro.chaos.scenarios import Scenario, get_scenario
    from repro.diagnose import explain_reports

    impaired_scenario = get_scenario("ack-path-loss")
    clean_scenario = Scenario(
        "fig09-clean", "ack-path-loss topology with no faults armed",
        lambda: FaultSchedule([]),
        rate_bps=impaired_scenario.rate_bps,
        rtt_s=impaired_scenario.rtt_s,
        transfer_bytes=impaired_scenario.transfer_bytes,
        time_limit_s=impaired_scenario.time_limit_s,
    )
    clean = run_scenario(clean_scenario, scheme=scheme, seed=seed)
    impaired = run_scenario(impaired_scenario, scheme=scheme, seed=seed)
    explanation = explain_reports(clean.diagnosis, impaired.diagnosis,
                                  label_a="clean", label_b="impaired")
    return {
        "scheme": scheme,
        "seed": seed,
        "clean": clean.to_dict(),
        "impaired": impaired.to_dict(),
        "explanation": explanation,
    }


def doctor_compare_table(result: dict) -> Table:
    """Render :func:`run_doctor_compare` as the repo's standard table."""
    explanation = result["explanation"]
    table = Table(
        "Fig. 9 companion: goodput delta attribution (clean vs impaired)",
        ["state", "delta_s", "share"],
        note=explanation["headline"],
    )
    for entry in explanation["attribution"]:
        table.add_row(state=entry["state"], delta_s=entry["delta_s"],
                      share=entry.get("share"))
    return table


def run(**kwargs) -> Table:
    return run_improvement(**kwargs)


if __name__ == "__main__":
    run_improvement().show()
    run_ideal().show()
