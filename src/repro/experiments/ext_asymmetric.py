"""Extension experiment: asymmetric paths with a congested ACK channel.

The paper's Related Work argues TACK is more general than link-layer
ACK suppression because it "can be used to solve problems in
asymmetric networks where the ACK path is congested" [refs 13, 28, 34,
42, 64].  This bench quantifies that claim on an ADSL-style path: a
fast downlink whose uplink is orders of magnitude slower.

Legacy delayed ACK needs ~bw/(2*MSS) ACKs per second — at 64 bytes
each, a 100 Mbps downlink demands ~4.3 Mbps of uplink just for ACKs,
so a thin uplink throttles the download (the classic ACK-clock
starvation).  TACK's beta/RTT_min ACKs need a few kbit/s.
"""

from __future__ import annotations

from repro.app.bulk import BulkFlow
from repro.experiments.table import Table
from repro.netsim.emulator import EmulatedPath, PathConfig
from repro.netsim.engine import Simulator
from repro.netsim.paths import PathHandle


def _asymmetric_path(sim: Simulator, down_bps: float, up_bps: float,
                     rtt_s: float) -> PathHandle:
    wan = EmulatedPath(
        sim,
        PathConfig(
            down_bps,
            rtt_s,
            queue_bytes=int(down_bps * rtt_s / 8),
            reverse_rate_bps=up_bps,
            reverse_queue_bytes=max(int(up_bps * rtt_s / 8), 16_000),
        ),
    )
    return PathHandle(wan.forward, wan.reverse, wan=wan)


def run(down_bps: float = 100e6, rtt_s: float = 0.04,
        uplinks=(10e6, 1e6, 0.25e6, 0.1e6),
        duration_s: float = 10.0, warmup_s: float = 3.0,
        seed: int = 13) -> Table:
    table = Table(
        "Extension: downlink goodput over an asymmetric path",
        ["uplink_kbps", "bbr_mbps", "tack_mbps", "gain_%",
         "bbr_ack_kbps", "tack_ack_kbps"],
        note=(f"{down_bps/1e6:.0f} Mbps downlink, RTT {rtt_s*1e3:.0f} ms; "
              "the uplink carries only acknowledgments.  Legacy TCP's "
              "ACK stream saturates thin uplinks; TACK's does not."),
    )
    for up in uplinks:
        row = {}
        for scheme, tag in (("tcp-bbr", "bbr"), ("tcp-tack", "tack")):
            sim = Simulator(seed=seed)
            path = _asymmetric_path(sim, down_bps, up, rtt_s)
            flow = BulkFlow(sim, path, scheme, initial_rtt_s=rtt_s)
            flow.start()
            sim.run(until=duration_s)
            row[f"{tag}_mbps"] = flow.goodput_bps(start=warmup_s) / 1e6
            row[f"{tag}_ack_kbps"] = (
                path.wan.reverse.bytes_delivered * 8 / duration_s / 1e3
            )
        gain = (100 * (row["tack_mbps"] / row["bbr_mbps"] - 1)
                if row["bbr_mbps"] > 0 else float("inf"))
        table.add_row(uplink_kbps=up / 1e3, **row, **{"gain_%": gain})
    return table


if __name__ == "__main__":
    run().show()
