"""Regenerate every paper table/figure in one command.

Usage::

    python -m repro.experiments.run_all [--fast] [--out DIR]

``--fast`` shrinks durations ~3x for a quick smoke regeneration;
without it the defaults match the benchmark harness.  Tables are
printed and written to ``DIR`` (default ``benchmarks/results``).
"""

from __future__ import annotations

import argparse
import os
import time

from repro.experiments import (
    ablations,
    eq06_threshold,
    ext_asymmetric,
    ext_multiflow,
    ext_tcp_splitting,
    fig01_goodput_wlan,
    fig02_bitrates,
    fig03_contention,
    fig05a_holb,
    fig05b_rich_info,
    fig06a_rttmin,
    fig06b_owd_loss,
    fig08_ack_frequency,
    fig09_goodput_trend,
    fig10b_actual_goodput,
    fig11_miracast,
    fig13_hybrid,
    fig14_pantheon,
    fig15_friendliness,
    fig16_beta_bound,
    fig17_freq_model,
)


def experiment_plan(fast: bool):
    """(name, callable) for every experiment, durations scaled."""
    s = (1.0 / 3.0) if fast else 1.0

    def d(x):  # scaled duration with a floor
        return max(x * s, 2.0)

    return [
        ("fig01_goodput_wlan", lambda: fig01_goodput_wlan.run(duration_s=d(5), warmup_s=d(5) * 0.3)),
        ("fig02_bitrates", fig02_bitrates.run),
        ("fig03_contention", lambda: fig03_contention.run(duration_s=d(2))),
        ("fig03_contention_rate_adaptation",
         lambda: fig03_contention.run(duration_s=d(2), rate_adaptation=True,
                                      per_mpdu_error_rate=0.01)),
        ("fig05a_holb", lambda: fig05a_holb.run(trials=4 if fast else 8,
                                                duration_s=d(6))),
        ("fig05b_rich_info", lambda: fig05b_rich_info.run(duration_s=d(15), warmup_s=d(15) / 3)),
        ("fig06a_rttmin", lambda: fig06a_rttmin.run(duration_s=max(d(25), 12.0))),
        ("fig06b_owd_loss", lambda: fig06b_owd_loss.run(duration_s=d(15))),
        ("fig08a_ack_reduction", fig08_ack_frequency.run_analytic),
        ("fig08b_measured_frequency",
         lambda: fig08_ack_frequency.run_measured(duration_s=d(4))),
        ("fig09a_improvement",
         lambda: fig09_goodput_trend.run_improvement(duration_s=d(4), warmup_s=d(4) * 0.35,
                                                     rtts=(0.08, 0.2))),
        ("fig09b_ideal_goodput", lambda: fig09_goodput_trend.run_ideal(duration_s=d(2))),
        ("fig10b_actual_goodput",
         lambda: fig10b_actual_goodput.run(duration_s=d(5), warmup_s=d(5) * 0.4)),
        ("fig11_miracast", lambda: fig11_miracast.run(duration_s=d(15))),
        ("fig13_hybrid", lambda: fig13_hybrid.run(duration_s=d(8), warmup_s=d(8) / 4)),
        ("fig14_pantheon", lambda: fig14_pantheon.run(trials=4 if fast else 8,
                                                      duration_s=d(10), warmup_s=d(10) * 0.3)),
        ("fig15_friendliness",
         lambda: fig15_friendliness.run(trials=2 if fast else 4, duration_s=d(40))),
        ("fig16_beta_analytic", fig16_beta_bound.run_analytic),
        ("fig16_beta_simulated",
         lambda: fig16_beta_bound.run_simulated(duration_s=d(12), warmup_s=d(12) / 3)),
        ("fig17a_vs_bandwidth", fig17_freq_model.run_vs_bandwidth),
        ("fig17b_vs_rtt", fig17_freq_model.run_vs_rtt),
        ("eq06_analytic", eq06_threshold.run_analytic),
        ("eq06_simulated", lambda: eq06_threshold.run_simulated(duration_s=d(12), warmup_s=d(12) / 3)),
        ("ablation_beta_l", lambda: ablations.run_beta_l_sweep(duration_s=d(4), warmup_s=d(4) * 0.35)),
        ("ablation_pacing", lambda: ablations.run_pacing_ablation(duration_s=d(12), warmup_s=d(12) / 3)),
        ("ablation_governor", lambda: ablations.run_governor_ablation(duration_s=d(12))),
        ("ablation_rpc_latency", lambda: ablations.run_rpc_latency_ablation(duration_s=d(8))),
        ("ext_tcp_splitting", lambda: ext_tcp_splitting.run(duration_s=d(8), warmup_s=d(8) / 4)),
        ("ext_multiflow", lambda: ext_multiflow.run(duration_s=d(5), warmup_s=d(5) * 0.3)),
        ("ext_asymmetric", lambda: ext_asymmetric.run(duration_s=d(8), warmup_s=d(8) / 4)),
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="shrink durations ~3x for a smoke run")
    parser.add_argument("--out", default=os.path.join("benchmarks", "results"),
                        help="output directory for the tables")
    parser.add_argument("--only", default=None,
                        help="substring filter on experiment names")
    args = parser.parse_args(argv)
    plan = experiment_plan(args.fast)
    if args.only:
        plan = [(name, fn) for name, fn in plan if args.only in name]
        if not plan:
            parser.error(f"no experiment matches {args.only!r}")
    total_start = time.time()
    for name, fn in plan:
        start = time.time()
        table = fn()
        table.show()
        table.save(os.path.join(args.out, f"{name}.txt"))
        print(f"[{name}: {time.time() - start:.1f}s]\n")
    print(f"Regenerated {len(plan)} experiments in "
          f"{time.time() - total_start:.0f}s -> {args.out}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
