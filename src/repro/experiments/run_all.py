"""Regenerate every paper table/figure in one command.

Usage::

    python -m repro.experiments.run_all [--fast] [--out DIR] [--jobs N]
        [--only PAT[,PAT...]] [--list] [--no-cache] [--timeout S]
        [--retries K]

``--fast`` shrinks durations ~3x for a quick smoke regeneration;
without it the defaults match the benchmark harness.  Tables are
printed and written to ``DIR`` (default ``benchmarks/results``).

Experiments run through :mod:`repro.runner`: ``--jobs N`` fans them out
over N worker processes (results are deterministic and identical to a
serial run), results are cached on disk under ``DIR/.cache`` keyed by
(experiment, parameters, source fingerprint) so unchanged experiments
are instant on re-run, and a JSON manifest of per-task status, timing,
and cache behavior is written to ``DIR/run_manifest.json``.  A failed
experiment is reported in the summary instead of aborting the run; the
exit code is non-zero if any experiment failed.
"""

from __future__ import annotations

import argparse
import functools
import os
import time

from repro.experiments import (
    ablations,
    eq06_threshold,
    ext_asymmetric,
    ext_fleet,
    ext_multiflow,
    ext_tcp_splitting,
    fig01_goodput_wlan,
    fig02_bitrates,
    fig03_contention,
    fig05a_holb,
    fig05b_rich_info,
    fig06a_rttmin,
    fig06b_owd_loss,
    fig08_ack_frequency,
    fig09_goodput_trend,
    fig10b_actual_goodput,
    fig11_miracast,
    fig13_hybrid,
    fig14_pantheon,
    fig15_friendliness,
    fig16_beta_bound,
    fig17_freq_model,
)
from repro.runner import Campaign


def experiment_plan(fast: bool):
    """(name, callable) for every experiment, durations scaled.

    Every callable is a plain function or a :func:`functools.partial`
    of one, so the plan is picklable (ships to worker processes) and
    parameter-introspectable (feeds the result-cache key).
    """
    s = (1.0 / 3.0) if fast else 1.0

    def d(x):  # scaled duration with a floor
        return max(x * s, 2.0)

    p = functools.partial
    return [
        ("fig01_goodput_wlan", p(fig01_goodput_wlan.run, duration_s=d(5), warmup_s=d(5) * 0.3)),
        ("fig02_bitrates", fig02_bitrates.run),
        ("fig03_contention", p(fig03_contention.run, duration_s=d(2))),
        ("fig03_contention_rate_adaptation",
         p(fig03_contention.run, duration_s=d(2), rate_adaptation=True,
           per_mpdu_error_rate=0.01)),
        ("fig05a_holb", p(fig05a_holb.run, trials=4 if fast else 8,
                          duration_s=d(6))),
        ("fig05b_rich_info", p(fig05b_rich_info.run, duration_s=d(15), warmup_s=d(15) / 3)),
        ("fig06a_rttmin", p(fig06a_rttmin.run, duration_s=max(d(25), 12.0))),
        ("fig06b_owd_loss", p(fig06b_owd_loss.run, duration_s=d(15))),
        ("fig08a_ack_reduction", fig08_ack_frequency.run_analytic),
        ("fig08b_measured_frequency",
         p(fig08_ack_frequency.run_measured, duration_s=d(4))),
        ("fig09a_improvement",
         p(fig09_goodput_trend.run_improvement, duration_s=d(4), warmup_s=d(4) * 0.35,
           rtts=(0.08, 0.2))),
        ("fig09b_ideal_goodput", p(fig09_goodput_trend.run_ideal, duration_s=d(2))),
        ("fig10b_actual_goodput",
         p(fig10b_actual_goodput.run, duration_s=d(5), warmup_s=d(5) * 0.4)),
        ("fig11_miracast", p(fig11_miracast.run, duration_s=d(15))),
        ("fig13_hybrid", p(fig13_hybrid.run, duration_s=d(8), warmup_s=d(8) / 4)),
        ("fig14_pantheon", p(fig14_pantheon.run, trials=4 if fast else 8,
                             duration_s=d(10), warmup_s=d(10) * 0.3)),
        ("fig15_friendliness",
         p(fig15_friendliness.run, trials=2 if fast else 4, duration_s=d(40))),
        ("fig16_beta_analytic", fig16_beta_bound.run_analytic),
        ("fig16_beta_simulated",
         p(fig16_beta_bound.run_simulated, duration_s=d(12), warmup_s=d(12) / 3)),
        ("fig17a_vs_bandwidth", fig17_freq_model.run_vs_bandwidth),
        ("fig17b_vs_rtt", fig17_freq_model.run_vs_rtt),
        ("eq06_analytic", eq06_threshold.run_analytic),
        ("eq06_simulated", p(eq06_threshold.run_simulated, duration_s=d(12), warmup_s=d(12) / 3)),
        ("ablation_beta_l", p(ablations.run_beta_l_sweep, duration_s=d(4), warmup_s=d(4) * 0.35)),
        ("ablation_pacing", p(ablations.run_pacing_ablation, duration_s=d(12), warmup_s=d(12) / 3)),
        ("ablation_governor", p(ablations.run_governor_ablation, duration_s=d(12))),
        ("ablation_rpc_latency", p(ablations.run_rpc_latency_ablation, duration_s=d(8))),
        ("ext_tcp_splitting", p(ext_tcp_splitting.run, duration_s=d(8), warmup_s=d(8) / 4)),
        ("ext_multiflow", p(ext_multiflow.run, duration_s=d(5), warmup_s=d(5) * 0.3)),
        ("ext_asymmetric", p(ext_asymmetric.run, duration_s=d(8), warmup_s=d(8) / 4)),
        ("ext_fleet", p(ext_fleet.run, duration_s=d(12),
                        loads_hz=(10.0, 40.0) if fast else (10.0, 40.0, 80.0))),
    ]


def filter_plan(plan, only: str):
    """Keep experiments matching any comma-separated substring pattern."""
    patterns = [pat.strip() for pat in only.split(",") if pat.strip()]
    return [(name, fn) for name, fn in plan
            if any(pat in name for pat in patterns)]


def build_campaign(plan, base_seed: int = 1) -> Campaign:
    campaign = Campaign("run_all", base_seed=base_seed)
    for name, fn in plan:
        campaign.add(name, fn)
    return campaign


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="shrink durations ~3x for a smoke run")
    parser.add_argument("--out", default=os.path.join("benchmarks", "results"),
                        help="output directory for the tables")
    parser.add_argument("--only", default=None, metavar="PAT[,PAT...]",
                        help="run only experiments whose name contains any "
                             "of the comma-separated substrings")
    parser.add_argument("--list", action="store_true",
                        help="print experiment names (after --only "
                             "filtering) and exit without running")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default 1; results are "
                             "identical to a serial run)")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute everything, ignoring and not "
                             "updating the on-disk result cache")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="kill any experiment running longer than S "
                             "seconds (default: no timeout)")
    parser.add_argument("--retries", type=int, default=0, metavar="K",
                        help="retry a failed/timed-out/crashed experiment "
                             "up to K extra times (default 0)")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    plan = experiment_plan(args.fast)
    available = [name for name, _ in plan]
    if args.only:
        plan = filter_plan(plan, args.only)
        if not plan:
            parser.error(f"no experiment matches {args.only!r}; "
                         f"available: {', '.join(available)}")
    if args.list:
        for name, _ in plan:
            print(name)
        return 0

    os.makedirs(args.out, exist_ok=True)
    campaign = build_campaign(plan)
    total_start = time.time()

    def emit(result):
        """Print and persist each table as its task settles (tables
        stream out in completion order; files are what parity cares
        about)."""
        if result.ok:
            table = result.value
            table.show()
            table.save(os.path.join(args.out, f"{result.name}.txt"))
            tag = " (cached)" if result.cache == "hit" else ""
            print(f"[{result.name}: {result.wall_time_s:.1f}s{tag}]\n")
        else:
            print(f"[{result.name}: FAILED ({result.failure}) after "
                  f"{result.attempts} attempt(s) in "
                  f"{result.wall_time_s:.1f}s]")
            if result.error:
                print(result.error.rstrip())
            print()

    outcome = campaign.run(
        jobs=args.jobs,
        cache_dir=None if args.no_cache else os.path.join(args.out, ".cache"),
        timeout=args.timeout,
        retries=args.retries,
        manifest_path=os.path.join(args.out, "run_manifest.json"),
        on_result=emit,
    )

    hits = sum(1 for r in outcome.results if r.cache == "hit")
    cache_note = f" ({hits} cached)" if hits else ""
    print(f"Regenerated {len(outcome.ok)}/{len(plan)} experiments{cache_note} "
          f"in {time.time() - total_start:.0f}s -> {args.out}/")
    if outcome.failed:
        print("FAILED: " + ", ".join(r.name for r in outcome.failed))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
