"""Fig. 5(b): bandwidth utilization on a bidirectionally lossy path.

Long flow, RTT 200 ms, 1% data-path loss, ACK-path loss swept over
0.2-10%.  TACK-rich (many blocks per TACK) should be nearly insensitive
to ACK loss; TACK-poor (Q=1) and legacy TCP degrade.
"""

from __future__ import annotations

from repro.app.bulk import BulkFlow
from repro.experiments.table import Table
from repro.netsim.engine import Simulator
from repro.netsim.paths import wired_path

PAPER = {
    # ack_loss% -> (tack_rich, tack_poor, tcp_bbr) utilization %
    0.2: (92.7, 78.3, 91.7),
    1.0: (91.8, 75.9, 91.6),
    5.0: (91.6, 63.4, 80.2),
    10.0: (90.8, 60.6, 65.3),
}


def _utilization(scheme: str, ack_loss: float, rate_bps: float, rtt_s: float,
                 data_loss: float, duration_s: float, warmup_s: float,
                 seed: int) -> float:
    sim = Simulator(seed=seed)
    path = wired_path(sim, rate_bps, rtt_s,
                      queue_bytes=int(rate_bps * rtt_s / 8),
                      data_loss=data_loss, ack_loss=ack_loss)
    flow = BulkFlow(sim, path, scheme, initial_rtt_s=rtt_s)
    flow.start()
    sim.run(until=duration_s)
    return min(100.0, 100.0 * flow.goodput_bps(start=warmup_s) / rate_bps)


def run(rate_bps: float = 20e6, rtt_s: float = 0.2, data_loss: float = 0.03,
        duration_s: float = 20.0, warmup_s: float = 5.0, seed: int = 7) -> Table:
    """The paper uses 1% data loss; our TACK-poor recovers too well
    there (its HoLB keep-alive — a robustness extension — plus IACKs
    cover the losses).  At 3% the hole-arrival rate exceeds the Q=1
    serial repair capacity (beta/RTT_min), exposing the paper's
    contrast at high ACK loss; the paper's absolute columns are shown
    for reference.
    """
    table = Table(
        "Fig. 5(b): bandwidth utilization (%) vs ACK-path loss",
        ["ack_loss_%", "tack_rich", "tack_poor", "tcp_bbr",
         "paper_rich", "paper_poor", "paper_bbr"],
        note=(f"Long flow, {rate_bps/1e6:.0f} Mbps, RTT {rtt_s*1e3:.0f} ms, "
              f"{data_loss:.0%} data loss."),
    )
    schemes = {"tack_rich": "tcp-tack", "tack_poor": "tcp-tack-poor",
               "tcp_bbr": "tcp-bbr"}
    for ack_loss_pct, paper_vals in PAPER.items():
        row = {"ack_loss_%": ack_loss_pct}
        for col, scheme in schemes.items():
            row[col] = _utilization(
                scheme, ack_loss_pct / 100.0, rate_bps, rtt_s, data_loss,
                duration_s, warmup_s, seed,
            )
        row["paper_rich"], row["paper_poor"], row["paper_bbr"] = paper_vals
        table.add_row(**row)
    return table


if __name__ == "__main__":
    run().show()
