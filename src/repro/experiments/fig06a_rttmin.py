"""Fig. 6(a): RTT_min accuracy — advanced vs naive round-trip timing.

Two Wi-Fi endpoints with a fixed 100 ms bidirectional latency (paper
S5.2 microbenchmark).  The true minimum RTT is the configured latency
plus the unloaded medium service time; legacy one-sample-per-TACK
timing lands 8-18% above it because the sampled packet usually sat in
the bottleneck queue, while the advanced min-OWD reference tracks it.
"""

from __future__ import annotations

from repro.app.bulk import BulkFlow
from repro.experiments.table import Table
from repro.netsim.engine import Simulator
from repro.netsim.paths import wlan_path


def _estimate(scheme: str, rtt_s: float, duration_s: float, seed: int):
    sim = Simulator(seed=seed)
    path = wlan_path(sim, "802.11n", extra_rtt_s=rtt_s)
    flow = BulkFlow(sim, path, scheme, initial_rtt_s=rtt_s)
    flow.start()
    sim.run(until=duration_s)
    sender = flow.conn.sender
    return sender.rtt_min_est.rtt_min() * 1e3


def run(rtt_s: float = 0.1, duration_s: float = 25.0, seed: int = 5) -> Table:
    # The run must exceed the 10 s minimum-filter window so the
    # (unbiased) handshake RTT sample ages out and the estimate
    # reflects steady-state sampling, as in the paper's 25 s trace.
    advanced = _estimate("tcp-tack", rtt_s, duration_s, seed)
    naive = _estimate("tcp-tack-naive-timing", rtt_s, duration_s, seed)
    true_ms = rtt_s * 1e3  # plus ~sub-ms unloaded medium time
    table = Table(
        "Fig. 6(a): minimum RTT estimate (ms), fixed 100 ms latency",
        ["method", "rtt_min_ms", "bias_%"],
        note=("Paper: sampled (naive) estimates run 8-18% above the true "
              "minimum; the advanced OWD-referenced timing tracks it."),
    )
    table.add_row(method="true minimum", rtt_min_ms=true_ms, **{"bias_%": 0.0})
    table.add_row(method="advanced (TACK)", rtt_min_ms=advanced,
                  **{"bias_%": 100 * (advanced / true_ms - 1)})
    table.add_row(method="naive sampling", rtt_min_ms=naive,
                  **{"bias_%": 100 * (naive / true_ms - 1)})
    return table


if __name__ == "__main__":
    run().show()
