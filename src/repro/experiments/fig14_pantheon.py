"""Fig. 14: Pantheon-style WAN ranking by Kleinrock power.

The paper ranks 11 schemes on real Internet paths over 200 days by
log(mean throughput / 95th-pct OWD).  Substitution (DESIGN.md): the
measurement nodes become randomized emulated WAN paths (bandwidth,
RTT, buffer, loss, optional on/off cross traffic), and the scheme set
is restricted to the transports implemented in this repository — the
learned/exotic controllers (Indigo, PCC, Copa, Verus, Sprout) are
whole papers of their own.  The reproducible shape: delay-conscious
schemes (Vegas, TACK) rank near the top, loss-based CUBIC/Reno in the
middle, BBR behind them on buffer-bloated paths — matching the paper's
ordering of its common subset (Vegas 1st, TACK 2nd, CUBIC 3rd,
BBR 7th).
"""

from __future__ import annotations

from repro.app.bulk import BulkFlow
from repro.app.cross_traffic import OnOffCrossTraffic
from repro.experiments.table import Table
from repro.netsim.engine import Simulator
from repro.netsim.paths import wired_path
from repro.stats.ranking import rank_schemes

SCHEMES = ["tcp-tack", "tcp-vegas", "tcp-cubic", "tcp-reno", "tcp-bbr",
           "tcp-bbr-l16", "tcp-tack-poor"]

PAPER_ORDER = ("TCP Vegas", "TCP-TACK", "TCP CUBIC", "Indigo", "PCC-Vivace",
               "Copa", "TCP BBR", "PCC-Allegro", "QUIC CUBIC", "Verus",
               "Sprout")


def _trial(seed: int, duration_s: float, warmup_s: float) -> dict:
    import random
    rng = random.Random(seed)
    rate = rng.uniform(5e6, 100e6)
    rtt = rng.uniform(0.01, 0.2)
    buf = rng.uniform(0.5, 5.0)
    loss = rng.choice([0.0, 0.0, 0.001, 0.005])
    cross = rng.random() < 0.5
    scores = {}
    for scheme in SCHEMES:
        sim = Simulator(seed=seed)
        path = wired_path(sim, rate, rtt,
                          queue_bytes=max(int(buf * rate * rtt / 8), 20_000),
                          data_loss=loss)
        flow = BulkFlow(sim, path, scheme, initial_rtt_s=rtt)
        if cross:
            x = OnOffCrossTraffic(sim, path.forward, rate_bps=0.3 * rate)
            x.start()
        flow.start()
        sim.run(until=duration_s)
        try:
            scores[scheme] = flow.collector.power(start=warmup_s)
        except ValueError:
            scores[scheme] = float("-inf")
    return scores


def run(trials: int = 12, duration_s: float = 12.0, warmup_s: float = 4.0,
        seed: int = 50) -> Table:
    trial_scores = [_trial(seed + i, duration_s, warmup_s) for i in range(trials)]
    summaries = rank_schemes(trial_scores)
    table = Table(
        "Fig. 14: scheme ranking by Kleinrock power (1 = best)",
        ["scheme", "mean_rank", "q1", "median", "q3"],
        note=(f"{trials} randomized WAN trials (bw 5-100 Mbps, RTT 10-200 ms, "
              "buffer 0.5-5 bdp, optional loss/cross traffic). Paper's "
              "common-subset order: Vegas < TACK < CUBIC < BBR."),
    )
    for s in summaries:
        q1, q2, q3 = s.quartiles()
        table.add_row(scheme=s.scheme, mean_rank=s.mean, q1=q1, median=q2, q3=q3)
    return table


if __name__ == "__main__":
    run().show()
