"""Fig. 10(b): *actual* goodput of ACK-thinning under real transport.

802.11n, RTT 80 ms, 0.1% packet impairment on the data path (the
paper's network-emulator setting).  Legacy TCP with the thinning patch
(L = 4/8/16) does not follow the ideal trend — its loss recovery,
round-trip timing, and window updates are disturbed by the missing
ACK clock — while TCP-TACK approaches the ideal goodput.
"""

from __future__ import annotations

from repro.app.bulk import BulkFlow
from repro.experiments.table import Table
from repro.netsim.engine import Simulator
from repro.netsim.paths import wlan_path
from repro.wlan.phy import get_profile

SCHEMES = [
    ("TCP (L=1)", "tcp-bbr-perpacket"),
    ("TCP (L=2)", "tcp-bbr"),
    ("TCP (L=4)", "tcp-bbr-l4"),
    ("TCP (L=8)", "tcp-bbr-l8"),
    ("TCP (L=16)", "tcp-bbr-l16"),
    ("TACK (L=2)", "tcp-tack"),
]


def run(rtt_s: float = 0.08, duration_s: float = 6.0, warmup_s: float = 2.0,
        impairment: float = 0.001, seed: int = 5) -> Table:
    baseline = get_profile("802.11n").saturation_goodput_bps() / 1e6
    table = Table(
        "Fig. 10(b): actual goodput of ACK thinning (802.11n, rho=0.1%)",
        ["policy", "goodput_mbps", "acks", "rtos"],
        note=(f"UDP baseline (upper bound) = {baseline:.0f} Mbps; paper "
              "shape: L=4/8/16 fail to improve (transport disturbed), "
              "TACK approaches the bound."),
    )
    for label, scheme in SCHEMES:
        sim = Simulator(seed=seed)
        path = wlan_path(sim, "802.11n", extra_rtt_s=rtt_s,
                         per_mpdu_error_rate=impairment)
        flow = BulkFlow(sim, path, scheme, initial_rtt_s=rtt_s)
        flow.start()
        sim.run(until=duration_s)
        table.add_row(
            policy=label,
            goodput_mbps=flow.goodput_bps(start=warmup_s) / 1e6,
            acks=flow.ack_count(),
            rtos=flow.conn.sender.stats.rtos,
        )
    return table


if __name__ == "__main__":
    run().show()
