"""reprolint configuration.

Defaults are tuned for this repository; projects override them from a
``[tool.reprolint]`` table in ``pyproject.toml``.  The split matters
for REP001/REP002: *simulation* code must never touch the wall clock
or ambient RNG state, while *host-side* orchestration (the campaign
runner, the ``run_all`` driver) legitimately measures wall time — the
``exempt`` globs carve those files out.
"""

from __future__ import annotations

import fnmatch
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.lint.units.catalog import UnitsConfig, load_units_table

#: Globs (matched against ``/``-normalized paths) excluded from the
#: determinism rules REP001-REP003.  REP005 still applies: a mutable
#: default argument is a bug in host code too.
DEFAULT_EXEMPT = (
    "*/repro/runner/*",
    "*/repro/experiments/run_all.py",
    "*/repro/lint/*",
    "*/repro/telemetry/cli.py",
    "*/repro/telemetry/__main__.py",
    "*/repro/profile/*",
    "*/repro/bench/*",
    # fleet host plumbing: campaign orchestration, durable manifest
    # I/O, aggregation, CLI.  The *generators* (workload.py, shard.py)
    # are NOT here — they are simulation code and stay under the
    # determinism rules.
    "*/repro/fleet/cli.py",
    "*/repro/fleet/__main__.py",
    "*/repro/fleet/campaign.py",
    "*/repro/fleet/manifest.py",
    "*/repro/fleet/report.py",
)

#: Packages whose ``__init__`` constructors fall under the REP004
#: unit-suffix discipline (plus every function in ``core/params.py``).
DEFAULT_REP004_PACKAGES = (
    "netsim",
    "transport",
    "ack",
    "cc",
    "core",
    "wlan",
    "energy",
)

#: Suffixes that state a unit (or an explicit dimensionless kind).
DEFAULT_UNIT_SUFFIXES = (
    "_s",
    "_ms",
    "_us",
    "_ts",
    "_bytes",
    "_bits",
    "_bps",
    "_pps",
    "_mbps",
    "_hz",
    "_pkts",
    "_rtts",
    "_gain",
    "_factor",
    "_fraction",
    "_frac",
    "_ratio",
    "_rate",
    "_loss",
    "_pct",
    "_db",
    "_w",
    "_j",
)

#: Parameter names that are genuinely dimensionless or contextual and
#: therefore carry no suffix (``beta`` is the paper's ACKs-per-RTT).
DEFAULT_ALLOW_NAMES = ("seed", "default")

#: Identifier suffixes/names treated as clock readings by REP003.
DEFAULT_TIME_NAMES = ("now", "time", "deadline", "t")
DEFAULT_TIME_SUFFIXES = ("_s", "_ms", "_us", "_ts", "_time", "_at", "_ns")

#: Basenames under ``repro/telemetry/`` that run host-side (REP006
#: lets them read the wall clock for file naming / progress display).
DEFAULT_TELEMETRY_HOST_FILES = ("cli.py", "__main__.py", "convert.py")

#: Simulation-side packages covered by REP007 (profiler isolation) and
#: REP008 (no hard-coded RNG seeds): they may hold the null-guard
#: profiler hook but must not import ``repro.profile`` /
#: ``repro.bench``, touch a profiler reference unguarded, or bake a
#: literal seed into an RNG.
DEFAULT_SIM_PACKAGES = (
    "netsim",
    "transport",
    "ack",
    "cc",
    "core",
    "wlan",
    "chaos",
    "fleet",
    "energy",
    "diagnose",
    "adversary",
)

#: Globs carved *out* of the sim scope: host-side files living inside
#: a sim package.  ``repro.fleet`` is the motivating case — its
#: workload/shard generators are simulation code (REP007/REP008 apply)
#: while the campaign runner, manifest writer, aggregator, and CLI in
#: the same package are host orchestration.
DEFAULT_SIM_EXEMPT = (
    "*/repro/fleet/cli.py",
    "*/repro/fleet/__main__.py",
    "*/repro/fleet/campaign.py",
    "*/repro/fleet/manifest.py",
    "*/repro/fleet/report.py",
    # diagnose: the engine and the live doctor are simulation-side;
    # the trace replayer, explainer, and CLI are host tooling.
    "*/repro/diagnose/cli.py",
    "*/repro/diagnose/__main__.py",
    "*/repro/diagnose/offline.py",
    "*/repro/diagnose/explain.py",
    # adversary: the models and the fuzzer run inside the event loop;
    # the corpus CLI is host tooling.
    "*/repro/adversary/cli.py",
    "*/repro/adversary/__main__.py",
)


#: Globs of files skipped by *every* rule — intentionally-broken lint
#: fixtures must not fail the tree-wide run.
DEFAULT_EXCLUDE = ("*/tests/fixtures/*",)


@dataclass
class LintConfig:
    """Effective rule configuration for one lint run."""

    exclude: Sequence[str] = DEFAULT_EXCLUDE
    exempt: Sequence[str] = DEFAULT_EXEMPT
    rep004_packages: Sequence[str] = DEFAULT_REP004_PACKAGES
    unit_suffixes: Sequence[str] = DEFAULT_UNIT_SUFFIXES
    allow_names: Sequence[str] = DEFAULT_ALLOW_NAMES
    time_names: Sequence[str] = DEFAULT_TIME_NAMES
    time_suffixes: Sequence[str] = DEFAULT_TIME_SUFFIXES
    telemetry_host_files: Sequence[str] = DEFAULT_TELEMETRY_HOST_FILES
    sim_packages: Sequence[str] = DEFAULT_SIM_PACKAGES
    sim_exempt: Sequence[str] = DEFAULT_SIM_EXEMPT
    disabled_rules: Sequence[str] = field(default_factory=tuple)
    #: unitcheck (REP101-REP105) configuration; see
    #: :mod:`repro.lint.units.catalog` and ``[tool.reprolint.units]``.
    units: UnitsConfig = field(default_factory=UnitsConfig)

    # ------------------------------------------------------------------
    def is_excluded(self, path: str) -> bool:
        """True when *path* is skipped by every rule (lint fixtures)."""
        # Leading "/" so "*/tests/fixtures/*" also matches paths given
        # relative to the repo root ("tests/fixtures/...").
        norm = "/" + path.replace("\\", "/").lstrip("/")
        return any(fnmatch.fnmatch(norm, pat) for pat in self.exclude)

    def is_exempt(self, path: str) -> bool:
        """True when *path* is host-side code outside REP001-REP003."""
        norm = path.replace("\\", "/")
        return any(fnmatch.fnmatch(norm, pat) for pat in self.exempt)

    def in_rep004_scope(self, path: str) -> bool:
        """True when *path* holds simulator constructors (REP004)."""
        norm = path.replace("\\", "/")
        if norm.endswith("/core/params.py") or norm.endswith("core/params.py"):
            return True
        return any(f"/repro/{pkg}/" in norm for pkg in self.rep004_packages)

    def is_params_file(self, path: str) -> bool:
        norm = path.replace("\\", "/")
        return norm.endswith("core/params.py")

    def in_sim_scope(self, path: str) -> bool:
        """True when *path* is simulation-side code (REP007/REP008).

        A file is in scope when it lives under a sim package and does
        not match a ``sim_exempt`` glob (host-side plumbing that ships
        inside a sim package, like the fleet campaign CLI).
        """
        norm = path.replace("\\", "/")
        if not any(f"/repro/{pkg}/" in norm for pkg in self.sim_packages):
            return False
        return not any(fnmatch.fnmatch(norm, pat) for pat in self.sim_exempt)

    def has_unit_suffix(self, name: str) -> bool:
        return (
            name in self.allow_names
            or any(name.endswith(sfx) for sfx in self.unit_suffixes)
        )

    def is_time_name(self, name: str) -> bool:
        lowered = name.lower()
        return (
            lowered in self.time_names
            or any(lowered.endswith(sfx) for sfx in self.time_suffixes)
        )


def _load_toml(path: Path) -> dict:
    if sys.version_info >= (3, 11):
        import tomllib
    else:  # pragma: no cover - py<3.11 fallback
        try:
            import tomli as tomllib  # type: ignore[no-redef]
        except ImportError:
            return {}
    with open(path, "rb") as fh:
        return tomllib.load(fh)


def find_pyproject(start: Optional[Path] = None) -> Optional[Path]:
    """Walk upward from *start* looking for a ``pyproject.toml``."""
    node = (start or Path.cwd()).resolve()
    if node.is_file():
        node = node.parent
    for candidate in (node, *node.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(pyproject: Optional[Path] = None) -> LintConfig:
    """Build a :class:`LintConfig`, merging ``[tool.reprolint]`` overrides.

    List-valued keys *replace* the defaults except ``extend-exempt`` /
    ``extend-allow-names``, which append — the common case is adding a
    few repo-specific entries, not re-stating the whole default table.
    """
    config = LintConfig()
    if pyproject is None or not pyproject.is_file():
        return config
    table = _load_toml(pyproject).get("tool", {}).get("reprolint", {})
    if not isinstance(table, dict):
        return config

    def seq(key: str, current: Sequence[str]) -> Sequence[str]:
        value = table.get(key)
        if isinstance(value, list):
            return tuple(str(v) for v in value)
        return current

    config.exclude = seq("exclude", config.exclude)
    config.exempt = seq("exempt", config.exempt)
    config.rep004_packages = seq("rep004-packages", config.rep004_packages)
    config.unit_suffixes = seq("unit-suffixes", config.unit_suffixes)
    config.allow_names = seq("allow-names", config.allow_names)
    config.telemetry_host_files = seq("telemetry-host-files",
                                      config.telemetry_host_files)
    config.sim_packages = seq("sim-packages", config.sim_packages)
    config.sim_exempt = seq("sim-exempt", config.sim_exempt)
    config.disabled_rules = seq("disable", config.disabled_rules)
    units_table = table.get("units")
    if isinstance(units_table, dict):
        config.units = load_units_table(units_table)
    for key, attr in (("extend-exempt", "exempt"),
                      ("extend-allow-names", "allow_names"),
                      ("extend-sim-exempt", "sim_exempt")):
        extra = table.get(key)
        if isinstance(extra, list):
            setattr(config, attr,
                    tuple(getattr(config, attr)) + tuple(str(v) for v in extra))
    return config
