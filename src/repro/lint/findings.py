"""The Finding record — leaf module so every lint layer can import it.

Rules, the units checker, the baseline, and the engine all produce or
consume findings; keeping the dataclass dependency-free avoids import
cycles between them (config depends on the units catalog, rules depend
on config).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    code: str
    message: str
    path: str
    line: int
    col: int

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
