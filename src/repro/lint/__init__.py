"""reprolint: determinism lint for the TACK reproduction.

Repo-specific static analysis that keeps the simulator replayable:

==========  =====================================================
REP001      no wall-clock reads in simulation code
REP002      no ambient/unseeded RNG in simulation code
REP003      no float ``==``/``!=`` on clock values
REP004      unit-suffix discipline for numeric parameters
REP005      no mutable default arguments
==========  =====================================================

Run ``python -m repro.lint src/`` (or the ``reprolint`` entry point);
suppress individual findings with ``# reprolint: disable=REPxxx``.
Configuration lives in ``[tool.reprolint]`` in ``pyproject.toml``.
"""

from repro.lint.config import LintConfig, load_config
from repro.lint.engine import lint_file, lint_paths, lint_source
from repro.lint.rules import RULES, RULE_SUMMARIES, Finding

__all__ = [
    "Finding",
    "LintConfig",
    "RULES",
    "RULE_SUMMARIES",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_config",
]
