"""reprolint: determinism + unit/dimension lint for the TACK reproduction.

Repo-specific static analysis that keeps the simulator replayable and
dimensionally sound:

==========  =====================================================
REP001      no wall-clock reads in simulation code
REP002      no ambient/unseeded RNG in simulation code
REP003      no float ``==``/``!=`` on clock values
REP004      unit-suffix discipline for numeric parameters
REP005      no mutable default arguments
REP006      sim-side telemetry stamps events from the sim clock
REP007      profiler isolation in simulation code
REP008      no hard-coded RNG seeds in simulation code
REP009      unused ``reprolint`` pragma (``--report-unused-pragmas``)
REP101-105  unit/dimension dataflow analysis (``--units``); see
            :mod:`repro.lint.units`
==========  =====================================================

Run ``python -m repro.lint src/`` (or the ``reprolint`` entry point);
``--units`` adds the inter-procedural unit checker, ``--jobs N``
parallelizes across files.  Suppress individual findings with
``# reprolint: disable=REPxxx``; pre-existing unit findings live in
the committed baseline (``reprolint-units.baseline.json``).
Configuration lives in ``[tool.reprolint]`` / ``[tool.reprolint.units]``
in ``pyproject.toml``.
"""

from repro.lint.config import LintConfig, load_config
from repro.lint.engine import LintResult, lint_file, lint_paths, lint_source
from repro.lint.findings import Finding
from repro.lint.rules import RULES, RULE_SUMMARIES
from repro.lint.units import UNIT_RULE_SUMMARIES, UnitsConfig, analyze_units

__all__ = [
    "Finding",
    "LintConfig",
    "LintResult",
    "RULES",
    "RULE_SUMMARIES",
    "UNIT_RULE_SUMMARIES",
    "UnitsConfig",
    "analyze_units",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_config",
]
