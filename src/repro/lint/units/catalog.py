"""The unit catalog: how names map to units.

Three layers, each overridable from ``[tool.reprolint.units]``:

1. **Suffixes** — the tree-wide naming convention from PR 2
   (``rtt_s``, ``queue_bytes``, ``rate_bps``, ``alpha_pkts``).  The
   suffix is a *declaration*: the checker trusts it as the variable's
   unit and reports values of a conflicting inferred unit (REP104).
2. **Prefixes** — counter idiom (``bytes_delivered``,
   ``packets_lost``): the quantity leads instead of trailing.
3. **Signatures** — a curated table of APIs whose parameter/return
   units the names alone don't state (``sim.now() -> s``,
   ``Clock.advance_to(t: s)``, ``serialization_delay(...) -> s``).
   Entries are keyed ``Class.method`` or bare ``function``; bare keys
   also match method calls through *any* receiver, which is what makes
   ``self.sim.now()`` resolvable without whole-program type inference.

The catalog is deliberately small: inference does the heavy lifting,
the catalog only seeds the places the convention cannot reach.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.lint.units.algebra import (
    BPS,
    BYTES,
    DB,
    DIMENSIONLESS,
    HZ,
    PKTS,
    PPS,
    SECONDS,
    Unit,
    UnitError,
    parse_unit,
)

#: Name suffix -> unit.  Mirrors ``DEFAULT_UNIT_SUFFIXES`` in
#: :mod:`repro.lint.config`; every REP004-recognized suffix must appear
#: here so the two rule families agree on what counts as "declared".
DEFAULT_SUFFIX_UNITS: Dict[str, Unit] = {
    "_s": SECONDS,
    "_ms": SECONDS,
    "_us": SECONDS,
    "_ns": SECONDS,
    "_ts": SECONDS,
    "_bytes": BYTES,
    "_bits": BYTES,
    "_bps": BPS,
    "_mbps": BPS,
    "_kbps": BPS,
    "_pps": PPS,
    "_hz": HZ,
    "_pkts": PKTS,
    "_db": DB,
    # explicitly dimensionless kinds
    "_rtts": DIMENSIONLESS,
    "_gain": DIMENSIONLESS,
    "_factor": DIMENSIONLESS,
    "_fraction": DIMENSIONLESS,
    "_frac": DIMENSIONLESS,
    "_ratio": DIMENSIONLESS,
    "_rate": DIMENSIONLESS,
    "_loss": DIMENSIONLESS,
    "_pct": DIMENSIONLESS,
    "_prob": DIMENSIONLESS,
}

#: Leading-quantity counter idiom -> unit.
DEFAULT_PREFIX_UNITS: Dict[str, Unit] = {
    "bytes_": BYTES,
    "bits_": BYTES,
    "pkts_": PKTS,
    "packets_": PKTS,
}

#: Exact identifiers with a known unit: protocol constants plus the
#: handful of conventional spellings (``now`` is always the sim clock,
#: ``nbytes`` the pythonic byte count) that predate the suffix scheme.
DEFAULT_CONSTANT_UNITS: Dict[str, Unit] = {
    "MSS": BYTES,
    "MTU": BYTES,
    "now": SECONDS,
    "nbytes": BYTES,
}

#: Curated API signatures: key -> ({param name: unit}, return unit).
#: ``None`` return means "no information" (not dimensionless!).
_SIG = Tuple[Dict[str, Unit], Optional[Unit]]

DEFAULT_SIGNATURES: Dict[str, _SIG] = {
    # the virtual clock and event loop
    "now": ({}, SECONDS),
    "Clock.advance_to": ({"t": SECONDS}, None),
    "Clock.advance_by": ({"dt": SECONDS}, None),
    "call_in": ({"delay": SECONDS}, None),
    "call_at": ({"t": SECONDS, "when": SECONDS}, None),
    "Simulator.run": ({"until": SECONDS}, None),
    # links
    "serialization_delay": ({"size_bytes": BYTES}, SECONDS),
    "Link.set_rate": ({"rate_bps": BPS}, None),
    "Link.set_delay": ({"delay_s": SECONDS}, None),
    # Eq. (3) machinery
    "tack_interval": ({"bw_bps": BPS, "rtt_min_s": SECONDS}, SECONDS),
    "tack_frequency": ({"bw_bps": BPS, "rtt_min_s": SECONDS}, HZ),
    "is_periodic_regime": ({"bdp_bytes": BYTES}, None),
    # profiler histogram buckets are wall-clock seconds
    "Profiler.observe": ({"elapsed_s": SECONDS}, None),
    # host wall clock (units still flow through host-side code)
    "time.time": ({}, SECONDS),
    "time.monotonic": ({}, SECONDS),
    "time.perf_counter": ({}, SECONDS),
}

#: Parameter/variable names that are deliberately unitless (`beta` is
#: the paper's ACKs-per-RTT; `seed` never enters arithmetic).
DEFAULT_DIMENSIONLESS_NAMES = ("beta", "seed", "alpha", "gamma", "rho",
                               "weight", "scale", "jobs")

#: Globs (on ``/``-normalized paths) where REP105 applies: simulation
#: code whose arithmetic must be unit-attributable.  Host-side
#: orchestration is exempt from the strict rule but still gets
#: REP101-REP104.
DEFAULT_STRICT_PATHS = (
    "*/repro/netsim/*",
    "*/repro/transport/*",
    "*/repro/ack/*",
    "*/repro/cc/*",
    "*/repro/core/*",
    "*/repro/wlan/*",
)

#: Default committed-baseline filename, resolved against the pyproject
#: directory.
DEFAULT_BASELINE = "reprolint-units.baseline.json"


@dataclass
class UnitsConfig:
    """Effective unitcheck configuration for one run."""

    suffix_units: Mapping[str, Unit] = field(
        default_factory=lambda: dict(DEFAULT_SUFFIX_UNITS))
    prefix_units: Mapping[str, Unit] = field(
        default_factory=lambda: dict(DEFAULT_PREFIX_UNITS))
    constant_units: Mapping[str, Unit] = field(
        default_factory=lambda: dict(DEFAULT_CONSTANT_UNITS))
    signatures: Mapping[str, _SIG] = field(
        default_factory=lambda: dict(DEFAULT_SIGNATURES))
    dimensionless_names: Sequence[str] = DEFAULT_DIMENSIONLESS_NAMES
    strict_paths: Sequence[str] = DEFAULT_STRICT_PATHS
    baseline: str = DEFAULT_BASELINE
    disabled: Sequence[str] = ()

    # ------------------------------------------------------------------
    def name_unit(self, name: str) -> Optional[Unit]:
        """Declared unit of an identifier, or None when it says nothing."""
        if name in self.dimensionless_names:
            return DIMENSIONLESS
        if name in self.constant_units:
            return self.constant_units[name]
        for suffix in sorted(self.suffix_units, key=len, reverse=True):
            if name.endswith(suffix) and len(name) > len(suffix):
                return self.suffix_units[suffix]
        for prefix, unit in self.prefix_units.items():
            if name.startswith(prefix) and len(name) > len(prefix):
                return unit
        return None

    def has_declared_unit(self, name: str) -> bool:
        return self.name_unit(name) is not None

    def signature(self, qualname: str) -> Optional[_SIG]:
        """Catalog signature for ``Class.method`` / bare ``name`` keys."""
        if qualname in self.signatures:
            return self.signatures[qualname]
        leaf = qualname.rpartition(".")[2]
        return self.signatures.get(leaf)

    def in_strict_scope(self, path: str) -> bool:
        norm = path.replace("\\", "/")
        return any(fnmatch.fnmatch(norm, pat) for pat in self.strict_paths)


def _parse_sig_table(table: Mapping) -> Dict[str, _SIG]:
    """``[tool.reprolint.units.signatures]`` -> signature entries.

    TOML shape (``returns`` optional, empty string = dimensionless)::

        [tool.reprolint.units.signatures."Link.set_rate"]
        params = { rate_bps = "bps" }
        returns = ""
    """
    out: Dict[str, _SIG] = {}
    for key, spec in table.items():
        if not isinstance(spec, Mapping):
            raise UnitError(f"signature {key!r} must be a table, "
                            f"got {type(spec).__name__}")
        params = {str(p): parse_unit(str(u))
                  for p, u in dict(spec.get("params", {})).items()}
        ret_raw = spec.get("returns")
        returns = None
        if ret_raw is not None:
            returns = (DIMENSIONLESS if str(ret_raw) == ""
                       else parse_unit(str(ret_raw)))
        out[str(key)] = (params, returns)
    return out


def load_units_table(table: Mapping) -> UnitsConfig:
    """Build a :class:`UnitsConfig` from a ``[tool.reprolint.units]``
    table (raises :class:`UnitError` on bad unit spellings)."""
    config = UnitsConfig()
    if not isinstance(table, Mapping):
        return config

    suffixes = table.get("suffixes")
    if isinstance(suffixes, Mapping):
        merged = dict(config.suffix_units)
        merged.update({str(k): parse_unit(str(v))
                       for k, v in suffixes.items()})
        config.suffix_units = merged
    constants = table.get("constants")
    if isinstance(constants, Mapping):
        merged = dict(config.constant_units)
        merged.update({str(k): parse_unit(str(v))
                       for k, v in constants.items()})
        config.constant_units = merged
    signatures = table.get("signatures")
    if isinstance(signatures, Mapping):
        merged_sigs = dict(config.signatures)
        merged_sigs.update(_parse_sig_table(signatures))
        config.signatures = merged_sigs
    names = table.get("dimensionless-names")
    if isinstance(names, list):
        config.dimensionless_names = tuple(str(v) for v in names)
    extend_names = table.get("extend-dimensionless-names")
    if isinstance(extend_names, list):
        config.dimensionless_names = tuple(config.dimensionless_names) + \
            tuple(str(v) for v in extend_names)
    strict = table.get("strict-paths")
    if isinstance(strict, list):
        config.strict_paths = tuple(str(v) for v in strict)
    baseline = table.get("baseline")
    if isinstance(baseline, str):
        config.baseline = baseline
    disabled = table.get("disable")
    if isinstance(disabled, list):
        config.disabled = tuple(str(v) for v in disabled)
    return config
