"""Symbol-table model for the unit checker.

Pass 1 of the analysis turns every module into a :class:`ModuleSummary`
— a picklable, AST-free description of its functions, classes,
attribute units, and imports.  Summaries from the whole file set are
then stitched into a :class:`UnitIndex`, which is what makes the
checker *inter-procedural*: a call site in one module resolves to the
parameter/return units of a callee summarized from another.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lint.units.algebra import Unit
from repro.lint.units.catalog import UnitsConfig


@dataclass
class ParamInfo:
    """One parameter of a summarized function."""

    name: str
    unit: Optional[Unit]          # declared by suffix or catalog
    annotation: Optional[str]     # best-effort class name for typing


@dataclass
class FunctionInfo:
    """Unit signature of one function or method."""

    name: str
    qualname: str                 # "Link.set_rate" / "wired_path"
    module: str                   # dotted module name
    line: int
    params: List[ParamInfo] = field(default_factory=list)
    declared_return: Optional[Unit] = None   # from name suffix / catalog
    inferred_return: Optional[Unit] = None   # filled by the infer round
    is_method: bool = False

    @property
    def return_unit(self) -> Optional[Unit]:
        return (self.declared_return if self.declared_return is not None
                else self.inferred_return)

    def param(self, name: str) -> Optional[ParamInfo]:
        for p in self.params:
            if p.name == name:
                return p
        return None


@dataclass
class ClassInfo:
    """Unit-relevant view of one class."""

    name: str
    module: str
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: units of *unsuffixed* attributes inferred from ``__init__``
    #: (suffixed attributes resolve through the catalog instead).
    attr_units: Dict[str, Unit] = field(default_factory=dict)
    #: best-effort attribute -> class-name typing for receiver lookup.
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleSummary:
    """Everything the cross-module pass needs to know about one file."""

    path: str
    module: str                   # dotted name ("repro.netsim.link")
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: local name -> dotted target; a target may be a module
    #: ("repro.netsim.link") or a symbol ("repro.netsim.link.Link").
    imports: Dict[str, str] = field(default_factory=dict)


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------

def module_name_for(path: str) -> str:
    """Dotted module name from a file path.

    Components after the last ``src`` directory form the name, so the
    repo layout maps naturally; files outside a ``src`` tree use their
    bare stem (which is what the test fixtures rely on).
    """
    norm = path.replace("\\", "/")
    parts = [p for p in norm.split("/") if p]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    if not parts:
        return "<module>"
    known_roots = ("repro",)
    for root in known_roots:
        if root in parts:
            return ".".join(parts[parts.index(root):])
    return parts[-1]


def annotation_class(node: Optional[ast.AST]) -> Optional[str]:
    """Extract a class name from an annotation, best effort.

    Handles ``Link``, ``mod.Link``, ``Optional[Link]``, ``Link | None``
    and string annotations of those shapes; returns None otherwise.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Name):
        return node.id if node.id[:1].isupper() else None
    if isinstance(node, ast.Attribute):
        return node.attr if node.attr[:1].isupper() else None
    if isinstance(node, ast.Subscript):
        base = node.value
        base_name = base.id if isinstance(base, ast.Name) else (
            base.attr if isinstance(base, ast.Attribute) else "")
        if base_name in ("Optional", "Final", "ClassVar", "Annotated",
                         "List", "Sequence", "Iterable", "Tuple"):
            inner = node.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            return annotation_class(inner)
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return annotation_class(node.left) or annotation_class(node.right)
    return None


def _function_info(node: ast.AST, qualprefix: str, module: str,
                   uconfig: UnitsConfig, is_method: bool) -> FunctionInfo:
    qualname = f"{qualprefix}{node.name}"
    args = node.args
    positional = list(args.posonlyargs) + list(args.args)
    if is_method and positional:
        positional = positional[1:]            # drop self/cls
    catalog = uconfig.signature(qualname) or ({}, None)
    cat_params, cat_return = catalog
    params: List[ParamInfo] = []
    for arg in positional + list(args.kwonlyargs):
        unit = uconfig.name_unit(arg.arg)
        if unit is None:
            unit = cat_params.get(arg.arg)
        params.append(ParamInfo(arg.arg, unit, annotation_class(arg.annotation)))
    declared = uconfig.name_unit(node.name)
    if declared is None:
        declared = cat_return
    return FunctionInfo(
        name=node.name, qualname=qualname, module=module,
        line=node.lineno, params=params, declared_return=declared,
        is_method=is_method,
    )


def _collect_attrs(cls: ClassInfo, node: ast.ClassDef,
                   uconfig: UnitsConfig) -> None:
    """Light attribute inference: suffixed params assigned in methods,
    constructor calls, and class-name annotations."""
    for item in node.body:
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            klass = annotation_class(item.annotation)
            if klass:
                cls.attr_types.setdefault(item.target.id, klass)
    for method in node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        param_units = {p.name: p.unit
                       for p in cls.methods[method.name].params} \
            if method.name in cls.methods else {}
        param_types = {p.name: p.annotation
                       for p in cls.methods[method.name].params} \
            if method.name in cls.methods else {}
        for stmt in ast.walk(method):
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets, value = [stmt.target], stmt.value
                klass = annotation_class(stmt.annotation)
                if (klass and isinstance(stmt.target, ast.Attribute)
                        and isinstance(stmt.target.value, ast.Name)
                        and stmt.target.value.id == "self"):
                    cls.attr_types.setdefault(stmt.target.attr, klass)
            for target in targets:
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                attr = target.attr
                if uconfig.has_declared_unit(attr):
                    continue                    # the suffix rules
                if isinstance(value, ast.Name):
                    unit = param_units.get(value.id)
                    if unit is None:
                        unit = uconfig.name_unit(value.id)
                    if unit is not None and attr not in cls.attr_units:
                        cls.attr_units[attr] = unit
                    klass = param_types.get(value.id)
                    if klass:
                        cls.attr_types.setdefault(attr, klass)
                elif isinstance(value, ast.Call):
                    callee = value.func
                    name = (callee.id if isinstance(callee, ast.Name)
                            else callee.attr if isinstance(callee, ast.Attribute)
                            else "")
                    if name[:1].isupper():
                        cls.attr_types.setdefault(attr, name)


def build_summary(tree: ast.AST, path: str,
                  uconfig: UnitsConfig) -> ModuleSummary:
    """Pass 1: summarize one parsed module (no body dataflow yet)."""
    module = module_name_for(path)
    summary = ModuleSummary(path=path, module=module)
    package = module.rpartition(".")[0]

    for node in tree.body if isinstance(tree, ast.Module) else []:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.partition(".")[0]
                target = alias.name if alias.asname else alias.name.partition(".")[0]
                summary.imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                prefix = module if path.replace("\\", "/").endswith("__init__.py") \
                    else package
                for _ in range(node.level - 1):
                    prefix = prefix.rpartition(".")[0]
                base = f"{prefix}.{base}" if base else prefix
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                summary.imports[local] = f"{base}.{alias.name}" if base \
                    else alias.name
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = _function_info(node, "", module, uconfig, is_method=False)
            summary.functions[node.name] = info
        elif isinstance(node, ast.ClassDef):
            cls = ClassInfo(name=node.name, module=module)
            for base in node.bases:
                if isinstance(base, ast.Name):
                    cls.bases.append(base.id)
                elif isinstance(base, ast.Attribute):
                    cls.bases.append(base.attr)
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    cls.methods[item.name] = _function_info(
                        item, f"{node.name}.", module, uconfig, is_method=True)
            _collect_attrs(cls, node, uconfig)
            summary.classes[node.name] = cls
    return summary


@dataclass
class UnitIndex:
    """The project-wide symbol table the checker resolves against."""

    modules: Dict[str, ModuleSummary] = field(default_factory=dict)

    def add(self, summary: ModuleSummary) -> None:
        self.modules[summary.module] = summary

    # ------------------------------------------------------------------
    def find_module(self, dotted: str) -> Optional[ModuleSummary]:
        if dotted in self.modules:
            return self.modules[dotted]
        tail = "." + dotted
        matches = sorted(name for name in self.modules if name.endswith(tail))
        if matches:
            return self.modules[matches[0]]
        # The inverse: a bare-stem module ("producer") requested through
        # its package-qualified spelling ("pkg.producer").  Prefer the
        # longest known name that is a dotted suffix of the request.
        reverse = sorted((name for name in self.modules
                          if dotted.endswith("." + name)),
                         key=lambda n: (-len(n), n))
        return self.modules[reverse[0]] if reverse else None

    def resolve_import(self, summary: ModuleSummary,
                       name: str) -> Optional[Tuple[ModuleSummary, str]]:
        """Resolve a local *name* through the module's imports.

        Returns ``(defining module, symbol name)`` for symbol imports
        or ``(module, "")`` for module imports; None when unresolved.
        """
        target = summary.imports.get(name)
        if target is None:
            return None
        mod = self.find_module(target)
        if mod is not None:
            return (mod, "")
        head, _, leaf = target.rpartition(".")
        if head:
            mod = self.find_module(head)
            if mod is not None and (leaf in mod.functions
                                    or leaf in mod.classes
                                    or leaf in mod.imports):
                if leaf in mod.imports and leaf not in mod.functions \
                        and leaf not in mod.classes:
                    # re-export: chase one hop (enough for __init__.py).
                    return self.resolve_import(mod, leaf)
                return (mod, leaf)
        return None

    def resolve_class(self, summary: ModuleSummary,
                      name: str) -> Optional[ClassInfo]:
        if name in summary.classes:
            return summary.classes[name]
        resolved = self.resolve_import(summary, name)
        if resolved is not None:
            mod, leaf = resolved
            if leaf and leaf in mod.classes:
                return mod.classes[leaf]
        # last resort: unique class of that name anywhere in the index
        owners = sorted(m for m in self.modules
                        if name in self.modules[m].classes)
        if len(owners) == 1:
            return self.modules[owners[0]].classes[name]
        return None

    def resolve_function(self, summary: ModuleSummary,
                         name: str) -> Optional[FunctionInfo]:
        if name in summary.functions:
            return summary.functions[name]
        resolved = self.resolve_import(summary, name)
        if resolved is not None:
            mod, leaf = resolved
            if leaf and leaf in mod.functions:
                return mod.functions[leaf]
        return None

    def method_of(self, cls: Optional[ClassInfo],
                  name: str) -> Optional[FunctionInfo]:
        """Method lookup walking base classes, best effort."""
        seen = 0
        while cls is not None and seen < 8:
            if name in cls.methods:
                return cls.methods[name]
            if not cls.bases:
                return None
            base_name = cls.bases[0]
            owner = self.modules.get(cls.module)
            cls = self.resolve_class(owner, base_name) if owner else None
            seen += 1
        return None

    def class_attr_unit(self, cls: Optional[ClassInfo],
                        name: str) -> Optional[Unit]:
        seen = 0
        while cls is not None and seen < 8:
            if name in cls.attr_units:
                return cls.attr_units[name]
            owner = self.modules.get(cls.module)
            cls = (self.resolve_class(owner, cls.bases[0])
                   if owner and cls.bases else None)
            seen += 1
        return None

    def class_attr_type(self, cls: Optional[ClassInfo],
                        name: str) -> Optional[str]:
        seen = 0
        while cls is not None and seen < 8:
            if name in cls.attr_types:
                return cls.attr_types[name]
            owner = self.modules.get(cls.module)
            cls = (self.resolve_class(owner, cls.bases[0])
                   if owner and cls.bases else None)
            seen += 1
        return None
