"""The ratchet baseline: pre-existing findings that may only shrink.

Turning the unit checker on against a grown tree yields findings that
predate it.  Rather than blocking the gate (or watering the rules
down), those land in a committed JSON baseline: a baselined finding is
reported as suppressed, a *new* finding still fails, and a baselined
finding that no longer occurs makes its entry **stale** — the ratchet.
CI fails on stale entries until the baseline is regenerated
(``--write-baseline``), so the count monotonically decreases.

Entries are keyed ``(path, code, message)`` with a multiplicity count,
*not* by line number: unrelated edits move lines constantly, and a
line-keyed baseline would churn on every refactor.  Paths are stored
``/``-normalized and relative to the baseline file's directory so the
file is portable across checkouts.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.lint.findings import Finding

SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted pre-existing finding (with multiplicity)."""

    path: str
    code: str
    message: str
    count: int = 1

    def key(self) -> Tuple[str, str, str]:
        return (self.path, self.code, self.message)


def _normalize(path: str, root: Path) -> str:
    """Finding path -> baseline key: relative to *root*, forward slashes."""
    norm = path.replace("\\", "/")
    try:
        rel = os.path.relpath(norm, str(root))
    except ValueError:              # different drive on Windows
        return norm
    rel = rel.replace("\\", "/")
    return norm if rel.startswith("..") else rel


@dataclass
class Baseline:
    """A loaded baseline plus match bookkeeping for one lint run."""

    root: Path
    entries: Dict[Tuple[str, str, str], int] = field(default_factory=dict)
    matched: Dict[Tuple[str, str, str], int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file (missing file -> empty baseline)."""
        baseline = cls(root=path.resolve().parent)
        if not path.is_file():
            return baseline
        payload = json.loads(path.read_text(encoding="utf-8"))
        for raw in payload.get("entries", []):
            entry = BaselineEntry(raw["path"], raw["code"], raw["message"],
                                  int(raw.get("count", 1)))
            baseline.entries[entry.key()] = entry.count
        return baseline

    @classmethod
    def from_findings(cls, findings: Sequence[Finding],
                      root: Path) -> "Baseline":
        baseline = cls(root=root.resolve())
        for finding in findings:
            key = (_normalize(finding.path, baseline.root), finding.code,
                   finding.message)
            baseline.entries[key] = baseline.entries.get(key, 0) + 1
        return baseline

    # ------------------------------------------------------------------
    def suppresses(self, finding: Finding) -> bool:
        """True when *finding* is covered (and consume one count)."""
        key = (_normalize(finding.path, self.root), finding.code,
               finding.message)
        allowed = self.entries.get(key, 0)
        used = self.matched.get(key, 0)
        if used < allowed:
            self.matched[key] = used + 1
            return True
        return False

    def stale_entries(self) -> List[BaselineEntry]:
        """Entries (or residual counts) nothing matched this run."""
        stale: List[BaselineEntry] = []
        for key in sorted(self.entries):
            residual = self.entries[key] - self.matched.get(key, 0)
            if residual > 0:
                path, code, message = key
                stale.append(BaselineEntry(path, code, message, residual))
        return stale

    @property
    def size(self) -> int:
        return sum(self.entries.values())

    # ------------------------------------------------------------------
    def save(self, path: Path) -> None:
        entries = [
            {"path": p, "code": c, "message": m, "count": n}
            for (p, c, m), n in sorted(self.entries.items())
        ]
        payload = {
            "schema": "reprolint-baseline",
            "version": SCHEMA_VERSION,
            "entries": entries,
        }
        path.write_text(json.dumps(payload, indent=2) + "\n",
                        encoding="utf-8")
