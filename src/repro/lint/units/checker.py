"""Pass 2: unit dataflow over function bodies, with call-site checks.

One inference engine serves two rounds.  The *infer* round runs every
function body silently to learn return units for functions whose names
declare nothing (``def serialization_delay(...)`` returning
``size_bytes * 8.0 / self.rate_bps`` infers ``s``... well, ``bps``
inverted — the algebra decides).  The *check* round runs the same
dataflow again, now against the completed :class:`UnitIndex`, and
emits findings:

==========  =========================================================
REP101      mixed-unit arithmetic / comparison / ``min``-``max``
REP102      argument unit conflicts with the callee's parameter unit
REP103      return value conflicts with the function's declared unit
REP104      unit-suffixed target assigned a conflicting unit
REP105      unsuffixed parameter meets unit-carrying arithmetic
            (strict/simulation scope only)
==========  =========================================================

The lattice is deliberately shallow: a value's unit is either a
concrete :class:`Unit` or unknown (``None``), and **only provable
conflicts between two concrete units are reported** — unknown never
fires a diagnostic (except REP105, whose entire point is "this value
*should* have been attributable").  Numeric literals are wildcards
under ``+``/``-``/comparison (``rtt_s + 0.01`` is idiomatic) and
dimensionless under ``*``/``/`` (so ``1.0 / interval_s`` is ``hz``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding
from repro.lint.units.algebra import Unit
from repro.lint.units.catalog import UnitsConfig
from repro.lint.units.model import (
    ClassInfo,
    FunctionInfo,
    ModuleSummary,
    UnitIndex,
    annotation_class,
    build_summary,
    module_name_for,
)

__all__ = [
    "UNIT_RULE_SUMMARIES",
    "UnitIndex",
    "analyze_units",
    "build_summary",
    "check_module",
    "infer_returns",
    "resolve_index",
]

UNIT_RULE_SUMMARIES: Dict[str, str] = {
    "REP101": "mixed-unit arithmetic (e.g. seconds added to bytes)",
    "REP102": "call argument unit conflicts with the callee parameter",
    "REP103": "return unit conflicts with the function's declared unit",
    "REP104": "unit-suffixed name assigned a conflicting unit",
    "REP105": "unsuffixed parameter in unit-sensitive arithmetic "
              "(simulation scope)",
}

def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name for a Name/Attribute chain ('' if other)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


#: Builtins whose result keeps the single argument's unit.
_PASSTHROUGH = ("abs", "float", "round")

#: Builtins whose arguments must share a unit; result keeps it.
_AGREEING = ("min", "max")


@dataclass
class Val:
    """A value during inference: its unit (None = unknown) and, when it
    is a bare reference to an unsuffixed parameter, that provenance
    (drives REP105)."""

    unit: Optional[Unit] = None
    param: Optional[str] = None
    literal: bool = False
    klass: Optional[ClassInfo] = None


_NOTHING = Val()


class _FunctionChecker:
    """Dataflow over one function body."""

    def __init__(self, engine: "_ModuleChecker", info: Optional[FunctionInfo],
                 node: ast.AST, self_class: Optional[ClassInfo],
                 emit: bool) -> None:
        self.engine = engine
        self.index = engine.index
        self.uconfig = engine.uconfig
        self.info = info
        self.node = node
        self.self_class = self_class
        self.emit_enabled = emit
        self.env: Dict[str, Optional[Unit]] = {}
        self.types: Dict[str, Optional[ClassInfo]] = {}
        self.unsuffixed_params: set = set()
        self.rep105_fired: set = set()
        self.return_units: List[Tuple[Unit, ast.AST]] = []
        self._bind_params()

    # ------------------------------------------------------------------
    def _bind_params(self) -> None:
        args = self.node.args
        names = [a for a in (list(args.posonlyargs) + list(args.args)
                             + list(args.kwonlyargs))]
        if args.vararg is not None:
            names.append(args.vararg)
        if args.kwarg is not None:
            names.append(args.kwarg)
        strict = self.engine.strict
        for i, arg in enumerate(names):
            if i == 0 and self.info is not None and self.info.is_method:
                continue                       # self/cls
            unit = self.uconfig.name_unit(arg.arg)
            if unit is None and self.info is not None:
                p = self.info.param(arg.arg)
                if p is not None:
                    unit = p.unit
            self.env[arg.arg] = unit
            klass = None
            ann = arg.annotation
            if ann is not None:
                name = annotation_class(ann)
                if name:
                    klass = self.index.resolve_class(self.engine.summary, name)
            self.types[arg.arg] = klass
            if (unit is None and strict
                    and arg.arg not in self.uconfig.dimensionless_names
                    and not _is_non_numeric_annotation(ann)):
                self.unsuffixed_params.add(arg.arg)

    # ------------------------------------------------------------------
    def emit(self, code: str, message: str, node: ast.AST) -> None:
        if self.emit_enabled:
            self.engine.findings.append(Finding(
                code, message, self.engine.path,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0)))

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def run(self) -> None:
        for stmt in self.node.body:
            self.stmt(stmt)

    def stmt(self, node: ast.AST) -> None:
        if isinstance(node, ast.Assign):
            val = self.expr(node.value)
            for target in node.targets:
                self.assign(target, val, node)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self.assign(node.target, self.expr(node.value), node)
        elif isinstance(node, ast.AugAssign):
            target_val = self.expr(node.target)
            value_val = self.expr(node.value)
            result = self._binop_value(node.op, target_val, value_val, node)
            self.assign(node.target, result, node)
        elif isinstance(node, ast.Return):
            if node.value is not None and not _is_none(node.value):
                val = self.expr(node.value)
                if val.unit is not None:
                    self.return_units.append((val.unit, node))
                    self._check_return(val.unit, node)
        elif isinstance(node, (ast.Expr, ast.Assert)):
            self.expr(node.value if isinstance(node, ast.Expr) else node.test)
            if isinstance(node, ast.Assert) and node.msg is not None:
                self.expr(node.msg)
        elif isinstance(node, (ast.If, ast.While)):
            self.expr(node.test)
            for child in node.body:
                self.stmt(child)
            for child in node.orelse:
                self.stmt(child)
        elif isinstance(node, ast.For):
            iter_val = self.expr(node.iter)
            if isinstance(node.target, ast.Name):
                declared = self.uconfig.name_unit(node.target.id)
                self.env[node.target.id] = (declared if declared is not None
                                            else iter_val.unit)
            for child in node.body:
                self.stmt(child)
            for child in node.orelse:
                self.stmt(child)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                self.expr(item.context_expr)
            for child in node.body:
                self.stmt(child)
        elif isinstance(node, ast.Try):
            for block in (node.body, node.orelse, node.finalbody):
                for child in block:
                    self.stmt(child)
            for handler in node.handlers:
                for child in handler.body:
                    self.stmt(child)
        elif isinstance(node, ast.Raise):
            if node.exc is not None:
                self.expr(node.exc)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested = _FunctionChecker(self.engine, None, node,
                                      self.self_class, self.emit_enabled)
            nested.run()
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        # pass/break/continue/global/import/class: nothing to learn

    # ------------------------------------------------------------------
    def assign(self, target: ast.AST, val: Val, stmt: ast.AST) -> None:
        if isinstance(target, ast.Name):
            declared = self.uconfig.name_unit(target.id)
            if declared is not None:
                if val.unit is not None and not declared.compatible(val.unit):
                    self.emit("REP104",
                              f"`{target.id}` declares unit `{declared}` by "
                              f"suffix but is assigned a value of unit "
                              f"`{val.unit}`", target)
                self.env[target.id] = declared
            else:
                self.env[target.id] = val.unit
            self.types[target.id] = val.klass
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                if isinstance(elt, ast.Name):
                    declared = self.uconfig.name_unit(elt.id)
                    self.env[elt.id] = declared
                    self.types[elt.id] = None
        elif isinstance(target, ast.Attribute):
            self.expr(target.value)
            declared = self._attribute_unit(target)
            if (declared is not None and val.unit is not None
                    and not declared.compatible(val.unit)):
                self.emit("REP104",
                          f"`{_render(target)}` declares unit `{declared}` "
                          f"but is assigned a value of unit `{val.unit}`",
                          target)
        elif isinstance(target, ast.Subscript):
            self.expr(target.value)
        elif isinstance(target, ast.Starred):
            self.assign(target.value, _NOTHING, stmt)

    def _check_return(self, unit: Unit, node: ast.AST) -> None:
        info = self.info
        if info is None:
            return
        if (info.declared_return is not None
                and not info.declared_return.compatible(unit)):
            self.emit("REP103",
                      f"`{info.qualname}` declares return unit "
                      f"`{info.declared_return}` but returns a value of "
                      f"unit `{unit}`", node)
        elif info.declared_return is None and self.return_units:
            first_unit, _first_node = self.return_units[0]
            if not first_unit.compatible(unit):
                self.emit("REP103",
                          f"`{info.qualname}` returns conflicting units: "
                          f"`{first_unit}` and `{unit}`", node)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def expr(self, node: ast.AST) -> Val:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or node.value is None \
                    or isinstance(node.value, (str, bytes)):
                return _NOTHING
            return Val(literal=True)
        if isinstance(node, ast.Name):
            return self._name(node)
        if isinstance(node, ast.Attribute):
            return self._attribute(node)
        if isinstance(node, ast.BinOp):
            left = self.expr(node.left)
            right = self.expr(node.right)
            return self._binop_value(node.op, left, right, node,
                                     right_node=node.right)
        if isinstance(node, ast.UnaryOp):
            val = self.expr(node.operand)
            if isinstance(node.op, ast.Not):
                return _NOTHING
            return Val(unit=val.unit, param=val.param, literal=val.literal)
        if isinstance(node, ast.Compare):
            self._compare(node)
            return _NOTHING
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.BoolOp):
            vals = [self.expr(v) for v in node.values]
            units = [v.unit for v in vals if v.unit is not None]
            if units and all(u.compatible(units[0]) for u in units[1:]):
                return Val(unit=units[0])
            return _NOTHING
        if isinstance(node, ast.IfExp):
            self.expr(node.test)
            a = self.expr(node.body)
            b = self.expr(node.orelse)
            if a.unit is not None and b.unit is not None \
                    and a.unit.compatible(b.unit):
                return Val(unit=a.unit)
            return Val(unit=a.unit or b.unit) if (a.unit is None
                                                  or b.unit is None) \
                else _NOTHING
        if isinstance(node, ast.Subscript):
            container = self.expr(node.value)
            self.expr(node.slice)
            # a container named with a unit suffix holds elements of
            # that unit (``edges_s[0]`` is seconds).
            return Val(unit=container.unit)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                self.expr(elt)
            return _NOTHING
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self.expr(key)
            for value in node.values:
                self.expr(value)
            return _NOTHING
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            return self._comprehension(node)
        if isinstance(node, ast.Lambda):
            nested = _FunctionChecker(self.engine, None, _LambdaShim(node),
                                      self.self_class, self.emit_enabled)
            nested.env.update({k: v for k, v in self.env.items()})
            nested.types.update({k: v for k, v in self.types.items()})
            for arg in node.args.args:
                nested.env[arg.arg] = self.uconfig.name_unit(arg.arg)
            nested.expr(node.body)
            return _NOTHING
        if isinstance(node, ast.Starred):
            return self.expr(node.value)
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self.expr(value.value)
            return _NOTHING
        if isinstance(node, ast.NamedExpr):
            val = self.expr(node.value)
            self.assign(node.target, val, node)
            return val
        if isinstance(node, ast.Await):
            return self.expr(node.value)
        return _NOTHING

    # ------------------------------------------------------------------
    def _name(self, node: ast.Name) -> Val:
        name = node.id
        if name in self.env:
            unit = self.env[name]
            if unit is None:
                declared = self.uconfig.name_unit(name)
                if declared is not None:
                    unit = declared
            param = name if (unit is None
                             and name in self.unsuffixed_params) else None
            return Val(unit=unit, param=param, klass=self.types.get(name))
        unit = self.uconfig.name_unit(name)
        if unit is not None:
            return Val(unit=unit)
        klass = self.index.resolve_class(self.engine.summary, name) \
            if name[:1].isupper() else None
        return Val(klass=klass)

    def _attribute_unit(self, node: ast.Attribute) -> Optional[Unit]:
        attr = node.attr
        declared = self.uconfig.name_unit(attr)
        if declared is not None:
            return declared
        owner = self._receiver_class(node.value)
        if owner is not None:
            return self.index.class_attr_unit(owner, attr)
        return None

    def _attribute(self, node: ast.Attribute) -> Val:
        self.expr(node.value)
        unit = self._attribute_unit(node)
        klass = None
        owner = self._receiver_class(node.value)
        if owner is not None:
            type_name = self.index.class_attr_type(owner, node.attr)
            if type_name:
                klass = self.index.resolve_class(self.engine.summary,
                                                 type_name)
        return Val(unit=unit, klass=klass)

    def _receiver_class(self, node: ast.AST) -> Optional[ClassInfo]:
        """Best-effort class of an expression used as a receiver."""
        if isinstance(node, ast.Name):
            if node.id in ("self", "cls"):
                return self.self_class
            return self.types.get(node.id)
        if isinstance(node, ast.Attribute):
            owner = self._receiver_class(node.value)
            if owner is not None:
                type_name = self.index.class_attr_type(owner, node.attr)
                if type_name:
                    return self.index.resolve_class(self.engine.summary,
                                                    type_name)
            return None
        if isinstance(node, ast.Call):
            return self._call_silent_type(node)
        return None

    def _call_silent_type(self, node: ast.Call) -> Optional[ClassInfo]:
        func = node.func
        if isinstance(func, ast.Name):
            return self.index.resolve_class(self.engine.summary, func.id)
        return None

    # ------------------------------------------------------------------
    def _binop_value(self, op: ast.AST, left: Val, right: Val,
                     node: ast.AST, right_node: Optional[ast.AST] = None) -> Val:
        if isinstance(op, (ast.Add, ast.Sub)):
            if left.unit is not None and right.unit is not None:
                if not left.unit.compatible(right.unit):
                    verb = "added to" if isinstance(op, ast.Add) \
                        else "subtracted from"
                    self.emit("REP101",
                              f"mixed units: `{right.unit}` {verb} "
                              f"`{left.unit}`", node)
                    return _NOTHING
                return Val(unit=left.unit)
            self._rep105(left, right, node, "arithmetic")
            return Val(unit=left.unit or right.unit)
        if isinstance(op, ast.Mult):
            if left.unit is not None and right.unit is not None:
                return Val(unit=left.unit.mul(right.unit))
            if left.unit is not None and right.literal:
                return Val(unit=left.unit)
            if right.unit is not None and left.literal:
                return Val(unit=right.unit)
            return _NOTHING
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            if left.unit is not None and right.unit is not None:
                return Val(unit=left.unit.div(right.unit))
            if left.unit is not None and right.literal:
                return Val(unit=left.unit)
            if right.unit is not None and left.literal:
                return Val(unit=right.unit.invert())
            return _NOTHING
        if isinstance(op, ast.Mod):
            if left.unit is not None and right.unit is not None \
                    and not left.unit.compatible(right.unit) \
                    and not right.unit.is_dimensionless:
                self.emit("REP101",
                          f"mixed units: `{left.unit}` modulo "
                          f"`{right.unit}`", node)
                return _NOTHING
            return Val(unit=left.unit)
        if isinstance(op, ast.Pow):
            exp_node = right_node
            if (left.unit is not None and isinstance(exp_node, ast.Constant)
                    and isinstance(exp_node.value, int)
                    and not isinstance(exp_node.value, bool)):
                return Val(unit=left.unit.pow(exp_node.value))
            return _NOTHING
        return _NOTHING

    def _compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        vals = [self.expr(operand) for operand in operands]
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE,
                                   ast.Eq, ast.NotEq)):
                continue
            left, right = vals[i], vals[i + 1]
            if left.unit is not None and right.unit is not None:
                if not left.unit.compatible(right.unit):
                    self.emit("REP101",
                              f"comparison between `{left.unit}` and "
                              f"`{right.unit}`", node)
            else:
                self._rep105(left, right, node, "a comparison")

    def _rep105(self, left: Val, right: Val, node: ast.AST,
                context: str) -> None:
        for a, b in ((left, right), (right, left)):
            if (a.unit is not None and not a.unit.is_dimensionless
                    and b.param is not None
                    and b.param not in self.rep105_fired):
                self.rep105_fired.add(b.param)
                self.emit("REP105",
                          f"parameter `{b.param}` has no unit suffix but "
                          f"meets `{a.unit}` in {context}; rename it "
                          f"(e.g. `{b.param}_{_suggest(a.unit)}`) or add "
                          "it to dimensionless-names", node)

    # ------------------------------------------------------------------
    def _comprehension(self, node: ast.AST) -> Val:
        for gen in node.generators:
            iter_val = self.expr(gen.iter)
            if isinstance(gen.target, ast.Name):
                declared = self.uconfig.name_unit(gen.target.id)
                self.env[gen.target.id] = (declared if declared is not None
                                           else iter_val.unit)
            elif isinstance(gen.target, (ast.Tuple, ast.List)):
                for elt in gen.target.elts:
                    if isinstance(elt, ast.Name):
                        self.env[elt.id] = self.uconfig.name_unit(elt.id)
            for cond in gen.ifs:
                self.expr(cond)
        if isinstance(node, ast.DictComp):
            self.expr(node.key)
            self.expr(node.value)
            return _NOTHING
        element = self.expr(node.elt)
        return Val(unit=element.unit)

    # ------------------------------------------------------------------
    def _call(self, node: ast.Call) -> Val:
        func = node.func
        # builtins with unit semantics
        if isinstance(func, ast.Name):
            if func.id in _AGREEING:
                return self._agreeing_call(node, func.id)
            if func.id in _PASSTHROUGH and len(node.args) == 1:
                return Val(unit=self.expr(node.args[0]).unit)
            if func.id == "int" and len(node.args) == 1:
                return Val(unit=self.expr(node.args[0]).unit)
            if func.id == "sum" and node.args:
                val = self.expr(node.args[0])
                for extra in node.args[1:]:
                    self.expr(extra)
                return Val(unit=val.unit)
            if func.id == "len":
                for arg in node.args:
                    self.expr(arg)
                return _NOTHING
        info, receiver_hint = self._resolve_call(func)
        arg_vals = [self.expr(arg) for arg in node.args]
        kw_vals = {kw.arg: self.expr(kw.value) for kw in node.keywords}
        if info is not None:
            self._check_args(node, info, arg_vals, kw_vals)
            klass = None
            if receiver_hint is not None and info.name == "__init__":
                klass = receiver_hint
            return Val(unit=info.return_unit, klass=klass)
        # catalog fallback by (dotted or bare) name
        sig = self._catalog_signature(func)
        if sig is not None:
            params, returns = sig
            self._check_catalog_args(node, func, params, arg_vals, kw_vals)
            return Val(unit=returns)
        return _NOTHING

    def _agreeing_call(self, node: ast.Call, name: str) -> Val:
        vals = [self.expr(arg) for arg in node.args]
        for kw in node.keywords:
            self.expr(kw.value)
        concrete = [(v, arg) for v, arg in zip(vals, node.args)
                    if v.unit is not None]
        for (v, _a), (w, _b) in zip(concrete, concrete[1:]):
            if not v.unit.compatible(w.unit):
                self.emit("REP101",
                          f"`{name}()` mixes units `{v.unit}` and "
                          f"`{w.unit}`", node)
                return _NOTHING
        if concrete:
            for v in vals:
                if v.unit is None:
                    self._rep105(concrete[0][0], v, node, f"`{name}()`")
            return Val(unit=concrete[0][0].unit)
        return _NOTHING

    # ------------------------------------------------------------------
    def _resolve_call(self, func: ast.AST) \
            -> Tuple[Optional[FunctionInfo], Optional[ClassInfo]]:
        summary = self.engine.summary
        if isinstance(func, ast.Name):
            name = func.id
            fn = self.index.resolve_function(summary, name)
            if fn is not None:
                return fn, None
            cls = self.index.resolve_class(summary, name)
            if cls is not None:
                ctor = self.index.method_of(cls, "__init__")
                return ctor, cls
            return None, None
        if isinstance(func, ast.Attribute):
            # module.function(...) through an import
            if isinstance(func.value, ast.Name):
                resolved = self.index.resolve_import(summary, func.value.id)
                if resolved is not None:
                    mod, leaf = resolved
                    if not leaf:
                        if func.attr in mod.functions:
                            return mod.functions[func.attr], None
                        if func.attr in mod.classes:
                            cls = mod.classes[func.attr]
                            return self.index.method_of(cls, "__init__"), cls
            owner = self._receiver_class(func.value)
            if owner is not None:
                method = self.index.method_of(owner, func.attr)
                if method is not None:
                    return method, None
        return None, None

    def _catalog_signature(self, func: ast.AST):
        dotted = _dotted(func)
        if dotted:
            sig = self.uconfig.signatures.get(dotted)
            if sig is not None:
                return sig
        if isinstance(func, ast.Attribute):
            owner = self._receiver_class(func.value)
            if owner is not None:
                sig = self.uconfig.signatures.get(f"{owner.name}.{func.attr}")
                if sig is not None:
                    return sig
            return self.uconfig.signatures.get(func.attr)
        if isinstance(func, ast.Name):
            return self.uconfig.signatures.get(func.id)
        return None

    # ------------------------------------------------------------------
    def _check_args(self, node: ast.Call, info: FunctionInfo,
                    arg_vals: List[Val], kw_vals: Dict[str, Val]) -> None:
        for i, (arg_node, val) in enumerate(zip(node.args, arg_vals)):
            if isinstance(arg_node, ast.Starred):
                break
            if i >= len(info.params):
                break
            self._check_one_arg(node, info, info.params[i].name,
                                info.params[i].unit, val)
        for kw in node.keywords:
            if kw.arg is None:
                continue
            param = info.param(kw.arg)
            if param is not None:
                self._check_one_arg(node, info, param.name, param.unit,
                                    kw_vals[kw.arg])

    def _check_one_arg(self, node: ast.Call, info: FunctionInfo,
                       param_name: str, param_unit: Optional[Unit],
                       val: Val) -> None:
        if param_unit is None or val.unit is None:
            return
        if val.literal:
            return
        if not param_unit.compatible(val.unit):
            self.emit("REP102",
                      f"argument of unit `{val.unit}` passed to parameter "
                      f"`{param_name}` of `{info.qualname}` "
                      f"(declared `{param_unit}`)", node)

    def _check_catalog_args(self, node: ast.Call, func: ast.AST,
                            params: Dict[str, Unit],
                            arg_vals: List[Val],
                            kw_vals: Dict[str, Val]) -> None:
        label = _dotted(func) or (func.attr if isinstance(func, ast.Attribute)
                                  else "<call>")
        ordered = list(params.items())
        for i, (arg_node, val) in enumerate(zip(node.args, arg_vals)):
            if isinstance(arg_node, ast.Starred) or i >= len(ordered):
                break
            name, unit = ordered[i]
            if val.unit is not None and not val.literal \
                    and not unit.compatible(val.unit):
                self.emit("REP102",
                          f"argument of unit `{val.unit}` passed to "
                          f"parameter `{name}` of `{label}` "
                          f"(declared `{unit}`)", node)
        for kw in node.keywords:
            if kw.arg in params:
                val = kw_vals[kw.arg]
                unit = params[kw.arg]
                if val.unit is not None and not val.literal \
                        and not unit.compatible(val.unit):
                    self.emit("REP102",
                              f"argument of unit `{val.unit}` passed to "
                              f"parameter `{kw.arg}` of `{label}` "
                              f"(declared `{unit}`)", node)


class _LambdaShim:
    """Adapts a Lambda to the body/args interface the checker walks."""

    def __init__(self, node: ast.Lambda) -> None:
        self.args = node.args
        self.body: List[ast.AST] = []
        self.lineno = node.lineno


def _is_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _is_non_numeric_annotation(node: Optional[ast.AST]) -> bool:
    """True when an annotation clearly marks a non-quantity (str, bool,
    callbacks, objects) — those parameters are outside REP105."""
    if node is None:
        return False
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return True
    if isinstance(node, ast.Name):
        return node.id not in ("int", "float", "complex")
    if isinstance(node, ast.Attribute):
        return True
    if isinstance(node, ast.Subscript):
        base = node.value
        name = base.id if isinstance(base, ast.Name) else ""
        if name in ("Optional", "Final", "Annotated"):
            inner = node.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            return _is_non_numeric_annotation(inner)
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return (_is_non_numeric_annotation(node.left)
                and _is_non_numeric_annotation(node.right))
    return False


def _render(node: ast.Attribute) -> str:
    return _dotted(node) or node.attr


def _suggest(unit: Unit) -> str:
    text = str(unit)
    return {"dimensionless": "ratio", "bps": "bps", "hz": "hz"}.get(
        text, text.replace("/", "_per_").replace("*", "_").replace("^", ""))


# ----------------------------------------------------------------------
# module-level driver
# ----------------------------------------------------------------------

class _ModuleChecker:
    """Runs the function checker over every def in one module."""

    def __init__(self, tree: ast.AST, path: str, index: UnitIndex,
                 uconfig: UnitsConfig, emit: bool) -> None:
        self.path = path
        self.index = index
        self.uconfig = uconfig
        self.summary = index.modules.get(module_name_for(path)) \
            or ModuleSummary(path=path, module="?")
        self.strict = uconfig.in_strict_scope(path)
        self.findings: List[Finding] = []
        self.tree = tree
        self.emit = emit

    def run(self) -> List[Finding]:
        assert isinstance(self.tree, ast.Module)
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self.summary.functions.get(node.name)
                checker = _FunctionChecker(self, info, node, None, self.emit)
                checker.run()
                self._finish_function(info, checker)
            elif isinstance(node, ast.ClassDef):
                cls = self.summary.classes.get(node.name)
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        info = cls.methods.get(item.name) if cls else None
                        checker = _FunctionChecker(self, info, item, cls,
                                                   self.emit)
                        checker.run()
                        self._finish_function(info, checker)
        return self.findings

    @staticmethod
    def _finish_function(info: Optional[FunctionInfo],
                         checker: _FunctionChecker) -> None:
        if info is None or info.declared_return is not None:
            return
        units = [u for u, _ in checker.return_units]
        if units and all(u.compatible(units[0]) for u in units[1:]):
            info.inferred_return = units[0]


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------

def resolve_index(summaries: Iterable[ModuleSummary]) -> UnitIndex:
    """Stitch module summaries into the project-wide index."""
    index = UnitIndex()
    for summary in summaries:
        index.add(summary)
    return index


def infer_returns(tree: ast.AST, path: str, index: UnitIndex,
                  uconfig: UnitsConfig) -> None:
    """Silent dataflow round: learn return units into the index."""
    _ModuleChecker(tree, path, index, uconfig, emit=False).run()


def check_module(tree: ast.AST, path: str, index: UnitIndex,
                 uconfig: UnitsConfig) -> List[Finding]:
    """Emitting dataflow round: the REP101-REP105 findings for one file."""
    findings = _ModuleChecker(tree, path, index, uconfig, emit=True).run()
    findings = [f for f in findings if f.code not in uconfig.disabled]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def analyze_units(files: Sequence[object],
                  uconfig: Optional[UnitsConfig] = None) -> List[Finding]:
    """Whole-program unit analysis.

    *files* holds ``(path, source)`` pairs, or bare paths that are read
    from disk.  Three deterministic phases: summarize every module, run
    a silent inference round to learn undeclared return units, then
    check every module against the completed index.  Files that fail to
    parse are skipped here — the per-file lint already reports REP000
    for them.
    """
    uconfig = uconfig or UnitsConfig()
    pairs: List[Tuple[str, str]] = []
    for item in files:
        if isinstance(item, tuple):
            pairs.append((str(item[0]), item[1]))
        else:
            pairs.append((str(item),
                          Path(item).read_text(encoding="utf-8")))
    trees: List[Tuple[str, ast.AST]] = []
    for path, source in pairs:
        try:
            trees.append((path, ast.parse(source, filename=path)))
        except SyntaxError:
            continue
    index = resolve_index(build_summary(tree, path, uconfig)
                          for path, tree in trees)
    for path, tree in trees:
        infer_returns(tree, path, index, uconfig)
    findings: List[Finding] = []
    for path, tree in trees:
        findings.extend(check_module(tree, path, index, uconfig))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings
