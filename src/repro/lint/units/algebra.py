"""The unit algebra: dimensions, products/quotients, compatibility.

A :class:`Unit` is a product of integer powers of base dimensions::

    s        {time: 1}
    bytes    {data: 1}
    pkts     {pkt: 1}
    bps      {data: 1, time: -1}     (a data rate)
    hz       {time: -1}              (1/s — identical to a frequency)
    1        {}                       (dimensionless: fractions, gains)

Only *dimensions* are modeled, not scales: ``_ms`` and ``_s`` share the
time dimension (a factor-1000 slip is invisible to dimensional
analysis, exactly as a factor-8 bits/bytes slip is — both collapse
into the ``data`` dimension).  What the algebra *does* catch is the
class of bug that silently skews figures: seconds added to bytes,
a packet count compared against a rate, ``min()`` over mixed clocks.

The algebra is total: every operation returns a unit (quotients
simplify by exponent arithmetic, so ``bytes/s ≡ bps`` and
``s * hz ≡ 1`` fall out for free).  *Compatibility* (may two units
meet under ``+``/``-``/comparison?) is the only partial judgment, and
it is what the checker's REP101 reports on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Base dimension symbols.  ``data`` deliberately covers both bits and
#: bytes (scale, not dimension); ``db`` is its own log-domain axis so
#: decibels never silently mix with linear quantities.
DIM_TIME = "time"
DIM_DATA = "data"
DIM_PKT = "pkt"
DIM_DB = "db"


class UnitError(ValueError):
    """Raised by :func:`parse_unit` on an unknown unit spelling."""


@dataclass(frozen=True)
class Unit:
    """An immutable product of base-dimension powers."""

    dims: Tuple[Tuple[str, int], ...] = ()

    # ------------------------------------------------------------------
    @staticmethod
    def make(mapping: Dict[str, int]) -> "Unit":
        """Canonical unit from a dim -> exponent mapping (zeros drop)."""
        return Unit(tuple(sorted((d, e) for d, e in mapping.items() if e)))

    def as_dict(self) -> Dict[str, int]:
        return dict(self.dims)

    # ------------------------------------------------------------------
    @property
    def is_dimensionless(self) -> bool:
        return not self.dims

    def mul(self, other: "Unit") -> "Unit":
        merged = self.as_dict()
        for dim, exp in other.dims:
            merged[dim] = merged.get(dim, 0) + exp
        return Unit.make(merged)

    def div(self, other: "Unit") -> "Unit":
        return self.mul(other.invert())

    def invert(self) -> "Unit":
        return Unit(tuple((d, -e) for d, e in self.dims))

    def pow(self, exponent: int) -> "Unit":
        return Unit.make({d: e * exponent for d, e in self.dims})

    def compatible(self, other: "Unit") -> bool:
        """May the two meet under addition/subtraction/comparison?"""
        return self.dims == other.dims

    # ------------------------------------------------------------------
    def __str__(self) -> str:
        name = _DERIVED_NAMES.get(self.dims)
        if name is not None:
            return name
        num = [_dim_label(d, e) for d, e in self.dims if e > 0]
        den = [_dim_label(d, -e) for d, e in self.dims if e < 0]
        if not num and not den:
            return "dimensionless"
        head = "*".join(num) if num else "1"
        return head + ("/" + "*".join(den) if den else "")

    def __repr__(self) -> str:
        return f"Unit({self})"


def _dim_label(dim: str, exp: int) -> str:
    base = {DIM_TIME: "s", DIM_DATA: "bytes", DIM_PKT: "pkts",
            DIM_DB: "db"}[dim]
    return base if exp == 1 else f"{base}^{exp}"


# ----------------------------------------------------------------------
# the named units
# ----------------------------------------------------------------------

DIMENSIONLESS = Unit.make({})
SECONDS = Unit.make({DIM_TIME: 1})
BYTES = Unit.make({DIM_DATA: 1})
PKTS = Unit.make({DIM_PKT: 1})
DB = Unit.make({DIM_DB: 1})
HZ = Unit.make({DIM_TIME: -1})           # 1/s — exactly a frequency
BPS = Unit.make({DIM_DATA: 1, DIM_TIME: -1})
PPS = Unit.make({DIM_PKT: 1, DIM_TIME: -1})

#: Spellings accepted in catalogs / pyproject tables.  Scaled variants
#: (``ms``, ``mbps``) map onto their dimension; see module docstring.
NAMED_UNITS: Dict[str, Unit] = {
    "1": DIMENSIONLESS,
    "dimensionless": DIMENSIONLESS,
    "fraction": DIMENSIONLESS,
    "ratio": DIMENSIONLESS,
    "s": SECONDS,
    "ms": SECONDS,
    "us": SECONDS,
    "ns": SECONDS,
    "bytes": BYTES,
    "bits": BYTES,
    "pkts": PKTS,
    "db": DB,
    "hz": HZ,
    "bps": BPS,
    "mbps": BPS,
    "kbps": BPS,
    "pps": PPS,
    "bytes/s": BPS,
    "pkts/s": PPS,
    "1/s": HZ,
}

#: Preferred display names for derived dim-vectors (inverse of the
#: canonical subset of NAMED_UNITS).
_DERIVED_NAMES: Dict[Tuple[Tuple[str, int], ...], str] = {
    HZ.dims: "hz",
    BPS.dims: "bps",
    PPS.dims: "pps",
    SECONDS.dims: "s",
    BYTES.dims: "bytes",
    PKTS.dims: "pkts",
    DB.dims: "db",
}


def parse_unit(spec: str) -> Unit:
    """Parse a unit spelling: a named unit or ``a*b/c`` of named units.

    >>> parse_unit("bytes/s")
    Unit(bps)
    >>> parse_unit("s*hz")
    Unit(dimensionless)
    """
    spec = spec.strip().lower()
    if spec in NAMED_UNITS:
        return NAMED_UNITS[spec]
    head, sep, tail = spec.partition("/")
    result = DIMENSIONLESS
    for factor in head.split("*"):
        factor = factor.strip()
        if factor not in NAMED_UNITS:
            raise UnitError(f"unknown unit {factor!r} in {spec!r}")
        result = result.mul(NAMED_UNITS[factor])
    if sep:
        for factor in tail.split("*"):
            factor = factor.strip()
            if factor not in NAMED_UNITS:
                raise UnitError(f"unknown unit {factor!r} in {spec!r}")
            result = result.div(NAMED_UNITS[factor])
    return result


def combine(a: Optional[Unit], b: Optional[Unit]) -> Optional[Unit]:
    """Unify two inference results: ``None`` means "no information"."""
    if a is None:
        return b
    if b is None:
        return a
    return a if a.compatible(b) else None
