"""unitcheck: inter-procedural unit/dimension dataflow analysis.

The simulator's correctness rests on dimensional math — Eq. (3) mixes
Hz, bytes/s, bytes, and seconds — and the tree-wide name-suffix
convention (``_s``, ``_bytes``, ``_bps``, ...) states every quantity's
unit.  This package turns that convention from documentation into an
enforced contract:

==========  ========================================================
REP101      mixed-unit arithmetic (``s + bytes``, ``min(s, pkts)``)
REP102      call-argument unit mismatch against the callee signature
REP103      return unit conflicts with the declared (suffix) unit
REP104      unit-suffixed name assigned a conflicting inferred unit
REP105      unsuffixed parameter flowing into unit-sensitive
            arithmetic in simulation scope
==========  ========================================================

Run it with ``python -m repro.lint --units src/repro``.  Pre-existing
findings live in a committed baseline (``reprolint-units.baseline.json``)
that only ratchets down; see DESIGN.md §14.
"""

from repro.lint.units.algebra import (
    BPS,
    BYTES,
    DIMENSIONLESS,
    HZ,
    PKTS,
    SECONDS,
    Unit,
    UnitError,
    parse_unit,
)
from repro.lint.units.baseline import Baseline, BaselineEntry
from repro.lint.units.catalog import UnitsConfig
from repro.lint.units.checker import (
    UNIT_RULE_SUMMARIES,
    UnitIndex,
    analyze_units,
    build_summary,
    check_module,
    infer_returns,
    resolve_index,
)

__all__ = [
    "BPS",
    "BYTES",
    "Baseline",
    "BaselineEntry",
    "DIMENSIONLESS",
    "HZ",
    "PKTS",
    "SECONDS",
    "UNIT_RULE_SUMMARIES",
    "Unit",
    "UnitError",
    "UnitIndex",
    "UnitsConfig",
    "analyze_units",
    "build_summary",
    "check_module",
    "infer_returns",
    "parse_unit",
    "resolve_index",
]
