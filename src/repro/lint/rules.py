"""The REP rule set: repo-specific determinism checks.

Each rule is a function ``(tree, source_path, config) -> list[Finding]``
registered in :data:`RULES` under a stable code.  Codes never change
meaning; retired rules leave a hole rather than being renumbered, so a
``# reprolint: disable=REPxxx`` pragma stays valid forever.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List

from repro.lint.config import LintConfig
from repro.lint.findings import Finding

__all__ = ["DETERMINISM_RULES", "RULES", "RULE_SUMMARIES", "Finding"]


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------

def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name for a Name/Attribute chain ('' if other)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_const(node: ast.AST, *types: type) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, types)


def _is_approx_call(node: ast.AST) -> bool:
    """True for ``pytest.approx(...)`` / ``approx(...)`` operands."""
    return (isinstance(node, ast.Call)
            and _dotted(node.func).rpartition(".")[2] == "approx")


# ----------------------------------------------------------------------
# REP001 — no wall clock in simulation code
# ----------------------------------------------------------------------

_WALL_CLOCK_CALLS = {
    "time.time",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}


def rep001_no_wall_clock(tree: ast.AST, path: str, config: LintConfig) -> List[Finding]:
    """Simulation code must read the virtual clock, never the host's.

    A single ``time.time()`` in an event handler silently breaks
    byte-identical replay: results begin to depend on machine load.
    """
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _dotted(node.func)
        if name in _WALL_CLOCK_CALLS:
            findings.append(Finding(
                "REP001",
                f"wall-clock call `{name}()` in simulation code; "
                "use the simulator's virtual clock (`sim.now()`)",
                path, node.lineno, node.col_offset,
            ))
    return findings


# ----------------------------------------------------------------------
# REP002 — no ambient / unseeded randomness in simulation code
# ----------------------------------------------------------------------

_NP_RANDOM_ROOTS = {"numpy.random", "np.random"}


def rep002_no_ambient_rng(tree: ast.AST, path: str, config: LintConfig) -> List[Finding]:
    """All randomness must flow from an explicitly seeded generator.

    Flags module-level ``random.xxx(...)`` calls, any ``numpy.random``
    access, ``from random import ...``, and unseeded ``random.Random()``
    / ``default_rng()`` / ``RandomState()`` constructions.  Seeded
    instances (``random.Random(seed)``) are the sanctioned pattern.
    """
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            findings.append(Finding(
                "REP002",
                "`from random import ...` hides the shared-state module "
                "RNG; construct a seeded `random.Random(seed)` instead",
                path, node.lineno, node.col_offset,
            ))
            continue
        if not isinstance(node, ast.Call):
            continue
        name = _dotted(node.func)
        if not name:
            continue
        root, _, leaf = name.rpartition(".")
        if name.startswith(("numpy.random.", "np.random.")) or name in _NP_RANDOM_ROOTS:
            if leaf in ("default_rng", "Generator", "RandomState") and node.args:
                continue  # seeded construction is fine
            findings.append(Finding(
                "REP002",
                f"`{name}` uses numpy's global/unseeded RNG state; pass an "
                "explicitly seeded generator into the component",
                path, node.lineno, node.col_offset,
            ))
        elif root == "random":
            if leaf == "Random":
                if not node.args and not node.keywords:
                    findings.append(Finding(
                        "REP002",
                        "`random.Random()` without a seed is "
                        "nondeterministic; pass a seed (or fork from "
                        "`sim.fork_rng`)",
                        path, node.lineno, node.col_offset,
                    ))
                continue
            if leaf == "SystemRandom":
                findings.append(Finding(
                    "REP002",
                    "`random.SystemRandom` is inherently nondeterministic",
                    path, node.lineno, node.col_offset,
                ))
                continue
            findings.append(Finding(
                "REP002",
                f"module-level `{name}(...)` draws from the shared global "
                "RNG; draw from a seeded `random.Random` instance",
                path, node.lineno, node.col_offset,
            ))
    return findings


# ----------------------------------------------------------------------
# REP003 — no float equality on clock values
# ----------------------------------------------------------------------

def rep003_no_time_equality(tree: ast.AST, path: str, config: LintConfig) -> List[Finding]:
    """``==``/``!=`` between simulated-clock floats is a latent bug.

    Clock values are sums of float link delays; two mathematically
    equal instants can differ in the last ulp depending on summation
    order.  Compare with ``<=``/``>=`` or an explicit tolerance.
    Comparisons against ``None``/strings/bools are untouched (those are
    sentinel checks, not arithmetic), and so are comparisons against
    ``pytest.approx(...)`` — that call *is* the tolerance the rule
    asks for.
    """
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        ops = node.ops
        for i, op in enumerate(ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[i], operands[i + 1]
            pair = (left, right)
            if any(_is_const(side, str, bool) or
                   (isinstance(side, ast.Constant) and side.value is None) or
                   _is_approx_call(side)
                   for side in pair):
                continue
            for side in pair:
                name = _dotted(side)
                leaf = name.rpartition(".")[2]
                if leaf and config.is_time_name(leaf):
                    findings.append(Finding(
                        "REP003",
                        f"float equality on clock value `{name}`; use an "
                        "ordering comparison or explicit tolerance",
                        path, node.lineno, node.col_offset,
                    ))
                    break
    return findings


# ----------------------------------------------------------------------
# REP004 — unit-suffix discipline for numeric parameters
# ----------------------------------------------------------------------

def rep004_unit_suffixes(tree: ast.AST, path: str, config: LintConfig) -> List[Finding]:
    """Float-typed knobs must say their unit in the name.

    Applies to every function in ``core/params.py`` and to ``__init__``
    constructors in the simulator packages.  A parameter with a float
    literal default is a physical quantity (seconds, bytes, bps, ...)
    or an explicitly dimensionless ratio — either way the name must end
    in a recognized suffix (``_s``, ``_bytes``, ``_bps``, ``_gain``,
    ...) or appear in the configured allow-list.  Integer defaults are
    exempt: counts are self-describing.
    """
    if not config.in_rep004_scope(path):
        return []
    check_all_defs = config.is_params_file(path)
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not check_all_defs and node.name != "__init__":
            continue
        args = node.args
        positional = args.posonlyargs + args.args
        pairs = list(zip(positional[len(positional) - len(args.defaults):],
                         args.defaults))
        pairs += [(a, d) for a, d in zip(args.kwonlyargs, args.kw_defaults)
                  if d is not None]
        for arg, default in pairs:
            if not _is_const(default, float) or isinstance(default.value, bool):
                continue
            if config.has_unit_suffix(arg.arg):
                continue
            findings.append(Finding(
                "REP004",
                f"numeric parameter `{arg.arg}` (default {default.value!r}) "
                "lacks a unit suffix "
                "(_s/_ms/_bytes/_bps/_pkts/...); rename or add it to "
                "[tool.reprolint] allow-names",
                path, arg.lineno, arg.col_offset,
            ))
    return findings


# ----------------------------------------------------------------------
# REP005 — no mutable default arguments
# ----------------------------------------------------------------------

_MUTABLE_CTORS = {"list", "dict", "set", "bytearray", "deque", "defaultdict"}


def rep005_no_mutable_defaults(tree: ast.AST, path: str, config: LintConfig) -> List[Finding]:
    """A mutable default is shared across every call — state leaks
    between simulations, the exact class of bug this repo cannot
    afford."""
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        args = node.args
        defaults = list(args.defaults) + [d for d in args.kw_defaults if d is not None]
        for default in defaults:
            bad = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and _dotted(default.func).rpartition(".")[2] in _MUTABLE_CTORS
            )
            if bad:
                findings.append(Finding(
                    "REP005",
                    "mutable default argument is shared across calls; "
                    "default to None and construct inside the function",
                    path, default.lineno, default.col_offset,
                ))
    return findings


# ----------------------------------------------------------------------
# REP006 — telemetry timestamps come from the sim clock
# ----------------------------------------------------------------------

def rep006_telemetry_sim_clock(tree: ast.AST, path: str, config: LintConfig) -> List[Finding]:
    """Simulation-side telemetry code must never read the wall clock.

    Trace events are stamped from the simulator's virtual clock so a
    trace replays byte-identically.  The host-side CLI modules (file
    naming, progress display — ``config.telemetry_host_files``) are
    allowed; everything else under ``repro/telemetry/`` is not.  The
    rule is deliberately *not* suspended for ``exempt``-glob paths:
    adding a telemetry module to the host-side exempt list must not
    silently license wall-clock event timestamps.
    """
    norm = path.replace("\\", "/")
    if "/repro/telemetry/" not in norm:
        return []
    if norm.rpartition("/")[2] in config.telemetry_host_files:
        return []
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _dotted(node.func)
        if name in _WALL_CLOCK_CALLS:
            findings.append(Finding(
                "REP006",
                f"wall-clock call `{name}()` in simulation-side telemetry "
                "code; event timestamps must come from the sim clock "
                "(the collector stamps `sim.clock.now()`)",
                path, node.lineno, node.col_offset,
            ))
    return findings


# ----------------------------------------------------------------------
# REP007 — profiler isolation in simulation code
# ----------------------------------------------------------------------

_PROFILE_PACKAGES = ("repro.profile", "repro.bench")


def _is_profiler_leaf(leaf: str) -> bool:
    return (leaf in ("prof", "profiler")
            or leaf.endswith(("_prof", "_profiler")))


def _none_guarded_names(test: ast.AST) -> set:
    """Dotted names *test* proves non-None (``x is not None`` shapes,
    possibly ``and``-joined)."""
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        names: set = set()
        for value in test.values:
            names |= _none_guarded_names(value)
        return names
    if (isinstance(test, ast.Compare) and len(test.ops) == 1
            and isinstance(test.ops[0], ast.IsNot)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None):
        name = _dotted(test.left)
        return {name} if name else set()
    return set()


def rep007_profiler_isolation(tree: ast.AST, path: str, config: LintConfig) -> List[Finding]:
    """Simulation code may *hold* a profiler but never depend on it.

    The host-side fence has two halves: sim packages must not import
    ``repro.profile`` / ``repro.bench`` (the profiler arrives by
    injection, keeping the wall clock out of the dependency graph),
    and every method call on a profiler reference (``self.profiler``,
    ``prof``, ``*_prof``) must sit inside an ``... is not None`` guard
    on that same name — otherwise a disabled simulation would reach
    through a ``None`` or, worse, silently read wall time.  Like
    REP006 this rule is not suspended for ``exempt``-glob paths.
    """
    if not config.in_sim_scope(path):
        return []
    findings: List[Finding] = []

    for node in ast.walk(tree):
        modules: List[str] = []
        if isinstance(node, ast.Import):
            modules = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom):
            modules = [node.module or ""]
        for mod in modules:
            if any(mod == pkg or mod.startswith(pkg + ".")
                   for pkg in _PROFILE_PACKAGES):
                findings.append(Finding(
                    "REP007",
                    f"simulation code imports `{mod}`; profilers are "
                    "injected by the host (hold the reference, never "
                    "import repro.profile/repro.bench)",
                    path, node.lineno, node.col_offset,
                ))

    class _GuardVisitor(ast.NodeVisitor):
        def __init__(self) -> None:
            self.guarded: set = set()

        def visit_If(self, node: ast.If) -> None:
            self.visit(node.test)
            added = _none_guarded_names(node.test) - self.guarded
            self.guarded |= added
            for child in node.body:
                self.visit(child)
            self.guarded -= added
            for child in node.orelse:
                self.visit(child)

        def visit_Call(self, node: ast.Call) -> None:
            func = node.func
            if isinstance(func, ast.Attribute):
                target = _dotted(func.value)
                leaf = target.rpartition(".")[2]
                if (target and _is_profiler_leaf(leaf)
                        and target not in self.guarded):
                    findings.append(Finding(
                        "REP007",
                        f"call through profiler reference `{target}` "
                        "outside an `is not None` guard; a disabled "
                        "simulation must never touch the profiler",
                        path, node.lineno, node.col_offset,
                    ))
            self.generic_visit(node)

    _GuardVisitor().visit(tree)
    return findings


# ----------------------------------------------------------------------
# REP008 — no fixed-seed RNG construction in simulation code
# ----------------------------------------------------------------------

def rep008_no_fixed_seed(tree: ast.AST, path: str, config: LintConfig) -> List[Finding]:
    """Sim code must not bake in ``random.Random(<literal>)``.

    A hard-coded seed looks deterministic but is the *shared-stream*
    footgun: every instance built from the same literal replays the
    same draws, silently correlating loss across links/directions and
    pinning results to a seed no experiment config controls.  (The
    historical ``rng or random.Random(0)`` default in the loss models
    is exactly what this rule now bans.)  Randomness must arrive from
    outside: a caller-supplied ``rng``/seed or ``sim.fork_rng(label)``.
    """
    if not config.in_sim_scope(path):
        return []
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _dotted(node.func)
        if name not in ("random.Random", "Random"):
            continue
        if node.args and _is_const(node.args[0], int, float, str, bytes):
            findings.append(Finding(
                "REP008",
                f"`{name}({node.args[0].value!r})` hard-codes an RNG seed "
                "in simulation code; take an explicit rng/seed parameter "
                "or fork from `sim.fork_rng(label)`",
                path, node.lineno, node.col_offset,
            ))
    return findings


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

RuleFn = Callable[[ast.AST, str, LintConfig], List[Finding]]

#: All rules, keyed by stable code.
RULES: Dict[str, RuleFn] = {
    "REP001": rep001_no_wall_clock,
    "REP002": rep002_no_ambient_rng,
    "REP003": rep003_no_time_equality,
    "REP004": rep004_unit_suffixes,
    "REP005": rep005_no_mutable_defaults,
    "REP006": rep006_telemetry_sim_clock,
    "REP007": rep007_profiler_isolation,
    "REP008": rep008_no_fixed_seed,
}

#: Rules suspended for host-side files matched by the ``exempt`` globs.
DETERMINISM_RULES = ("REP001", "REP002", "REP003")

RULE_SUMMARIES: Dict[str, str] = {
    "REP001": "no wall-clock reads in simulation code",
    "REP002": "no ambient/unseeded RNG in simulation code",
    "REP003": "no float ==/!= on clock values",
    "REP004": "unit-suffix discipline for numeric parameters",
    "REP005": "no mutable default arguments",
    "REP006": "sim-side telemetry must stamp events from the sim clock",
    "REP007": "sim code must hold profilers behind `is not None` guards, "
              "never import repro.profile/repro.bench",
    "REP008": "no hard-coded RNG seeds (`random.Random(<literal>)`) in "
              "simulation code",
}
