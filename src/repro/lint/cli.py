"""Command-line front end: ``python -m repro.lint`` / ``reprolint``.

Exit codes: 0 clean, 1 findings reported, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.config import find_pyproject, load_config
from repro.lint.engine import lint_paths
from repro.lint.rules import RULE_SUMMARIES, Finding

#: JSON report schema version; bump on incompatible change.
JSON_SCHEMA_VERSION = 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="Determinism lint for the TACK simulator "
                    "(rules REP001-REP005).",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (default: text)")
    parser.add_argument("--json", dest="format", action="store_const",
                        const="json", help="shorthand for --format json")
    parser.add_argument("--config", type=Path, default=None,
                        help="pyproject.toml with a [tool.reprolint] table "
                             "(default: discovered upward from the first path)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule set and exit")
    return parser


def _report_text(findings: List[Finding], checked: int) -> str:
    lines = [f.render() for f in findings]
    counts = Counter(f.code for f in findings)
    if findings:
        summary = ", ".join(f"{code}: {n}" for code, n in sorted(counts.items()))
        lines.append(f"{len(findings)} finding(s) in {checked} file(s) ({summary})")
    else:
        lines.append(f"clean: {checked} file(s), 0 findings")
    return "\n".join(lines)


def _report_json(findings: List[Finding], checked: int) -> str:
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": checked,
        "findings": [f.to_dict() for f in findings],
        "counts": dict(sorted(Counter(f.code for f in findings).items())),
    }
    return json.dumps(payload, indent=2)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for code, summary in RULE_SUMMARIES.items():
            print(f"{code}  {summary}")
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"reprolint: no such path: {', '.join(map(str, missing))}",
              file=sys.stderr)
        return 2
    pyproject = args.config if args.config else find_pyproject(paths[0])
    if args.config and not args.config.is_file():
        print(f"reprolint: config not found: {args.config}", file=sys.stderr)
        return 2
    config = load_config(pyproject)

    findings, checked = lint_paths(paths, config)
    report = (_report_json if args.format == "json" else _report_text)(
        findings, checked)
    print(report)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
