"""Command-line front end: ``python -m repro.lint`` / ``reprolint``.

Exit codes: 0 clean, 1 findings reported (or stale baseline under
``--check-baseline``), 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import Optional, Sequence

from repro.lint.config import find_pyproject, load_config
from repro.lint.engine import LintResult, lint_paths
from repro.lint.rules import RULE_SUMMARIES
from repro.lint.units import UNIT_RULE_SUMMARIES, Baseline

#: JSON report schema version; bump on incompatible change.
#: v2 added baseline/stale-baseline accounting and the units rules.
JSON_SCHEMA_VERSION = 2

#: REP009 has no rule function; it is emitted by the pragma engine.
ENGINE_SUMMARIES = {
    "REP009": "unused reprolint pragma (--report-unused-pragmas)",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="Determinism and unit/dimension lint for the TACK "
                    "simulator (rules REP001-REP009, REP101-REP105).",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (default: text)")
    parser.add_argument("--json", dest="format", action="store_const",
                        const="json", help="shorthand for --format json")
    parser.add_argument("--config", type=Path, default=None,
                        help="pyproject.toml with a [tool.reprolint] table "
                             "(default: discovered upward from the first path)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="lint files on N worker processes "
                             "(default: 1; output is identical)")
    parser.add_argument("--units", action="store_true",
                        help="run the inter-procedural unit/dimension "
                             "checker (REP101-REP105)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline file of accepted findings (default: "
                             "[tool.reprolint.units].baseline next to the "
                             "pyproject, when it exists)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any configured baseline")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write the current findings to the baseline "
                             "file and exit 0")
    parser.add_argument("--check-baseline", action="store_true",
                        help="also fail (exit 1) when the baseline holds "
                             "stale entries that no finding matches — the "
                             "ratchet: regenerate with --write-baseline")
    parser.add_argument("--report-unused-pragmas", action="store_true",
                        help="report pragmas that suppress nothing (REP009)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule set and exit")
    return parser


def _report_text(result: LintResult) -> str:
    findings, checked = result.findings, result.files_checked
    lines = [f.render() for f in findings]
    counts = Counter(f.code for f in findings)
    for entry in result.stale_baseline:
        lines.append(f"stale baseline entry: {entry.path}: {entry.code} "
                     f"{entry.message} (x{entry.count})")
    tail = []
    if result.baselined:
        tail.append(f"{result.baselined} baselined")
    if result.stale_baseline:
        tail.append(f"{len(result.stale_baseline)} stale baseline entr"
                    f"{'y' if len(result.stale_baseline) == 1 else 'ies'}")
    suffix = f" [{', '.join(tail)}]" if tail else ""
    if findings:
        summary = ", ".join(f"{code}: {n}" for code, n in sorted(counts.items()))
        lines.append(f"{len(findings)} finding(s) in {checked} file(s) "
                     f"({summary}){suffix}")
    else:
        lines.append(f"clean: {checked} file(s), 0 findings{suffix}")
    return "\n".join(lines)


def _report_json(result: LintResult) -> str:
    findings = result.findings
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "findings": [f.to_dict() for f in findings],
        "counts": dict(sorted(Counter(f.code for f in findings).items())),
        "baselined": result.baselined,
        "stale_baseline": [
            {"path": e.path, "code": e.code, "message": e.message,
             "count": e.count}
            for e in result.stale_baseline
        ],
    }
    return json.dumps(payload, indent=2)


def _resolve_baseline_path(args, pyproject: Optional[Path],
                           config) -> Optional[Path]:
    """The baseline file to use, or None when none applies."""
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return args.baseline
    if pyproject is None:
        return None
    candidate = pyproject.parent / config.units.baseline
    if candidate.is_file() or args.write_baseline:
        return candidate
    return None


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for code, summary in {**RULE_SUMMARIES, **ENGINE_SUMMARIES,
                              **UNIT_RULE_SUMMARIES}.items():
            print(f"{code}  {summary}")
        return 0
    if args.jobs < 1:
        print("reprolint: --jobs must be >= 1", file=sys.stderr)
        return 2

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"reprolint: no such path: {', '.join(map(str, missing))}",
              file=sys.stderr)
        return 2
    pyproject = args.config if args.config else find_pyproject(paths[0])
    if args.config and not args.config.is_file():
        print(f"reprolint: config not found: {args.config}", file=sys.stderr)
        return 2
    config = load_config(pyproject)

    baseline_path = _resolve_baseline_path(args, pyproject, config)

    if args.write_baseline:
        if baseline_path is None:
            print("reprolint: --write-baseline needs --baseline or a "
                  "pyproject.toml to anchor the file", file=sys.stderr)
            return 2
        result = lint_paths(paths, config, jobs=args.jobs, units=args.units,
                            report_unused_pragmas=args.report_unused_pragmas)
        baseline = Baseline.from_findings(result.findings,
                                          baseline_path.parent)
        baseline.save(baseline_path)
        print(f"wrote {baseline.size} entr"
              f"{'y' if baseline.size == 1 else 'ies'} to {baseline_path}")
        return 0

    baseline = Baseline.load(baseline_path) if baseline_path else None
    result = lint_paths(paths, config, jobs=args.jobs, units=args.units,
                        report_unused_pragmas=args.report_unused_pragmas,
                        baseline=baseline)
    report = (_report_json if args.format == "json" else _report_text)(result)
    print(report)
    if result.findings:
        return 1
    if args.check_baseline and result.stale_baseline:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
