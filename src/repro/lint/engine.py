"""reprolint driver: file discovery, pragmas, rule dispatch, parallelism.

Pragmas
-------
Line-level, suppressing specific codes (or every code)::

    started = time.time()  # reprolint: disable=REP001
    x = foo()              # reprolint: disable

File-level, anywhere in the file (conventionally near the top)::

    # reprolint: disable-file=REP002,REP003

Pragmas are extracted from **tokenizer comment positions**, never from
raw line text, so pragma-shaped text inside a string literal is inert.
A trailing pragma covers its whole *logical* line (flake8 ``noqa``
semantics): on a statement spanning several physical lines the pragma
suppresses findings reported anywhere in that span, wherever the
comment sits.  A pragma on a line of its own covers only that line.

Unused pragmas rot as rules and code evolve; ``--report-unused-pragmas``
(ruff ``RUF100``-style) reports every pragma code that suppressed
nothing as REP009.

Parallelism
-----------
``lint_paths(..., jobs=N)`` fans the per-file phases out over a
``multiprocessing`` pool.  Ordering stays deterministic: results are
merged in input order and sorted, so ``--jobs`` never changes output.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.config import LintConfig
from repro.lint.rules import DETERMINISM_RULES, RULES, Finding
from repro.lint.units.baseline import Baseline, BaselineEntry
from repro.lint.units.checker import (
    UNIT_RULE_SUMMARIES,
    build_summary,
    check_module,
    infer_returns,
    resolve_index,
)
from repro.lint.units.model import ModuleSummary, UnitIndex

_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*(disable(?:-file)?)\s*(?:=\s*([A-Z0-9,\s]+))?"
)

#: Sentinel meaning "every code" in a pragma set.
_ALL = "ALL"


# ----------------------------------------------------------------------
# pragmas
# ----------------------------------------------------------------------

@dataclass
class Pragma:
    """One ``# reprolint: ...`` comment and the line span it covers."""

    line: int                      # physical line of the comment
    kind: str                      # "disable" | "disable-file"
    codes: Tuple[str, ...]         # (_ALL,) for a bare disable
    span: Tuple[int, int]          # inclusive logical-line extent
    hits: Dict[str, int] = field(default_factory=dict)

    def covers(self, lineno: int) -> bool:
        return self.span[0] <= lineno <= self.span[1]

    def matches(self, code: str) -> Optional[str]:
        """The pragma code that suppresses *code*, if any."""
        if _ALL in self.codes:
            return _ALL
        return code if code in self.codes else None


def _extract_pragmas(source: str) -> List[Pragma]:
    """Tokenize *source* and return its pragmas with logical spans."""
    pragmas: List[Pragma] = []
    comments: List[Tuple[int, bool, str]] = []   # (line, trailing, text)
    code_lines: Set[int] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        # Unparseable source is REP000's problem; no pragmas here.
        return []
    logical_start: Optional[int] = None
    pending: List[Tuple[int, bool, str]] = []
    for tok in tokens:
        kind, text, (line, _col), (end_line, _ecol), _ = tok
        if kind == tokenize.COMMENT:
            pending.append((line, line in code_lines, text))
        elif kind == tokenize.NEWLINE:
            span = (logical_start if logical_start is not None else line,
                    end_line)
            for c_line, trailing, text in pending:
                comments.append((c_line, trailing, text))
                pragma = _parse_pragma(text, c_line)
                if pragma is not None:
                    pragma.span = span if trailing else (c_line, c_line)
                    pragmas.append(pragma)
            pending.clear()
            logical_start = None
        elif kind == tokenize.NL:
            # blank or comment-only physical line: flush standalone
            # pragmas accumulated outside any logical line.
            if logical_start is None:
                for c_line, trailing, text in pending:
                    pragma = _parse_pragma(text, c_line)
                    if pragma is not None:
                        pragma.span = (c_line, c_line)
                        pragmas.append(pragma)
                pending.clear()
        elif kind in (tokenize.INDENT, tokenize.DEDENT, tokenize.ENDMARKER,
                      tokenize.ENCODING):
            continue
        else:
            code_lines.add(line)
            if logical_start is None:
                logical_start = line
    for c_line, _trailing, text in pending:     # EOF without NEWLINE
        pragma = _parse_pragma(text, c_line)
        if pragma is not None:
            pragma.span = (c_line, c_line)
            pragmas.append(pragma)
    return pragmas


def _parse_pragma(comment: str, line: int) -> Optional[Pragma]:
    match = _PRAGMA_RE.search(comment)
    if match is None:
        return None
    kind, codes_raw = match.groups()
    codes = tuple(sorted({c.strip() for c in codes_raw.split(",")
                          if c.strip()})) if codes_raw else (_ALL,)
    return Pragma(line=line, kind=kind, codes=codes, span=(line, line))


class PragmaSet:
    """All pragmas of one file, with hit bookkeeping for REP009."""

    def __init__(self, source: str) -> None:
        self.pragmas = _extract_pragmas(source)
        self.line_pragmas = [p for p in self.pragmas if p.kind == "disable"]
        self.file_pragmas = [p for p in self.pragmas
                             if p.kind == "disable-file"]

    def suppresses(self, finding: Finding) -> bool:
        hit = False
        for pragma in self.file_pragmas:
            code = pragma.matches(finding.code)
            if code is not None:
                pragma.hits[code] = pragma.hits.get(code, 0) + 1
                hit = True
        if hit:
            return True
        for pragma in self.line_pragmas:
            if not pragma.covers(finding.line):
                continue
            code = pragma.matches(finding.code)
            if code is not None:
                pragma.hits[code] = pragma.hits.get(code, 0) + 1
                hit = True
        return hit

    def unused(self, path: str, active_codes: Set[str]) -> List[Finding]:
        """REP009 findings for pragma codes that suppressed nothing.

        A code the run did not check (disabled rule, units off) is not
        reported — the pragma may be load-bearing for other runs.
        """
        findings: List[Finding] = []
        for pragma in self.pragmas:
            scope = "file" if pragma.kind == "disable-file" else "line"
            if _ALL in pragma.codes:
                if not pragma.hits:
                    findings.append(Finding(
                        "REP009",
                        f"unused blanket `reprolint: {pragma.kind}` pragma "
                        f"(suppresses nothing on this {scope})",
                        path, pragma.line, 0))
                continue
            dead = [c for c in pragma.codes
                    if c in active_codes and pragma.hits.get(c, 0) == 0]
            if dead:
                findings.append(Finding(
                    "REP009",
                    f"unused suppression for {', '.join(dead)} "
                    f"(no such finding on this {scope})",
                    path, pragma.line, 0))
        return findings


def parse_pragmas(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Extract (line -> suppressed codes, file-wide suppressed codes).

    Kept for back-compat; line pragmas are expanded over the physical
    lines of the logical line they annotate.
    """
    per_line: Dict[int, Set[str]] = {}
    file_wide: Set[str] = set()
    for pragma in _extract_pragmas(source):
        codes = set(pragma.codes)
        if pragma.kind == "disable-file":
            file_wide |= codes
        else:
            for lineno in range(pragma.span[0], pragma.span[1] + 1):
                per_line.setdefault(lineno, set()).update(codes)
    return per_line, file_wide


# ----------------------------------------------------------------------
# per-file rule pass
# ----------------------------------------------------------------------

def _rule_findings(tree: ast.AST, path: str,
                   config: LintConfig) -> List[Finding]:
    """Raw (unsuppressed) findings of the per-file rules."""
    exempt = config.is_exempt(path)
    findings: List[Finding] = []
    for code, rule in RULES.items():
        if code in config.disabled_rules:
            continue
        if exempt and code in DETERMINISM_RULES:
            continue
        findings.extend(rule(tree, path, config))
    return findings


def active_rule_codes(config: LintConfig, units: bool) -> Set[str]:
    """Codes the current run actually checks (drives REP009)."""
    codes = {c for c in RULES if c not in config.disabled_rules}
    if units:
        codes |= {c for c in UNIT_RULE_SUMMARIES
                  if c not in config.units.disabled}
    return codes


def lint_source(source: str, path: str = "<string>",
                config: Optional[LintConfig] = None) -> List[Finding]:
    """Lint one unit of Python source; returns unsuppressed findings."""
    config = config or LintConfig()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding("REP000", f"syntax error: {exc.msg}", path,
                        exc.lineno or 1, (exc.offset or 1) - 1)]
    pragmas = PragmaSet(source)
    findings = [f for f in _rule_findings(tree, path, config)
                if not pragmas.suppresses(f)]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def lint_file(path: Path, config: Optional[LintConfig] = None) -> List[Finding]:
    source = path.read_text(encoding="utf-8")
    return lint_source(source, str(path), config)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


# ----------------------------------------------------------------------
# multi-file driver (optionally parallel, optionally units-checking)
# ----------------------------------------------------------------------

@dataclass
class LintResult:
    """Outcome of one ``lint_paths`` run.

    Iterates as ``(findings, files_checked)`` so existing callers that
    tuple-unpack keep working.
    """

    findings: List[Finding]
    files_checked: int
    baselined: int = 0
    stale_baseline: List[BaselineEntry] = field(default_factory=list)

    def __iter__(self):
        return iter((self.findings, self.files_checked))


def _phase_rules(task: Tuple[str, bool]) -> Tuple[str, List[dict], Optional[ModuleSummary]]:
    """Worker: parse one file, run per-file rules (+ summary when units on)."""
    path, units = task
    config = _WORKER["config"]
    try:
        source = Path(path).read_text(encoding="utf-8")
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        finding = Finding("REP000", f"syntax error: {exc.msg}", path,
                          exc.lineno or 1, (exc.offset or 1) - 1)
        return path, [finding.to_dict()], None
    except OSError as exc:
        finding = Finding("REP000", f"unreadable file: {exc}", path, 1, 0)
        return path, [finding.to_dict()], None
    findings = _rule_findings(tree, path, config)
    summary = build_summary(tree, path, config.units) if units else None
    return path, [f.to_dict() for f in findings], summary


def _phase_infer(path: str) -> List[Tuple[str, Optional[str], str, tuple]]:
    """Worker: silent inference round; returns learned return units."""
    config = _WORKER["config"]
    index = _WORKER["index"]
    try:
        source = Path(path).read_text(encoding="utf-8")
        tree = ast.parse(source, filename=path)
    except (SyntaxError, OSError):
        return []
    infer_returns(tree, path, index, config.units)
    summary = index.modules.get(_module_of(index, path))
    if summary is None:
        return []
    learned = []
    for name, fn in summary.functions.items():
        if fn.inferred_return is not None:
            learned.append((summary.module, None, name,
                            fn.inferred_return.dims))
    for cls_name, cls in summary.classes.items():
        for name, fn in cls.methods.items():
            if fn.inferred_return is not None:
                learned.append((summary.module, cls_name, name,
                                fn.inferred_return.dims))
    return learned


def _phase_check(path: str) -> List[dict]:
    """Worker: emitting units round for one file."""
    config = _WORKER["config"]
    index = _WORKER["index"]
    try:
        source = Path(path).read_text(encoding="utf-8")
        tree = ast.parse(source, filename=path)
    except (SyntaxError, OSError):
        return []
    return [f.to_dict() for f in check_module(tree, path, index,
                                              config.units)]


def _module_of(index: UnitIndex, path: str) -> str:
    from repro.lint.units.model import module_name_for
    return module_name_for(path)


#: Per-process state for pool workers (set by the initializer).
_WORKER: dict = {}


def _init_worker(config: LintConfig, index: Optional[UnitIndex]) -> None:
    _WORKER["config"] = config
    _WORKER["index"] = index


def _apply_learned(index: UnitIndex,
                   learned: Iterable[Tuple[str, Optional[str], str, tuple]]) -> None:
    from repro.lint.units.algebra import Unit
    for module, cls_name, fn_name, dims in learned:
        summary = index.modules.get(module)
        if summary is None:
            continue
        if cls_name is None:
            fn = summary.functions.get(fn_name)
        else:
            cls = summary.classes.get(cls_name)
            fn = cls.methods.get(fn_name) if cls else None
        if fn is not None and fn.declared_return is None:
            fn.inferred_return = Unit(tuple(dims))


def _pool_map(pool, fn, tasks):
    if pool is None:
        return [fn(task) for task in tasks]
    return pool.map(fn, tasks, chunksize=max(1, len(tasks) // 32 or 1))


def lint_paths(paths: Iterable[Path],
               config: Optional[LintConfig] = None,
               *,
               jobs: int = 1,
               units: bool = False,
               report_unused_pragmas: bool = False,
               baseline: Optional[Baseline] = None) -> LintResult:
    """Lint every ``.py`` under *paths*.

    Phases: (1) per-file rules [parallel]; with ``units=True`` also
    module summaries, then (2) a silent cross-module inference round
    [parallel] and (3) the emitting units round [parallel].  Pragma
    suppression, baseline filtering, and unused-pragma reporting run in
    the parent so bookkeeping stays exact.  Output is independent of
    ``jobs``.
    """
    config = config or LintConfig()
    files = [str(p) for p in iter_python_files(paths)
             if not config.is_excluded(str(p))]
    pool = None
    try:
        if jobs > 1 and len(files) > 1:
            import multiprocessing
            pool = multiprocessing.Pool(
                min(jobs, len(files)), initializer=_init_worker,
                initargs=(config, None))
        _init_worker(config, None)

        tasks = [(path, units) for path in files]
        phase1 = _pool_map(pool, _phase_rules, tasks)

        per_file: Dict[str, List[Finding]] = {
            path: [Finding(**raw) for raw in raw_findings]
            for path, raw_findings, _summary in phase1
        }

        if units:
            summaries = [s for _p, _f, s in phase1 if s is not None]
            index = resolve_index(summaries)
            if pool is not None:
                # Re-seed workers with the built index (fresh pool so the
                # initializer runs again with the real index).
                pool.close()
                pool.join()
                import multiprocessing
                pool = multiprocessing.Pool(
                    min(jobs, len(files)), initializer=_init_worker,
                    initargs=(config, index))
            _init_worker(config, index)
            learned = _pool_map(pool, _phase_infer, files)
            for batch in learned:
                _apply_learned(index, batch)
            if pool is not None:
                pool.close()
                pool.join()
                import multiprocessing
                pool = multiprocessing.Pool(
                    min(jobs, len(files)), initializer=_init_worker,
                    initargs=(config, index))
            _init_worker(config, index)
            unit_findings = _pool_map(pool, _phase_check, files)
            for path, raw_findings in zip(files, unit_findings):
                per_file.setdefault(path, []).extend(
                    Finding(**raw) for raw in raw_findings)
    finally:
        if pool is not None:
            pool.close()
            pool.join()

    active = active_rule_codes(config, units)
    findings: List[Finding] = []
    baselined = 0
    for path in files:
        raw = per_file.get(path, [])
        if not raw and not report_unused_pragmas:
            continue
        try:
            source = Path(path).read_text(encoding="utf-8")
        except OSError:
            source = ""
        pragmas = PragmaSet(source)
        kept = [f for f in raw if not pragmas.suppresses(f)]
        if report_unused_pragmas:
            kept.extend(pragmas.unused(path, active))
        if baseline is not None:
            surviving = []
            for f in sorted(kept, key=lambda f: (f.line, f.col, f.code)):
                if baseline.suppresses(f):
                    baselined += 1
                else:
                    surviving.append(f)
            kept = surviving
        findings.extend(kept)

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    # A baseline entry is only "stale" when its rule actually ran this
    # pass — a plain run must not flag the units baseline as rotten.
    stale = [entry for entry in baseline.stale_entries()
             if entry.code in active] if baseline is not None else []
    return LintResult(
        findings=findings,
        files_checked=len(files),
        baselined=baselined,
        stale_baseline=stale,
    )
