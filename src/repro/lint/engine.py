"""reprolint driver: file discovery, pragmas, rule dispatch.

Pragmas
-------
Line-level, suppressing specific codes (or every code) on that line::

    started = time.time()  # reprolint: disable=REP001
    x = foo()              # reprolint: disable

File-level, anywhere in the file (conventionally near the top)::

    # reprolint: disable-file=REP002,REP003

Suppression is by source line of the *finding*, matching how flake8 /
ruff ``noqa`` behaves.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.lint.config import LintConfig
from repro.lint.rules import DETERMINISM_RULES, RULES, Finding

_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*(disable(?:-file)?)\s*(?:=\s*([A-Z0-9,\s]+))?"
)

#: Sentinel meaning "every code" in a pragma set.
_ALL = "ALL"


def parse_pragmas(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Extract (line -> suppressed codes, file-wide suppressed codes)."""
    per_line: Dict[int, Set[str]] = {}
    file_wide: Set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        kind, codes_raw = match.groups()
        codes = (
            {c.strip() for c in codes_raw.split(",") if c.strip()}
            if codes_raw else {_ALL}
        )
        if kind == "disable-file":
            file_wide |= codes
        else:
            per_line.setdefault(lineno, set()).update(codes)
    return per_line, file_wide


def _suppressed(finding: Finding, per_line: Dict[int, Set[str]],
                file_wide: Set[str]) -> bool:
    if _ALL in file_wide or finding.code in file_wide:
        return True
    codes = per_line.get(finding.line)
    return codes is not None and (_ALL in codes or finding.code in codes)


def lint_source(source: str, path: str = "<string>",
                config: Optional[LintConfig] = None) -> List[Finding]:
    """Lint one unit of Python source; returns unsuppressed findings."""
    config = config or LintConfig()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding("REP000", f"syntax error: {exc.msg}", path,
                        exc.lineno or 1, (exc.offset or 1) - 1)]
    per_line, file_wide = parse_pragmas(source)
    exempt = config.is_exempt(path)
    findings: List[Finding] = []
    for code, rule in RULES.items():
        if code in config.disabled_rules:
            continue
        if exempt and code in DETERMINISM_RULES:
            continue
        findings.extend(rule(tree, path, config))
    findings = [f for f in findings
                if not _suppressed(f, per_line, file_wide)]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def lint_file(path: Path, config: Optional[LintConfig] = None) -> List[Finding]:
    source = path.read_text(encoding="utf-8")
    return lint_source(source, str(path), config)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def lint_paths(paths: Iterable[Path],
               config: Optional[LintConfig] = None) -> Tuple[List[Finding], int]:
    """Lint every ``.py`` under *paths*; returns (findings, files seen)."""
    config = config or LintConfig()
    findings: List[Finding] = []
    checked = 0
    for file in iter_python_files(paths):
        checked += 1
        findings.extend(lint_file(file, config))
    return findings, checked
