"""simsan: runtime invariant checks for the TACK simulator.

The sanitizer validates, *while a simulation runs*, the invariants the
paper's correctness rests on:

``event_clock``
    Events fire in non-decreasing simulated time and never at a
    negative or non-finite instant.
``pkt_seq_monotone``
    ``PKT.SEQ`` strictly increases per flow (paper S5.1 — this is what
    removes retransmission ambiguity for receiver-based loss
    detection), and stream ``seq``/lengths are sane.
``cum_ack_monotone``
    The sender's cumulative-ack point never moves backward.
``byte_conservation``
    Sender ledger identity: every byte between ``cum_acked`` and
    ``next_seq`` is covered by exactly one live send record
    (sent = delivered + lost + in-flight), and the incremental
    ``in_flight`` counter matches the records.
``stream_conservation``
    The receiver never holds more stream bytes than the sender
    injected.
``nonneg_rwnd`` / ``nonneg_pacing``
    Advertised windows, pacing rates, and congestion windows stay
    non-negative (cwnd strictly positive).
``rtt_min_window``
    The windowed RTT_min estimate never exceeds the smallest raw RTT
    sample observed within the trailing tau window (S5.2: RTT_min is
    non-increasing until samples age out).

Checks are wired through ``if self._san is not None`` guards at the
hook sites, so a disabled sanitizer costs one attribute test per
event/packet — measured well under the 5% budget.
"""

from __future__ import annotations

import collections
import math
import weakref
from typing import Deque, Optional, Tuple

#: Absolute slack for float comparisons on clock-derived quantities.
_EPS = 1e-9

#: Expensive O(window) ledger walks run every Nth feedback per flow.
LEDGER_CHECK_PERIOD = 32


class InvariantViolation(AssertionError):
    """A simulation invariant failed.

    Attributes
    ----------
    invariant:
        Stable name of the violated invariant (e.g. ``pkt_seq_monotone``).
    sim_time:
        Simulated time of the violation in seconds.
    flow_id:
        Flow the violation belongs to, or ``None`` for engine-global
        invariants.
    detail:
        Human-readable specifics (observed vs expected values).
    """

    def __init__(self, invariant: str, sim_time: float,
                 flow_id: Optional[int], detail: str):
        self.invariant = invariant
        self.sim_time = sim_time
        self.flow_id = flow_id
        self.detail = detail
        flow = "engine" if flow_id is None else f"flow {flow_id}"
        super().__init__(
            f"[simsan] {invariant} violated at t={sim_time:.9f} ({flow}): {detail}"
        )


class _FlowState:
    """Per-flow bookkeeping the sanitizer needs across hook calls."""

    __slots__ = ("last_pkt_seq", "last_cum_ack", "last_delivered_ptr",
                 "feedbacks_seen", "rtt_samples")

    def __init__(self):
        self.last_pkt_seq = 0
        self.last_cum_ack = 0
        self.last_delivered_ptr = 0
        self.feedbacks_seen = 0
        # Monotonic (time, sample) deque: values non-decreasing front to
        # back, so the front is the window minimum in O(1).  A newer,
        # smaller sample dominates (and outlives) anything larger behind
        # it, so popping those from the back loses nothing.
        self.rtt_samples: Deque[Tuple[float, float]] = collections.deque()

    def push_rtt_sample(self, now: float, sample: float) -> None:
        samples = self.rtt_samples
        while samples and samples[-1][1] >= sample:
            samples.pop()
        samples.append((now, sample))


class SimSanitizer:
    """Invariant checker attached to one :class:`Simulator`.

    The engine and the transport endpoints call the ``on_*`` hooks;
    each hook either returns silently or raises
    :class:`InvariantViolation`.  One sanitizer instance serves every
    flow on the simulator.
    """

    def __init__(self, sim):
        self.sim = sim
        self._last_event_time = -math.inf
        # States are keyed by endpoint *object*: several endpoints may
        # legitimately share a flow_id on one simulator (unit tests,
        # multi-connection scenarios).  Weak keys let torn-down
        # endpoints disappear without unbounded growth.
        self._senders: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self._receivers: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self._peer_sender: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self.checks_run = 0

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_sender(self, sender) -> None:
        self._senders.setdefault(sender, _FlowState())

    def register_receiver(self, receiver) -> None:
        self._receivers.setdefault(receiver, _FlowState())

    def register_pair(self, sender, receiver) -> None:
        """Link the two endpoints of a connection so cross-endpoint
        conservation (receiver never holds more than the sender
        injected) can be checked."""
        self.register_sender(sender)
        self.register_receiver(receiver)
        self._peer_sender[receiver] = sender

    def _fail(self, invariant: str, flow_id: Optional[int], detail: str):
        raise InvariantViolation(invariant, self.sim.now(), flow_id, detail)

    # ------------------------------------------------------------------
    # engine hooks
    # ------------------------------------------------------------------
    def on_event(self, t: float) -> None:
        """Called by the engine for every event about to fire."""
        self.checks_run += 1
        if not math.isfinite(t) or t < 0.0:
            self._fail("event_clock", None, f"event time {t!r} is not a "
                       "finite non-negative instant")
        if t < self._last_event_time - _EPS:
            self._fail("event_clock", None,
                       f"event fires at {t!r} after one at "
                       f"{self._last_event_time!r} (queue order broken)")
        self._last_event_time = t

    # ------------------------------------------------------------------
    # sender hooks
    # ------------------------------------------------------------------
    def on_data_sent(self, sender, rec) -> None:
        """Called for every DATA emission (new or retransmission)."""
        self.checks_run += 1
        state = self._senders.setdefault(sender, _FlowState())
        if rec.pkt_seq <= state.last_pkt_seq:
            self._fail("pkt_seq_monotone", sender.flow_id,
                       f"PKT.SEQ {rec.pkt_seq} not above previous "
                       f"{state.last_pkt_seq} (S5.1 requires strictly "
                       "increasing packet numbers)")
        state.last_pkt_seq = rec.pkt_seq
        if rec.seq < 0 or rec.length <= 0:
            self._fail("pkt_seq_monotone", sender.flow_id,
                       f"bad segment seq={rec.seq} length={rec.length}")

    def on_rtt_sample(self, sender, sample: float, now: float) -> None:
        """Called for every raw RTT sample the sender takes."""
        if sample <= 0 or not math.isfinite(sample):
            self._fail("rtt_min_window", sender.flow_id,
                       f"non-positive RTT sample {sample!r}")
        state = self._senders.setdefault(sender, _FlowState())
        state.push_rtt_sample(now, sample)

    def on_sender_feedback(self, sender, fb) -> None:
        """Called at the end of every processed acknowledgment."""
        self.checks_run += 1
        flow = sender.flow_id
        state = self._senders.setdefault(sender, _FlowState())
        state.feedbacks_seen += 1
        now = self.sim.now()

        if fb.awnd < 0:
            self._fail("nonneg_rwnd", flow,
                       f"advertised window {fb.awnd} < 0")
        pacing = sender.cc.pacing_rate_bps()
        if pacing < 0 or not math.isfinite(pacing):
            self._fail("nonneg_pacing", flow,
                       f"pacing rate {pacing!r} bps")
        cwnd = sender.cc.cwnd_bytes()
        if cwnd <= 0:
            self._fail("nonneg_pacing", flow,
                       f"congestion window {cwnd} <= 0")
        if sender.cum_acked < state.last_cum_ack:
            self._fail("cum_ack_monotone", flow,
                       f"cum_ack moved backward: {sender.cum_acked} < "
                       f"{state.last_cum_ack}")
        state.last_cum_ack = sender.cum_acked
        if sender.in_flight < 0:
            self._fail("byte_conservation", flow,
                       f"in_flight {sender.in_flight} < 0")

        self._check_rtt_min_window(sender, state, now)
        if state.feedbacks_seen % LEDGER_CHECK_PERIOD == 0:
            self.check_sender_ledger(sender)

    def check_sender_ledger(self, sender) -> None:
        """Full O(window) conservation audit of the sender's ledger."""
        self.checks_run += 1
        flow = sender.flow_id
        covered = 0
        in_flight = 0
        for rec in sender.records.values():
            covered += max(0, rec.end - max(rec.seq, sender.cum_acked))
            if rec.in_flight():
                in_flight += rec.length
        outstanding = sender.next_seq - sender.cum_acked
        if covered != outstanding:
            self._fail("byte_conservation", flow,
                       f"send records cover {covered} bytes but "
                       f"next_seq - cum_acked = {outstanding} "
                       "(sent != delivered + lost + in-flight)")
        if in_flight != sender.in_flight:
            self._fail("byte_conservation", flow,
                       f"in_flight counter {sender.in_flight} != "
                       f"{in_flight} summed from live records")

    def _check_rtt_min_window(self, sender, state: _FlowState,
                              now: float) -> None:
        window = getattr(sender.min_rtt_legacy._filter, "window", 10.0)
        samples = state.rtt_samples
        horizon = now - window
        while samples and samples[0][0] < horizon:
            samples.popleft()
        if not samples:
            return
        floor = samples[0][1]
        reported = sender.current_rtt_min()
        if reported > floor + _EPS:
            self._fail("rtt_min_window", sender.flow_id,
                       f"RTT_min {reported:.9f} exceeds smallest sample "
                       f"{floor:.9f} within the trailing "
                       f"{window:.3f}s window (min filter must be "
                       "non-increasing until samples expire)")

    # ------------------------------------------------------------------
    # receiver hooks
    # ------------------------------------------------------------------
    def on_receiver_data(self, receiver) -> None:
        """Called after every data packet the receiver ingests."""
        self.checks_run += 1
        flow = receiver.flow_id
        state = self._receivers.setdefault(receiver, _FlowState())
        if receiver.delivered_ptr < state.last_delivered_ptr:
            self._fail("cum_ack_monotone", flow,
                       f"delivered_ptr moved backward: "
                       f"{receiver.delivered_ptr} < {state.last_delivered_ptr}")
        state.last_delivered_ptr = receiver.delivered_ptr
        awnd = receiver.awnd()
        if awnd < 0:
            self._fail("nonneg_rwnd", flow, f"advertised window {awnd} < 0")
        first_missing = receiver.intervals.first_missing(receiver.delivered_ptr)
        if first_missing < receiver.delivered_ptr:
            self._fail("stream_conservation", flow,
                       f"reassembly cursor {first_missing} below "
                       f"consumption point {receiver.delivered_ptr}")
        sender = self._peer_sender.get(receiver)
        if sender is not None:
            held = receiver.delivered_ptr + receiver.intervals.covered()
            if held > sender.next_seq:
                self._fail("stream_conservation", flow,
                           f"receiver holds {held} stream bytes but the "
                           f"sender only injected {sender.next_seq}")
