"""simsan: zero-cost-when-off runtime invariant sanitizer.

Enable globally with the environment variable::

    REPRO_SIMSAN=1 python -m pytest

or per simulation::

    sim = Simulator(seed=1, simsan=True)
    cfg = ConnectionConfig(simsan=True)   # enables on the Connection's sim

When enabled, the engine and both transport endpoints run invariant
checks (event-clock monotonicity, PKT.SEQ monotonicity, byte
conservation, non-negative rwnd/pacing, windowed RTT_min monotonicity)
and raise a structured :class:`InvariantViolation` naming the
invariant, the simulated time, and the flow.  When disabled the hooks
cost one ``is not None`` test — no state, no allocation.
"""

from __future__ import annotations

import os

from repro.sanitize.invariants import (
    LEDGER_CHECK_PERIOD,
    InvariantViolation,
    SimSanitizer,
)

_ENV_VAR = "REPRO_SIMSAN"
_TRUTHY = ("1", "true", "yes", "on")


def env_enabled() -> bool:
    """True when ``REPRO_SIMSAN`` requests sanitized runs."""
    return os.environ.get(_ENV_VAR, "").strip().lower() in _TRUTHY


def resolve(flag: "bool | None") -> bool:
    """Fold an explicit three-state flag with the environment default."""
    return env_enabled() if flag is None else bool(flag)


__all__ = [
    "InvariantViolation",
    "LEDGER_CHECK_PERIOD",
    "SimSanitizer",
    "env_enabled",
    "resolve",
]
