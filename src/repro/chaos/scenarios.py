"""The chaos scenario library.

Each :class:`Scenario` bundles a wired-path shape (rate/RTT/transfer
size), a :class:`~repro.chaos.faults.FaultSchedule` factory, and the
*expected ending*: every scenario x scheme run must terminate in
either full delivery or a structured abort within ``time_limit_s`` of
simulated time — a hang or an unhandled exception is always a bug.

``expect`` encodes which ending is acceptable:

* ``"deliver"`` — the impairment is survivable; the transfer must
  complete (possibly slowly).
* ``"abort"`` — the path is unrecoverable; the sender must give up
  with a structured :class:`~repro.transport.errors.AbortInfo`.
* ``"any"`` — both endings are legitimate (e.g. heavy loss right at
  the handshake: survival depends on the scheme's retry discipline).

The impairment shapes mirror the paper's robustness experiments:
``ack-path-loss`` is Fig. 5(b)'s asymmetric ACK-drop profile,
``burst-loss`` is the Gilbert-Elliott wireless profile behind
Fig. 13's loss sweeps, and ``bw-collapse`` models the rate-varying
channel of S6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.chaos.faults import (
    BandwidthOscillation,
    Blackout,
    BurstLossEpisode,
    Corruption,
    DelayStep,
    Duplication,
    FaultSchedule,
    JitterSpike,
    LinkFlap,
    LossEpisode,
    Reordering,
)

#: The protocol schemes every scenario is swept against by default:
#: TACK, the per-packet-ACK legacy baseline, and the BBR/CUBIC stacks.
DEFAULT_SCHEMES = ("tcp-tack", "tcp-bbr-perpacket", "tcp-bbr", "tcp-cubic")


@dataclass(frozen=True)
class Scenario:
    """One named chaos experiment: topology + fault schedule + verdict."""

    name: str
    description: str
    build: Callable[[], FaultSchedule] = field(repr=False)
    expect: str = "deliver"          # "deliver" | "abort" | "any"
    rate_bps: float = 20e6
    rtt_s: float = 0.04
    transfer_bytes: int = 1_500_000
    time_limit_s: float = 120.0
    #: Expected dominant diagnosis from the flow doctor: each token
    #: (``|``-separated alternatives, for scheme-dependent endings)
    #: must match either the dominant send-limit state or a present
    #: anomaly kind (see ``ChaosResult.diagnosis_ok``).  The chaos
    #: pytest suite asserts this across the scenario x scheme matrix.
    diagnosis: str = ""
    #: Misbehaving-peer model (a :data:`repro.adversary.models.
    #: ADVERSARIES` name) wrapped around the feedback path, or ``""``
    #: for a network-faults-only scenario.
    adversary: str = ""
    #: When non-empty and the run aborts, the structured abort reason
    #: must be one of these (e.g. the guard's ``misbehaving_peer``
    #: rather than a coincidental ``rto_exhausted``).
    expect_abort: tuple = ()

    def __post_init__(self):
        if self.expect not in ("deliver", "abort", "any"):
            raise ValueError(f"bad expect: {self.expect!r}")


def _blackout() -> FaultSchedule:
    # Starts at 0.3 s so even the fastest scheme (TACK finishes the
    # 1.5 MB transfer in ~0.75 s unimpaired) is still mid-transfer.
    return FaultSchedule([Blackout(0.3, 2.0, direction="both")])


def _flap() -> FaultSchedule:
    return FaultSchedule([LinkFlap(0.5, 3.0, period_s=0.5, direction="forward")])


def _ack_path_loss() -> FaultSchedule:
    # Asymmetric: only the ACK direction is impaired (Fig. 5(b) shape).
    # 60% uniform feedback loss forces TACK's graceful degradation.
    return FaultSchedule([LossEpisode(0.3, 4.0, rate=0.6, direction="reverse")])


def _burst_loss() -> FaultSchedule:
    return FaultSchedule([
        BurstLossEpisode(0.3, 3.0, p_enter=0.05, p_exit=0.3, bad_loss=0.7,
                         direction="forward"),
    ])


def _bw_collapse() -> FaultSchedule:
    return FaultSchedule([
        BandwidthOscillation(0.5, 4.0, low_bps=1e6, high_bps=20e6,
                             period_s=1.0, direction="forward"),
    ])


def _jitter_reorder() -> FaultSchedule:
    return FaultSchedule([
        JitterSpike(0.3, 2.0, jitter_s=0.02, direction="forward"),
        Reordering(2.5, 2.0, prob=0.1, extra_delay_s=0.03,
                   direction="forward"),
    ])


def _dup_corrupt() -> FaultSchedule:
    return FaultSchedule([
        Duplication(0.3, 2.0, prob=0.2, direction="forward"),
        Corruption(0.3, 2.0, prob=0.05, direction="forward"),
        Corruption(2.6, 1.0, prob=0.05, direction="reverse"),
    ])


def _route_change() -> FaultSchedule:
    # +0.25 s each way: the RTT step (~0.54 s total) overshoots the
    # retransmission timer armed for the old ~40 ms path, so the route
    # flip manifests as *spurious* RTOs — the in-flight data was only
    # delayed, never lost (the flow-doctor anomaly this scenario pins).
    # t=0.3 for the same reason as the blackout: later and the fast
    # schemes have already drained the transfer.
    return FaultSchedule([DelayStep(0.3, 2.0, extra_delay_s=0.25,
                                    direction="both")])


def _dead_path() -> FaultSchedule:
    # Never lifts within the time limit: the sender must abort, not hang.
    return FaultSchedule([Blackout(0.5, 600.0, direction="both")])


def _handshake_storm() -> FaultSchedule:
    # Heavy loss from t=0 swallows SYN exchanges; whether the flow
    # establishes before retries run out is scheme/seed-dependent.
    return FaultSchedule([LossEpisode(0.0, 8.0, rate=0.85, direction="both")])


def _kitchen_sink() -> FaultSchedule:
    # Everything composed: loss burst, rate collapse, jitter, dup,
    # asymmetric corruption, and a short blackout — staggered so
    # same-kind windows never overlap.
    return FaultSchedule([
        BurstLossEpisode(0.3, 2.0, direction="forward"),
        BandwidthOscillation(0.5, 3.0, low_bps=2e6, high_bps=20e6,
                             period_s=0.8, direction="forward"),
        JitterSpike(1.0, 1.5, jitter_s=0.015, direction="reverse"),
        Duplication(1.5, 1.0, prob=0.15, direction="forward"),
        Corruption(2.0, 1.0, prob=0.03, direction="reverse"),
        Blackout(4.0, 0.5, direction="both"),
    ])


SCENARIOS: dict[str, Scenario] = {
    s.name: s for s in [
        Scenario("blackout", "2 s total outage mid-transfer, both directions",
                 _blackout, diagnosis="rto-recovery"),
        # TACK's periodic pull keeps pacing through the flap and shows
        # up as ACK-starvation episodes instead of RTO storms.
        Scenario("flap", "link flaps at 2 Hz for 3 s (down half the time)",
                 _flap, diagnosis="rto-recovery|pull-recovery|ack-starvation"),
        Scenario("ack-path-loss",
                 "60% uniform ACK-path loss for 4 s (Fig. 5(b) shape)",
                 _ack_path_loss,
                 diagnosis="ack-starvation|ack-starved|degraded-tack"),
        Scenario("burst-loss",
                 "Gilbert-Elliott burst loss on the data path for 3 s",
                 # CUBIC's multiplicative decrease leaves it crawling
                 # cwnd-limited after the burst rather than in recovery.
                 _burst_loss,
                 diagnosis="pull-recovery|rto-recovery|cwnd-limited"),
        Scenario("bw-collapse",
                 "bottleneck oscillates 20 Mbps <-> 1 Mbps for 4 s",
                 _bw_collapse,
                 diagnosis="cwnd-limited|pull-recovery|rto-recovery"),
        # Mild impairment: the flow should stay *productive* — loss
        # recovery from dup-delivery at worst, never an RTO spiral.
        Scenario("jitter-reorder",
                 "20 ms jitter spike, then 10% reordering at +30 ms",
                 _jitter_reorder,
                 diagnosis="pull-recovery|cwnd-limited|pacing-limited"),
        Scenario("dup-corrupt",
                 "20% duplication + in-flight corruption, both directions",
                 _dup_corrupt, diagnosis="pull-recovery|cwnd-limited"),
        # TACK/CUBIC trip the timer and the doctor proves it spurious
        # (Eifel-lite); the BBR stacks instead mark the delay-reordered
        # flight lost and spend the step in feedback-driven recovery.
        Scenario("route-change",
                 "RTT steps +500 ms for 2 s and back (route flip)",
                 _route_change,
                 diagnosis="rto-recovery|spurious-rto|cwnd-limited"
                           "|pull-recovery"),
        Scenario("dead-path",
                 "path goes dark at t=0.5 s and never recovers",
                 _dead_path, expect="abort", transfer_bytes=4_000_000,
                 time_limit_s=600.0, diagnosis="rto-recovery"),
        Scenario("handshake-storm",
                 "85% bidirectional loss from t=0 through the handshake",
                 _handshake_storm, expect="any", transfer_bytes=300_000,
                 time_limit_s=300.0, diagnosis="handshake|rto-recovery"),
        Scenario("kitchen-sink",
                 "burst loss + rate collapse + jitter + dup + corruption "
                 "+ blackout, staggered",
                 _kitchen_sink,
                 diagnosis="rto-recovery|pull-recovery|cwnd-limited"),
    ]
}


def _no_faults() -> FaultSchedule:
    # Adversary scenarios impair the feedback *content*, not the
    # network: the path itself stays clean so every ending is
    # attributable to the peer model alone.
    return FaultSchedule([])


#: Misbehaving-peer scenarios, swept across the same scheme matrix but
#: kept OUT of :data:`SCENARIOS` on purpose: the legitimate-network
#: matrix doubles as the guard's false-positive suite (strict mode must
#: see zero violations there), while every scenario here must end in
#: its declared guard verdict.
ADVERSARY_SCENARIOS: dict[str, Scenario] = {
    s.name: s for s in [
        Scenario("adv-optimistic-acker",
                 "peer acks data far beyond anything sent, compounding",
                 _no_faults, expect="abort",
                 adversary="optimistic-acker",
                 expect_abort=("misbehaving_peer",),
                 transfer_bytes=4_000_000,
                 diagnosis="misbehaving-peer"),
        Scenario("adv-ack-withholder",
                 "peer goes silent after 200 kB while the path keeps "
                 "accepting data (T-RACKs failure mode)",
                 _no_faults, expect="abort",
                 adversary="ack-withholder",
                 expect_abort=("misbehaving_peer",),
                 transfer_bytes=4_000_000,
                 diagnosis="misbehaving-peer"),
        Scenario("adv-pull-flooder",
                 "every feedback demands out-of-range or whole-horizon "
                 "retransmission pulls",
                 _no_faults, expect="abort",
                 adversary="pull-flooder",
                 expect_abort=("misbehaving_peer",),
                 transfer_bytes=4_000_000,
                 diagnosis="misbehaving-peer"),
        Scenario("adv-fbseq-replayer",
                 "peer freezes fb_seq, masking ACK-path loss from rho'",
                 _no_faults, expect="abort",
                 adversary="fbseq-replayer",
                 expect_abort=("misbehaving_peer",),
                 transfer_bytes=4_000_000,
                 diagnosis="misbehaving-peer"),
        # The tolerate half of tolerate->escalate: a *bounded* timing
        # poisoning window is clamped through and the flow delivers.
        # Legacy schemes carry no timing fields, so the model is a
        # no-op there and the doctor sees an ordinary clean run.
        Scenario("adv-rtt-poisoner",
                 "bounded window of poisoned TACK timing echoes; guard "
                 "clamps through, flow still delivers",
                 _no_faults, expect="deliver",
                 adversary="rtt-poisoner",
                 transfer_bytes=4_000_000,
                 diagnosis="misbehaving-peer|cwnd-limited|pacing-limited"
                           "|app-limited"),
        Scenario("adv-field-mangler",
                 "random typed-garbage mutation of one feedback field "
                 "per frame",
                 _no_faults, expect="abort",
                 adversary="field-mangler",
                 expect_abort=("misbehaving_peer",),
                 transfer_bytes=4_000_000,
                 diagnosis="misbehaving-peer"),
    ]
}


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        pass
    try:
        return ADVERSARY_SCENARIOS[name]
    except KeyError:
        known = sorted(SCENARIOS) + sorted(ADVERSARY_SCENARIOS)
        raise KeyError(
            f"unknown scenario {name!r}; have {known}") from None


def adversary_scenario(model: str) -> Scenario:
    """The ``adv-*`` scenario exercising one adversary model."""
    name = f"adv-{model}"
    try:
        return ADVERSARY_SCENARIOS[name]
    except KeyError:
        known = sorted(s.adversary for s in ADVERSARY_SCENARIOS.values())
        raise KeyError(
            f"no scenario for adversary {model!r}; have {known}") from None
