"""Chaos CLI: ``python -m repro.chaos <list|run>``.

``list`` prints the scenario library; ``run`` executes one scenario
(or ``--all``) against one or more schemes and reports each run's
ending.  Exit codes follow the repo convention: 0 every run ended as
its scenario expects, 1 at least one run misbehaved, 2 usage errors.

Examples::

    python -m repro.chaos list
    python -m repro.chaos run --scenario blackout
    python -m repro.chaos run --all --scheme tcp-tack --scheme tcp-bbr
    python -m repro.chaos run --scenario dead-path --simsan --json
    python -m repro.chaos run --scenario flap --trace flap.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.chaos.runner import ChaosResult, run_scenario
from repro.chaos.scenarios import DEFAULT_SCHEMES, SCENARIOS, get_scenario


def cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for name in sorted(SCENARIOS):
        s = SCENARIOS[name]
        rows.append((name, s.expect, s.description))
    if args.json:
        print(json.dumps([
            {"name": n, "expect": e, "description": d} for n, e, d in rows
        ], indent=2))
        return 0
    width = max(len(n) for n, _, _ in rows)
    for name, expect, description in rows:
        print(f"{name:<{width}}  [{expect:>7}]  {description}")
    return 0


def _run_one(name: str, scheme: str, args: argparse.Namespace,
             trace_path: Optional[str]) -> ChaosResult:
    telemetry = None
    collector = None
    if trace_path is not None:
        from repro.telemetry import JsonlSink, TraceCollector

        collector = TraceCollector(sink=JsonlSink(
            trace_path, meta={"scenario": name, "scheme": scheme}))
        telemetry = collector
    try:
        return run_scenario(
            get_scenario(name), scheme=scheme, seed=args.seed,
            simsan=True if args.simsan else None, telemetry=telemetry,
        )
    finally:
        if collector is not None:
            collector.close()


def cmd_run(args: argparse.Namespace) -> int:
    if args.all:
        names = sorted(SCENARIOS)
    elif args.scenario:
        names = args.scenario
    else:
        print("error: pass --scenario NAME (repeatable) or --all",
              file=sys.stderr)
        return 2
    schemes = args.scheme or list(DEFAULT_SCHEMES)
    try:
        for name in names:
            get_scenario(name)  # validate before running anything
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    results: list[ChaosResult] = []
    multi = len(names) * len(schemes) > 1
    for name in names:
        for scheme in schemes:
            trace_path = args.trace
            if trace_path is not None and multi:
                stem = trace_path[:-6] if trace_path.endswith(".jsonl") \
                    else trace_path
                trace_path = f"{stem}.{name}.{scheme}.jsonl"
            results.append(_run_one(name, scheme, args, trace_path))
    failures = [r for r in results if not (r.ok and r.diagnosis_ok())]
    if args.json:
        print(json.dumps({
            "ok": not failures,
            "runs": [r.to_dict() for r in results],
        }, indent=2))
    else:
        for r in results:
            mark = "ok " if r.ok and r.diagnosis_ok() else "FAIL"
            detail = (f"{r.bytes_delivered}/{r.transfer_bytes}B "
                      f"in {r.sim_time_s:.2f}s")
            if r.abort is not None:
                detail += f"  abort={r.abort['reason']}"
            dominant = r.dominant_diagnosis()
            if dominant is not None:
                detail += f"  dx={dominant}"
                anomalies = r.anomaly_kinds()
                if anomalies:
                    detail += f"+{','.join(anomalies)}"
                if not r.diagnosis_ok():
                    detail += f" (expect {r.expect_diagnosis})"
            print(f"{mark}  {r.scenario:<16} {r.scheme:<18} "
                  f"{r.outcome:<9} (expect {r.expect})  {detail}")
        if failures:
            print(f"{len(failures)}/{len(results)} runs misbehaved")
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Deterministic fault-injection scenarios for the "
                    "transport simulator.")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="print the scenario library")
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=cmd_list)

    p = sub.add_parser("run", help="run scenarios against schemes")
    p.add_argument("--scenario", action="append", default=None,
                   help="scenario name (repeatable)")
    p.add_argument("--all", action="store_true",
                   help="run every scenario in the library")
    p.add_argument("--scheme", action="append", default=None,
                   help=f"protocol scheme (repeatable; default "
                        f"{', '.join(DEFAULT_SCHEMES)})")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--simsan", action="store_true",
                   help="force runtime invariant checks on")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="write a telemetry JSONL trace (per-run suffix "
                        "added when sweeping)")
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=cmd_run)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code not in (0,) else 0
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
