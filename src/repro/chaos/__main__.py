"""``python -m repro.chaos`` entry point (host-side)."""

import sys

from repro.chaos.cli import main

if __name__ == "__main__":
    sys.exit(main())
