"""repro.chaos: deterministic fault injection for the simulator.

Quickstart::

    from repro.chaos import Blackout, ChaosInjector, FaultSchedule

    sim = Simulator(seed=7)
    path = wired_path(sim, rate_bps=20e6, rtt_s=0.04)
    conn = make_connection(sim, "tcp-tack")
    conn.wire(path.forward, path.reverse)
    schedule = FaultSchedule([Blackout(1.0, 2.0, direction="both")])
    ChaosInjector(sim, path, schedule).arm()
    conn.start_transfer(2_000_000)
    sim.run(until=60.0)
    conn.raise_if_aborted()      # structured, never a silent stall

Or run the named scenario library from the shell::

    python -m repro.chaos list
    python -m repro.chaos run --scenario blackout --scheme tcp-tack
"""

from repro.chaos.faults import (
    DIRECTIONS,
    BandwidthOscillation,
    Blackout,
    BurstLossEpisode,
    ChaosInjector,
    Corruption,
    DelayStep,
    Duplication,
    Fault,
    FaultSchedule,
    JitterSpike,
    LinkFlap,
    LossEpisode,
    Reordering,
)
from repro.chaos.runner import ChaosResult, run_scenario
from repro.chaos.scenarios import (
    ADVERSARY_SCENARIOS,
    DEFAULT_SCHEMES,
    SCENARIOS,
    Scenario,
    adversary_scenario,
    get_scenario,
)

__all__ = [
    "Fault",
    "FaultSchedule",
    "ChaosInjector",
    "Blackout",
    "LinkFlap",
    "BandwidthOscillation",
    "LossEpisode",
    "BurstLossEpisode",
    "Reordering",
    "Duplication",
    "Corruption",
    "JitterSpike",
    "DelayStep",
    "DIRECTIONS",
    "Scenario",
    "SCENARIOS",
    "ADVERSARY_SCENARIOS",
    "DEFAULT_SCHEMES",
    "get_scenario",
    "adversary_scenario",
    "ChaosResult",
    "run_scenario",
]
