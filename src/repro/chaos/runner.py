"""Run one chaos scenario against one protocol scheme and classify
how it ended.

The contract every run is checked against (and the chaos pytest suite
asserts across the whole scenario x scheme matrix):

1. the simulation *terminates* — the event loop drains or the time
   limit is reached, never an unbounded event storm (``max_events``
   backstop);
2. the connection ends **observably**: all bytes delivered, or a
   structured abort — a silent stall is classified ``"stalled"`` and
   treated as a failure;
3. with ``REPRO_SIMSAN=1`` (or ``simsan=True``) no runtime invariant
   fires — violations raise straight through
   (:class:`repro.sanitize.InvariantViolation`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.adversary.models import make_adversary
from repro.chaos.faults import ChaosInjector
from repro.chaos.scenarios import Scenario
from repro.core.flavors import make_connection
from repro.diagnose.live import FlowDoctor
from repro.netsim.engine import Simulator
from repro.netsim.paths import wired_path
from repro.transport.errors import abort_result

#: Event-count backstop: generous for any sane scenario (tens of
#: seconds of simulated transfer), small enough that a timer storm
#: fails fast instead of spinning the host.
MAX_EVENTS = 5_000_000


@dataclass
class ChaosResult:
    """How one scenario x scheme run ended."""

    scenario: str
    scheme: str
    seed: int
    outcome: str                 # "delivered" | "aborted" | "stalled" | "runaway"
    expect: str
    sim_time_s: float
    events_fired: int
    bytes_delivered: int
    transfer_bytes: int
    abort: Optional[dict] = None
    summary: dict = field(default_factory=dict)
    fault_log: list = field(default_factory=list)
    expect_diagnosis: str = ""
    diagnosis: Optional[dict] = None     # full flow-doctor report
    adversary: str = ""
    expect_abort: tuple = ()

    @property
    def ok(self) -> bool:
        """Did the run end the way the scenario allows?"""
        if self.outcome == "delivered":
            return self.expect in ("deliver", "any")
        if self.outcome == "aborted":
            if self.expect not in ("abort", "any"):
                return False
            # A declared abort vocabulary pins the *reason*, not just
            # the ending: an adversary scenario that happens to die of
            # rto_exhausted did not demonstrate the guard.
            if self.expect_abort:
                reason = (self.abort or {}).get("reason")
                return reason in self.expect_abort
            return True
        return False

    def dominant_diagnosis(self) -> Optional[str]:
        """Dominant send-limit state of the (single) flow, if diagnosed."""
        if not self.diagnosis:
            return None
        flows = self.diagnosis.get("flows", {})
        flow = flows.get("0") or next(iter(flows.values()), None)
        return flow["dominant"] if flow else None

    def anomaly_kinds(self) -> list:
        if not self.diagnosis:
            return []
        kinds = set()
        for flow in self.diagnosis.get("flows", {}).values():
            kinds.update(f["kind"] for f in flow["anomalies"])
        return sorted(kinds)

    def diagnosis_ok(self) -> bool:
        """Does the flow doctor's verdict match the scenario's declared
        expectation?  A ``|``-separated declaration accepts any listed
        token, each matching either the dominant state or a present
        anomaly kind."""
        if not self.expect_diagnosis:
            return True
        if not self.diagnosis:
            return False
        dominant = self.dominant_diagnosis()
        kinds = set(self.anomaly_kinds())
        return any(tok == dominant or tok in kinds
                   for tok in self.expect_diagnosis.split("|"))

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "scheme": self.scheme,
            "seed": self.seed,
            "outcome": self.outcome,
            "expect": self.expect,
            "ok": self.ok,
            "sim_time_s": self.sim_time_s,
            "events_fired": self.events_fired,
            "bytes_delivered": self.bytes_delivered,
            "transfer_bytes": self.transfer_bytes,
            "abort": self.abort,
            "summary": self.summary,
            "faults": [
                {"t": t, "kind": kind, "action": action}
                for t, kind, action in self.fault_log
            ],
            "adversary": self.adversary,
            "expect_abort": list(self.expect_abort),
            "expect_diagnosis": self.expect_diagnosis,
            "diagnosis_ok": self.diagnosis_ok(),
            "dominant_diagnosis": self.dominant_diagnosis(),
            "anomalies": self.anomaly_kinds(),
            "diagnosis_digest": (self.diagnosis or {}).get("digest"),
        }


def run_scenario(
    scenario: Scenario,
    scheme: str = "tcp-tack",
    seed: int = 1,
    simsan: Optional[bool] = None,
    telemetry=None,
    max_events: int = MAX_EVENTS,
    diagnose: bool = True,
) -> ChaosResult:
    """Execute ``scenario`` under ``scheme`` and classify the ending.

    Raises nothing for protocol-level failures (those become outcomes);
    sanitizer violations and genuine bugs do raise.
    """
    doctor = FlowDoctor() if diagnose else None
    sim = Simulator(seed=seed, simsan=simsan, telemetry=telemetry,
                    diagnosis=doctor)
    path = wired_path(sim, rate_bps=scenario.rate_bps, rtt_s=scenario.rtt_s)
    conn = make_connection(sim, scheme=scheme,
                           initial_rtt_s=scenario.rtt_s)
    reverse = path.reverse
    if scenario.adversary:
        # The misbehaving peer owns the feedback path: the wrapper sits
        # between the receiver and the reverse link (the receiver stays
        # honest; its frames are rewritten/withheld in flight).
        reverse = make_adversary(scenario.adversary, sim, reverse)
    conn.wire(path.forward, reverse)
    injector = ChaosInjector(sim, path, scenario.build()).arm()
    conn.start_transfer(scenario.transfer_bytes)
    sim.run(until=scenario.time_limit_s, max_events=max_events)
    if conn.completed:
        outcome = "delivered"
    elif conn.aborted is not None:
        outcome = "aborted"
        # An aborted connection must leave no self-sustaining timers:
        # drain what remains (bounded past the last fault revert) and
        # insist the loop goes quiet.
        drain_until = max(scenario.time_limit_s,
                          injector.schedule.window()[1]) + 1.0
        sim.run(until=drain_until, max_events=100_000)
        if sim.pending() > 0:
            outcome = "runaway"
    elif sim.events_fired >= max_events:
        outcome = "runaway"
    else:
        outcome = "stalled"
    conn.close()
    if doctor is not None:
        # conn.close() emitted the transport/close event, so the flow
        # is already finalized; this only covers defensive cases.
        doctor.finalize()
    if conn.completed:
        ended_at = conn.sender.completed_at
    elif conn.aborted is not None:
        ended_at = conn.aborted.at_s
    else:
        ended_at = sim.now()
    return ChaosResult(
        scenario=scenario.name,
        scheme=scheme,
        seed=seed,
        outcome=outcome,
        expect=scenario.expect,
        sim_time_s=ended_at,
        events_fired=sim.events_fired,
        bytes_delivered=conn.receiver.stats.bytes_delivered,
        transfer_bytes=scenario.transfer_bytes,
        abort=abort_result(conn.aborted),
        summary=conn.summary(),
        fault_log=list(injector.log),
        expect_diagnosis=scenario.diagnosis,
        diagnosis=doctor.report() if doctor is not None else None,
        adversary=scenario.adversary,
        expect_abort=scenario.expect_abort,
    )
