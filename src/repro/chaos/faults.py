"""Deterministic fault injection: timed impairments on live links.

A :class:`FaultSchedule` is a list of :class:`Fault` windows; a
:class:`ChaosInjector` arms them against one
:class:`~repro.netsim.paths.PathHandle`, turning each window into a
pair of simulator events (apply at ``start_s``, revert at
``start_s + duration_s``).  Faults act through the link mutation API
(:meth:`~repro.netsim.link.Link.set_rate` /
:meth:`~repro.netsim.link.Link.set_loss` /
:meth:`~repro.netsim.link.Link.impairments`) so the topology is never
rebuilt mid-run and an unimpaired link keeps its zero-cost hot path.

Determinism: every random decision (loss draws, jitter, duplication)
comes from RNG streams forked off the simulation seed, so a scenario
replays identically under the same seed — the property the chaos test
suite and the campaign cache both rely on.

Composability: faults targeting *different* knobs may overlap freely;
two windows of the same fault class on the same direction must not
overlap (the second revert would clobber the first's restore state —
:meth:`FaultSchedule.validate` rejects this at arm time).
"""

from __future__ import annotations

from typing import Optional

from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.loss import BernoulliLoss, GilbertElliottLoss, LossModel

#: Valid ``direction`` values: which link(s) of the path a fault hits.
DIRECTIONS = ("forward", "reverse", "both")


class Fault:
    """One timed impairment window.

    Subclasses implement :meth:`on_start` / :meth:`on_end` against a
    single :class:`~repro.netsim.link.Link`; per-link restore state
    lives in ``self._saved[id(link)]`` so a ``direction="both"`` fault
    keeps the two links' states apart.
    """

    kind = "fault"

    def __init__(self, start_s: float, duration_s: float,
                 direction: str = "forward"):
        if start_s < 0:
            raise ValueError(f"fault start must be >= 0, got {start_s}")
        if duration_s <= 0:
            raise ValueError(f"fault duration must be > 0, got {duration_s}")
        if direction not in DIRECTIONS:
            raise ValueError(
                f"direction must be one of {DIRECTIONS}, got {direction!r}")
        self.start_s = float(start_s)
        self.duration_s = float(duration_s)
        self.direction = direction
        self._saved: dict[int, object] = {}

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def on_start(self, link: Link, injector: "ChaosInjector") -> None:
        raise NotImplementedError

    def on_end(self, link: Link, injector: "ChaosInjector") -> None:
        raise NotImplementedError

    def describe(self) -> str:
        return (f"{self.kind}[{self.direction}] "
                f"t={self.start_s:g}s +{self.duration_s:g}s")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"


class Blackout(Fault):
    """Total outage: the link drops everything at ingress."""

    kind = "blackout"

    def on_start(self, link: Link, injector: "ChaosInjector") -> None:
        link.impairments(injector.rng).blackout = True

    def on_end(self, link: Link, injector: "ChaosInjector") -> None:
        link.impairments(injector.rng).blackout = False


class LinkFlap(Fault):
    """The link toggles dead/alive with period ``period_s`` for the
    window (down first) — the Wi-Fi roam / interface-bounce pattern."""

    kind = "flap"

    def __init__(self, start_s: float, duration_s: float,
                 period_s: float, direction: str = "forward"):
        super().__init__(start_s, duration_s, direction)
        if period_s <= 0:
            raise ValueError(f"flap period must be > 0, got {period_s}")
        self.period_s = float(period_s)
        self._running: dict[int, bool] = {}

    def on_start(self, link: Link, injector: "ChaosInjector") -> None:
        self._running[id(link)] = True
        imp = link.impairments(injector.rng)
        imp.blackout = True
        self._schedule_toggle(link, injector)

    def _schedule_toggle(self, link: Link, injector: "ChaosInjector") -> None:
        injector.sim.call_in(
            self.period_s / 2.0, lambda: self._toggle(link, injector))

    def _toggle(self, link: Link, injector: "ChaosInjector") -> None:
        if not self._running.get(id(link)):
            return
        imp = link.impairments(injector.rng)
        imp.blackout = not imp.blackout
        self._schedule_toggle(link, injector)

    def on_end(self, link: Link, injector: "ChaosInjector") -> None:
        self._running[id(link)] = False
        link.impairments(injector.rng).blackout = False


class BandwidthOscillation(Fault):
    """Rate square-wave between ``low_bps`` and ``high_bps`` with
    period ``period_s`` (low first); the pre-fault rate is restored
    when the window closes.  Models the paper's rate-varying wireless
    channel at the WAN bottleneck."""

    kind = "bw_osc"

    def __init__(self, start_s: float, duration_s: float,
                 low_bps: float, high_bps: float, period_s: float,
                 direction: str = "forward"):
        super().__init__(start_s, duration_s, direction)
        if low_bps <= 0 or high_bps <= 0:
            raise ValueError("oscillation rates must be positive")
        if period_s <= 0:
            raise ValueError(f"oscillation period must be > 0, got {period_s}")
        self.low_bps = float(low_bps)
        self.high_bps = float(high_bps)
        self.period_s = float(period_s)
        self._running: dict[int, bool] = {}
        self._at_low: dict[int, bool] = {}

    def on_start(self, link: Link, injector: "ChaosInjector") -> None:
        self._saved[id(link)] = link.config.rate_bps
        self._running[id(link)] = True
        self._at_low[id(link)] = True
        link.set_rate(self.low_bps)
        self._schedule_toggle(link, injector)

    def _schedule_toggle(self, link: Link, injector: "ChaosInjector") -> None:
        injector.sim.call_in(
            self.period_s / 2.0, lambda: self._toggle(link, injector))

    def _toggle(self, link: Link, injector: "ChaosInjector") -> None:
        if not self._running.get(id(link)):
            return
        at_low = not self._at_low[id(link)]
        self._at_low[id(link)] = at_low
        link.set_rate(self.low_bps if at_low else self.high_bps)
        self._schedule_toggle(link, injector)

    def on_end(self, link: Link, injector: "ChaosInjector") -> None:
        self._running[id(link)] = False
        link.set_rate(self._saved.pop(id(link)))


class LossEpisode(Fault):
    """Uniform random loss at ``rate`` for the window (Bernoulli);
    the pre-fault loss model is restored afterwards."""

    kind = "loss"

    def __init__(self, start_s: float, duration_s: float, rate: float,
                 direction: str = "forward"):
        super().__init__(start_s, duration_s, direction)
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"loss rate must be in (0, 1], got {rate}")
        self.rate = rate

    def on_start(self, link: Link, injector: "ChaosInjector") -> None:
        self._saved[id(link)] = link.set_loss(
            BernoulliLoss(self.rate, injector.fork(f"{self.kind}-{link.name}")))

    def on_end(self, link: Link, injector: "ChaosInjector") -> None:
        link.set_loss(self._saved.pop(id(link)))


class BurstLossEpisode(Fault):
    """Bursty (Gilbert-Elliott) loss for the window: ``p_enter`` /
    ``p_exit`` drive the bad-state Markov chain, ``bad_loss`` is the
    drop probability while bad (paper S6's burst-loss impairment)."""

    kind = "burst_loss"

    def __init__(self, start_s: float, duration_s: float,
                 p_enter: float = 0.02, p_exit: float = 0.25,
                 bad_loss: float = 0.6, direction: str = "forward"):
        super().__init__(start_s, duration_s, direction)
        self.p_enter = p_enter
        self.p_exit = p_exit
        self.bad_loss = bad_loss

    def on_start(self, link: Link, injector: "ChaosInjector") -> None:
        model = GilbertElliottLoss(
            p_gb=self.p_enter, p_bg=self.p_exit, bad_loss=self.bad_loss,
            rng=injector.fork(f"{self.kind}-{link.name}"),
        )
        self._saved[id(link)] = link.set_loss(model)

    def on_end(self, link: Link, injector: "ChaosInjector") -> None:
        link.set_loss(self._saved.pop(id(link)))


class Reordering(Fault):
    """Each packet is independently held back ``extra_delay_s`` with
    probability ``prob`` — later packets overtake it in propagation."""

    kind = "reorder"

    def __init__(self, start_s: float, duration_s: float,
                 prob: float, extra_delay_s: float,
                 direction: str = "forward"):
        super().__init__(start_s, duration_s, direction)
        if not 0.0 < prob <= 1.0:
            raise ValueError(f"reorder prob must be in (0, 1], got {prob}")
        if extra_delay_s <= 0:
            raise ValueError("reorder extra delay must be > 0")
        self.prob = prob
        self.extra_delay_s = extra_delay_s

    def on_start(self, link: Link, injector: "ChaosInjector") -> None:
        imp = link.impairments(injector.rng)
        imp.reorder_prob = self.prob
        imp.reorder_extra_s = self.extra_delay_s

    def on_end(self, link: Link, injector: "ChaosInjector") -> None:
        imp = link.impairments(injector.rng)
        imp.reorder_prob = 0.0
        imp.reorder_extra_s = 0.0


class Duplication(Fault):
    """Each accepted packet is duplicated with probability ``prob``."""

    kind = "duplicate"

    def __init__(self, start_s: float, duration_s: float, prob: float,
                 direction: str = "forward"):
        super().__init__(start_s, duration_s, direction)
        if not 0.0 < prob <= 1.0:
            raise ValueError(f"duplicate prob must be in (0, 1], got {prob}")
        self.prob = prob

    def on_start(self, link: Link, injector: "ChaosInjector") -> None:
        link.impairments(injector.rng).duplicate_prob = self.prob

    def on_end(self, link: Link, injector: "ChaosInjector") -> None:
        link.impairments(injector.rng).duplicate_prob = 0.0


class Corruption(Fault):
    """Each in-flight packet is corrupted away with probability
    ``prob`` (dropped after consuming serialization airtime, unlike an
    ingress loss model)."""

    kind = "corrupt"

    def __init__(self, start_s: float, duration_s: float, prob: float,
                 direction: str = "forward"):
        super().__init__(start_s, duration_s, direction)
        if not 0.0 < prob <= 1.0:
            raise ValueError(f"corrupt prob must be in (0, 1], got {prob}")
        self.prob = prob

    def on_start(self, link: Link, injector: "ChaosInjector") -> None:
        link.impairments(injector.rng).corrupt_prob = self.prob

    def on_end(self, link: Link, injector: "ChaosInjector") -> None:
        link.impairments(injector.rng).corrupt_prob = 0.0


class JitterSpike(Fault):
    """Uniform ``[0, jitter_s)`` extra propagation delay per packet —
    delay variance without reordering guarantees."""

    kind = "jitter"

    def __init__(self, start_s: float, duration_s: float, jitter_s: float,
                 direction: str = "forward"):
        super().__init__(start_s, duration_s, direction)
        if jitter_s <= 0:
            raise ValueError(f"jitter must be > 0, got {jitter_s}")
        self.jitter_s = jitter_s

    def on_start(self, link: Link, injector: "ChaosInjector") -> None:
        link.impairments(injector.rng).jitter_s = self.jitter_s

    def on_end(self, link: Link, injector: "ChaosInjector") -> None:
        link.impairments(injector.rng).jitter_s = 0.0


class DelayStep(Fault):
    """Propagation delay steps up by ``extra_delay_s`` for the window
    (a route change), then back."""

    kind = "delay_step"

    def __init__(self, start_s: float, duration_s: float,
                 extra_delay_s: float, direction: str = "both"):
        super().__init__(start_s, duration_s, direction)
        if extra_delay_s <= 0:
            raise ValueError("delay step must be > 0")
        self.extra_delay_s = extra_delay_s

    def on_start(self, link: Link, injector: "ChaosInjector") -> None:
        self._saved[id(link)] = link.config.delay_s
        link.set_delay(link.config.delay_s + self.extra_delay_s)

    def on_end(self, link: Link, injector: "ChaosInjector") -> None:
        link.set_delay(self._saved.pop(id(link)))


class FaultSchedule:
    """An ordered, validated collection of fault windows."""

    def __init__(self, faults: Optional[list[Fault]] = None):
        self.faults: list[Fault] = []
        for fault in faults or []:
            self.add(fault)

    def add(self, fault: Fault) -> "FaultSchedule":
        """Append a fault; chainable."""
        if not isinstance(fault, Fault):
            raise TypeError(f"expected a Fault, got {type(fault).__name__}")
        self.faults.append(fault)
        return self

    def validate(self) -> None:
        """Reject same-kind overlapping windows on a shared direction
        (their revert steps would clobber each other's saved state)."""
        by_kind: dict[str, list[Fault]] = {}
        for fault in self.faults:
            by_kind.setdefault(fault.kind, []).append(fault)
        for kind, group in by_kind.items():
            group = sorted(group, key=lambda f: f.start_s)
            for a, b in zip(group, group[1:]):
                shared = (a.direction == "both" or b.direction == "both"
                          or a.direction == b.direction)
                if shared and b.start_s < a.end_s:
                    raise ValueError(
                        f"overlapping {kind!r} faults on a shared link: "
                        f"{a.describe()} vs {b.describe()}")

    def window(self) -> tuple[float, float]:
        """(earliest start, latest end) over all faults; (0, 0) when
        empty."""
        if not self.faults:
            return (0.0, 0.0)
        return (min(f.start_s for f in self.faults),
                max(f.end_s for f in self.faults))

    def describe(self) -> list[str]:
        return [f.describe() for f in
                sorted(self.faults, key=lambda f: f.start_s)]

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)


class ChaosInjector:
    """Arms a :class:`FaultSchedule` against one path.

    Parameters
    ----------
    sim:
        The simulation driver (timers + the seed-derived RNG tree).
    path:
        A :class:`~repro.netsim.paths.PathHandle` with a WAN segment;
        pure-WLAN paths have no mutable wired links and are rejected.
    schedule:
        The fault windows to run.

    The injector forks its RNG streams off ``sim`` (one for the shared
    impairment stages, one per stochastic loss episode) so chaos
    randomness never perturbs the protocol/workload streams.
    """

    def __init__(self, sim: Simulator, path, schedule: FaultSchedule):
        self.sim = sim
        self.path = path
        self.schedule = schedule
        self.rng = sim.fork_rng("chaos-impairments")
        self.log: list[tuple[float, str, str]] = []
        self._tel = sim.telemetry
        self._armed = False

    def fork(self, label: str):
        """An independent chaos-RNG stream (loss-model episodes)."""
        return self.sim.fork_rng(f"chaos-{label}")

    def _links_for(self, direction: str) -> list[Link]:
        links = []
        if direction in ("forward", "both"):
            links.append(self.path.forward_link)
        if direction in ("reverse", "both"):
            links.append(self.path.reverse_link)
        if any(link is None for link in links):
            raise ValueError(
                "chaos injection needs a wired WAN segment on the path "
                "(pure-WLAN PathHandles expose no mutable links)")
        return links

    def arm(self) -> "ChaosInjector":
        """Schedule every fault's apply/revert pair; idempotent-safe
        only once — arming twice would double-apply."""
        if self._armed:
            raise RuntimeError("injector already armed")
        self.schedule.validate()
        self._armed = True
        for fault in self.schedule:
            links = self._links_for(fault.direction)  # fail fast, pre-run
            self.sim.call_at(
                fault.start_s,
                lambda f=fault, ls=links: self._fire(f, ls, start=True))
            self.sim.call_at(
                fault.end_s,
                lambda f=fault, ls=links: self._fire(f, ls, start=False))
        return self

    def _fire(self, fault: Fault, links: list[Link], start: bool) -> None:
        for link in links:
            if start:
                fault.on_start(link, self)
            else:
                fault.on_end(link, self)
        action = "on" if start else "off"
        self.log.append((self.sim.now(), fault.kind, action))
        if self._tel is not None:
            self._tel.emit("chaos", f"fault_{action}", 0,
                           kind=fault.kind, direction=fault.direction,
                           start_s=fault.start_s,
                           duration_s=fault.duration_s)
