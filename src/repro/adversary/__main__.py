"""``python -m repro.adversary`` entry point."""

import sys

from repro.adversary.cli import main

if __name__ == "__main__":
    sys.exit(main())
