"""CLI for the adversary plane: ``python -m repro.adversary``.

Subcommands::

    list                    registered models and fuzz schemes
    run --model NAME        one adversarial transfer, JSON verdict
    fuzz --seeds A:B        seeded mutation corpus, JSON report

``fuzz`` is what CI's adversary-smoke job calls: it exits non-zero if
any run violates the full-delivery-or-clean-abort property and, with
``--repro-dir``, writes one JSON artifact per failing run carrying the
exact (scheme, seed, mutation_rate) triple needed to replay it.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional

from repro.adversary.fuzz import FUZZ_SCHEMES, fuzz_corpus, fuzz_run
from repro.adversary.models import ADVERSARIES


def _parse_seeds(spec: str) -> list[int]:
    """``A:B`` (half-open range) or a comma list of ints."""
    if ":" in spec:
        lo, hi = spec.split(":", 1)
        return list(range(int(lo), int(hi)))
    return [int(s) for s in spec.split(",") if s]


def _cmd_list(_args) -> int:
    print(json.dumps({
        "adversaries": sorted(ADVERSARIES),
        "fuzz_schemes": list(FUZZ_SCHEMES),
    }, indent=2))
    return 0


def _cmd_run(args) -> int:
    # Imported lazily: the chaos runner imports the adversary models,
    # so the models module must never import chaos at the top level.
    from repro.chaos.runner import run_scenario
    from repro.chaos.scenarios import adversary_scenario

    scenario = adversary_scenario(args.model)
    result = run_scenario(scenario, scheme=args.scheme, seed=args.seed,
                          simsan=True)
    print(json.dumps(result.to_dict(), indent=2))
    return 0 if result.ok else 1


def _cmd_fuzz(args) -> int:
    seeds = _parse_seeds(args.seeds)
    schemes = tuple(args.schemes.split(",")) if args.schemes else FUZZ_SCHEMES
    report = fuzz_corpus(
        seeds,
        schemes=schemes,
        frames_target=args.frames_target,
        mutation_rate=args.mutation_rate,
        transfer_bytes=args.transfer_bytes,
        simsan=True,
    )
    doc = report.to_dict()
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2)
    if args.repro_dir and report.failures:
        os.makedirs(args.repro_dir, exist_ok=True)
        for fail in report.failures:
            path = os.path.join(
                args.repro_dir, f"fuzz-{fail.scheme}-seed{fail.seed}.json")
            with open(path, "w") as fh:
                json.dump(fail.to_dict(), fh, indent=2)
    print(json.dumps(doc, indent=2))
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.adversary",
        description="misbehaving-peer models and the feedback fuzzer",
    )
    sub = p.add_subparsers(dest="cmd", required=True)

    sub.add_parser("list", help="registered models and schemes")

    run = sub.add_parser("run", help="one adversarial transfer")
    run.add_argument("--model", required=True, choices=sorted(ADVERSARIES))
    run.add_argument("--scheme", default="tcp-tack")
    run.add_argument("--seed", type=int, default=1)

    fz = sub.add_parser("fuzz", help="seeded mutation corpus")
    fz.add_argument("--seeds", default="1:9",
                    help="A:B half-open range or comma list (default 1:9)")
    fz.add_argument("--schemes", default="",
                    help="comma list (default: all fuzz schemes)")
    fz.add_argument("--frames-target", type=int, default=None,
                    help="stop after this many mutated frames")
    fz.add_argument("--mutation-rate", type=float, default=0.4)
    fz.add_argument("--transfer-bytes", type=int, default=600_000)
    fz.add_argument("--out", default="", help="write the report JSON here")
    fz.add_argument("--repro-dir", default="",
                    help="write per-failure repro artifacts here")

    return p


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {"list": _cmd_list, "run": _cmd_run, "fuzz": _cmd_fuzz}[args.cmd]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
