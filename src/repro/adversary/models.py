"""Misbehaving-peer models: adversaries on the feedback path.

Each model is a *port wrapper* sitting between the receiver and the
reverse (ACK-direction) link, so the receiver itself stays honest —
the adversary rewrites, withholds, or injects feedback frames in
flight, exactly the threat model of the sender's feedback guard
(:mod:`repro.transport.guard`): a compromised peer or middlebox that
owns the acknowledgment stream but not the data stream.

Models (registry :data:`ADVERSARIES`):

``optimistic-acker``
    Compounds ``cum_ack`` far past anything in flight — the classic
    optimistic-ACK attack (faking delivery to inflate the sender's
    rate or complete a transfer that never happened).
``ack-withholder``
    Forwards feedback until ``after_bytes`` are acknowledged, then
    drops *every* frame — the T-RACKs failure mode: data keeps
    flowing and being accepted, all acknowledgment stops.
``pull-flooder``
    Rewrites IACK pull ranges into huge or out-of-range demands, the
    receiver-driven analogue of a retransmission-storm attack.
``fbseq-replayer``
    Freezes ``fb_seq`` at an early value, masking real ACK-path loss
    from the sender's rho' estimate (and with it the Eq. (6) adaptive
    block budget).
``rtt-poisoner``
    During a bounded window, corrupts the echoed timing reference /
    hold delay on a fraction of TACKs to fake a near-zero RTT_min.
    Bounded on purpose: the guard should *clamp through* it and the
    flow still deliver — the tolerate half of tolerate->escalate.
``field-mangler``
    Labeled-RNG random mutation: each frame may get one random field
    replaced with typed garbage (wrong type, NaN, absurd magnitude).

All randomness comes from an explicitly passed ``random.Random``
(fork one with ``sim.fork_rng("adversary:<name>")``), so runs are
deterministic and REP002/REP008-clean.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.netsim.engine import Simulator
from repro.netsim.packet import Packet
from repro.transport.feedback import AckFeedback, clone_feedback

#: Typed garbage for field mutation: wrong types, non-finite floats,
#: absurd magnitudes — everything a broken serializer or a hostile
#: peer could put on the wire.  Deliberately *no* values that could
#: land inside the sender's valid window (an in-window lie is
#: indistinguishable from a fast receiver without payload checksums;
#: that attack is ``optimistic-acker``'s, with a declared escalation).
GARBAGE = (
    None, -1, -(1 << 40), 1 << 62, float("nan"), float("inf"),
    -float("inf"), 3.5, "junk", b"\x00", (), (1,), (-5, 1 << 60),
    [(-1,)], [("a", "b")], {"k": 1}, True,
)

#: Feedback fields eligible for random mutation.
MUTABLE_FIELDS = (
    "cum_ack", "awnd", "sack_blocks", "unacked_blocks", "pull_pkt_range",
    "tack_delay", "echo_departure_ts", "delivery_rate_bps", "rx_loss_rate",
    "largest_pkt_seq", "packet_delays", "fb_seq",
)


class AdversaryPort:
    """Base port wrapper: forwards everything, letting subclasses hook
    feedback-bearing frames via :meth:`on_feedback`.

    The wrapper keeps the inner port's ``send`` verdict (a dropped
    frame returns ``False`` like a link-ingress refusal, so receiver
    send-failure counters stay meaningful).
    """

    name = "base"

    def __init__(self, sim: Simulator, inner, rng: random.Random):
        self.sim = sim
        self.inner = inner
        self.rng = rng
        self.frames_seen = 0
        self.frames_touched = 0

    # -- port protocol -------------------------------------------------
    def send(self, packet: Packet):
        fb = packet.meta.get("fb")
        if fb is None:
            return self.inner.send(packet)
        self.frames_seen += 1
        return self.on_feedback(packet, fb)

    def connect(self, sink) -> None:
        self.inner.connect(sink)

    # -- subclass hook -------------------------------------------------
    def on_feedback(self, packet: Packet, fb: AckFeedback):
        return self.inner.send(packet)

    # -- helpers -------------------------------------------------------
    def _forward_mutated(self, packet: Packet, fb: AckFeedback):
        """Reattach a mutated clone and forward."""
        self.frames_touched += 1
        packet.meta["fb"] = fb
        return self.inner.send(packet)


class OptimisticAcker(AdversaryPort):
    """Acks data far beyond anything in flight, compounding."""

    name = "optimistic-acker"

    def __init__(self, sim, inner, rng, lead_bytes: int = 512 * 1024,
                 growth: float = 1.02):
        super().__init__(sim, inner, rng)
        self.lead = float(lead_bytes)
        self.growth = growth

    def on_feedback(self, packet, fb):
        out = clone_feedback(fb)
        out.cum_ack = fb.cum_ack + int(self.lead)
        self.lead *= self.growth
        return self._forward_mutated(packet, out)


class AckWithholder(AdversaryPort):
    """Forwards until ``after_bytes`` are acked, then total silence."""

    name = "ack-withholder"

    def __init__(self, sim, inner, rng, after_bytes: int = 200_000):
        super().__init__(sim, inner, rng)
        self.after_bytes = after_bytes
        self._silent = False

    def on_feedback(self, packet, fb):
        if not self._silent and fb.cum_ack >= self.after_bytes:
            self._silent = True
        if self._silent:
            self.frames_touched += 1
            return False  # withheld: like an ingress drop
        return self.inner.send(packet)


class PullFlooder(AdversaryPort):
    """Turns every feedback into a retransmission demand: alternates
    out-of-range pulls with in-range whole-horizon pulls (the latter
    exercise the per-RTT pull budget rather than the range check)."""

    name = "pull-flooder"

    def on_feedback(self, packet, fb):
        out = clone_feedback(fb)
        horizon = fb.largest_pkt_seq if fb.largest_pkt_seq is not None else 0
        if self.rng.random() < 0.5:
            out.pull_pkt_range = (0, horizon + 1_000_000)  # never sent
        else:
            out.pull_pkt_range = (0, max(horizon, 1))      # everything ever
        return self._forward_mutated(packet, out)


class FbSeqReplayer(AdversaryPort):
    """Freezes ``fb_seq`` at the first value it sees (after a short
    passthrough warmup), replaying it on every later frame."""

    name = "fbseq-replayer"

    def __init__(self, sim, inner, rng, warmup_frames: int = 12):
        super().__init__(sim, inner, rng)
        self.warmup_frames = warmup_frames
        self._frozen: Optional[int] = None

    def on_feedback(self, packet, fb):
        if self.frames_seen <= self.warmup_frames or fb.fb_seq is None:
            if self._frozen is None and fb.fb_seq is not None:
                self._frozen = fb.fb_seq
            return self.inner.send(packet)
        out = clone_feedback(fb)
        out.fb_seq = self._frozen if self._frozen is not None else 0
        return self._forward_mutated(packet, out)


class RttPoisoner(AdversaryPort):
    """Poisons the TACK timing reference on a fraction of frames
    inside ``[start_s, end_s)``: the echoed stamp is offset (never
    stamped by the sender) and the hold delay inflated, which
    unguarded would fake a near-zero RTT sample.  A no-op on legacy
    schemes, whose feedback carries no timing fields."""

    name = "rtt-poisoner"

    def __init__(self, sim, inner, rng, start_s: float = 0.2,
                 end_s: float = 1.2, every: int = 4):
        super().__init__(sim, inner, rng)
        self.start_s = start_s
        self.end_s = end_s
        self.every = every

    def on_feedback(self, packet, fb):
        now = self.sim.now()
        if (fb.echo_departure_ts is None
                or not (self.start_s <= now < self.end_s)
                or self.frames_seen % self.every):
            return self.inner.send(packet)
        out = clone_feedback(fb)
        out.echo_departure_ts = fb.echo_departure_ts - 1e-4
        out.tack_delay = (fb.tack_delay or 0.0) + 30.0
        return self._forward_mutated(packet, out)


class FieldMangler(AdversaryPort):
    """Random typed-garbage mutation of one field per touched frame."""

    name = "field-mangler"

    def __init__(self, sim, inner, rng, rate: float = 0.5):
        super().__init__(sim, inner, rng)
        self.rate = rate

    def on_feedback(self, packet, fb):
        if self.rng.random() >= self.rate:
            return self.inner.send(packet)
        out = clone_feedback(fb)
        field = self.rng.choice(MUTABLE_FIELDS)
        setattr(out, field, self.rng.choice(GARBAGE))
        return self._forward_mutated(packet, out)


#: name -> factory(sim, inner_port, rng) for every model.
ADVERSARIES: dict[str, Callable[..., AdversaryPort]] = {
    cls.name: cls
    for cls in (OptimisticAcker, AckWithholder, PullFlooder,
                FbSeqReplayer, RttPoisoner, FieldMangler)
}


def make_adversary(name: str, sim: Simulator, inner,
                   rng: Optional[random.Random] = None,
                   **kwargs) -> AdversaryPort:
    """Instantiate a registered model wrapping ``inner``; the RNG
    defaults to a fork labeled by the model name."""
    try:
        cls = ADVERSARIES[name]
    except KeyError:
        known = ", ".join(sorted(ADVERSARIES))
        raise KeyError(f"unknown adversary {name!r} (known: {known})") from None
    if rng is None:
        rng = sim.fork_rng(f"adversary:{name}")
    return cls(sim, inner, rng, **kwargs)
