"""Deterministic feedback fuzzer: full-delivery-or-clean-abort.

The fuzzer is a port wrapper (like the :mod:`repro.adversary.models`)
that mutates the acknowledgment stream with a labeled RNG: frames are
dropped, duplicated, delayed, replayed from history, or get one field
replaced with typed garbage.  One seed fully determines one run.

The property every fuzzed run is checked against (the tentpole's
*full-delivery-or-clean-abort* contract, enforced under
``REPRO_SIMSAN=1`` in CI):

1. the run terminates within the wall bound (no hang, no event storm);
2. it ends **observably** — every byte delivered, or a structured
   abort with a documented reason — never a silent stall;
3. no uncaught exception and no sanitizer invariant fires;
4. no delivered-byte corruption: the sender never *completes* a
   transfer the receiver did not fully receive (the guard resets
   out-of-window cumulative ACKs instead of clamping them forward).

The mutation palette deliberately contains no value that could land
inside the sender's valid window: an in-window lie is statistically
indistinguishable from a fast receiver without payload checksums, and
is covered by the ``optimistic-acker`` chaos scenario with a declared
escalation instead.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.adversary.models import GARBAGE, MUTABLE_FIELDS, AdversaryPort
from repro.core.flavors import make_connection
from repro.diagnose.live import FlowDoctor
from repro.netsim.engine import Simulator
from repro.netsim.paths import wired_path
from repro.transport.errors import abort_result
from repro.transport.feedback import clone_feedback, make_feedback_packet

#: The acceptance matrix: every scheme the fuzzer property must hold
#: for (kept local — importing the chaos plane here would cycle, since
#: the chaos runner imports the adversary models).
FUZZ_SCHEMES = ("tcp-tack", "tcp-bbr-perpacket", "tcp-bbr", "tcp-cubic")

#: Event backstop per run (mirrors the chaos runner's contract).
MAX_EVENTS = 5_000_000

#: Documented abort reasons a clean-abort may carry.
CLEAN_ABORT_REASONS = frozenset(
    {"handshake_timeout", "rto_exhausted", "persist_exhausted",
     "misbehaving_peer"}
)


class FeedbackFuzzer(AdversaryPort):
    """Seeded mutation of the feedback stream (see module docstring).

    Operator mix per touched frame: drop, duplicate, delay (up to
    ``max_delay_s``), replay of a stored historical frame, or a single
    random field replaced with typed garbage.
    """

    name = "fuzzer"

    def __init__(self, sim, inner, rng: random.Random,
                 rate: float = 0.4, max_delay_s: float = 0.25,
                 history: int = 64):
        super().__init__(sim, inner, rng)
        self.rate = rate
        self.max_delay_s = max_delay_s
        self._history: list = []
        self._history_cap = history
        self.ops: dict[str, int] = {}

    def _remember(self, packet, fb) -> None:
        entry = (packet.kind, clone_feedback(fb), packet.flow_id)
        if len(self._history) < self._history_cap:
            self._history.append(entry)
        else:
            self._history[self.frames_seen % self._history_cap] = entry

    def _op(self, name: str) -> None:
        self.frames_touched += 1
        self.ops[name] = self.ops.get(name, 0) + 1

    def on_feedback(self, packet, fb):
        self._remember(packet, fb)
        if self.rng.random() >= self.rate:
            return self.inner.send(packet)
        roll = self.rng.random()
        if roll < 0.25:
            self._op("drop")
            return False
        if roll < 0.40:
            self._op("dup")
            self.inner.send(packet)
            dup = make_feedback_packet(packet.kind, clone_feedback(fb),
                                       flow_id=packet.flow_id)
            return self.inner.send(dup)
        if roll < 0.55:
            self._op("delay")
            held = packet
            self.sim.call_in(self.rng.random() * self.max_delay_s,
                             lambda: self.inner.send(held))
            return True
        if roll < 0.70:
            self._op("replay")
            self.inner.send(packet)
            kind, old_fb, flow_id = self.rng.choice(self._history)
            replay = make_feedback_packet(kind, clone_feedback(old_fb),
                                          flow_id=flow_id)
            return self.inner.send(replay)
        self._op("mangle")
        out = clone_feedback(fb)
        fld = self.rng.choice(MUTABLE_FIELDS)
        setattr(out, fld, self.rng.choice(GARBAGE))
        return self._forward_mutated(packet, out)


@dataclass
class FuzzResult:
    """How one fuzzed run ended, plus everything needed to replay it."""

    scheme: str
    seed: int
    mutation_rate: float
    outcome: str          # delivered | aborted | corrupted | stalled | runaway
    sim_time_s: float
    events_fired: int
    frames_seen: int
    frames_mutated: int
    ops: dict
    bytes_delivered: int
    transfer_bytes: int
    abort: Optional[dict] = None
    guard: Optional[dict] = None

    @property
    def ok(self) -> bool:
        """The full-delivery-or-clean-abort property for this run."""
        if self.outcome == "delivered":
            return True
        if self.outcome == "aborted":
            return (self.abort or {}).get("reason") in CLEAN_ABORT_REASONS
        return False

    def to_dict(self) -> dict:
        return {
            "scheme": self.scheme,
            "seed": self.seed,
            "mutation_rate": self.mutation_rate,
            "outcome": self.outcome,
            "ok": self.ok,
            "sim_time_s": self.sim_time_s,
            "events_fired": self.events_fired,
            "frames_seen": self.frames_seen,
            "frames_mutated": self.frames_mutated,
            "ops": dict(sorted(self.ops.items())),
            "bytes_delivered": self.bytes_delivered,
            "transfer_bytes": self.transfer_bytes,
            "abort": self.abort,
            "guard": self.guard,
        }


def fuzz_run(
    scheme: str = "tcp-tack",
    seed: int = 1,
    mutation_rate: float = 0.4,
    transfer_bytes: int = 600_000,
    rate_bps: float = 20e6,
    rtt_s: float = 0.04,
    time_limit_s: float = 60.0,
    simsan: Optional[bool] = None,
    max_events: int = MAX_EVENTS,
) -> FuzzResult:
    """One seeded fuzzed transfer; raises only for genuine bugs (and
    sanitizer violations) — protocol failures become outcomes."""
    sim = Simulator(seed=seed, simsan=simsan, diagnosis=FlowDoctor())
    path = wired_path(sim, rate_bps=rate_bps, rtt_s=rtt_s)
    conn = make_connection(sim, scheme=scheme, initial_rtt_s=rtt_s)
    fuzzer = FeedbackFuzzer(
        sim, path.reverse,
        rng=sim.fork_rng(f"fuzz:{scheme}:{seed}"),
        rate=mutation_rate,
    )
    conn.wire(path.forward, fuzzer)
    conn.start_transfer(transfer_bytes)
    sim.run(until=time_limit_s, max_events=max_events)
    delivered = conn.receiver.stats.bytes_delivered
    if conn.completed and delivered < transfer_bytes:
        # The sender believed a transfer the receiver never got: the
        # one outcome the guard exists to make impossible.
        outcome = "corrupted"
    elif conn.completed:
        outcome = "delivered"
    elif conn.aborted is not None:
        outcome = "aborted"
        sim.run(until=time_limit_s + 1.0, max_events=100_000)
        if sim.pending() > 0:
            outcome = "runaway"
    elif sim.events_fired >= max_events:
        outcome = "runaway"
    else:
        outcome = "stalled"
    conn.close()
    guard = conn.sender.guard
    return FuzzResult(
        scheme=scheme,
        seed=seed,
        mutation_rate=mutation_rate,
        outcome=outcome,
        sim_time_s=sim.now(),
        events_fired=sim.events_fired,
        frames_seen=fuzzer.frames_seen,
        frames_mutated=fuzzer.frames_touched,
        ops=fuzzer.ops,
        bytes_delivered=delivered,
        transfer_bytes=transfer_bytes,
        abort=abort_result(conn.aborted),
        guard=({"violations": dict(guard.counts), "total": guard.total}
               if guard is not None else None),
    )


@dataclass
class CorpusReport:
    """Aggregate of a seed corpus across schemes."""

    runs: list = field(default_factory=list)
    frames_mutated: int = 0
    failures: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def outcomes(self) -> dict:
        tally: dict[str, int] = {}
        for r in self.runs:
            tally[r.outcome] = tally.get(r.outcome, 0) + 1
        return dict(sorted(tally.items()))

    def to_dict(self) -> dict:
        return {
            "runs": len(self.runs),
            "ok": self.ok,
            "frames_mutated": self.frames_mutated,
            "outcomes": self.outcomes(),
            "failures": [r.to_dict() for r in self.failures],
        }


def fuzz_corpus(
    seeds,
    schemes=FUZZ_SCHEMES,
    frames_target: Optional[int] = None,
    **kwargs,
) -> CorpusReport:
    """Replay ``seeds`` x ``schemes``; optionally stop once
    ``frames_target`` mutated frames have been exercised.  Failing
    runs (property violated) are collected, never raised — the caller
    decides how to report them."""
    report = CorpusReport()
    for seed in seeds:
        for scheme in schemes:
            result = fuzz_run(scheme=scheme, seed=seed, **kwargs)
            report.runs.append(result)
            report.frames_mutated += result.frames_mutated
            if not result.ok:
                report.failures.append(result)
        if frames_target is not None and report.frames_mutated >= frames_target:
            break
    return report
