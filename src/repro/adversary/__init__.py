"""Misbehaving-peer models and the deterministic feedback fuzzer.

The trust boundary this package attacks is the acknowledgment stream:
every model wraps the reverse (feedback-direction) port of a
connection and rewrites, withholds, replays, or garbles frames in
flight, while the data direction stays honest.  The sender's feedback
guard (:mod:`repro.transport.guard`, DESIGN.md section 17) is the
defense under test; the chaos plane sweeps the models across the
scheme matrix (``adv-*`` scenarios) and :mod:`repro.adversary.fuzz`
replays seeded mutation corpora asserting full-delivery-or-clean-abort.

Quickstart::

    from repro.adversary import fuzz_run, make_adversary

    result = fuzz_run(scheme="tcp-tack", seed=7)
    assert result.ok, result.to_dict()

    # or wrap a reverse port by hand:
    adv = make_adversary("optimistic-acker", sim, path.reverse)
    conn.wire(path.forward, adv)

CLI: ``python -m repro.adversary {list,run,fuzz}``.
"""

from repro.adversary.models import (
    ADVERSARIES,
    AckWithholder,
    AdversaryPort,
    FbSeqReplayer,
    FieldMangler,
    OptimisticAcker,
    PullFlooder,
    RttPoisoner,
    make_adversary,
)
from repro.adversary.fuzz import (
    CLEAN_ABORT_REASONS,
    FUZZ_SCHEMES,
    CorpusReport,
    FeedbackFuzzer,
    FuzzResult,
    fuzz_corpus,
    fuzz_run,
)

__all__ = [
    "ADVERSARIES",
    "AckWithholder",
    "AdversaryPort",
    "CLEAN_ABORT_REASONS",
    "CorpusReport",
    "FUZZ_SCHEMES",
    "FbSeqReplayer",
    "FeedbackFuzzer",
    "FieldMangler",
    "FuzzResult",
    "OptimisticAcker",
    "PullFlooder",
    "RttPoisoner",
    "fuzz_corpus",
    "fuzz_run",
    "make_adversary",
]
