"""Structured transport failures.

A connection that cannot make progress must end in something a caller
can *observe and classify* — never a silent stall and never a bare
``RuntimeError`` from deep inside an event handler.  The failure
object model:

* :class:`AbortInfo` — the record the sender leaves behind when it
  gives up (reason, simulated time, attempt counts).  Stored on the
  endpoint/connection rather than raised, because aborting happens
  inside the event loop where an exception would tear down the whole
  simulation (other flows included).
* :class:`ConnectionAborted` — the exception *hosts* raise when they
  find an abort record and want to propagate it (e.g.
  :meth:`repro.transport.connection.Connection.raise_if_aborted`, the
  chaos runner, a campaign task).  The campaign pool recognizes it and
  reports the task as degraded (``failure="aborted"``) instead of
  crashed, without retrying — the simulation is deterministic, a
  retry would abort identically.

Abort reasons (stable strings, used by telemetry and tests)::

    handshake_timeout     SYN/SYN-ACK retries exhausted
    rto_exhausted         consecutive data RTOs hit max_rto_retries
    persist_exhausted     zero-window probes went unanswered
    misbehaving_peer      feedback validation escalated (repeated
                          guard-rule violations or the ACK-withholding
                          watchdog ran out of probes; see
                          repro.transport.guard)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class AbortInfo:
    """Why and when an endpoint gave up."""

    reason: str
    at_s: float
    flow_id: int = 0
    attempts: int = 0
    detail: str = ""

    def describe(self) -> str:
        text = f"flow {self.flow_id} aborted at t={self.at_s:.6f}s: {self.reason}"
        if self.attempts:
            text += f" after {self.attempts} attempts"
        if self.detail:
            text += f" ({self.detail})"
        return text


class FeedbackFormatError(ValueError):
    """Malformed acknowledgment feedback (wire-decode hardening).

    Raised by :func:`repro.transport.feedback.check_wire_form` when an
    ``AckFeedback`` pulled out of ``Packet.meta`` has the wrong shape —
    a non-int ``cum_ack``, a SACK list that is not a list of 2-tuples,
    a NaN delay, and so on.  Mirrors the binlog's ``BinaryFormatError``:
    a *structured* decode failure carrying the offending field, instead
    of a bare ``TypeError``/``IndexError`` leaking from the middle of
    ``_on_feedback``.  The sender never lets it propagate into the
    event loop; the feedback guard counts it under the ``format`` rule
    and drops the frame.
    """

    def __init__(self, field: str, detail: str):
        super().__init__(f"malformed feedback field {field!r}: {detail}")
        self.field = field
        self.detail = detail


class ConnectionAborted(Exception):
    """A connection terminated without delivering its bytes.

    Carries the :class:`AbortInfo`; ``str()`` renders the full story so
    a manifest's ``error`` field is self-explanatory.
    """

    def __init__(self, info: AbortInfo):
        super().__init__(info.describe())
        self.info = info

    @property
    def reason(self) -> str:
        return self.info.reason


def abort_result(info: Optional[AbortInfo]) -> Optional[dict]:
    """JSON-friendly rendering of an abort record (``None`` passes
    through) — what summaries and manifests embed."""
    if info is None:
        return None
    return {
        "reason": info.reason,
        "at_s": info.at_s,
        "flow_id": info.flow_id,
        "attempts": info.attempts,
        "detail": info.detail,
    }
