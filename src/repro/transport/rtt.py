"""RTT estimation: RFC 6298 smoothing plus windowed min filters.

Two estimators live here:

* :class:`RttEstimator` -- the classic srtt/rttvar/RTO machinery every
  sender needs for its retransmission timer.
* :class:`MinRttTracker` -- a time-windowed minimum filter (tau_s <= 10 s
  per the paper S5.2) used both for BBR's min_rtt and for TACK's
  RTT_min; the advanced TACK timing feeds it bias-corrected samples
  from :mod:`repro.core.owd_timing`.
"""

from __future__ import annotations

from typing import Optional

from repro.cc.windowed_filter import WindowedMinFilter


class RttEstimator:
    """RFC 6298 smoothed RTT and retransmission timeout."""

    __slots__ = ("initial_rto_s", "min_rto_s", "max_rto_s", "alpha",
                 "beta", "srtt", "rttvar", "latest_sample", "_backoff")

    def __init__(
        self,
        initial_rto_s: float = 1.0,
        min_rto_s: float = 0.2,
        max_rto_s: float = 60.0,
        alpha: float = 1.0 / 8.0,
        beta: float = 1.0 / 4.0,
    ):
        self.initial_rto_s = initial_rto_s
        self.min_rto_s = min_rto_s
        self.max_rto_s = max_rto_s
        self.alpha = alpha
        self.beta = beta
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self.latest_sample: Optional[float] = None
        self._backoff = 1.0

    def on_sample(self, rtt: float) -> None:
        """Fold one RTT measurement into the smoothed state."""
        if rtt <= 0:
            return
        self.latest_sample = rtt
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = (1 - self.beta) * self.rttvar + self.beta * abs(self.srtt - rtt)
            self.srtt = (1 - self.alpha) * self.srtt + self.alpha * rtt
        self._backoff = 1.0

    def rto(self) -> float:
        """Current retransmission timeout with exponential backoff."""
        if self.srtt is None:
            base = self.initial_rto_s
        else:
            base = self.srtt + max(4.0 * self.rttvar, 1e-3)
        return min(max(base, self.min_rto_s) * self._backoff, self.max_rto_s)

    def back_off(self) -> None:
        """Double the RTO after a timeout (Karn)."""
        self._backoff = min(self._backoff * 2.0, self.max_rto_s / self.min_rto_s)

    def smoothed(self, default: float = 0.1) -> float:
        """srtt, or ``default`` before the first sample."""
        return self.srtt if self.srtt is not None else default


class MinRttTracker:
    """Windowed minimum RTT over ``tau_s`` seconds (route-change safe)."""

    __slots__ = ("_filter",)

    def __init__(self, tau_s: float = 10.0):
        self._filter = WindowedMinFilter(window=tau_s)

    def on_sample(self, rtt: float, now: float) -> None:
        if rtt > 0:
            self._filter.update(rtt, now)

    def get(self, default: float = 0.1) -> float:
        value = self._filter.get()
        return value if value is not None else default

    @property
    def has_sample(self) -> bool:
        return self._filter.get() is not None
