"""Transport sender: windows, pacing, retransmission, rate control.

One sender class covers both paradigms of the paper:

* **legacy mode** (``receiver_driven=False``): loss detection by
  duplicate ACKs plus RACK, RTT sampling from ACK arrival times
  (delay-biased, as the paper points out), sender-side delivery-rate
  estimation — the TCP BBR / CUBIC baselines.
* **TACK mode** (``receiver_driven=True``): retransmissions are
  *pulled* by IACKs and rich TACK block lists, RTT_min comes from the
  advanced OWD timing, and the delivery rate arrives pre-computed in
  each TACK (paper S5.1-S5.4).  The once-per-RTT retransmission
  governor suppresses duplicate pulls.

Both modes pace (paper S5.3); legacy TCP's micro-bursts are modeled by
pacing at ``1.2 * cwnd / srtt`` inside the congestion controllers.
"""

from __future__ import annotations

import bisect
import collections
from typing import Callable, Optional

from repro.cc.base import CongestionController, RateSample
from repro.cc.pacing import Pacer
from repro.cc.rack import RackState
from repro.core.loss_detect import RetransmitGovernor
from repro.core.owd_timing import SenderRttMinEstimator
from repro.core.rate_sync import AckPathLossEstimator
from repro.netsim.engine import Simulator
from repro.netsim.packet import (
    HEADER_SIZE,
    MSS,
    Packet,
    PacketType,
)
from repro.transport.errors import AbortInfo, FeedbackFormatError
from repro.transport.feedback import AckFeedback, check_wire_form
from repro.transport.guard import FeedbackValidator, GuardConfig
from repro.transport.rtt import MinRttTracker, RttEstimator


class SendRecord:
    """Bookkeeping for one outstanding segment."""

    __slots__ = (
        "seq",
        "length",
        "pkt_seq",
        "first_sent",
        "last_sent",
        "retx_count",
        "sacked",
        "lost",
        "acked",
        "delivered_snapshot",
        "delivered_time",
        "app_limited",
    )

    def __init__(self, seq: int, length: int, pkt_seq: int, now: float,
                 delivered_snapshot: int, app_limited: bool):
        self.seq = seq
        self.length = length
        self.pkt_seq = pkt_seq
        self.first_sent = now
        self.last_sent = now
        self.retx_count = 0
        self.sacked = False
        self.lost = False
        self.acked = False
        self.delivered_snapshot = delivered_snapshot
        self.delivered_time = now
        self.app_limited = app_limited

    @property
    def end(self) -> int:
        return self.seq + self.length

    def in_flight(self) -> bool:
        return not (self.sacked or self.lost or self.acked)


class SenderStats:
    """Counters published by the sender."""

    def __init__(self):
        self.data_packets_sent = 0
        self.retransmissions = 0
        self.spurious_retransmissions = 0
        self.bytes_sent = 0
        self.feedback_received = 0
        self.iacks_received = 0
        self.tacks_received = 0
        self.acks_received = 0
        self.rtos = 0
        self.fast_retransmits = 0
        self.rtt_samples = 0
        self.handshake_retries = 0
        self.persist_probes = 0
        self.feedback_rejected = 0
        self.watchdog_probes = 0


class TransportSender:
    """Sending endpoint of a connection."""

    def __init__(
        self,
        sim: Simulator,
        cc: CongestionController,
        mss: int = MSS,
        receiver_driven: bool = False,
        use_receiver_rate: bool = False,
        sync_rtt_min: bool = False,
        flow_id: int = 0,
        initial_rto_s: float = 1.0,
        min_rtt_window_s: float = 10.0,
        max_syn_retries: int = 6,
        max_rto_retries: int = 10,
        max_persist_retries: int = 16,
        guard: Optional[GuardConfig] = None,
    ):
        self.sim = sim
        self.cc = cc
        self.mss = mss
        self.receiver_driven = receiver_driven
        self.use_receiver_rate = use_receiver_rate
        self.sync_rtt_min = sync_rtt_min or receiver_driven
        self.flow_id = flow_id
        self._port = None
        # sequencing
        self.next_seq = 0
        self.next_pkt_seq = 1
        self.records: dict[int, SendRecord] = {}
        self._order: list[int] = []          # seq starts, ascending
        self._head = 0                       # first un-cum-acked index
        self.pkt_map: dict[int, int] = {}    # pkt_seq -> seq (latest)
        self.retx_queue: collections.deque[int] = collections.deque()
        self._retx_queued: set[int] = set()
        # flow state
        self.cum_acked = 0
        self.in_flight = 0
        self.delivered = 0
        self.awnd = 1 << 30
        self.established = False
        self.closed = False
        # app data
        self.pending_bytes = 0
        self.unlimited = False
        self.total_bytes: Optional[int] = None
        self.completed_at: Optional[float] = None
        # estimators
        self.rtt = RttEstimator(initial_rto_s=initial_rto_s)
        self.min_rtt_legacy = MinRttTracker(tau_s=min_rtt_window_s)
        self.rtt_min_est = SenderRttMinEstimator(window_s=min_rtt_window_s)
        self.rack = RackState()
        self.governor = RetransmitGovernor()
        self.ack_loss = AckPathLossEstimator()
        self.pacer = Pacer(rate_bps=cc.pacing_rate_bps() if self._safe_rate(cc) else 1e6)
        # legacy dupACK state
        self._last_cum = 0
        self._dup_count = 0
        self._recovery_point = -1
        # timers
        self._send_timer = None
        self._rto_timer = None
        self._persist_timer = None
        self._syn_sent_at: Optional[float] = None
        # failure handling: every retry loop is capped, and exhausting
        # a cap ends in a structured abort instead of an infinite stall
        # (see repro.transport.errors for the reason vocabulary).
        self.max_syn_retries = max_syn_retries
        self.max_rto_retries = max_rto_retries
        self.max_persist_retries = max_persist_retries
        self.aborted: Optional[AbortInfo] = None
        self._on_abort: Optional[Callable[[AbortInfo], None]] = None
        self._syn_attempts = 0
        self._consecutive_rtos = 0
        self._persist_attempts = 0
        self.stats = SenderStats()
        # feedback guard: the peer-trust boundary (repro.transport.
        # guard).  Enabled by default; every frame is validated against
        # ground truth before anything below consumes it, and the
        # ACK-withholding watchdog is the T-RACKs-style last resort.
        self._guard_cfg = guard if guard is not None else GuardConfig()
        self.guard: Optional[FeedbackValidator] = (
            FeedbackValidator(self, self._guard_cfg)
            if self._guard_cfg.enabled else None)
        self._wd_timer = None
        self._wd_probes = 0
        self._wd_last_probe_s = 0.0
        self._last_fb_s: Optional[float] = None
        self._accepts_since_probe = 0
        # simsan: one None-check per hook site when disabled.
        self._san = sim.san
        if self._san is not None:
            self._san.register_sender(self)
        # telemetry: same null-guard pattern; the congestion controller
        # shares the collector so cwnd/state events carry this flow id.
        self._tel = sim.telemetry
        self._tel_last_rtt_min: Optional[float] = None
        # site-local sampling stride for the per-packet send site (see
        # TraceCollector.sampling_stride): dropped events cost integer
        # arithmetic here instead of a collector call.
        self._tel_stride = (self._tel.sampling_stride("transport")
                            if self._tel is not None else 0)
        self._tel_n = 0
        if self._tel is not None:
            cc.attach_telemetry(self._tel, flow_id)
        # diagnosis: the live flow doctor observes the same event
        # vocabulary the telemetry trace records, with the same values
        # and the same clock, so the offline replay of a trace is
        # byte-identical to the live report.  Null-guarded like every
        # other hook; the change-tracking state below is maintained
        # unconditionally (it is a handful of comparisons) so the two
        # planes never disagree about *when* an event fires.
        self._diag = getattr(sim, "diagnosis", None)
        if self._diag is not None:
            cc.attach_diagnosis(self._diag, flow_id)
        self._limit: Optional[str] = None       # last emitted send-limit
        self._recovery_mode = "none"            # none | rto | pull
        self._recovery_high = 0                 # recovery point (next_seq)
        self._open_emitted = False
        # energy ledger: same null-guard pattern; the open/close pair
        # bounds this flow's idle-energy window.
        self._en = getattr(sim, "energy", None)
        if self._en is not None:
            self._en.flow_opened(flow_id)
        # profiling: construction-time re-binding keeps the hot paths
        # free of profiling branches when no profiler is attached.
        prof = getattr(sim, "profiler", None)
        if prof is not None:
            self._on_feedback = prof.wrap("sender.feedback", self._on_feedback)
            self._try_send = prof.wrap("sender.try_send", self._try_send)
            cc.attach_profiler(prof)

    def _obs(self, name: str, **fields) -> None:
        """One diagnosis-vocabulary ``transport`` event, mirrored to
        the telemetry trace and the live flow doctor with identical
        values (the identity that makes offline replay byte-equal)."""
        if self._tel is not None:
            self._tel.emit("transport", name, self.flow_id, **fields)
        if self._diag is not None:
            self._diag.observe("transport", name, self.flow_id, **fields)

    def _obs_guard(self, name: str, **fields) -> None:
        """One ``guard`` event, mirrored to telemetry and the live flow
        doctor like :meth:`_obs` (rate limiting happens upstream in the
        validator, identically for both planes)."""
        if self._tel is not None:
            self._tel.emit("guard", name, self.flow_id, **fields)
        if self._diag is not None:
            self._diag.observe("guard", name, self.flow_id, **fields)

    def _note_recovery(self, mode: str) -> None:
        """Track the loss-recovery mode; emits only on change."""
        if mode != self._recovery_mode:
            self._recovery_mode = mode
            self._obs("recovery", mode=mode)

    @staticmethod
    def _safe_rate(cc: CongestionController) -> bool:
        try:
            return cc.pacing_rate_bps() > 0
        except Exception:
            return False

    # ------------------------------------------------------------------
    # wiring and app interface
    # ------------------------------------------------------------------
    def connect(self, port) -> None:
        """Attach the forward-path port data is sent through."""
        self._port = port

    def start(self) -> None:
        """Initiate the handshake."""
        if not self._open_emitted:
            self._open_emitted = True
            self._obs("open", total_bytes=self.total_bytes)
        syn = Packet(PacketType.SYN, size=64, flow_id=self.flow_id)
        syn.sent_at = self.sim.now()
        self._syn_sent_at = self.sim.now()
        if self._port is not None:
            self._port.send(syn)
        # Retry the handshake if the SYN or SYN-ACK is lost.
        self._rto_timer = self.sim.call_in(self.rtt.rto(), self._handshake_timeout)

    def _handshake_timeout(self) -> None:
        """Capped exponential SYN retry — same backoff discipline as
        the data-path RTO, ending in a structured abort instead of
        retrying forever at a fixed interval."""
        if self.established or self.closed:
            return
        self._syn_attempts += 1
        if self._syn_attempts > self.max_syn_retries:
            self._abort("handshake_timeout", attempts=self._syn_attempts,
                        detail=f"no SYN-ACK after {self.max_syn_retries} retries")
            return
        self.stats.handshake_retries += 1
        self.rtt.back_off()
        self.start()

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def on_abort(self, callback: Callable[[AbortInfo], None]) -> None:
        """Register a callback fired once if the sender gives up."""
        self._on_abort = callback

    def _abort(self, reason: str, attempts: int = 0, detail: str = "") -> None:
        """Give up: record why, tear down timers, notify observers.

        Runs inside the event loop, so it must not raise — hosts pick
        the record up via :attr:`aborted` (or
        ``Connection.raise_if_aborted``) after the run.
        """
        if self.closed or self.aborted is not None:
            return
        self.aborted = AbortInfo(
            reason=reason, at_s=self.sim.now(), flow_id=self.flow_id,
            attempts=attempts, detail=detail,
        )
        self._obs("abort", reason=reason, attempts=attempts,
                  cum_acked=self.cum_acked, in_flight=self.in_flight)
        self.close()
        if self._on_abort is not None:
            self._on_abort(self.aborted)

    def _guard_abort(self) -> None:
        """Escalation endpoint of the feedback guard: a structured
        ``misbehaving_peer`` abort instead of a stall or a crash."""
        if self.closed or self.aborted is not None:
            return
        g = self.guard
        rule = (g.escalation_rule or "withheld") if g is not None else "withheld"
        total = g.total if g is not None else 0
        self._abort("misbehaving_peer", attempts=total,
                    detail=f"feedback guard escalated on rule {rule!r}")

    # ------------------------------------------------------------------
    # ACK-withholding watchdog (T-RACKs-style last resort)
    # ------------------------------------------------------------------
    def _wd_threshold(self) -> float:
        cfg = self._guard_cfg
        # Capped: the RTO backs off during exactly the silence being
        # measured, so an uncapped multiple outruns the silence forever.
        return min(max(cfg.watchdog_rto_mult * self.rtt.rto(),
                       cfg.watchdog_floor_s),
                   cfg.watchdog_cap_s)

    def _wd_arm(self) -> None:
        if (self.guard is None or not self._guard_cfg.watchdog
                or self.closed or self._wd_timer is not None):
            return
        self._wd_timer = self.sim.call_in(self._wd_threshold() / 2,
                                          self._on_watchdog)

    def _on_watchdog(self) -> None:
        """Fires periodically once established.  A probe needs three
        things: feedback silence past the threshold, probe spacing of
        at least one threshold, and *accepted* sends since the last
        probe/feedback — a dead path (sends refused at link ingress)
        never probes and still ends in the honest ``rto_exhausted``.
        """
        self._wd_timer = None
        if self.closed:
            return
        now = self.sim.now()
        threshold = self._wd_threshold()
        last_fb = self._last_fb_s if self._last_fb_s is not None else 0.0
        if (self.in_flight > 0
                and now - last_fb >= threshold
                and now - self._wd_last_probe_s >= threshold
                and self._accepts_since_probe >= self._guard_cfg.watchdog_min_sends):
            self._wd_probes += 1
            self.stats.watchdog_probes += 1
            self._wd_last_probe_s = now
            self._accepts_since_probe = 0
            self.guard.note_withheld()
            self._obs_guard("watchdog_probe", probes=self._wd_probes,
                            silence_s=now - last_fb)
            if self._wd_probes > self._guard_cfg.watchdog_probes:
                self._guard_abort()
                return
            # Last-resort recovery probe: retransmit the first unacked
            # segment (certain=False would let the governor mute it).
            rec = self._first_unacked_record()
            if rec is not None:
                self.governor.on_acked(rec.seq)
                self._mark_record_lost(rec, now, certain=True)
                if self._has_retx():
                    self._transmit_retx(self.retx_queue.popleft(), now)
        self._wd_timer = self.sim.call_in(max(threshold / 2, 0.05),
                                          self._on_watchdog)

    def write(self, nbytes: int) -> None:
        """Queue application data for transmission."""
        if nbytes < 0:
            raise ValueError(f"negative write: {nbytes}")
        self.pending_bytes += nbytes
        if self.total_bytes is not None:
            self.total_bytes += nbytes
        self._try_send()

    def set_unlimited(self) -> None:
        """Model an infinite bulk source."""
        self.unlimited = True
        self._try_send()

    def set_total(self, nbytes: int) -> None:
        """Fixed-size transfer; completion is stamped when the last
        byte is cumulatively acknowledged."""
        self.total_bytes = nbytes
        self.pending_bytes = nbytes
        self._try_send()

    # ------------------------------------------------------------------
    # ingress
    # ------------------------------------------------------------------
    def on_packet(self, packet: Packet) -> None:
        if packet.kind is PacketType.SYN_ACK:
            self._handle_syn_ack(packet)
        elif packet.is_ack_like():
            fb = packet.meta.get("fb")
            if fb is not None:
                # Any arriving feedback — even a frame the guard ends
                # up rejecting — is liveness for the ACK-withholding
                # watchdog: withholding means *silence*, mangling is
                # the escalation counters' job.
                self._last_fb_s = self.sim.now()
                self._wd_probes = 0
                self._accepts_since_probe = 0
                if self.guard is not None:
                    fb = self.guard.admit(fb, self.sim.now())
                    if self.guard.escalated:
                        self._guard_abort()
                        return
                    if fb is None:
                        self.stats.feedback_rejected += 1
                        return
                else:
                    # Decode hardening holds even with the guard off:
                    # a malformed frame is dropped, never a TypeError
                    # escaping into the event loop.
                    try:
                        check_wire_form(fb)
                    except FeedbackFormatError:
                        self.stats.feedback_rejected += 1
                        return
                self._on_feedback(fb, packet.kind)

    def _handle_syn_ack(self, packet: Packet) -> None:
        if self.established:
            return
        self.established = True
        now = self.sim.now()
        sent_at = packet.meta.get("syn_sent_at", self._syn_sent_at)
        rtt0: Optional[float] = None
        if sent_at is not None:
            rtt0 = now - sent_at
            self.rtt.on_sample(rtt0)
            self.min_rtt_legacy.on_sample(rtt0, now)
            self.rtt_min_est.on_handshake(rtt0, now)
        self._obs("established", rtt_s=rtt0)
        if self._rto_timer is not None:
            self._rto_timer.cancel()
            self._rto_timer = None
        self.pacer.reset(now)
        self.pacer.set_rate(self.cc.pacing_rate_bps())
        self._last_fb_s = now
        self._wd_arm()
        self._try_send()

    # ------------------------------------------------------------------
    # feedback processing
    # ------------------------------------------------------------------
    def _on_feedback(self, fb: AckFeedback, kind: PacketType) -> None:
        now = self.sim.now()
        self.stats.feedback_received += 1
        if kind is PacketType.IACK:
            self.stats.iacks_received += 1
        elif kind is PacketType.TACK:
            self.stats.tacks_received += 1
        else:
            self.stats.acks_received += 1
        # rho': every feedback flavor carries a shared sequence number;
        # holes in it are exactly the feedback the ACK path dropped.
        self.ack_loss.on_feedback(fb.fb_seq)
        self.awnd = fb.awnd
        newly_acked = 0
        newly_lost = 0
        rtt_sample: Optional[float] = None
        rate_sample_bps: Optional[float] = None

        # --- cumulative acknowledgment ------------------------------
        # Ignore acknowledgment of data never sent (RFC 9293: an ACK
        # above SND.NXT is discarded) — clamp rather than trust.
        cum_ack = min(fb.cum_ack, self.next_seq)
        if cum_ack > self.cum_acked:
            self.cum_acked = cum_ack
            self._dup_count = 0
            while self._head < len(self._order):
                seq = self._order[self._head]
                rec = self.records.get(seq)
                if rec is None or rec.end > cum_ack:
                    break
                self._head += 1
                if not rec.acked and not rec.sacked:
                    newly_acked += self._settle_record(rec, now, sacked=False)
                    if rec.retx_count == 0 and not self.receiver_driven:
                        # Legacy RTT sampling from ACK arrival times
                        # (delay-biased, paper S4.3).  TACK mode times
                        # exclusively through the corrected TACK
                        # references instead.
                        sample = now - rec.last_sent
                        self._take_rtt_sample(sample, now)
                        rtt_sample = sample
                        rate_sample_bps = self._legacy_rate_sample(rec, now)
                del self.records[seq]
                self.pkt_map.pop(rec.pkt_seq, None)
                self.governor.on_acked(seq)
            if self._head > 8192:
                # Compact the send-order index so memory tracks the
                # window, not the lifetime of the connection.
                self._order = self._order[self._head:]
                self._head = 0
        elif fb.cum_ack == self.cum_acked and not self.receiver_driven:
            if self.in_flight > 0 and not fb.sack_blocks:
                self._dup_count += 1
            elif fb.sack_blocks:
                self._dup_count += 1

        # --- selective acknowledgment (acked list) ------------------
        sack_progress = False
        for start, end in fb.sack_blocks:
            for rec in self._records_in_range(start, end):
                if not rec.acked and not rec.sacked and rec.end <= end and rec.seq >= start:
                    newly_acked += self._settle_record(rec, now, sacked=True)
                    sack_progress = True
                    if rec.retx_count == 0:
                        rate = self._legacy_rate_sample(rec, now)
                        if rate is not None:
                            rate_sample_bps = max(rate_sample_bps or 0.0, rate)

        # --- TACK timing --------------------------------------------
        if self.receiver_driven:
            sample = self.rtt_min_est.on_tack(now, fb.echo_departure_ts, fb.tack_delay)
            if sample is not None:
                self.rtt.on_sample(sample)
                self.stats.rtt_samples += 1
                rtt_sample = sample
                if self._san is not None:
                    self._san.on_rtt_sample(self, sample, now)
                self._obs_rtt(sample)
            for departure_ts, delay in fb.packet_delays:
                # Per-packet delay entries (S4.3 alternative): one RTT
                # sample each.
                extra = self.rtt_min_est.on_tack(now, departure_ts, delay)
                if extra is not None:
                    self.stats.rtt_samples += 1
                    if self._san is not None:
                        self._san.on_rtt_sample(self, extra, now)
                    self._obs_rtt(extra)

        # --- loss notifications -------------------------------------
        if fb.pull_pkt_range is not None:
            newly_lost += self._handle_pull(fb.pull_pkt_range, now)
        for start, end in fb.unacked_blocks:
            newly_lost += self._mark_range_lost(start, end, now)
        if not self.receiver_driven:
            newly_lost += self._legacy_loss_detection(fb, now)

        # --- recovery-mode tracking (NewReno recovery-point rule) ---
        # Exit before enter: fresh losses in the same feedback re-open
        # recovery with a new recovery point.  Only feedback-signalled
        # losses enter "pull" — persist probes and timeouts have their
        # own states.
        if (self._recovery_mode != "none"
                and self.cum_acked >= self._recovery_high
                and not self._has_retx()):
            self._note_recovery("none")
        if newly_lost > 0 and self._recovery_mode == "none":
            self._recovery_high = self.next_seq
            self._note_recovery("pull")

        # --- rate sample to the controller --------------------------
        if self.use_receiver_rate and fb.delivery_rate_bps is not None:
            rate_sample_bps = fb.delivery_rate_bps
        # A sample is "application limited" when something other than
        # cwnd throttled the flow: the app ran dry, or the receiver's
        # advertised window is the binding constraint.  Such samples
        # must not lower the bandwidth estimate (BBR rule).
        app_limited = (
            (not self.unlimited and self.pending_bytes == 0)
            or self.awnd < self.cc.cwnd_bytes()
        )
        sample = RateSample(
            now=now,
            newly_acked=newly_acked,
            newly_lost=newly_lost,
            rtt=rtt_sample,
            delivery_rate_bps=rate_sample_bps,
            in_flight=self.in_flight,
            is_app_limited=app_limited,
            min_rtt=self.current_rtt_min() if self.receiver_driven else None,
        )
        self.cc.on_feedback(sample)
        self.pacer.set_rate(self.cc.pacing_rate_bps())
        if self._san is not None:
            self._san.on_sender_feedback(self, fb)
        # fb_seq and the sender's rho' estimate ride the feedback
        # event so the offline anomaly detector can compare the
        # estimate against fb_seq ground truth from sender-side
        # events alone.
        self._obs("feedback",
                  kind=kind.value, cum_ack=self.cum_acked,
                  acked_bytes=newly_acked, lost_bytes=newly_lost,
                  in_flight=self.in_flight, awnd=fb.awnd,
                  fb_seq=fb.fb_seq, rho_est=self.ack_loss.loss_rate)
        if self._tel is not None:
            self._tel.emit("cc", "update", self.flow_id,
                           cwnd_bytes=self.cc.cwnd_bytes(),
                           pacing_bps=self.cc.pacing_rate_bps())

        # --- completion / timers -------------------------------------
        if (
            self.total_bytes is not None
            and self.completed_at is None
            and self.cum_acked >= self.total_bytes
        ):
            self.completed_at = now
            self._obs("complete", total_bytes=self.total_bytes)
        if newly_acked > 0:
            # Forward progress resets the give-up counters: abort only
            # on *consecutive* unanswered timeouts/probes.
            self._consecutive_rtos = 0
        if fb.awnd > 0:
            self._persist_attempts = 0
        self._rearm_rto(progress=newly_acked > 0)
        self._try_send()

    def _settle_record(self, rec: SendRecord, now: float, sacked: bool) -> int:
        """Mark a record delivered; returns newly-acked byte count."""
        if rec.in_flight():
            self.in_flight -= rec.length
        if sacked:
            rec.sacked = True
        else:
            rec.acked = True
        self.delivered += rec.length
        self.rack.on_delivered(rec.last_sent)
        return rec.length

    def _take_rtt_sample(self, sample: float, now: float) -> None:
        self.rtt.on_sample(sample)
        self.min_rtt_legacy.on_sample(sample, now)
        self.stats.rtt_samples += 1
        if self._san is not None:
            self._san.on_rtt_sample(self, sample, now)
        self._obs_rtt(sample)

    def _obs_rtt(self, sample: float) -> None:
        """Emit one ``timing``/``rtt_sample`` event to the telemetry
        trace and the live flow doctor (null-guarded internally)."""
        if self._tel is None and self._diag is None:
            return
        srtt = self.rtt.smoothed()
        rtt_min = self.current_rtt_min()
        if self._tel is not None:
            self._tel.emit("timing", "rtt_sample", self.flow_id,
                           rtt_s=sample, srtt_s=srtt, rtt_min_s=rtt_min)
        if self._diag is not None:
            self._diag.observe("timing", "rtt_sample", self.flow_id,
                               rtt_s=sample, srtt_s=srtt, rtt_min_s=rtt_min)

    def _legacy_rate_sample(self, rec: SendRecord, now: float) -> Optional[float]:
        """BBR-style delivery-rate sample from a newly acked record."""
        if self.use_receiver_rate:
            return None
        elapsed = now - rec.delivered_time
        if elapsed <= 0:
            return None
        return (self.delivered - rec.delivered_snapshot) * 8.0 / elapsed

    # ------------------------------------------------------------------
    # loss detection
    # ------------------------------------------------------------------
    def _records_in_range(self, start: int, end: int):
        i = bisect.bisect_left(self._order, start, self._head)
        if i > self._head and i <= len(self._order):
            j = i - 1
            seq = self._order[j]
            rec = self.records.get(seq)
            if rec is not None and rec.end > start:
                yield rec
        while i < len(self._order):
            seq = self._order[i]
            if seq >= end:
                break
            rec = self.records.get(seq)
            if rec is not None:
                yield rec
            i += 1

    def _handle_pull(self, pull_range: tuple[int, int], now: float) -> int:
        """IACK pull: retransmit pkt_seqs strictly inside the range."""
        lo, hi = pull_range
        lost = 0
        for pkt_seq in range(lo + 1, hi):
            seq = self.pkt_map.get(pkt_seq)
            if seq is None:
                continue
            rec = self.records.get(seq)
            if rec is None or rec.acked or rec.sacked:
                continue
            if rec.pkt_seq != pkt_seq:
                continue  # already retransmitted under a newer number
            # The pulled number IS the latest transmission: certain
            # loss evidence (PKT.SEQ removes retransmission ambiguity,
            # paper S5.1), so the once-per-RTT governor must not block.
            lost += self._mark_record_lost(rec, now, certain=True)
        return lost

    def _mark_range_lost(self, start: int, end: int, now: float) -> int:
        """TACK unacked-list blocks: byte ranges missing at the receiver."""
        lost = 0
        for rec in self._records_in_range(start, end):
            if rec.acked or rec.sacked:
                continue
            lost += self._mark_record_lost(rec, now)
        return lost

    def _mark_record_lost(self, rec: SendRecord, now: float,
                          certain: bool = False) -> int:
        """Queue a retransmission subject to the once-per-RTT rule.

        ``certain`` bypasses the governor: the caller proved the latest
        transmission itself was lost (a PKT.SEQ pull), so suppression
        would only delay recovery.
        """
        # The suppression window is one RTT plus the feedback lag: a
        # hole's repair is only visible in feedback after RTT + up to
        # one TACK interval, so bare srtt would re-trigger spuriously.
        guard = 1.5 * self.rtt.smoothed()
        if not certain and not self.governor.may_retransmit(rec.seq, now, guard):
            return 0
        if rec.lost:
            return 0
        if rec.in_flight():
            self.in_flight -= rec.length
        rec.lost = True
        if rec.seq not in self._retx_queued:
            self.retx_queue.append(rec.seq)
            self._retx_queued.add(rec.seq)
        return rec.length

    def _legacy_loss_detection(self, fb: AckFeedback, now: float) -> int:
        """Fast retransmit on 3 dupACKs plus a RACK time sweep.

        The sweep runs on every SACK-bearing feedback (not only on new
        SACK progress): after a burst loss the receiver's repeated
        SACKs are identical, yet older holes still cross the RACK
        deadline as time passes and must be detected.
        """
        lost = 0
        if self._dup_count >= 3 and self.cum_acked > self._recovery_point:
            rec = self._first_unacked_record()
            if rec is not None:
                lost += self._mark_record_lost(rec, now)
                self._recovery_point = self.next_seq
                self.stats.fast_retransmits += 1
                self._dup_count = 0
        if fb.sack_blocks:
            srtt = self.rtt.smoothed()
            sack_top = max(end for _, end in fb.sack_blocks)
            for i in range(self._head, len(self._order)):
                seq = self._order[i]
                if seq >= sack_top:
                    break
                rec = self.records.get(seq)
                if rec is None or not rec.in_flight():
                    continue
                if self.rack.is_lost(rec.last_sent, srtt, now):
                    lost += self._mark_record_lost(rec, now)
        return lost

    def _first_unacked_record(self) -> Optional[SendRecord]:
        for i in range(self._head, len(self._order)):
            rec = self.records.get(self._order[i])
            if rec is not None and rec.in_flight():
                return rec
        return None

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def current_rtt_min(self) -> float:
        if self.receiver_driven:
            return self.rtt_min_est.rtt_min(default=self.rtt.smoothed())
        return self.min_rtt_legacy.get(default=self.rtt.smoothed())

    def effective_window(self) -> int:
        return min(self.cc.cwnd_bytes(), self.awnd)

    def _has_retx(self) -> bool:
        while self.retx_queue:
            rec = self.records.get(self.retx_queue[0])
            if rec is None or rec.acked or rec.sacked or not rec.lost:
                seq = self.retx_queue.popleft()
                self._retx_queued.discard(seq)
                continue
            return True
        return False

    def _next_new_length(self) -> int:
        if self.unlimited:
            return self.mss
        return min(self.mss, self.pending_bytes)

    def _try_send(self) -> None:
        if not self.established or self.closed or self._port is None:
            return
        now = self.sim.now()
        limit: Optional[str] = None
        while True:
            has_retx = self._has_retx()
            new_len = self._next_new_length()
            if not has_retx and new_len <= 0:
                limit = "app"
                break
            size = (self.records[self.retx_queue[0]].length if has_retx else new_len)
            window_blocked = self.in_flight + size > self.effective_window()
            # Pull/RACK repairs bypass cwnd (the hole itself is throttling
            # the window), but RTO recovery does not: a timeout marks
            # *everything* outstanding lost, so until the first post-RTO
            # byte is acked, retransmissions are clocked by the collapsed
            # window (as Linux's tcp_xmit_retransmit_queue does) — a
            # spurious timeout then costs one retransmission, not a
            # go-back-N storm of duplicates.
            if window_blocked and (not has_retx or self._consecutive_rtos > 0):
                limit = ("rwnd" if self.awnd < self.cc.cwnd_bytes()
                         else "cwnd")
                self._maybe_arm_persist()
                break
            if not self.pacer.can_send(now):
                limit = "pacing"
                self._arm_send_timer(self.pacer.next_send_time(now))
                break
            if has_retx:
                self._transmit_retx(self.retx_queue.popleft(), now)
            else:
                self._transmit_new(new_len, now)
        # Send-limit classification for the flow doctor: every break
        # above names what throttled the flow; only changes are worth
        # an event.
        if limit != self._limit:
            self._limit = limit
            self._obs("limited", limit=limit)
        self._rearm_rto()

    def _transmit_new(self, length_bytes: int, now: float) -> None:
        seq = self.next_seq
        pkt_seq = self.next_pkt_seq
        self.next_seq += length_bytes
        self.next_pkt_seq += 1
        if not self.unlimited:
            self.pending_bytes -= length_bytes
        rec = SendRecord(
            seq, length_bytes, pkt_seq, now, self.delivered,
            app_limited=(not self.unlimited and self.pending_bytes <= 0),
        )
        self.records[seq] = rec
        self._order.append(seq)
        self.pkt_map[pkt_seq] = seq
        self.in_flight += length_bytes
        self._emit(rec, now)

    def _transmit_retx(self, seq: int, now: float) -> None:
        self._retx_queued.discard(seq)
        rec = self.records.get(seq)
        if rec is None or rec.acked or rec.sacked or not rec.lost:
            return
        old_pkt_seq = rec.pkt_seq
        rec.pkt_seq = self.next_pkt_seq
        self.next_pkt_seq += 1
        # Replace, never accumulate: the tuple (SEQ, PKT.SEQ) always
        # holds the latest transmission (paper S5.1).
        self.pkt_map.pop(old_pkt_seq, None)
        self.pkt_map[rec.pkt_seq] = seq
        rec.lost = False
        rec.last_sent = now
        rec.retx_count += 1
        rec.delivered_snapshot = self.delivered
        rec.delivered_time = now
        self.in_flight += rec.length
        self.governor.on_retransmit(seq, now)
        self.stats.retransmissions += 1
        self._emit(rec, now)

    def _emit(self, rec: SendRecord, now: float) -> None:
        pkt = Packet(
            PacketType.DATA,
            size=rec.length + HEADER_SIZE,
            seq=rec.seq,
            pkt_seq=rec.pkt_seq,
            payload_len=rec.length,
            flow_id=self.flow_id,
        )
        pkt.sent_at = now
        if self.guard is not None and self.receiver_driven:
            # Departure-stamp ground truth for the echo_ts rule: only
            # timestamps recorded here may come back in a TACK.
            self.guard.on_data_sent(now, now)
        if self._san is not None:
            self._san.on_data_sent(self, rec)
        if self.sync_rtt_min:
            rtt_min = self.current_rtt_min()
            pkt.meta["rtt_min"] = rtt_min
            # rho' sync for the Eq. (6) adaptive block budget: the
            # sender measures ACK-path loss and tells the receiver.
            pkt.meta["ack_loss_rate"] = self.ack_loss.loss_rate
            if self._tel is not None and rtt_min != self._tel_last_rtt_min:
                # Value-change detection, not clock arithmetic: the
                # sync rides every data packet, but only changes are
                # worth an event.
                self._tel_last_rtt_min = rtt_min
                self._tel.emit("timing", "rttmin_sync", self.flow_id,
                               rtt_min_s=rtt_min)
        # Site-local stride counter: this is the sender's hottest
        # telemetry site (one event per data packet), so dropped
        # events must not pay for a collector call.
        if self._tel_stride:
            n = self._tel_n + 1
            if n >= self._tel_stride:
                self._tel_n = 0
                self._tel.emit_kept("transport",
                                    "retx" if rec.retx_count else "send",
                                    self.flow_id, seq=rec.seq,
                                    pkt_seq=rec.pkt_seq, length=rec.length,
                                    in_flight=self.in_flight)
            else:
                self._tel_n = n
        self.stats.data_packets_sent += 1
        self.stats.bytes_sent += rec.length
        self.pacer.on_sent(pkt.size, now)
        # The link's verdict feeds the watchdog: only *accepted* sends
        # count as "data still flowing" (a blacked-out link refuses at
        # ingress, so a dead path never looks like ACK withholding).
        if self._port.send(pkt) is not False:
            self._accepts_since_probe += 1

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------
    def _arm_send_timer(self, at_s: float) -> None:
        if self._send_timer is not None:
            self._send_timer.cancel()
        self._send_timer = self.sim.call_at(max(at_s, self.sim.now()),
                                            self._on_send_timer)

    def _on_send_timer(self) -> None:
        self._send_timer = None
        self._try_send()

    def _rearm_rto(self, progress: bool = False) -> None:
        if self.closed:
            return
        if self._rto_timer is not None:
            if not progress and self.in_flight > 0:
                return
            self._rto_timer.cancel()
            self._rto_timer = None
        if self.in_flight > 0 or self._has_retx():
            self._rto_timer = self.sim.call_in(self.rtt.rto(), self._on_rto)

    def _on_rto(self) -> None:
        self._rto_timer = None
        if self.closed or (self.in_flight == 0 and not self._has_retx()):
            return
        self.stats.rtos += 1
        self._consecutive_rtos += 1
        if self._consecutive_rtos > self.max_rto_retries:
            # The exponential backoff (capped at rtt.max_rto_s) ran its
            # course without a single byte acknowledged: the path is
            # gone.  End observable rather than retry into the void.
            self._abort("rto_exhausted", attempts=self._consecutive_rtos,
                        detail=f"{self.max_rto_retries} consecutive RTOs "
                               "without progress")
            return
        self._obs("rto", rto_s=self.rtt.rto(), in_flight=self.in_flight)
        # RTO recovery shadows pull recovery until the recovery point
        # (everything outstanding at the timeout) is acknowledged.
        self._recovery_high = self.next_seq
        self._note_recovery("rto")
        self.rtt.back_off()
        self.cc.on_rto(self.sim.now())
        self.pacer.set_rate(self.cc.pacing_rate_bps())
        # A timeout declares *everything* outstanding lost (RFC 6298
        # recovery; Linux tcp_timeout_mark_lost does the same).  Marking
        # only the first segment livelocks after a burst outage: the
        # window stays clogged with presumed-in-flight bytes, nothing
        # new flows to trigger dupACK/RACK detection, and Karn's rule
        # blocks fresh RTT samples — recovery crawls at one segment per
        # backoff-capped RTO.
        now = self.sim.now()
        for i in range(self._head, len(self._order)):
            rec = self.records.get(self._order[i])
            if rec is not None and rec.in_flight():
                # Timeout overrides the once-per-RTT governor.
                self.governor.on_acked(rec.seq)
                self._mark_record_lost(rec, now, certain=True)
        self._try_send()
        self._rearm_rto(progress=True)

    def _persist_interval(self) -> float:
        """Zero-window probe interval: exponential from 2*srtt, capped
        so a long stall still probes at least every 10 s."""
        base = max(2 * self.rtt.smoothed(), 0.2)
        return min(base * (2.0 ** self._persist_attempts), 10.0)

    def _maybe_arm_persist(self) -> None:
        # Window-blocked with nothing in flight: without a probe the
        # connection would deadlock if the opening ACK is lost.
        if self.closed or self.in_flight > 0 or self._persist_timer is not None:
            return
        self._persist_timer = self.sim.call_in(
            self._persist_interval(), self._on_persist
        )

    def _on_persist(self) -> None:
        self._persist_timer = None
        if self.closed:
            return
        if self.awnd > 0:
            self._persist_attempts = 0
            self._try_send()
            return
        self._persist_attempts += 1
        if self._persist_attempts > self.max_persist_retries:
            # The receiver's window never reopened and every probe went
            # unanswered; classic stacks abort here too.
            self._abort("persist_exhausted", attempts=self._persist_attempts,
                        detail=f"{self.max_persist_retries} zero-window "
                               "probes unanswered")
            return
        self.stats.persist_probes += 1
        self._obs("persist", attempts=self._persist_attempts)
        # Window probe: retransmit the first unacked segment (or send
        # one new segment) ignoring the zero window.
        now = self.sim.now()
        rec = self._first_unacked_record()
        if rec is not None:
            self.governor.on_acked(rec.seq)
            self._mark_record_lost(rec, now)
            if self._has_retx():
                self._transmit_retx(self.retx_queue.popleft(), now)
        elif self._next_new_length() > 0:
            self._transmit_new(self._next_new_length(), now)
        self._maybe_arm_persist()

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self.closed:
            return
        # Guard summary first (rate-limited violation counters), then
        # the close event: the flow doctor finalizes on "close", so the
        # summary must already be on record in both planes.
        if self.guard is not None:
            self.guard.emit_summary()
        # The close event is emitted before the flag flips so the flow
        # doctor finalizes the flow exactly once, at this timestamp,
        # in both the live and the replayed-trace plane.
        self._obs("close", cum_acked=self.cum_acked)
        self.closed = True
        for timer in (self._send_timer, self._rto_timer,
                      self._persist_timer, self._wd_timer):
            if timer is not None:
                timer.cancel()
        self._send_timer = self._rto_timer = self._persist_timer = None
        self._wd_timer = None
        if self._en is not None:
            self._en.flow_closed(self.flow_id)

    def goodput_bps(self, duration: Optional[float] = None) -> float:
        """Cumulatively acknowledged bytes over ``duration`` (defaults
        to the current simulation time)."""
        if duration is None:
            duration = self.sim.now()
        if duration <= 0:
            return 0.0
        return self.cum_acked * 8.0 / duration

    def __repr__(self) -> str:
        return (
            f"TransportSender(cum_acked={self.cum_acked}, "
            f"in_flight={self.in_flight}, cwnd={self.cc.cwnd_bytes()})"
        )
